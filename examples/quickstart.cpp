// Quickstart: solve an l1-regularized least squares problem with RC-SFISTA.
//
//   build/examples/quickstart [--m=5000 --d=100 --lambda=0.1 --k=8 --s=2]
//
// Demonstrates the minimal public-API flow: make (or load) a dataset, build
// a LassoProblem, get a reference optimum, run the solver, inspect results.
#include <cstdio>

#include "rcf.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("quickstart", "minimal RC-SFISTA example");
  cli.add_flag("m", "number of samples", "5000");
  cli.add_flag("d", "number of features", "100");
  cli.add_flag("density", "non-zero fill of X", "0.2");
  cli.add_flag("lambda", "l1 penalty", "0.1");
  cli.add_flag("b", "sampling rate", "0.05");
  cli.add_flag("k", "iteration-overlapping depth", "8");
  cli.add_flag("s", "Hessian-reuse inner iterations", "2");
  cli.add_flag("threads",
               "intra-rank pool threads (0 = auto: hardware/ranks; "
               "default: RCF_THREADS or 1)",
               "-1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  // 1. A synthetic regression dataset (use data::make_paper_clone or
  //    sparse::read_libsvm for the paper's benchmarks / real data).
  data::SyntheticOptions gen;
  gen.num_samples = cli.get_int("m", 5000);
  gen.num_features = cli.get_int("d", 100);
  gen.density = cli.get_double("density", 0.2);
  gen.name = "quickstart";
  const data::Dataset dataset = data::make_regression(gen);
  std::printf("dataset : %s\n", data::describe(dataset).c_str());

  // 2. The optimization problem F(w) = (1/2m)||X^T w - y||^2 + lambda||w||_1.
  const core::LassoProblem problem(dataset, cli.get_double("lambda", 0.1));

  // 3. A high-accuracy reference optimum (the paper's TFOCS role), used for
  //    the relative-error stopping criterion.
  const core::SolveResult ref = core::solve_reference(problem);
  std::printf("F(w*)   : %.10f  (reference, %d iterations)\n", ref.objective,
              ref.iterations);

  // 4. RC-SFISTA.
  core::SolverOptions opts;
  {
    const std::int64_t t = cli.get_int("threads", -1);
    opts.threads = t >= 0 ? static_cast<int>(t) : exec::threads_from_env(1);
  }
  opts.max_iters = 500;
  opts.sampling_rate = cli.get_double("b", 0.05);
  opts.k = static_cast<int>(cli.get_int("k", 8));
  opts.s = static_cast<int>(cli.get_int("s", 2));
  opts.variance_reduction = true;  // the Eq. 9 estimator
  opts.tol = 0.01;  // the paper's tolerance
  opts.f_star = ref.objective;
  opts.procs = 16;  // logical processors for the cost model

  const core::SolveResult result = core::solve_rc_sfista(problem, opts);

  std::printf("solver  : %s\n", result.solver.c_str());
  std::printf("status  : %s after %d iterations (rel. error %.3g)\n",
              result.converged ? "converged" : "max-iters", result.iterations,
              result.rel_error);
  std::printf("F(w)    : %.10f\n", result.objective);
  std::printf("comm    : %.0f messages, %.3g words moved\n",
              result.cost.messages(), result.cost.words());
  std::printf("modeled : %.4f s on %s with P=%d\n", result.sim_seconds,
              opts.machine.name.c_str(), opts.procs);

  // Count the sparse support recovered.
  int nonzeros = 0;
  for (double v : result.w) {
    nonzeros += v != 0.0;
  }
  std::printf("support : %d of %zu weights non-zero\n", nonzeros,
              result.w.size());
  return 0;
}
