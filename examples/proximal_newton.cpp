// Proximal Newton on an mnist-like problem, comparing the two inner solvers
// of paper §3.3 / Fig. 7: exact-subproblem FISTA vs. RC-SFISTA.
#include <cstdio>

#include "rcf.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("proximal_newton",
                "PN driver with FISTA vs RC-SFISTA inner solvers");
  cli.add_flag("dataset", "paper dataset clone", "mnist");
  cli.add_flag("scale", "row scale (0 = default)", "0");
  cli.add_flag("outer", "outer Newton iterations", "10");
  cli.add_flag("inner", "inner-solver iterations", "30");
  cli.add_flag("k", "overlap depth for the RC-SFISTA inner", "8");
  cli.add_flag("threads",
               "intra-rank pool threads (0 = auto: hardware/ranks; "
               "default: RCF_THREADS or 1)",
               "-1");
  cli.add_flag("procs", "logical processors for the cost model", "64");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const std::string name = cli.get_string("dataset", "mnist");
  double scale = cli.get_double("scale", 0.0);
  if (scale <= 0.0) {
    scale = data::default_clone_scale(name);
  }
  const data::Dataset dataset = data::make_paper_clone(name, scale);
  const double lambda =
      0.01 * core::LassoProblem(dataset, 0.0).lambda_max();
  std::printf("dataset: %s, lambda=%g\n", data::describe(dataset).c_str(),
              lambda);

  const core::LassoProblem problem(dataset, lambda);
  const core::SolveResult ref = core::solve_reference(problem);
  std::printf("F(w*) = %.10f\n\n", ref.objective);

  core::PnOptions base;
  {
    const std::int64_t t = cli.get_int("threads", -1);
    base.threads = t >= 0 ? static_cast<int>(t) : exec::threads_from_env(1);
  }
  base.max_outer = static_cast<int>(cli.get_int("outer", 10));
  base.inner_iters = static_cast<int>(cli.get_int("inner", 30));
  base.f_star = ref.objective;
  base.procs = static_cast<int>(cli.get_int("procs", 64));

  core::PnOptions fista_opts = base;
  fista_opts.inner = core::PnInnerSolver::kFista;
  const auto pn_fista = core::solve_proximal_newton(problem, fista_opts);

  core::PnOptions rc_opts = base;
  rc_opts.inner = core::PnInnerSolver::kRcSfista;
  rc_opts.k = static_cast<int>(cli.get_int("k", 8));
  rc_opts.s = 2;
  const auto pn_rc = core::solve_proximal_newton(problem, rc_opts);

  AsciiTable table({"inner solver", "outer iters", "rel. error",
                    "comm msgs", "modeled time (s)"});
  for (const auto* r : {&pn_fista, &pn_rc}) {
    table.add_row({r->solver, std::to_string(r->iterations),
                   fmt_e(r->rel_error, 3), fmt_g(r->cost.messages(), 4),
                   fmt_e(r->sim_seconds, 3)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nBoth drivers reach comparable accuracy; the RC-SFISTA inner "
              "solver reshapes communication (see bench_fig7_pn for the "
              "full k sweep).\n");
  return 0;
}
