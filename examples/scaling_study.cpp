// Scaling study: modeled time-to-tolerance of SFISTA vs RC-SFISTA across
// processor counts, on one dataset clone -- a condensed view of the paper's
// Fig. 4 story with the parameter bounds of Eq. 25-28 printed alongside.
#include <cstdio>

#include "rcf.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("scaling_study", "P x k scaling of RC-SFISTA vs SFISTA");
  cli.add_flag("dataset", "paper dataset clone", "covtype");
  cli.add_flag("scale", "row scale (0 = default)", "0");
  cli.add_flag("b", "sampling rate", "0.01");
  cli.add_flag("machine", "machine spec (comet|spark|ethernet|infiniband)",
               "comet");
  cli.add_flag("trace-out", "Chrome trace-event JSON output path", "");
  cli.add_flag("trace-jsonl", "flat JSONL trace output path", "");
  cli.add_flag("metrics-out", "metrics registry JSON output path", "");
  cli.add_flag("threads",
               "intra-rank pool threads (0 = auto: hardware/ranks; "
               "default: RCF_THREADS or 1)",
               "-1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const obs::ScopedSession obs_session(cli.get_string("trace-out", ""),
                                       cli.get_string("trace-jsonl", ""),
                                       cli.get_string("metrics-out", ""));

  const std::string name = cli.get_string("dataset", "covtype");
  double scale = cli.get_double("scale", 0.0);
  if (scale <= 0.0) {
    scale = data::default_clone_scale(name);
  }
  const data::Dataset dataset = data::make_paper_clone(name, scale);
  const model::MachineSpec machine =
      model::machine_by_name(cli.get_string("machine", "comet"));
  // lambda as a fraction of lambda_max keeps the problem non-trivial at any
  // clone scale (the paper's absolute values are tied to its data scaling).
  const double lambda =
      0.01 * core::LassoProblem(dataset, 0.0).lambda_max();
  std::printf("dataset: %s\nmachine: %s (alpha=%.2g, beta=%.2g, gamma=%.2g)\n",
              data::describe(dataset).c_str(), machine.name.c_str(),
              machine.alpha, machine.beta, machine.gamma);

  const core::LassoProblem problem(dataset, lambda);
  const auto ref = core::solve_reference(problem);

  const double d = static_cast<double>(dataset.num_features());
  std::printf("Eq.25 bound: k <= alpha/(beta d^2) = %.3g\n\n",
              model::k_bound_latency_bandwidth(machine, d));

  AsciiTable table({"P", "solver", "k", "iters", "modeled time (s)",
                    "speedup vs SFISTA"});
  for (int p : {16, 64, 256}) {
    core::SolverOptions base;
    {
      const std::int64_t t = cli.get_int("threads", -1);
      base.threads = t >= 0 ? static_cast<int>(t) : exec::threads_from_env(1);
    }
    base.max_iters = 400;
    base.sampling_rate = cli.get_double("b", 0.05);
    base.variance_reduction = true;
    base.tol = 0.01;
    base.f_star = ref.objective;
    base.procs = p;
    base.machine = machine;
    base.track_history = false;

    const auto sfista = core::solve_sfista(problem, base);
    table.add_row({std::to_string(p), "sfista", "1",
                   std::to_string(sfista.iterations),
                   fmt_e(sfista.sim_seconds, 3), "1.00"});
    for (int k : {4, 16}) {
      core::SolverOptions opts = base;
      opts.k = k;
      const auto rc = core::solve_rc_sfista(problem, opts);
      table.add_row({std::to_string(p), "rc-sfista", std::to_string(k),
                     std::to_string(rc.iterations), fmt_e(rc.sim_seconds, 3),
                     fmt_f(sfista.sim_seconds / rc.sim_seconds, 2)});
    }
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
