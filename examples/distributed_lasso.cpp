// Genuinely distributed (threaded SPMD) lasso solve.
//
// Runs RC-SFISTA across real concurrent ranks (dist::ThreadGroup), each
// owning a block of samples, communicating via rendezvous allreduce -- the
// code path that substitutes the paper's MPI implementation -- and verifies
// the result against the sequential engine.
#include <cstdio>

#include "rcf.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("distributed_lasso", "SPMD RC-SFISTA over threaded ranks");
  cli.add_flag("ranks", "number of SPMD ranks (threads)", "4");
  cli.add_flag("m", "samples", "8000");
  cli.add_flag("d", "features", "64");
  cli.add_flag("k", "overlap depth", "4");
  cli.add_flag("algo", "allreduce algorithm (central|rd)", "central");
  cli.add_flag("trace-out", "Chrome trace-event JSON output path", "");
  cli.add_flag("trace-jsonl", "flat JSONL trace output path", "");
  cli.add_flag("metrics-out", "metrics registry JSON output path", "");
  cli.add_flag("live",
               "live telemetry stream path (1 = rcf_live.jsonl, "
               "unix:<path> = socket; env RCF_LIVE when flag absent)",
               "");
  cli.add_flag("threads",
               "intra-rank pool threads (0 = auto: hardware/ranks; "
               "default: RCF_THREADS or 1)",
               "-1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  std::string live = cli.get_string("live", "");
  if (live == "1") {
    live = "rcf_live.jsonl";
  }
  const obs::ScopedSession obs_session(cli.get_string("trace-out", ""),
                                       cli.get_string("trace-jsonl", ""),
                                       cli.get_string("metrics-out", ""),
                                       std::move(live));

  data::SyntheticOptions gen;
  gen.num_samples = cli.get_int("m", 8000);
  gen.num_features = cli.get_int("d", 64);
  gen.density = 0.3;
  gen.name = "distributed-demo";
  const data::Dataset dataset = data::make_regression(gen);
  std::printf("dataset: %s\n", data::describe(dataset).c_str());

  const core::LassoProblem problem(dataset, 0.1);

  core::SolverOptions opts;
  {
    const std::int64_t t = cli.get_int("threads", -1);
    opts.threads = t >= 0 ? static_cast<int>(t) : exec::threads_from_env(1);
  }
  opts.max_iters = 100;
  opts.sampling_rate = 0.1;
  opts.k = static_cast<int>(cli.get_int("k", 4));
  opts.s = 1;
  opts.track_history = false;

  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const auto algo = cli.get_string("algo", "central") == "rd"
                        ? dist::AllreduceAlgo::kRecursiveDoubling
                        : dist::AllreduceAlgo::kCentral;
  dist::ThreadGroup group(ranks, algo);

  const auto distributed =
      core::solve_rc_sfista_distributed(problem, opts, group);
  if (!distributed.ok()) {
    // Structured failure (e.g. an RCF_FAULT abort or unrecoverable
    // poison): report the cause instead of comparing a partial iterate.
    std::fprintf(stderr, "distributed solve failed: %s\n",
                 distributed.failure_reason.c_str());
    std::printf("retries      : %llu, faults injected: %llu\n",
                static_cast<unsigned long long>(
                    distributed.comm_stats.retries),
                static_cast<unsigned long long>(
                    distributed.comm_stats.faults_injected));
    return 1;
  }
  // The sequential verification run opts out of tracing so the captured
  // trace holds exactly the distributed execution's spans (one "allreduce"
  // per ThreadComm collective, matching CommStats::allreduce_calls).
  core::SolverOptions seq_opts = opts;
  seq_opts.trace = false;
  const auto sequential = core::solve_rc_sfista(problem, seq_opts);

  const double diff =
      la::max_abs_diff(distributed.w.span(), sequential.w.span());
  std::printf("ranks        : %d (%s allreduce)\n", ranks,
              algo == dist::AllreduceAlgo::kCentral ? "central"
                                                    : "recursive-doubling");
  std::printf("F(w) dist    : %.12f\n", distributed.objective);
  std::printf("F(w) seq     : %.12f\n", sequential.objective);
  std::printf("||w_d - w_s||_inf = %.3e (reduction-order rounding only)\n",
              diff);
  std::printf("allreduces   : %llu calls, %llu words (all ranks), "
              "max payload %llu words\n",
              static_cast<unsigned long long>(
                  distributed.comm_stats.allreduce_calls),
              static_cast<unsigned long long>(
                  distributed.comm_stats.allreduce_words),
              static_cast<unsigned long long>(
                  distributed.comm_stats.max_payload_words));
  std::printf("wall         : %.3f s\n", distributed.wall_seconds);
  if (!distributed.phases.empty()) {
    std::printf("\nrank-0 phases (times measured when tracing is on):\n%s",
                obs::phase_table(distributed.phases).c_str());
  }
  if (obs_session.active()) {
    std::printf("\ntrace outputs written (open --trace-out in "
                "chrome://tracing or https://ui.perfetto.dev)\n");
  }
  return diff < 1e-8 ? 0 : 1;
}
