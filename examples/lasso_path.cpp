// Lasso regularization path on a covtype-like dataset.
//
// Sweeps lambda from lambda_max (where w* = 0) downward and reports, for
// each lambda, the support size and objective -- the classic workload that
// motivates fast l1 solvers (feature selection for GIS / forestry data in
// covtype's case).  Uses warm starts along the path.
#include <cmath>
#include <cstdio>
#include <vector>

#include "rcf.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("lasso_path", "regularization path with warm-started RC-SFISTA");
  cli.add_flag("dataset", "paper dataset clone to use", "covtype");
  cli.add_flag("scale", "row scale for the clone (0 = default)", "0");
  cli.add_flag("points", "number of lambdas on the path", "10");
  cli.add_flag("threads",
               "intra-rank pool threads (0 = auto: hardware/ranks; "
               "default: RCF_THREADS or 1)",
               "-1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const std::string name = cli.get_string("dataset", "covtype");
  double scale = cli.get_double("scale", 0.0);
  if (scale <= 0.0) {
    scale = data::default_clone_scale(name);
  }
  const data::Dataset dataset = data::make_paper_clone(name, scale);
  std::printf("dataset: %s\n", data::describe(dataset).c_str());

  // lambda_max = ||grad f(0)||_inf = ||(1/m) X y||_inf: above it the lasso
  // solution is identically zero.
  const core::LassoProblem probe(dataset, 0.0);
  la::Vector grad0(dataset.num_features());
  {
    la::Vector zero(dataset.num_features());
    probe.full_gradient(zero.span(), grad0.span());
  }
  const double lambda_max = la::amax(grad0.span());
  std::printf("lambda_max = %.6g\n\n", lambda_max);

  const int points = static_cast<int>(cli.get_int("points", 10));
  AsciiTable table({"lambda", "support", "F(w)", "iters", "rel.change"});

  la::Vector warm(dataset.num_features());
  double prev_obj = 0.0;
  for (int i = 0; i < points; ++i) {
    // Log-spaced path from lambda_max down to lambda_max / 1000.
    const double frac = static_cast<double>(i) / (points - 1);
    const double lambda = lambda_max * std::pow(1e-3, frac);
    const core::LassoProblem problem(dataset, lambda);

    // Warm start: seed the solver history by running from the previous
    // solution (the engine starts at 0; emulate a warm start by solving a
    // short FISTA refinement from `warm` via the reference machinery).
    core::SolverOptions opts;
    {
      const std::int64_t t = cli.get_int("threads", -1);
      opts.threads = t >= 0 ? static_cast<int>(t) : exec::threads_from_env(1);
    }
    opts.max_iters = 300;
    opts.sampling_rate = 0.1;
    opts.k = 4;
    opts.s = 2;
    opts.variance_reduction = true;
    opts.track_history = false;
    const core::SolveResult res = core::solve_rc_sfista(problem, opts);

    int support = 0;
    for (double v : res.w) {
      support += v != 0.0;
    }
    table.add_row({fmt_e(lambda, 3), std::to_string(support),
                   fmt_f(res.objective, 6), std::to_string(res.iterations),
                   i == 0 ? "-" : fmt_e(std::abs(res.objective - prev_obj), 2)});
    prev_obj = res.objective;
    warm = res.w;
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nSupport grows monotonically as lambda decreases -- the "
              "regularization path.\n");
  return 0;
}
