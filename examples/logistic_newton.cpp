// l1-regularized logistic regression with proximal Newton -- the general
// empirical-risk-minimization extension of the paper's framework (§2.1),
// on a SUSY-like binary classification task.
#include <cstdio>

#include "rcf.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("logistic_newton", "sparse logistic regression via PN");
  cli.add_flag("m", "samples", "8000");
  cli.add_flag("d", "features", "18");
  cli.add_flag("lambda", "l1 penalty", "0.002");
  cli.add_flag("k", "overlap depth for the RC inner solver", "4");
  cli.add_flag("threads",
               "intra-rank pool threads (0 = auto: hardware/ranks; "
               "default: RCF_THREADS or 1)",
               "-1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  data::SyntheticOptions gen;
  gen.num_samples = cli.get_int("m", 8000);
  gen.num_features = cli.get_int("d", 18);
  gen.density = 0.25;
  gen.binary_labels = true;  // +-1 labels
  gen.noise_stddev = 0.4;
  gen.name = "susy-like";
  const data::Dataset dataset = data::make_regression(gen);
  std::printf("dataset : %s\n", data::describe(dataset).c_str());

  const core::LogisticProblem problem(dataset,
                                      cli.get_double("lambda", 0.002));

  // Reference optimum via accelerated proximal gradient.
  const auto ref = core::solve_logistic_fista(problem);
  std::printf("F(w*)   : %.10f (%d FISTA iterations)\n", ref.objective,
              ref.iterations);

  core::PnOptions opts;
  {
    const std::int64_t t = cli.get_int("threads", -1);
    opts.threads = t >= 0 ? static_cast<int>(t) : exec::threads_from_env(1);
  }
  opts.max_outer = 20;
  opts.inner_iters = 60;
  opts.hessian_sampling_rate = 0.25;
  opts.tol = 0.01;
  opts.f_star = ref.objective;
  opts.procs = 64;

  opts.inner = core::PnInnerSolver::kFista;
  const auto pn = core::solve_logistic_prox_newton(problem, opts);
  opts.inner = core::PnInnerSolver::kRcSfista;
  opts.k = static_cast<int>(cli.get_int("k", 4));
  const auto pn_rc = core::solve_logistic_prox_newton(problem, opts);

  AsciiTable table({"solver", "outer iters", "rel. error", "comm rounds",
                    "modeled time (s)"});
  for (const auto* r : {&pn, &pn_rc}) {
    table.add_row({r->solver, std::to_string(r->iterations),
                   fmt_e(r->rel_error, 3),
                   std::to_string(r->history.back().comm_rounds),
                   fmt_e(r->sim_seconds, 3)});
  }
  std::printf("%s", table.str().c_str());

  // Training accuracy of the sparse model.
  la::Vector scores(dataset.num_samples());
  dataset.xt.spmv(pn.w.span(), scores.span());
  int correct = 0, support = 0;
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    correct += (scores[i] >= 0.0 ? 1.0 : -1.0) == dataset.y[i];
  }
  for (double v : pn.w) {
    support += v != 0.0;
  }
  std::printf("accuracy: %.1f%% with %d of %zu features\n",
              100.0 * correct / dataset.num_samples(), support, pn.w.size());
  return 0;
}
