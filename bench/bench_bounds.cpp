// Parameter bounds (Eq. 25-28): theoretical upper bounds for the overlap
// parameter k and the Hessian-reuse parameter S per dataset and machine.
//
// The paper works the covtype example on Comet: k <= alpha/(beta d^2) = 2
// (Eq. 25), and S <= 7 for mnist with k = 1, P = 256, N = 200 (Eq. 27).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_bounds", "Eq. 25-28 parameter bounds");
  bench::add_common_flags(cli);
  cli.add_flag("procs", "processor count", "256");
  cli.add_flag("n", "iteration count N", "200");
  cli.add_flag("b", "sampling rate", "0.01");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Eq. 25-28: upper bounds for the overlap parameter k and inner loop "
      "parameter S",
      "covtype on Comet: k <= 2 (Eq. 25); mnist with k=1, P=256, N=200: "
      "S <= 7 (Eq. 27)");

  const int procs = static_cast<int>(cli.get_int("procs", 256));
  const double n_iters = static_cast<double>(cli.get_int("n", 200));
  const double b = cli.get_double("b", 0.01);

  for (const auto machine :
       {model::comet(), model::ethernet_cluster(), model::infiniband_cluster()}) {
    std::printf("--- machine %s: alpha=%.3g beta=%.3g gamma=%.3g "
                "(alpha/beta=%.3g) ---\n",
                machine.name.c_str(), machine.alpha, machine.beta,
                machine.gamma, machine.alpha_beta_ratio());
    AsciiTable table({"dataset", "d", "Eq.25 k<=", "Eq.26 k<=", "Eq.27 kS<=",
                      "Eq.28 S<="});
    for (const auto& spec : data::paper_dataset_specs()) {
      model::AlgorithmShape shape;
      shape.n_iters = n_iters;
      shape.d = static_cast<double>(spec.cols);
      shape.m_bar =
          std::max(1.0, std::floor(b * static_cast<double>(spec.rows)));
      shape.fill = spec.density;
      shape.p = procs;
      shape.k = 1;
      shape.s = 1;
      table.add_row(
          {spec.name, std::to_string(spec.cols),
           fmt_g(model::k_bound_latency_bandwidth(machine, shape.d), 3),
           fmt_g(model::k_bound_latency_flops(shape, machine), 3),
           fmt_g(model::ks_bound_sparse(shape, machine), 3),
           fmt_g(model::s_bound(shape, machine), 3)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf("Bounds use the full-size paper shapes (Table 2) and the pure\n"
              "hardware alpha (the paper's quoted constants), with P=%d,\n"
              "N=%g, b=%g.  Eq. 25 uses only machine constants and d; Eq. 26\n"
              "adds the flop/latency trade; Eq. 27 is the sparse (f ~ 0)\n"
              "combined bound; Eq. 28 fixes k at the Eq. 25 bound.\n",
              procs, n_iters, b);
  return 0;
}
