// Table 2: the benchmark datasets.
//
// Prints the paper's dataset inventory side by side with the generated
// clones: row / column counts, non-zero percentage, and payload size.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_table2_datasets", "Table 2: dataset inventory");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Table 2: The datasets for experimental study",
      "five LIBSVM benchmarks spanning dense/sparse, 4K..5M samples");

  AsciiTable table({"dataset", "paper rows", "paper cols", "paper nnz%",
                    "clone rows", "clone cols", "clone nnz%", "clone size",
                    "scale"});
  for (const auto& spec : data::paper_dataset_specs()) {
    double scale = cli.get_double("scale", 0.0);
    if (scale <= 0.0) {
      scale = data::default_clone_scale(spec.name);
    }
    const auto ds = data::make_paper_clone(
        spec.name, scale, static_cast<std::uint64_t>(cli.get_int("seed", 42)));
    table.add_row({spec.name, fmt_count(spec.rows), std::to_string(spec.cols),
                   fmt_f(100.0 * spec.density, 2) + "%",
                   fmt_count(ds.num_samples()), std::to_string(ds.num_features()),
                   fmt_f(100.0 * ds.density(), 2) + "%",
                   fmt_bytes(ds.size_bytes()), fmt_g(ds.scale, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Columns and density always match the paper (they set the d^2\n"
              "communication volume and the Gram flop count); rows are scaled\n"
              "down by default -- pass --scale=1 for full-size generation.\n");
  return 0;
}
