// Ablation: the momentum rule as printed in the paper vs standard FISTA.
//
// The paper's Alg. 2-4 print t_n = (1 + sqrt(1 + t_{n-1}^2)) / 2, which
// converges to t = 4/3 (mu -> 1/4) and loses the O(1/N^2) acceleration;
// Beck & Teboulle's rule has 4 t^2 under the root.  This ablation measures
// how much the (presumed) typo would cost, plus plain ISTA for reference.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_ablation_momentum", "momentum-rule ablation");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "iterations per run", "300");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Ablation: momentum rule (standard FISTA vs the paper's printed rule "
      "vs ISTA)",
      "DESIGN.md 'Known paper typo handled': the printed rule loses "
      "acceleration");

  const int iters = static_cast<int>(cli.get_int("iters", 300));
  const std::vector<int> checkpoints = {10, 25, 50, 100, 200, 300};

  for (const auto& name : bench::requested_datasets(cli, "covtype,mnist")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    std::printf("--- %s ---\n", bp.name().c_str());

    std::vector<std::string> header = {"momentum"};
    for (int c : checkpoints) {
      if (c <= iters) header.push_back("e@" + std::to_string(c));
    }
    AsciiTable table(header);

    struct Rule {
      const char* label;
      core::MomentumRule rule;
    };
    for (const Rule& r :
         {Rule{"fista (standard)", core::MomentumRule::kFista},
          Rule{"paper-typo", core::MomentumRule::kPaperTypo},
          Rule{"none (ISTA)", core::MomentumRule::kNone}}) {
      core::SolverOptions opts;
      opts.threads = bench::requested_threads(cli);
      opts.max_iters = iters;
      opts.momentum = r.rule;
      opts.sampling_rate = 1.0;  // deterministic: isolates the momentum rule
      opts.f_star = bp.f_star();
      const auto result = core::solve_fista(bp.problem(), opts);

      std::vector<std::string> row = {r.label};
      for (int c : checkpoints) {
        if (c > iters) continue;
        row.push_back(fmt_e(result.history[c - 1].rel_error, 2));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf("The printed rule's mu converges to 1/4 instead of ~1, so its\n"
              "trajectory tracks ISTA's O(1/N) rate rather than FISTA's\n"
              "O(1/N^2); we implement the standard rule by default.\n");
  return 0;
}
