#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rcf::bench {

namespace {

// Bump when anything that affects the reference optimum changes (generator,
// reference solver, lambda selection).
constexpr const char* kCacheVersion = "v4";

std::filesystem::path cache_path(const std::string& dataset, double scale,
                                 double lambda_ratio, std::uint64_t seed) {
  std::ostringstream name;
  name << "rcf_ref_" << kCacheVersion << "_" << dataset << "_" << scale << "_"
       << lambda_ratio << "_" << seed << ".txt";
  const char* env = std::getenv("RCF_BENCH_CACHE_DIR");
  const auto dir = env ? std::filesystem::path(env)
                       : std::filesystem::temp_directory_path() /
                             "rcf_bench_cache";
  return dir / name.str();
}

bool load_reference(const std::filesystem::path& path, double& f_star,
                    la::Vector& w_star) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::size_t dim = 0;
  if (!(in >> f_star >> dim)) {
    return false;
  }
  w_star.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    if (!(in >> w_star[i])) {
      return false;
    }
  }
  return true;
}

void store_reference(const std::filesystem::path& path, double f_star,
                     const la::Vector& w_star) {
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  std::ofstream out(path);
  if (!out) {
    return;  // caching is best-effort
  }
  out.precision(17);
  out << f_star << ' ' << w_star.size() << '\n';
  for (double v : w_star) {
    out << v << ' ';
  }
  out << '\n';
}

}  // namespace

BenchProblem::BenchProblem(const std::string& dataset_name, double scale,
                           double lambda_ratio, std::uint64_t seed) {
  if (scale <= 0.0) {
    scale = data::default_clone_scale(dataset_name);
  }
  dataset_ = std::make_unique<data::Dataset>(
      data::make_paper_clone(dataset_name, scale, seed));
  const core::LassoProblem probe(*dataset_, 0.0);
  lambda_ = lambda_ratio * probe.lambda_max();
  problem_ = std::make_unique<core::LassoProblem>(*dataset_, lambda_);

  // The high-accuracy reference is expensive for the dense clones; cache it
  // on disk keyed by everything that determines it.
  const auto cache = cache_path(dataset_name, scale, lambda_ratio, seed);
  if (!load_reference(cache, f_star_, w_star_) ||
      w_star_.size() != dataset_->num_features()) {
    const auto ref = core::solve_reference(*problem_);
    f_star_ = ref.objective;
    w_star_ = ref.w;
    store_reference(cache, f_star_, w_star_);
  }
}

void add_common_flags(CliParser& cli) {
  cli.add_flag("datasets", "comma-separated dataset clones",
               "SUSY,covtype,mnist,epsilon");
  cli.add_flag("scale", "row-scale for the clones (0 = per-dataset default)",
               "0");
  cli.add_flag("lambda-ratio", "lambda as fraction of lambda_max", "0.01");
  cli.add_flag("seed", "experiment seed", "42");
  cli.add_flag("machine", "machine spec: comet|spark|ethernet|infiniband",
               "comet");
  cli.add_flag("csv-dir", "directory for CSV copies of the tables", "");
  cli.add_flag("trace-out", "Chrome trace-event JSON output path", "");
  cli.add_flag("trace-jsonl", "flat JSONL trace output path", "");
  cli.add_flag("metrics-out", "metrics registry JSON output path", "");
  cli.add_flag("conv-out",
               "convergence telemetry JSONL output path (appended per run)",
               "");
  cli.add_flag("live",
               "live telemetry stream path (1 = rcf_live.jsonl, "
               "unix:<path> = socket; env RCF_LIVE when flag absent)",
               "");
  cli.add_flag("threads",
               "intra-rank pool threads per rank (1 = sequential, 0 = "
               "hardware/ranks; env RCF_THREADS when flag absent)",
               "");
  cli.add_flag("backend",
               "kernel backend: scalar|simd (env RCF_BACKEND when flag "
               "absent)",
               "");
}

int requested_threads(const CliParser& cli) {
  const std::string spec = cli.get_string("threads", "");
  if (!spec.empty()) {
    const int parsed = static_cast<int>(cli.get_int("threads", 1));
    RCF_CHECK_MSG(parsed >= 0, "--threads must be >= 0");
    return parsed;
  }
  return exec::threads_from_env(/*fallback=*/1);
}

obs::ScopedSession start_observability(const CliParser& cli) {
  // Every bench calls this right after parsing, so installing the kernel
  // backend here gives all binaries the --backend knob without per-main
  // plumbing.  CLI wins over RCF_BACKEND; default scalar.
  la::install_backend_from(cli.get_string("backend", ""));
  std::string live = cli.get_string("live", "");
  if (live == "1") {
    live = "rcf_live.jsonl";
  }
  return obs::ScopedSession(cli.get_string("trace-out", ""),
                            cli.get_string("trace-jsonl", ""),
                            cli.get_string("metrics-out", ""), std::move(live));
}

void maybe_write_convergence(const CliParser& cli, const std::string& run_tag,
                             const core::SolveResult& result) {
  const std::string path = cli.get_string("conv-out", "");
  if (path.empty() || result.conv.empty()) {
    return;
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    RCF_LOG_WARN << "could not append convergence records to " << path;
    return;
  }
  std::string line;
  char buf[48];
  const auto field = [&line, &buf](const char* key, double v) {
    line += ",\"";
    line += key;
    line += "\":";
    if (std::isnan(v)) {
      line += "null";
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      line += buf;
    }
  };
  for (const auto& rec : result.conv.ordered()) {
    line.clear();
    line += "{\"run\":\"";
    json_escape_to(run_tag, line);
    line += "\",\"solver\":\"";
    json_escape_to(result.solver, line);
    line += "\",\"iteration\":";
    line += std::to_string(rec.iteration);
    field("objective", rec.objective);
    field("grad_norm", rec.grad_norm);
    field("support", rec.support);
    field("step", rec.step);
    line += "}\n";
    out << line;
  }
}

void maybe_write_csv(const CliParser& cli, const std::string& stem,
                     const AsciiTable& table) {
  const std::string dir = cli.get_string("csv-dir", "");
  if (dir.empty()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(std::filesystem::path(dir) / (stem + ".csv"));
  if (out) {
    out << table.csv();
  } else {
    RCF_LOG_WARN << "could not write CSV for " << stem << " under " << dir;
  }
}

std::vector<std::string> requested_datasets(const CliParser& cli,
                                             const std::string& fallback) {
  std::vector<std::string> out;
  std::string spec = cli.get_string("datasets", fallback);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const auto end = comma == std::string::npos ? spec.size() : comma;
    if (end > pos) {
      out.push_back(spec.substr(pos, end - pos));
    }
    pos = end + 1;
  }
  return out;
}

BenchProblem make_bench_problem(const CliParser& cli,
                                const std::string& dataset) {
  return BenchProblem(dataset, cli.get_double("scale", 0.0),
                      cli.get_double("lambda-ratio", 0.01),
                      static_cast<std::uint64_t>(cli.get_int("seed", 42)));
}

model::MachineSpec requested_machine(const CliParser& cli) {
  return model::machine_by_name(cli.get_string("machine", "comet"));
}

const char* build_git_sha() {
#ifdef RCF_GIT_SHA
  return RCF_GIT_SHA;
#else
  return "unknown";
#endif
}

const char* build_flags() {
#ifdef RCF_BUILD_FLAGS
  return RCF_BUILD_FLAGS;
#else
  return "unknown";
#endif
}

void print_banner(const std::string& experiment, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("(dataset clones + alpha-beta-gamma cost model; see DESIGN.md "
              "\"Substitutions\")\n");
  std::printf("build %s  flags %s\n", build_git_sha(), build_flags());
  std::printf("================================================================\n\n");
}

TimeToTol time_to_tol(const core::SolveResult& result, double tol) {
  for (const auto& rec : result.history) {
    if (!std::isnan(rec.rel_error) && rec.rel_error <= tol) {
      return {rec.sim_seconds, rec.iteration, true};
    }
  }
  return {result.sim_seconds, result.iterations, false};
}

bool default_adaptive_restart(const std::string& dataset) {
  return dataset == "mnist" || dataset == "epsilon";
}

int default_hessian_reuse(const std::string& dataset) {
  return default_adaptive_restart(dataset) ? 1 : 3;
}

double default_sampling_rate(const std::string& dataset) {
  if (dataset == "abalone") return 0.25;
  if (dataset == "SUSY") return 0.02;
  if (dataset == "covtype") return 0.05;
  if (dataset == "mnist") return 0.15;   // mbar = 900 >= d = 780
  if (dataset == "epsilon") return 0.02;
  return 0.05;
}

double modeled_seconds(const core::IterationRecord& rec, int procs, int k,
                       int s, std::size_t d,
                       const model::MachineSpec& machine,
                       model::CollectiveModel collective) {
  // Latency: rounds derived from the overlap schedule, ceil(n/k).  Using the
  // formula rather than the recorded rounds lets one trajectory (whose
  // iterates are k-invariant) be re-costed for any k; it matches the
  // recorded count exactly for plain runs and up to the per-epoch anchor
  // rounds for VR runs.
  const double rounds =
      std::ceil(static_cast<double>(rec.iteration) / static_cast<double>(k));
  const auto per_round =
      model::allreduce_cost(collective, procs, /*words=*/1);
  const double latency =
      machine.alpha_effective() * rounds * per_round.messages;
  // Bandwidth: the collective's word multiplier applied to the payload.
  const auto word_factor = model::allreduce_cost(collective, procs, 1).words;
  const double bandwidth = machine.beta * rec.comm_payload_words * word_factor;
  // Flops: Gram work is partitioned; update work is redundant on all ranks.
  const double flops_seconds =
      machine.gamma * (rec.raw_gram_flops / static_cast<double>(procs) +
                       rec.raw_update_flops);
  // Cache spill of the k-block working set (see MachineSpec::beta_mem).
  const double block_words =
      static_cast<double>(k) * (static_cast<double>(d) * d + d);
  const double mem_seconds =
      block_words > machine.cache_doubles
          ? machine.beta_mem * (1.0 + s) * rec.comm_payload_words
          : 0.0;
  return latency + bandwidth + flops_seconds + mem_seconds;
}

TimeToTol time_to_tol_at(const core::SolveResult& result, double tol,
                         int procs, int k, int s, std::size_t d,
                         const model::MachineSpec& machine,
                         model::CollectiveModel collective) {
  for (const auto& rec : result.history) {
    if (!std::isnan(rec.rel_error) && rec.rel_error <= tol) {
      return {modeled_seconds(rec, procs, k, s, d, machine, collective),
              rec.iteration, true};
    }
  }
  if (result.history.empty()) {
    return {0.0, result.iterations, false};
  }
  return {modeled_seconds(result.history.back(), procs, k, s, d, machine,
                          collective),
          result.iterations, false};
}

}  // namespace rcf::bench
