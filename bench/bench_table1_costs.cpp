// Table 1: latency, flop, and bandwidth costs of SFISTA vs RC-SFISTA.
//
// Validates the implementation's *measured* counters (flops actually
// performed, messages and words actually charged) against the closed-form
// model of Table 1 / Eq. 24, for a grid of (k, S, P).  The reproduction
// criterion is the ratio measured/predicted ~ 1 for every entry and the
// structural facts: latency falls as 1/k, bandwidth is k-invariant, flops
// grow linearly in S.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_table1_costs", "Table 1: cost model validation");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "iterations per run", "64");
  cli.add_flag("b", "sampling rate", "0.05");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Table 1: Latency, flops, and bandwidth costs for N iterations",
      "SFISTA: L=N logP, F=N d^2 mbar f / P, W=N d^2 logP; RC-SFISTA "
      "divides L by k and adds S d^2 flops per iteration");

  const int iters = static_cast<int>(cli.get_int("iters", 64));
  const double b = cli.get_double("b", 0.05);
  obs::CostLedger ledger(bench::requested_machine(cli));

  for (const auto& name : bench::requested_datasets(cli, "covtype")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    const auto d = static_cast<double>(bp.dataset().num_features());
    const auto m = static_cast<double>(bp.dataset().num_samples());
    const double mbar = std::max(1.0, std::floor(b * m));
    const double fill = bp.dataset().density();
    std::printf("--- %s (d=%g, mbar=%g, f=%.3f, N=%d) ---\n",
                bp.name().c_str(), d, mbar, fill, iters);

    AsciiTable table({"config", "L meas", "L model", "F meas", "F model",
                      "F ratio", "W meas", "W model"});
    struct Config {
      int k, s, p;
    };
    for (const Config& cfg : {Config{1, 1, 16}, Config{4, 1, 16},
                              Config{16, 1, 16}, Config{1, 1, 256},
                              Config{8, 1, 256}, Config{8, 4, 256}}) {
      core::SolverOptions opts;
      opts.threads = bench::requested_threads(cli);
      opts.max_iters = iters;
      opts.sampling_rate = b;
      opts.k = cfg.k;
      opts.s = cfg.s;
      opts.procs = cfg.p;
      opts.track_history = false;
      opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
      const auto result = core::solve_rc_sfista(bp.problem(), opts);

      model::AlgorithmShape shape;
      shape.n_iters = iters;
      shape.d = d;
      shape.m_bar = mbar;
      shape.fill = fill;
      shape.p = cfg.p;
      shape.k = cfg.k;
      shape.s = cfg.s;
      const auto predicted = model::rcsfista_cost(shape);
      // Table 1 keeps the dominant S d^2 term once; the implementation
      // executes S gemvs per iteration, so compare against the per-iteration
      // form for the flops ratio.
      const double f_model =
          shape.n_iters * d * d * mbar * fill / cfg.p +
          static_cast<double>(iters) * cfg.s * 2.0 * d * d;

      const std::string config = "k=" + std::to_string(cfg.k) +
                                 " S=" + std::to_string(cfg.s) +
                                 " P=" + std::to_string(cfg.p);
      table.add_row({config, fmt_g(result.cost.messages(), 4),
                     fmt_g(predicted.latency_msgs, 4),
                     fmt_e(result.cost.flops(), 3), fmt_e(f_model, 3),
                     fmt_f(result.cost.flops() / f_model, 2),
                     fmt_e(result.cost.words(), 3),
                     fmt_e(predicted.bandwidth_words, 3)});

      // Ledger row with the per-iteration flop convention (the f_model
      // above), so the exported model.*_err gauges measure against the
      // same yardstick as the printed F ratio.
      model::CostTriple triple = predicted;
      triple.flops = f_model;
      const double pred_rounds =
          std::ceil(static_cast<double>(iters) / static_cast<double>(cfg.k));
      ledger.add(name + "_k" + std::to_string(cfg.k) + "_s" +
                     std::to_string(cfg.s) + "_p" + std::to_string(cfg.p),
                 triple, pred_rounds, result.cost, &result.phases);
    }
    // Overlap-efficiency row: one 4-rank solve through the chunk-pipelined
    // iallreduce path.  The ledger's `ov p/m` column then pairs the
    // model's predicted hide fraction (pipelined_overlap_fraction) with
    // the measured overlapped_words ratio, and the row's comm seconds
    // compare predicted *exposed* time against the allreduce_wait wall.
    {
      constexpr int kRanks = 4;
      constexpr int kStaleness = 1;
      core::SolverOptions popts;
      popts.threads = 1;
      popts.max_iters = iters;
      popts.sampling_rate = b;
      popts.k = 4;
      popts.s = 1;
      popts.procs = kRanks;
      popts.track_history = false;
      popts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
      const auto counted = core::solve_rc_sfista(bp.problem(), popts);
      popts.pipeline = true;
      popts.staleness = kStaleness;
      dist::ThreadGroup group(kRanks);
      const auto pipe =
          core::solve_rc_sfista_distributed(bp.problem(), popts, group);

      model::AlgorithmShape shape;
      shape.n_iters = iters;
      shape.d = d;
      shape.m_bar = mbar;
      shape.fill = fill;
      shape.p = kRanks;
      shape.k = 4;
      shape.s = 1;
      model::CostTriple triple = model::rcsfista_cost(shape);
      triple.flops = shape.n_iters * d * d * mbar * fill / kRanks +
                     static_cast<double>(iters) * 2.0 * d * d;
      obs::OverlapCredit credit;
      credit.predicted = model::pipelined_overlap_fraction(
          shape, ledger.machine(), kStaleness);
      const double words =
          static_cast<double>(pipe.comm_stats.allreduce_words);
      credit.measured =
          words > 0.0
              ? static_cast<double>(pipe.comm_stats.overlapped_words) / words
              : 0.0;
      ledger.add(name + "_k4_s1_p4_pipe", triple,
                 std::ceil(static_cast<double>(iters) / 4.0), counted.cost,
                 &pipe.phases, &credit);
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf("Cost-model accounting (ledger, %s):\n%s\n",
              ledger.machine().name.c_str(), ledger.table().c_str());
  ledger.export_metrics(obs::MetricsRegistry::global());
  std::printf("F meas counts actual madds (sparse rows: nnz_i^2 per outer\n"
              "product), so F ratio deviates from 1 by the fill-in variance;\n"
              "the structural claims (L ~ 1/k, W independent of k, F linear\n"
              "in S) hold exactly.\n");
  return 0;
}
