// Ablation: collective-algorithm cost models.
//
// The paper charges an allreduce as log(P) messages and n*log(P) words
// (Table 1).  Production MPI libraries use Rabenseifner-style algorithms
// with 2n(P-1)/P words.  This ablation recosts the same RC-SFISTA
// trajectory under the three models to show which conclusions are
// model-robust (the k-fold latency reduction) and which shift (absolute
// bandwidth share).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_ablation_collectives", "collective-model ablation");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "max iterations", "300");
  cli.add_flag("tol", "relative-error tolerance", "0.01");
  cli.add_flag("procs", "processor count", "256");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Ablation: allreduce cost model (paper logP vs Rabenseifner vs tree)",
      "the k-fold latency reduction is model-independent; bandwidth shares "
      "shift");

  const double tol = cli.get_double("tol", 0.01);
  const int procs = static_cast<int>(cli.get_int("procs", 256));
  const model::MachineSpec machine = bench::requested_machine(cli);

  for (const auto& name : bench::requested_datasets(cli, "covtype,mnist")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    const std::size_t d = bp.dataset().num_features();

    AsciiTable table({"model", "k", "t_tol (s)", "speedup vs k=1"});
    for (const auto collective :
         {model::CollectiveModel::kPaperLogP,
          model::CollectiveModel::kRabenseifner, model::CollectiveModel::kTree}) {
      double baseline = 0.0;
      for (int k : {1, 8}) {
        core::SolverOptions opts;
        opts.threads = bench::requested_threads(cli);
        opts.max_iters = static_cast<int>(cli.get_int("iters", 300));
        opts.sampling_rate = bench::default_sampling_rate(name);
        opts.k = k;
        opts.tol = tol;
        opts.f_star = bp.f_star();
        opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
        const auto result = core::solve_rc_sfista(bp.problem(), opts);
        const auto ttt = bench::time_to_tol_at(result, tol, procs, k, 1, d,
                                               machine, collective);
        if (k == 1) {
          baseline = ttt.seconds;
        }
        table.add_row({model::to_string(collective), std::to_string(k),
                       fmt_e(ttt.seconds, 3),
                       k == 1 ? "1.00" : fmt_f(baseline / ttt.seconds, 2)});
      }
    }
    std::printf("--- %s (P=%d) ---\n%s\n", bp.name().c_str(), procs,
                table.str().c_str());
  }
  return 0;
}
