// Table 3: speedup of RC-SFISTA over ProxCoCoA on 256 workers.
//
// Speedup = modeled time for ProxCoCoA to reach tol / modeled time for
// RC-SFISTA to reach tol (tol = 0.01, the paper's setting).  Paper reports
// 1.57x (SUSY), 4.74x (covtype), 12.15x (mnist), 3.53x (epsilon).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_table3_proxcocoa_speedup",
                "Table 3: speedup vs ProxCoCoA");
  bench::add_common_flags(cli);
  cli.add_flag("procs", "worker count", "256");
  cli.add_flag("tol", "relative-error tolerance", "0.01");
  cli.add_flag("iters", "RC-SFISTA iteration budget", "800");
  cli.add_flag("rounds", "ProxCoCoA round budget", "3000");
  cli.add_flag("k", "overlap depth", "8");
  cli.add_flag("s", "Hessian-reuse depth (0 = per-dataset)", "0");
  cli.add_flag("vr", "variance reduction (Eq. 9)", "true");
  cli.add_flag("restart", "adaptive momentum restart (auto = per-dataset)", "auto");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Table 3: Speedup of RC-SFISTA compared to ProxCoCoA (256 workers)",
      "paper: SUSY 1.57x, covtype 4.74x, mnist 12.15x, epsilon 3.53x");

  const int procs = static_cast<int>(cli.get_int("procs", 256));
  const double tol = cli.get_double("tol", 0.01);
  model::MachineSpec machine = model::spark_like();
  if (cli.has("machine")) {
    machine = bench::requested_machine(cli);
  }

  AsciiTable table({"dataset", "RC-SFISTA t_tol (s)", "ProxCoCoA t_tol (s)",
                    "speedup", "paper"});
  auto paper_speedup = [](const std::string& name) -> std::string {
    if (name == "SUSY") return "1.57x";
    if (name == "covtype") return "4.74x";
    if (name == "mnist") return "12.15x";
    if (name == "epsilon") return "3.53x";
    return "-";
  };
  for (const auto& name : bench::requested_datasets(cli)) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);

    core::SolverOptions ropts;
    ropts.threads = bench::requested_threads(cli);
    ropts.max_iters = static_cast<int>(cli.get_int("iters", 800));
    ropts.sampling_rate = bench::default_sampling_rate(name);
    ropts.k = static_cast<int>(cli.get_int("k", 8));
    ropts.s = static_cast<int>(cli.get_int("s", 0));
    if (ropts.s <= 0) {
      ropts.s = bench::default_hessian_reuse(name);
    }
    ropts.tol = tol;
    ropts.variance_reduction = cli.get_bool("vr", true);
    ropts.adaptive_restart =
        cli.get_string("restart", "auto") == "auto"
            ? bench::default_adaptive_restart(name)
            : cli.get_bool("restart", false);
    ropts.f_star = bp.f_star();
    ropts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    ropts.procs = procs;
    ropts.machine = machine;
    const auto rc = core::solve_rc_sfista(bp.problem(), ropts);
    const auto rc_ttt = bench::time_to_tol(rc, tol);

    core::CocoaOptions copts;
    copts.threads = bench::requested_threads(cli);
    copts.max_rounds = static_cast<int>(cli.get_int("rounds", 3000));
    copts.tol = tol;
    copts.f_star = bp.f_star();
    copts.seed = ropts.seed;
    copts.procs = procs;
    copts.machine = machine;
    const auto cocoa = core::solve_prox_cocoa(bp.problem(), copts);
    const auto co_ttt = bench::time_to_tol(cocoa, tol);

    table.add_row(
        {bp.name(), fmt_e(rc_ttt.seconds, 3) + (rc_ttt.reached ? "" : "*"),
         fmt_e(co_ttt.seconds, 3) + (co_ttt.reached ? "" : "*"),
         fmt_f(co_ttt.seconds / rc_ttt.seconds, 2) + "x",
         paper_speedup(name)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("'*' = tolerance %.2g not reached within the budget (time shown\n"
              "is the full-budget time, so the speedup is a lower bound when\n"
              "the '*' is on ProxCoCoA).  Machine: %s.\n",
              tol, machine.name.c_str());
  return 0;
}
