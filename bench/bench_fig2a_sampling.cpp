// Figure 2(a): the effect of the sampling rate b on convergence.
//
// Runs RC-SFISTA with k = S = 1 (i.e. SFISTA) for b in {1, 0.5, 0.1, 0.05}
// and prints the relative objective error trajectory; b = 1 is exactly
// FISTA.  The paper's claim: "the convergence rates are almost identical
// compared to FISTA [while] smaller b gives a lower computation cost."
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig2a_sampling", "Fig 2(a): convergence vs b");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "iterations per run", "200");
  cli.add_flag("b-list", "sampling rates", "1.0,0.5,0.1,0.05");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 2(a): Convergence of RC-SFISTA for different sampling rates b",
      "convergence nearly identical to FISTA for b down to a few percent");

  const int iters = static_cast<int>(cli.get_int("iters", 200));
  const auto b_list = cli.get_double_list("b-list", {1.0, 0.5, 0.1, 0.05});
  const std::vector<int> checkpoints = {1, 5, 10, 25, 50, 100, 150, 200};

  // The paper's Fig. 2 is a single-benchmark plot; covtype is cheap enough
  // to sweep b up to 1.0 (pass --datasets for others; note dense epsilon is
  // expensive at large b).
  for (const auto& name : bench::requested_datasets(cli, "covtype,SUSY")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    std::printf("--- %s (lambda=%.4g, F*=%.6g) ---\n", bp.name().c_str(),
                bp.lambda(), bp.f_star());

    std::vector<std::string> header = {"b \\ iter"};
    for (int c : checkpoints) {
      if (c <= iters) header.push_back(std::to_string(c));
    }
    AsciiTable table(header);

    for (double b : b_list) {
      core::SolverOptions opts;
      opts.threads = bench::requested_threads(cli);
      opts.max_iters = iters;
      opts.sampling_rate = b;
      opts.f_star = bp.f_star();
      opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
      const auto result = core::solve_sfista(bp.problem(), opts);

      std::vector<std::string> row = {b == 1.0 ? "1.0 (FISTA)" : fmt_g(b, 3)};
      for (int c : checkpoints) {
        if (c > iters) continue;
        // History records every iteration; index c-1.
        row.push_back(fmt_e(result.history[c - 1].rel_error, 2));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
    bench::maybe_write_csv(cli, "fig2a_" + name, table);
  }
  std::printf("Rows: relative objective error e_n vs iteration.  Compute cost\n"
              "per iteration scales with b, so matching error curves at lower b\n"
              "mean cheaper iterations at the same convergence (paper §5.2).\n");
  return 0;
}
