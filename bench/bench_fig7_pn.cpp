// Figure 7: proximal Newton with RC-SFISTA as the inner solver, compared to
// proximal Newton with FISTA as the inner solver (512 processors).
//
// Speedups are normalized over PN+FISTA (the paper's baseline).  The paper's
// claim: "as long as the latency cost dominates the communication cost,
// increasing k results in a better speedup."
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig7_pn", "Fig 7: PN inner-solver speedup vs k");
  bench::add_common_flags(cli);
  cli.add_flag("procs", "processor count", "512");
  cli.add_flag("outer", "outer Newton iterations", "16");
  cli.add_flag("inner", "inner-solver iterations", "32");
  cli.add_flag("tol", "relative-error tolerance", "0.01");
  cli.add_flag("hb", "Hessian sampling rate", "0.1");
  cli.add_flag("k-list", "overlap depths", "1,2,4,8,16");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 7: Speedup of PN with RC-SFISTA inner solver vs PN with FISTA "
      "inner solver (P = 512)",
      "speedup grows with k while latency dominates communication");

  const int procs = static_cast<int>(cli.get_int("procs", 512));
  const double tol = cli.get_double("tol", 0.01);
  const auto k_list = cli.get_int_list("k-list", {1, 2, 4, 8, 16});
  const model::MachineSpec machine = bench::requested_machine(cli);

  std::vector<std::string> header = {"dataset", "PN+FISTA t_tol"};
  for (auto k : k_list) header.push_back("k=" + std::to_string(k));
  AsciiTable table(header);

  // epsilon's dense d = 2000 Gram makes the PN inner sweep minutes-long;
  // include it explicitly with --datasets=epsilon if wanted.
  for (const auto& name :
       bench::requested_datasets(cli, "SUSY,covtype,mnist")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);

    core::PnOptions base;
    base.threads = bench::requested_threads(cli);
    base.max_outer = static_cast<int>(cli.get_int("outer", 16));
    base.inner_iters = static_cast<int>(cli.get_int("inner", 32));
    base.hessian_sampling_rate = cli.get_double("hb", 0.1);
    base.tol = tol;
    base.f_star = bp.f_star();
    base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    base.procs = procs;
    base.machine = machine;

    core::PnOptions fista_opts = base;
    fista_opts.inner = core::PnInnerSolver::kFista;
    const auto baseline = core::solve_proximal_newton(bp.problem(), fista_opts);
    const auto base_ttt = bench::time_to_tol(baseline, tol);

    std::vector<std::string> row = {
        bp.name(),
        fmt_e(base_ttt.seconds, 3) + (base_ttt.reached ? "" : "*")};
    for (auto k : k_list) {
      core::PnOptions opts = base;
      opts.inner = core::PnInnerSolver::kRcSfista;
      opts.k = static_cast<int>(k);
      opts.s = 1;
      const auto result = core::solve_proximal_newton(bp.problem(), opts);
      const auto ttt = bench::time_to_tol(result, tol);
      row.push_back(fmt_f(base_ttt.seconds / ttt.seconds, 2) +
                    (ttt.reached ? "" : "*"));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Cells: modeled time-to-tol speedup over PN+FISTA at P=%d.\n"
              "'*' = tol not reached within the outer-iteration budget.\n"
              "PN+FISTA allreduces a d-vector every inner iteration;\n"
              "PN+RC-SFISTA allreduces k d^2-blocks every k inner iterations\n"
              "-- fewer rounds, more words, a win when latency dominates.\n",
              procs);
  return 0;
}
