// Figure 4: speedup of RC-SFISTA over SFISTA for different k and P.
//
// Both solvers run to the paper's tolerance (tol = 0.01); the reported time
// is the alpha-beta-gamma modeled runtime on the requested machine.  The
// iterates are provably P-independent (every rank reconstructs the same
// Gram blocks), so each k is run once and the recorded trajectory is
// re-costed for every P.  k only reduces the latency term, so the speedup
// shape -- rising with k, strongest at high P, degrading for the dense
// d = 2000 epsilon clone once the k*d^2 block working set spills the
// cache -- reproduces the paper's figure.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig4_speedup_k", "Fig 4: speedup vs k and P");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "max iterations per run", "800");
  cli.add_flag("b", "sampling rate (0 = per-dataset default)", "0");
  cli.add_flag("tol", "relative-error tolerance", "0.01");
  cli.add_flag("p-list", "processor counts", "16,64,256");
  cli.add_flag("k-list", "overlap depths", "1,2,4,8,16,32");
  cli.add_flag("vr", "variance reduction (Eq. 9)", "true");
  cli.add_flag("restart", "adaptive momentum restart (auto = per-dataset)", "auto");
  cli.add_flag("pipeline-ranks",
               "SPMD ranks for blocking-vs-pipelined ledger rows (0 = skip)",
               "4");
  cli.add_flag("staleness", "pipeline staleness S for the pipelined rows",
               "1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 4: Speedup of RC-SFISTA vs SFISTA for different k (S = 1)",
      "up to ~4x from latency reduction; epsilon degrades at large k as "
      "computation dominates");

  const auto p_list = cli.get_int_list("p-list", {16, 64, 256});
  const auto k_list = cli.get_int_list("k-list", {1, 2, 4, 8, 16, 32});
  const double tol = cli.get_double("tol", 0.01);
  const model::MachineSpec machine = bench::requested_machine(cli);
  const auto collective = model::CollectiveModel::kPaperLogP;
  obs::CostLedger ledger(machine);

  for (const auto& name : bench::requested_datasets(cli)) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    const std::size_t d = bp.dataset().num_features();
    double b = cli.get_double("b", 0.0);
    if (b <= 0.0) {
      b = bench::default_sampling_rate(name);
    }
    std::printf("--- %s (d=%zu, b=%.3g; Eq.25 hardware bound k <= %.3g) ---\n",
                bp.name().c_str(), d, b,
                model::k_bound_latency_bandwidth(machine, static_cast<double>(d)));

    // One run covers every (P, k): the iterates are k- and P-invariant
    // (bench_fig2b_overlap verifies the k identity by actually running the
    // blocked path), so the recorded trajectory is re-costed per cell.
    core::SolverOptions opts;
    opts.threads = bench::requested_threads(cli);
    opts.max_iters = static_cast<int>(cli.get_int("iters", 800));
    opts.sampling_rate = b;
    opts.tol = tol;
    opts.variance_reduction = cli.get_bool("vr", true);
    opts.adaptive_restart =
        cli.get_string("restart", "auto") == "auto"
            ? bench::default_adaptive_restart(name)
            : cli.get_bool("restart", false);
    opts.f_star = bp.f_star();
    opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const auto run = core::solve_rc_sfista(bp.problem(), opts);
    std::printf("iterations to tol: %d%s\n", run.iterations,
                run.converged ? "" : " (budget hit)");

    std::vector<std::string> header = {"P \\ k"};
    for (auto k : k_list) header.push_back("k=" + std::to_string(k));
    AsciiTable table(header);
    for (auto p : p_list) {
      std::vector<std::string> row = {"P=" + std::to_string(p)};
      double baseline = 0.0;
      for (std::size_t i = 0; i < k_list.size(); ++i) {
        const auto ttt = bench::time_to_tol_at(
            run, tol, static_cast<int>(p), static_cast<int>(k_list[i]),
            /*s=*/1, d, machine, collective);
        if (i == 0) {
          baseline = ttt.seconds;
          row.push_back("1.00" + std::string(ttt.reached ? "" : "*"));
        } else {
          row.push_back(fmt_f(baseline / ttt.seconds, 2) +
                        (ttt.reached ? "" : "*"));
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
    bench::maybe_write_csv(cli, "fig4_" + name, table);
    bench::maybe_write_convergence(cli, "fig4_" + name, run);

    // Predicted-vs-measured accounting: when observability is on, replay a
    // short run per k through the actual blocked path so the traced
    // "allreduce" span count shrinks ~k-fold with k, then ledger each
    // replay against the Table 1 closed form.  Exact numerics are not at
    // stake here (the table above already costed the full trajectory), so
    // the replay strips VR / restart / tol to keep the schedule canonical.
    if (obs::TraceSession::global().enabled()) {
      const int replay_iters =
          std::min<int>(64, static_cast<int>(cli.get_int("iters", 800)));
      const int procs = static_cast<int>(p_list.front());
      const std::size_t m = bp.dataset().num_samples();
      model::AlgorithmShape shape;
      shape.n_iters = replay_iters;
      shape.d = static_cast<double>(d);
      shape.m_bar = std::max(1.0, std::floor(b * static_cast<double>(m)));
      shape.fill = bp.dataset().density();
      shape.p = procs;
      shape.s = 1;
      for (auto k : k_list) {
        core::SolverOptions ropts = opts;
        ropts.max_iters = replay_iters;
        ropts.tol = 0.0;
        ropts.variance_reduction = false;
        ropts.adaptive_restart = false;
        ropts.track_history = false;
        ropts.k = static_cast<int>(k);
        ropts.procs = procs;
        ropts.machine = machine;
        ropts.collective = collective;
        const auto replay = core::solve_rc_sfista(bp.problem(), ropts);
        shape.k = static_cast<double>(k);
        ledger.add(name + "_k" + std::to_string(k), shape, replay.cost,
                   &replay.phases);
      }

      // Blocking-vs-pipelined rows: rerun a k subset SPMD over a real
      // dist::ThreadGroup, once through the blocking allreduce and once
      // through the chunk-pipelined iallreduce path.  The pipelined row
      // carries an OverlapCredit -- predicted hiding from the machine
      // model, measured hiding from CommStats::overlapped_words -- so the
      // ledger compares the predicted *exposed* comm seconds against the
      // allreduce_wait wall time, which should drop below the blocking
      // row's allreduce wall as the overlap fraction grows.
      const int ranks = static_cast<int>(cli.get_int("pipeline-ranks", 4));
      const int staleness = static_cast<int>(cli.get_int("staleness", 1));
      if (ranks > 0) {
        model::AlgorithmShape dshape = shape;
        dshape.p = static_cast<double>(ranks);
        for (auto k : k_list) {
          // Every rank holds one packed [H|R] chunk (blocking) or a
          // staleness + 2 slot ring of them (pipelined); skip k values
          // whose buffers would not fit a modest budget (the dense
          // epsilon clone at large k) rather than thrash the machine.
          const double chunk_bytes = static_cast<double>(k) *
                                     (static_cast<double>(d) * d + d) * 8.0;
          const double peak_bytes =
              static_cast<double>(ranks) * (staleness + 3) * chunk_bytes;
          if (peak_bytes > 1.5e9) {
            std::printf("(skipping %s_k%d blk/pipe rows: ~%.1f GiB of chunk "
                        "buffers at %d ranks)\n",
                        name.c_str(), static_cast<int>(k),
                        peak_bytes / (1024.0 * 1024.0 * 1024.0), ranks);
            continue;
          }
          core::SolverOptions ropts = opts;
          ropts.max_iters = replay_iters;
          ropts.tol = 0.0;
          ropts.variance_reduction = false;
          ropts.adaptive_restart = false;
          ropts.track_history = false;
          ropts.threads = 1;
          ropts.k = static_cast<int>(k);
          ropts.procs = ranks;
          ropts.machine = machine;
          ropts.collective = collective;
          dshape.k = static_cast<double>(k);
          // The distributed engine does not count model costs; a sequential
          // replay at P=ranks supplies the measured counters for both rows.
          const auto counted = core::solve_rc_sfista(bp.problem(), ropts);
          const std::string label = name + "_k" + std::to_string(k);
          dist::ThreadGroup blocking_group(ranks);
          const auto blk = core::solve_rc_sfista_distributed(
              bp.problem(), ropts, blocking_group);
          ledger.add(label + "_blk", dshape, counted.cost, &blk.phases);
          ropts.pipeline = true;
          ropts.staleness = staleness;
          dist::ThreadGroup pipelined_group(ranks);
          const auto pipe = core::solve_rc_sfista_distributed(
              bp.problem(), ropts, pipelined_group);
          obs::OverlapCredit credit;
          credit.predicted =
              model::pipelined_overlap_fraction(dshape, machine, staleness);
          const double words =
              static_cast<double>(pipe.comm_stats.allreduce_words);
          credit.measured =
              words > 0.0
                  ? static_cast<double>(pipe.comm_stats.overlapped_words) /
                        words
                  : 0.0;
          ledger.add(label + "_pipe", dshape, counted.cost, &pipe.phases,
                     &credit);
        }
      }
    }
  }
  std::printf("Cells: modeled time-to-tol speedup vs k=1 (same P).  '*' =\n"
              "tolerance not reached within the iteration budget.  Machine:\n"
              "%s (alpha_eff=%.2e s/msg including collective-call overhead).\n",
              machine.name.c_str(), machine.alpha_effective());
  if (!ledger.rows().empty()) {
    std::printf("\nCost-model accounting (P=%d replays; _blk/_pipe rows ran "
                "SPMD over %d ranks, blocking vs pipelined, %s):\n%s\n",
                static_cast<int>(p_list.front()),
                static_cast<int>(cli.get_int("pipeline-ranks", 4)),
                machine.name.c_str(), ledger.table().c_str());
    ledger.export_metrics(obs::MetricsRegistry::global());
  }
  return 0;
}
