// Figure 6: relative objective error vs wall-clock, RC-SFISTA vs ProxCoCoA
// on 256 workers.
//
// Both methods run on the Spark-like machine spec (the paper compares the
// MLlib implementations), with per-round scheduling overhead dominating the
// communication cost.  The paper's claim: "ProxCoCoA has a slow convergence
// for all datasets; RC-SFISTA converges faster and reaches a lower relative
// objective error."
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig6_proxcocoa", "Fig 6: error vs time, vs ProxCoCoA");
  bench::add_common_flags(cli);
  cli.add_flag("procs", "worker count", "256");
  cli.add_flag("iters", "RC-SFISTA iteration budget", "800");
  cli.add_flag("rounds", "ProxCoCoA round budget", "400");
  cli.add_flag("k", "overlap depth", "8");
  cli.add_flag("s", "Hessian-reuse depth (0 = per-dataset)", "0");
  cli.add_flag("vr", "variance reduction (Eq. 9)", "true");
  cli.add_flag("restart", "adaptive momentum restart (auto = per-dataset)", "auto");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 6: Relative objective error vs wall-clock, RC-SFISTA vs "
      "ProxCoCoA (256 workers, Spark-like machine)",
      "RC-SFISTA converges faster and reaches lower error than ProxCoCoA on "
      "every benchmark");

  const int procs = static_cast<int>(cli.get_int("procs", 256));
  model::MachineSpec machine = model::spark_like();
  if (cli.has("machine")) {
    machine = bench::requested_machine(cli);
  }

  for (const auto& name : bench::requested_datasets(cli)) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);

    core::SolverOptions ropts;
    ropts.threads = bench::requested_threads(cli);
    ropts.max_iters = static_cast<int>(cli.get_int("iters", 800));
    ropts.sampling_rate = bench::default_sampling_rate(name);
    ropts.k = static_cast<int>(cli.get_int("k", 8));
    ropts.s = static_cast<int>(cli.get_int("s", 0));
    if (ropts.s <= 0) {
      ropts.s = bench::default_hessian_reuse(name);
    }
    ropts.variance_reduction = cli.get_bool("vr", true);
    ropts.adaptive_restart =
        cli.get_string("restart", "auto") == "auto"
            ? bench::default_adaptive_restart(name)
            : cli.get_bool("restart", false);
    ropts.f_star = bp.f_star();
    ropts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    ropts.procs = procs;
    ropts.machine = machine;
    const auto rc = core::solve_rc_sfista(bp.problem(), ropts);

    core::CocoaOptions copts;
    copts.threads = bench::requested_threads(cli);
    copts.max_rounds = static_cast<int>(cli.get_int("rounds", 400));
    copts.local_epochs = 1;
    copts.f_star = bp.f_star();
    copts.seed = ropts.seed;
    copts.procs = procs;
    copts.machine = machine;
    const auto cocoa = core::solve_prox_cocoa(bp.problem(), copts);

    // Sample both trajectories at shared wall-clock checkpoints.
    const double t_max =
        std::max(rc.history.back().sim_seconds,
                 cocoa.history.back().sim_seconds);
    AsciiTable table({"time (s)", "RC-SFISTA e_n", "ProxCoCoA e_n"});
    auto error_at = [](const std::vector<core::IterationRecord>& hist,
                       double t) {
      double err = std::numeric_limits<double>::quiet_NaN();
      for (const auto& rec : hist) {
        if (rec.sim_seconds > t) break;
        err = rec.rel_error;
      }
      return err;
    };
    for (double frac : {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
      const double t = frac * t_max;
      const double e_rc = error_at(rc.history, t);
      const double e_co = error_at(cocoa.history, t);
      table.add_row({fmt_f(t, 1),
                     std::isnan(e_rc) ? "-" : fmt_e(e_rc, 2),
                     std::isnan(e_co) ? "-" : fmt_e(e_co, 2)});
    }
    std::printf("--- %s (P=%d, machine=%s) ---\n%s", bp.name().c_str(), procs,
                machine.name.c_str(), table.str().c_str());
    std::printf("final: RC-SFISTA e=%.3g (%d iters, %llu rounds) | "
                "ProxCoCoA e=%.3g (%d rounds)\n\n",
                rc.rel_error, rc.iterations,
                static_cast<unsigned long long>(rc.history.back().comm_rounds),
                cocoa.rel_error, cocoa.iterations);
  }
  std::printf("ProxCoCoA pays one allreduce of m words per round and its\n"
              "additive aggregation makes per-round progress conservative at\n"
              "large P; RC-SFISTA amortizes k iterations per round.\n");
  return 0;
}
