// Figure 5: speedup of RC-SFISTA over SFISTA on 256 processors for
// different Hessian-reuse depths S.
//
// S reduces the number of communication rounds needed to converge at the
// price of redundant flops; the speedup peaks at a moderate S and falls
// once the extra computation dominates (the paper reports e.g. 3x at S=5
// and 2x at S=10 for mnist).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig5_speedup_S", "Fig 5: speedup vs S at P=256");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "max iterations per run", "800");
  cli.add_flag("b", "sampling rate (0 = per-dataset default)", "0");
  cli.add_flag("tol", "relative-error tolerance", "0.01");
  cli.add_flag("procs", "processor count", "256");
  cli.add_flag("k", "overlap depth (tuned per paper; 0 = use 8)", "0");
  cli.add_flag("s-list", "Hessian-reuse depths", "1,2,3,5,10");
  cli.add_flag("vr", "variance reduction (Eq. 9)", "true");
  cli.add_flag("restart", "adaptive momentum restart (auto = per-dataset)", "auto");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 5: Speedup of RC-SFISTA vs SFISTA for different S (P = 256)",
      "speedup peaks at moderate S, then redundant flops overwhelm the "
      "saved communication");

  const auto s_list = cli.get_int_list("s-list", {1, 2, 3, 5, 10});
  const double tol = cli.get_double("tol", 0.01);
  const int procs = static_cast<int>(cli.get_int("procs", 256));
  const model::MachineSpec machine = bench::requested_machine(cli);
  int k = static_cast<int>(cli.get_int("k", 0));
  if (k <= 0) {
    k = 8;
  }

  AsciiTable table([&] {
    std::vector<std::string> header = {"dataset", "SFISTA iters"};
    for (auto s : s_list) header.push_back("S=" + std::to_string(s));
    return header;
  }());

  for (const auto& name : bench::requested_datasets(cli)) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);

    core::SolverOptions base;
    base.threads = bench::requested_threads(cli);
    base.max_iters = static_cast<int>(cli.get_int("iters", 800));
    base.sampling_rate = cli.get_double("b", 0.0);
    if (base.sampling_rate <= 0.0) {
      base.sampling_rate = bench::default_sampling_rate(name);
    }
    base.tol = tol;
    base.variance_reduction = cli.get_bool("vr", true);
    base.adaptive_restart =
        cli.get_string("restart", "auto") == "auto"
            ? bench::default_adaptive_restart(name)
            : cli.get_bool("restart", false);
    base.f_star = bp.f_star();
    base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    base.procs = procs;
    base.machine = machine;

    // The SFISTA baseline: k = 1, S = 1.
    const auto sfista = core::solve_sfista(bp.problem(), base);
    const auto base_ttt = bench::time_to_tol(sfista, tol);

    std::vector<std::string> row = {
        bp.name(), std::to_string(base_ttt.iterations) +
                        (base_ttt.reached ? "" : "+")};
    for (auto s : s_list) {
      core::SolverOptions opts = base;
      opts.k = k;
      opts.s = static_cast<int>(s);
      const auto result = core::solve_rc_sfista(bp.problem(), opts);
      const auto ttt = bench::time_to_tol(result, tol);
      row.push_back(fmt_f(base_ttt.seconds / ttt.seconds, 2) +
                    (ttt.reached ? "" : "*"));
    }
    table.add_row(std::move(row));

    // Print the paper's S bound for context (Eq. 27 with this dataset).
    model::AlgorithmShape shape;
    shape.n_iters = base_ttt.iterations;
    shape.d = static_cast<double>(bp.dataset().num_features());
    shape.m_bar = std::max(1.0, std::floor(base.sampling_rate *
                                           static_cast<double>(
                                               bp.dataset().num_samples())));
    shape.fill = bp.dataset().density();
    shape.p = procs;
    shape.k = k;
    std::printf("%s: Eq.27 bound k*S <= %.3g (N=%d, hardware alpha)\n",
                bp.name().c_str(), model::ks_bound_sparse(shape, machine),
                base_ttt.iterations);
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf("Cells: modeled time-to-tol speedup of RC-SFISTA (k=%d, S) vs\n"
              "SFISTA on P=%d.  '*' = tolerance not reached.\n",
              k, procs);
  return 0;
}
