// Figure 2(b): the overlap parameter k does not change convergence.
//
// RC-SFISTA is SFISTA re-scheduled: with the sampling stream keyed on
// (seed, iteration) the iterates are *bitwise identical* for every k.  This
// bench runs k in {1..128} with the same seed and reports both the error
// trajectory and the max |w_k - w_1| discrepancy (expected: exactly 0).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig2b_overlap", "Fig 2(b): convergence vs k");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "iterations per run", "128");
  cli.add_flag("b", "sampling rate", "0.1");
  cli.add_flag("k-list", "overlap depths", "1,2,4,8,16,32,64,128");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 2(b): Convergence of RC-SFISTA for different overlap depths k",
      "k does not affect stability or relative objective error (tested to "
      "k = 128)");

  const int iters = static_cast<int>(cli.get_int("iters", 128));
  const auto k_list =
      cli.get_int_list("k-list", {1, 2, 4, 8, 16, 32, 64, 128});

  for (const auto& name : bench::requested_datasets(cli, "covtype,mnist")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    std::printf("--- %s ---\n", bp.name().c_str());

    AsciiTable table({"k", "iters", "final rel.err", "comm rounds",
                      "max|w_k - w_1|"});
    la::Vector w_base;
    for (auto k : k_list) {
      core::SolverOptions opts;
      opts.threads = bench::requested_threads(cli);
      opts.max_iters = iters;
      opts.sampling_rate = cli.get_double("b", 0.1);
      opts.k = static_cast<int>(k);
      opts.f_star = bp.f_star();
      opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
      const auto result = core::solve_rc_sfista(bp.problem(), opts);
      if (k == k_list.front()) {
        w_base = result.w;
      }
      const double diff =
          la::max_abs_diff(result.w.span(), w_base.span());
      table.add_row({std::to_string(k), std::to_string(result.iterations),
                     fmt_e(result.rel_error, 3),
                     std::to_string(result.history.back().comm_rounds),
                     diff == 0.0 ? "0 (bitwise)" : fmt_e(diff, 2)});
    }
    std::printf("%s\n", table.str().c_str());
    bench::maybe_write_csv(cli, "fig2b_" + name, table);
  }
  std::printf("Communication rounds fall as N/k while the iterates stay\n"
              "identical -- the exact-arithmetic invariance behind the paper's\n"
              "O(k) latency reduction.\n");
  return 0;
}
