// Figure 2(b): the overlap parameter k does not change convergence.
//
// RC-SFISTA is SFISTA re-scheduled: with the sampling stream keyed on
// (seed, iteration) the iterates are *bitwise identical* for every k.  This
// bench runs k in {1..128} with the same seed and reports both the error
// trajectory and the max |w_k - w_1| discrepancy (expected: exactly 0).
//
// The same identity must survive the nonblocking engine: with
// --pipeline-ranks > 0 each k is additionally solved SPMD over a
// dist::ThreadGroup twice -- once with the blocking allreduce, once through
// the chunk-pipelined iallreduce path -- and the table reports
// max|w_pipe - w_blk| (expected: exactly 0 at --staleness 0) plus the
// fraction of the reduced payload whose wait found the collective already
// complete (the measured overlap the cost ledger credits).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig2b_overlap", "Fig 2(b): convergence vs k");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "iterations per run", "128");
  cli.add_flag("b", "sampling rate", "0.1");
  cli.add_flag("k-list", "overlap depths", "1,2,4,8,16,32,64,128");
  cli.add_flag("pipeline-ranks",
               "SPMD ranks for the pipelined comparison (0 = skip)", "4");
  cli.add_flag("staleness", "pipeline staleness S (0 = bitwise)", "0");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 2(b): Convergence of RC-SFISTA for different overlap depths k",
      "k does not affect stability or relative objective error (tested to "
      "k = 128)");

  const int iters = static_cast<int>(cli.get_int("iters", 128));
  const auto k_list =
      cli.get_int_list("k-list", {1, 2, 4, 8, 16, 32, 64, 128});
  const int ranks = static_cast<int>(cli.get_int("pipeline-ranks", 4));
  const int staleness = static_cast<int>(cli.get_int("staleness", 0));

  for (const auto& name : bench::requested_datasets(cli, "covtype,mnist")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    std::printf("--- %s ---\n", bp.name().c_str());

    std::vector<std::string> header = {"k", "iters", "final rel.err",
                                       "comm rounds", "max|w_k - w_1|"};
    if (ranks > 0) {
      header.push_back("max|w_pipe - w_blk|");
      header.push_back("ovl frac");
    }
    AsciiTable table(header);
    la::Vector w_base;
    for (auto k : k_list) {
      core::SolverOptions opts;
      opts.threads = bench::requested_threads(cli);
      opts.max_iters = iters;
      opts.sampling_rate = cli.get_double("b", 0.1);
      opts.k = static_cast<int>(k);
      opts.f_star = bp.f_star();
      opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
      const auto result = core::solve_rc_sfista(bp.problem(), opts);
      if (k == k_list.front()) {
        w_base = result.w;
      }
      const double diff =
          la::max_abs_diff(result.w.span(), w_base.span());
      std::vector<std::string> row = {
          std::to_string(k), std::to_string(result.iterations),
          fmt_e(result.rel_error, 3),
          std::to_string(result.history.back().comm_rounds),
          diff == 0.0 ? "0 (bitwise)" : fmt_e(diff, 2)};
      if (ranks > 0) {
        // The real pipelined path: same problem SPMD over `ranks` threads,
        // blocking vs handle-based iallreduce.  At staleness 0 the chunk
        // pipeline replays the blocking reduction schedule exactly, so the
        // iterates must match bitwise.
        core::SolverOptions dopts = opts;
        dopts.threads = 1;
        dopts.track_history = false;
        dist::ThreadGroup blocking_group(ranks);
        const auto blk =
            core::solve_rc_sfista_distributed(bp.problem(), dopts,
                                              blocking_group);
        dopts.pipeline = true;
        dopts.staleness = staleness;
        dist::ThreadGroup pipelined_group(ranks);
        const auto pipe =
            core::solve_rc_sfista_distributed(bp.problem(), dopts,
                                              pipelined_group);
        const double pdiff = la::max_abs_diff(pipe.w.span(), blk.w.span());
        const double words =
            static_cast<double>(pipe.comm_stats.allreduce_words);
        const double ovl =
            words > 0.0
                ? static_cast<double>(pipe.comm_stats.overlapped_words) / words
                : 0.0;
        row.push_back(pdiff == 0.0 ? "0 (bitwise)" : fmt_e(pdiff, 2));
        row.push_back(fmt_f(ovl, 3));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
    bench::maybe_write_csv(cli, "fig2b_" + name, table);
  }
  std::printf("Communication rounds fall as N/k while the iterates stay\n"
              "identical -- the exact-arithmetic invariance behind the paper's\n"
              "O(k) latency reduction.  The pipelined columns rerun each k\n"
              "through the nonblocking engine (post k blocks, overlap the\n"
              "next chunk's Gram build, wait lazily): identical numerics,\n"
              "with 'ovl frac' of the payload reduced entirely under compute.\n");
  return 0;
}
