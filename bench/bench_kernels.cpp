// Kernel microbenchmarks (google-benchmark): the primitive operations the
// solver loop is built from, for performance-regression tracking.
//
// Pass --counters (stripped before google-benchmark sees the argv) to
// sample hardware performance counters around each instrumented kernel and
// emit roofline rows: cycles/instructions/LLC-misses per iteration, IPC,
// flops per cycle, arithmetic intensity (flops per LLC-filled byte), and
// achieved GFLOP/s.  Degrades to a `perf_ok=0` counter where
// perf_event_open is unavailable (containers, non-Linux).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "rcf.hpp"

namespace {

using namespace rcf;

// Set by main() when --counters is passed.
bool g_counters = false;

/// Publishes roofline counters for one benchmark run.  `flops_per_iter` is
/// the caller's flop model of one loop body; LLC-miss traffic is converted
/// to bytes at 64 B per line.
void roofline_row(benchmark::State& state, const obs::PerfSample& sample,
                  double flops_per_iter) {
  state.counters["perf_ok"] = sample.valid ? 1.0 : 0.0;
  const auto iters = static_cast<double>(state.iterations());
  if (!sample.valid || iters <= 0.0) {
    return;
  }
  const auto cycles = static_cast<double>(sample.cycles);
  const auto instrs = static_cast<double>(sample.instructions);
  state.counters["cycles_per_iter"] = cycles / iters;
  state.counters["instr_per_iter"] = instrs / iters;
  state.counters["ipc"] = sample.ipc();
  state.counters["flops_per_iter"] = flops_per_iter;
  const double total_flops = flops_per_iter * iters;
  if (cycles > 0.0) {
    state.counters["flop_per_cycle"] = total_flops / cycles;
  }
  if (sample.llc_ok) {
    const auto misses = static_cast<double>(sample.llc_misses);
    state.counters["llc_miss_per_iter"] = misses / iters;
    const double bytes = misses * 64.0;
    if (bytes > 0.0) {
      state.counters["ai_flop_per_byte"] = total_flops / bytes;
    }
  }
  if (sample.time_enabled_ns > 0) {
    // flops per enabled nanosecond == GFLOP/s.
    state.counters["gflops"] =
        total_flops / static_cast<double>(sample.time_enabled_ns);
  }
}

/// Runs the benchmark loop, sampling hardware counters around it when
/// --counters is active.  The counter group covers the whole timed loop,
/// so per-iteration figures are means over state.iterations().
template <typename Fn>
void run_kernel(benchmark::State& state, double flops_per_iter,
                const Fn& body) {
  if (!g_counters) {
    for (auto _ : state) {
      body();
    }
    return;
  }
  obs::PerfCounters perf;
  const bool sampling = perf.available();
  if (sampling) {
    perf.start();
  }
  for (auto _ : state) {
    body();
  }
  if (sampling) {
    roofline_row(state, perf.stop(), flops_per_iter);
  } else {
    state.counters["perf_ok"] = 0.0;
  }
}

sparse::CsrMatrix make_matrix(std::size_t rows, std::size_t cols,
                              double density) {
  sparse::GenerateOptions opts;
  opts.rows = rows;
  opts.cols = cols;
  opts.density = density;
  opts.seed = 7;
  return sparse::generate_random(opts);
}

void BM_Philox(benchmark::State& state) {
  Rng rng(42, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Philox);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t stream = 0;
  for (auto _ : state) {
    Rng rng(42, stream++);
    benchmark::DoNotOptimize(rng.sample_without_replacement(n, n / 100 + 1));
  }
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(10000)->Arg(100000);

void BM_SpMV(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto mat = make_matrix(rows, 256, 0.2);
  std::vector<double> x(256, 1.0), y(rows);
  // One multiply-add per stored nonzero.
  run_kernel(state, 2.0 * static_cast<double>(mat.nnz()), [&] {
    mat.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  });
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mat.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(1000)->Arg(10000);

void BM_SampledGram(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto mat = make_matrix(20000, d, 0.2);
  la::Vector y(20000, 1.0);
  la::Matrix h(d, d);
  la::Vector r(d);
  Rng rng(42, 1);
  const auto idx = rng.sample_without_replacement(20000, 500);
  // Flop model: each sampled row contributes ~nnz_row^2 multiply-adds to
  // the Gram accumulation plus nnz_row for the residual term; estimated
  // from the mean row density.
  const double avg_nnz =
      static_cast<double>(mat.nnz()) / static_cast<double>(mat.rows());
  const double flops = static_cast<double>(idx.size()) *
                       (2.0 * avg_nnz * avg_nnz + 2.0 * avg_nnz);
  run_kernel(state, flops, [&] {
    benchmark::DoNotOptimize(
        sparse::sampled_gram(mat, y.span(), idx, h, r.span()));
  });
}
BENCHMARK(BM_SampledGram)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Pooled kernel rows: the same kernels on an installed exec::Pool of 1/2/4/8
// threads.  Each row reports `pool_threads` and `speedup` (sequential time /
// pooled time, both wall-clock on this machine) in the console and JSON
// output, so `--benchmark_format=json` captures the scaling curve directly.
// The work sizes sit well above exec::kParallelWorkCutoff so the rows
// exercise the parallel dispatch path, and by the determinism contract the
// pooled results are bit-identical to the sequential ones.

/// Mean seconds per call over `reps` sequential calls (no ambient pool).
template <typename Fn>
double sequential_seconds(const Fn& fn, int reps) {
  WallTimer timer;
  for (int i = 0; i < reps; ++i) {
    fn();
  }
  return timer.seconds() / reps;
}

template <typename Fn>
void run_pooled(benchmark::State& state, const Fn& call) {
  const int width = static_cast<int>(state.range(0));
  const double seq = sequential_seconds(call, 3);
  exec::Pool pool(width);
  exec::PoolGuard guard(&pool);
  WallTimer wall;
  for (auto _ : state) {
    call();
  }
  const double total = wall.seconds();
  const auto iters = static_cast<double>(state.iterations());
  state.counters["pool_threads"] = static_cast<double>(width);
  state.counters["speedup"] =
      (iters > 0 && total > 0.0) ? seq / (total / iters) : 0.0;
}

void BM_SampledGramPooled(benchmark::State& state) {
  // Dense synthetic block (density 1.0): the regime where the Gram
  // accumulation is compute-bound and pool scaling is visible.
  const std::size_t d = 256;
  const auto mat = make_matrix(2000, d, 1.0);
  la::Vector y(2000, 1.0);
  la::Matrix h(d, d);
  la::Vector r(d);
  Rng rng(42, 1);
  const auto idx = rng.sample_without_replacement(2000, 500);
  run_pooled(state, [&] {
    benchmark::DoNotOptimize(
        sparse::sampled_gram(mat, y.span(), idx, h, r.span()));
  });
}
BENCHMARK(BM_SampledGramPooled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SpMVPooled(benchmark::State& state) {
  const std::size_t rows = 200000;
  const auto mat = make_matrix(rows, 256, 0.2);
  std::vector<double> x(256, 1.0), y(rows);
  run_pooled(state, [&] {
    mat.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  });
}
BENCHMARK(BM_SpMVPooled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SymvPooled(benchmark::State& state) {
  const std::size_t d = 1024;
  la::Matrix h(d, d, 0.5);
  la::Vector x(d, 1.0), y(d);
  run_pooled(state, [&] {
    la::symv(1.0, h, x.span(), 0.0, y.span());
    benchmark::DoNotOptimize(y.data());
  });
}
BENCHMARK(BM_SymvPooled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Backend rows: scalar-vs-SIMD roofline comparison (see DESIGN.md "Kernel
// backends").  The benchmark loop runs under the SIMD backend; the scalar
// reference time for the same call is measured inline and published as
// `simd_speedup` (scalar seconds per call / SIMD seconds per call), so one
// `--benchmark_format=json` capture carries both sides of the comparison.
// With --counters the rows also report the usual roofline counters for the
// SIMD side.

template <typename Fn>
void run_backend_pair(benchmark::State& state, double flops_per_iter,
                      const Fn& call) {
  double scalar_sec = 0.0;
  {
    la::ScopedBackend scoped(la::Backend::kScalar);
    scalar_sec = sequential_seconds(call, 3);
  }
  la::ScopedBackend scoped(la::Backend::kSimd);
  WallTimer wall;
  run_kernel(state, flops_per_iter, call);
  const double total = wall.seconds();
  const auto iters = static_cast<double>(state.iterations());
  state.counters["simd_speedup"] =
      (iters > 0 && total > 0.0) ? scalar_sec / (total / iters) : 0.0;
}

void BM_GemmBackend(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  la::Matrix a(d, d, 0.5), b(d, d, 0.25), c(d, d);
  const double dd = static_cast<double>(d);
  run_backend_pair(state, 2.0 * dd * dd * dd, [&] {
    la::gemm(1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  });
}
BENCHMARK(BM_GemmBackend)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SyrkBackend(benchmark::State& state) {
  // The dense Gram kernel H = A A^T: the shape RC-SFISTA hits on dense
  // clones (d x mbar sampled block).
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 512;
  la::Matrix a(d, k, 0.5), c(d, d);
  run_backend_pair(
      state, static_cast<double>(d) * static_cast<double>(d) *
                 static_cast<double>(k),
      [&] {
        la::syrk(1.0, a, 0.0, c);
        benchmark::DoNotOptimize(c.data());
      });
}
BENCHMARK(BM_SyrkBackend)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SampledGramBackend(benchmark::State& state) {
  // Dense rows take the four-sample fused SIMD path in sampled_gram.
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto mat = make_matrix(2000, d, 1.0);
  la::Vector y(2000, 1.0);
  la::Matrix h(d, d);
  la::Vector r(d);
  Rng rng(42, 1);
  const auto idx = rng.sample_without_replacement(2000, 500);
  const double dd = static_cast<double>(d);
  const double flops =
      static_cast<double>(idx.size()) * (2.0 * dd * dd + 2.0 * dd);
  run_backend_pair(state, flops, [&] {
    benchmark::DoNotOptimize(
        sparse::sampled_gram(mat, y.span(), idx, h, r.span()));
  });
}
BENCHMARK(BM_SampledGramBackend)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SpMVBackend(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto mat = make_matrix(rows, 256, 0.2);
  std::vector<double> x(256, 1.0), y(rows);
  run_backend_pair(state, 2.0 * static_cast<double>(mat.nnz()), [&] {
    mat.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  });
}
BENCHMARK(BM_SpMVBackend)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_Gemv(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  la::Matrix h(d, d, 0.5);
  la::Vector x(d, 1.0), y(d);
  run_kernel(state, 2.0 * static_cast<double>(d) * static_cast<double>(d),
             [&] {
               la::gemv(1.0, h, x.span(), 0.0, y.span());
               benchmark::DoNotOptimize(y.data());
             });
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * d * d));
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024);

void BM_SoftThreshold(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  la::Vector in(d, 0.3), out(d);
  // Compare + subtract per element.
  run_kernel(state, 2.0 * static_cast<double>(d), [&] {
    prox::soft_threshold(in.span(), 0.1, out.span());
    benchmark::DoNotOptimize(out.data());
  });
}
BENCHMARK(BM_SoftThreshold)->Arg(1024)->Arg(65536);

void BM_ThreadAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t words = 4096;
  dist::ThreadGroup group(ranks);
  // Run traced so the collectives feed the "allreduce_latency_us" histogram
  // and the row can surface its quantiles (the per-call span overhead is in
  // the noise next to the rendezvous itself; see BM_TraceScopeEnabled).
  auto& session = obs::TraceSession::global();
  auto& latency = obs::MetricsRegistry::global().histogram(
      "allreduce_latency_us");
  latency.reset();
  session.start();
  for (auto _ : state) {
    group.run([&](dist::ThreadComm& comm) {
      std::vector<double> buf(words, static_cast<double>(comm.rank()));
      comm.allreduce_sum(buf);
      benchmark::DoNotOptimize(buf.data());
    });
  }
  session.stop();
  session.clear();
  state.counters["lat_p50_us"] = latency.percentile(0.50);
  state.counters["lat_p95_us"] = latency.percentile(0.95);
  state.counters["lat_p99_us"] = latency.percentile(0.99);
}
BENCHMARK(BM_ThreadAllreduce)->Arg(2)->Arg(4);

void BM_TraceScopeDisabled(benchmark::State& state) {
  // The promised no-op cost of an instrumented scope with tracing off: one
  // relaxed atomic load and a branch (compare against BM_TraceScopeEnabled).
  for (auto _ : state) {
    RCF_TRACE_SCOPE("bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
  auto& session = obs::TraceSession::global();
  session.start();
  for (auto _ : state) {
    RCF_TRACE_SCOPE("bench");
    benchmark::ClobberMemory();
  }
  session.stop();
  session.clear();
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_TelemetryPublishOff(benchmark::State& state) {
  // Gate off: telemetry_publish must cost exactly one relaxed load + branch
  // (the always-on instrumentation budget; see src/obs/telemetry.hpp).
  for (auto _ : state) {
    obs::telemetry_publish(obs::TelemetryKind::kSpan, "bench", 1.0, 2.0);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryPublishOff);

void BM_TelemetryPublishOn(benchmark::State& state) {
  // Gate on without a LiveMonitor: stamp + SPSC ring push.  The ring is
  // drained every half-capacity so the measurement covers the push path,
  // not the saturated drop path (amortized drain cost is included, which
  // matches what a producer thread experiences under a live sampler).
  obs::detail::set_gate_bit(obs::detail::kGateLive, true);
  obs::telemetry_reset();
  std::vector<obs::TelemetryEvent> sink;
  std::size_t since_drain = 0;
  for (auto _ : state) {
    obs::telemetry_publish(obs::TelemetryKind::kSpan, "bench", 1.0, 2.0);
    if (++since_drain == obs::TelemetryRing::kDefaultCapacity / 2) {
      since_drain = 0;
      sink.clear();
      obs::telemetry_drain(sink);
    }
  }
  obs::detail::set_gate_bit(obs::detail::kGateLive, false);
  state.counters["dropped"] =
      static_cast<double>(obs::telemetry_dropped());
  obs::telemetry_reset();
}
BENCHMARK(BM_TelemetryPublishOn);

void BM_SolverIteration(benchmark::State& state) {
  // One full RC-SFISTA iteration on a covtype-scale problem.
  data::SyntheticOptions gen;
  gen.num_samples = 20000;
  gen.num_features = 54;
  gen.density = 0.22;
  const auto ds = data::make_regression(gen);
  const core::LassoProblem problem(ds, 0.01);
  for (auto _ : state) {
    core::SolverOptions opts;
    opts.max_iters = 8;
    opts.sampling_rate = 0.05;
    opts.k = 8;
    opts.track_history = false;
    benchmark::DoNotOptimize(core::solve_rc_sfista(problem, opts));
  }
}
BENCHMARK(BM_SolverIteration)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (instead of benchmark::benchmark_main): strips --counters and
// --backend before google-benchmark parses the argv (it rejects unknown
// flags), and turns on the obs::PerfScope sampling that rides the exec::Pool
// kernel spans for the pooled rows.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  std::string backend_value;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--counters") {
      g_counters = true;
      continue;
    }
    constexpr std::string_view kBackendPrefix = "--backend=";
    if (arg.substr(0, kBackendPrefix.size()) == kBackendPrefix) {
      backend_value = arg.substr(kBackendPrefix.size());
      continue;
    }
    args.push_back(argv[i]);
  }
  // Default backend for the plain rows; the BM_*Backend rows pin their own.
  const rcf::la::Backend backend =
      rcf::la::install_backend_from(backend_value);
  if (g_counters) {
    rcf::obs::set_perf_scopes_enabled(true);
    if (!rcf::obs::PerfCounters::supported()) {
      std::fprintf(stderr,
                   "bench_kernels: --counters requested but perf_event_open "
                   "is unavailable; emitting perf_ok=0 rows\n");
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  // Provenance for bench-compare: which commit / flags produced this JSON
  // (stamped by bench/CMakeLists.txt at configure time).
#ifdef RCF_GIT_SHA
  benchmark::AddCustomContext("rcf_git_sha", RCF_GIT_SHA);
#endif
#ifdef RCF_BUILD_FLAGS
  benchmark::AddCustomContext("rcf_build_flags", RCF_BUILD_FLAGS);
#endif
  benchmark::AddCustomContext("rcf_backend", rcf::la::backend_name(backend));
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
