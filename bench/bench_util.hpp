// Shared helpers for the paper-reproduction bench harness.
//
// Every bench binary runs with no arguments using scaled-down clones of the
// paper's Table 2 datasets and prints the corresponding table / figure
// series.  Common flags:
//
//   --datasets=SUSY,covtype,...   which clones to run
//   --scale=<f>                   row-scale override (0 = per-dataset default)
//   --lambda-ratio=<f>            lambda as a fraction of lambda_max (0.1)
//   --seed=<n>                    experiment seed
//   --machine=<name>              comet | spark | ethernet | infiniband
//   --backend=<name>              scalar | simd kernel backend
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rcf.hpp"

namespace rcf::bench {

/// A dataset clone + problem + cached reference optimum, ready to solve.
class BenchProblem {
 public:
  /// `lambda_ratio` sets lambda = ratio * lambda_max (the paper quotes
  /// absolute lambdas tuned to its own data scaling; the ratio form keeps
  /// the problems equally non-trivial at any clone scale).
  BenchProblem(const std::string& dataset_name, double scale,
               double lambda_ratio, std::uint64_t seed);

  [[nodiscard]] const data::Dataset& dataset() const { return *dataset_; }
  [[nodiscard]] const core::LassoProblem& problem() const { return *problem_; }
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] double f_star() const { return f_star_; }
  [[nodiscard]] const la::Vector& w_star() const { return w_star_; }
  [[nodiscard]] const std::string& name() const { return dataset_->name; }

 private:
  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<core::LassoProblem> problem_;
  double lambda_ = 0.0;
  double f_star_ = 0.0;
  la::Vector w_star_;
};

/// Standard bench flags registered on every parser.
void add_common_flags(CliParser& cli);

/// Intra-rank pool width for SolverOptions/PnOptions/CocoaOptions::threads:
/// the --threads flag when given, else the RCF_THREADS environment
/// variable, else 1 (sequential).  0 means auto (hardware / rank count).
[[nodiscard]] int requested_threads(const CliParser& cli);

/// Starts the global trace session from --trace-out / --trace-jsonl /
/// --metrics-out and the live monitor from --live (registered by
/// add_common_flags; --live=1 maps to rcf_live.jsonl, matching RCF_LIVE).
/// Also installs the kernel backend from --backend / RCF_BACKEND (CLI wins)
/// so every bench honors the knob uniformly.  Keep the returned guard alive
/// for the whole run; it writes the outputs on destruction.  Inert when
/// none of the flags were given.
[[nodiscard]] obs::ScopedSession start_observability(const CliParser& cli);

/// Build provenance baked in at compile time (bench/CMakeLists.txt stamps
/// RCF_GIT_SHA / RCF_BUILD_FLAGS): "unknown" where the stamp is missing.
[[nodiscard]] const char* build_git_sha();
[[nodiscard]] const char* build_flags();

/// Datasets requested by --datasets (default: the four Fig. 4-7 benchmarks,
/// or the bench-specific `fallback` list).
[[nodiscard]] std::vector<std::string> requested_datasets(
    const CliParser& cli,
    const std::string& fallback = "SUSY,covtype,mnist,epsilon");

/// Builds a BenchProblem honoring --scale / --lambda-ratio / --seed.
[[nodiscard]] BenchProblem make_bench_problem(const CliParser& cli,
                                              const std::string& dataset);

/// Machine spec from --machine (default comet).
[[nodiscard]] model::MachineSpec requested_machine(const CliParser& cli);

/// Prints the bench banner: what the paper reports, what this bench
/// regenerates, and the substitutions in play.
void print_banner(const std::string& experiment, const std::string& claim);

/// Time-to-tolerance of a finished run: modeled seconds at the first history
/// record whose rel_error <= tol, or the run's final time if never reached
/// (flagged by `reached`).
struct TimeToTol {
  double seconds = 0.0;
  int iterations = 0;
  bool reached = false;
};
[[nodiscard]] TimeToTol time_to_tol(const core::SolveResult& result,
                                    double tol);

/// Per-dataset default sampling rate for the speedup benches, tuned so the
/// sampled batch mbar stays informative relative to d at the default clone
/// scales (the paper's absolute b = 1% corresponds to much larger absolute
/// batches on the full-size datasets).
[[nodiscard]] double default_sampling_rate(const std::string& dataset);

/// Whether the clone needs the adaptive-restart momentum stabilizer at its
/// default (scale, b): true where mbar << d makes plain FISTA momentum
/// diverge under sampled Hessians (mnist, epsilon).  See DESIGN.md
/// "Algorithmic interpretation notes".
[[nodiscard]] bool default_adaptive_restart(const std::string& dataset);

/// Per-dataset default Hessian-reuse depth for the end-to-end comparisons:
/// S = 3 where reuse pays (sparse, mbar >= d), S = 1 for the wide clones
/// where reusing a rank-deficient sampled block does not.
[[nodiscard]] int default_hessian_reuse(const std::string& dataset);

/// Re-costs one recorded trajectory point for a different processor count /
/// machine / collective model.  Valid because the iterates themselves are
/// P-independent (every rank reconstructs the same Gram blocks); only the
/// charges change.  `k` and `s` must match the run that produced `rec`.
[[nodiscard]] double modeled_seconds(const core::IterationRecord& rec,
                                     int procs, int k, int s, std::size_t d,
                                     const model::MachineSpec& machine,
                                     model::CollectiveModel collective);

/// time-to-tol under re-costing: modeled seconds at the first record with
/// rel_error <= tol, re-costed for (procs, machine, collective).
[[nodiscard]] TimeToTol time_to_tol_at(const core::SolveResult& result,
                                       double tol, int procs, int k, int s,
                                       std::size_t d,
                                       const model::MachineSpec& machine,
                                       model::CollectiveModel collective);

/// If --csv-dir was given, writes `table` to <dir>/<stem>.csv (for
/// re-plotting the figures); silent no-op otherwise.
void maybe_write_csv(const CliParser& cli, const std::string& stem,
                     const AsciiTable& table);

/// If --conv-out was given, appends the run's convergence ring to that
/// JSONL file, one record per line tagged with `run_tag` and the solver
/// name (NaN fields serialize as null); silent no-op otherwise.
void maybe_write_convergence(const CliParser& cli, const std::string& run_tag,
                             const core::SolveResult& result);

}  // namespace rcf::bench
