// Ablation: variance reduction (Eq. 9) on vs off.
//
// The paper's SFISTA is introduced as variance-reduced (Alg. 3, Eq. 9), but
// the specialized l1 listing (Alg. 4) drops the anchor terms.  This
// ablation shows why VR matters: without it the sampled gradient noise sets
// an error floor e_n cannot cross; with it the iterates converge.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_ablation_vr", "variance-reduction ablation");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "iterations per run", "300");
  cli.add_flag("epoch", "VR epoch length (Alg. 3's N)", "40");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Ablation: the Eq. 9 variance-reduced gradient estimator on vs off",
      "VR removes the sampling-noise error floor of plain SFISTA (Alg. 4)");

  const int iters = static_cast<int>(cli.get_int("iters", 300));
  const std::vector<int> checkpoints = {10, 50, 100, 200, 300};

  for (const auto& name : bench::requested_datasets(cli, "covtype,SUSY")) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    std::printf("--- %s ---\n", bp.name().c_str());

    std::vector<std::string> header = {"b", "VR"};
    for (int c : checkpoints) {
      if (c <= iters) header.push_back("e@" + std::to_string(c));
    }
    AsciiTable table(header);

    for (double b : {0.1, 0.02}) {
      for (bool vr : {false, true}) {
        core::SolverOptions opts;
        opts.threads = bench::requested_threads(cli);
        opts.max_iters = iters;
        opts.sampling_rate = b;
        opts.variance_reduction = vr;
        opts.epoch_length = static_cast<int>(cli.get_int("epoch", 40));
        opts.f_star = bp.f_star();
        opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
        const auto result = core::solve_sfista(bp.problem(), opts);

        std::vector<std::string> row = {fmt_g(b, 3), vr ? "on" : "off"};
        for (int c : checkpoints) {
          if (c > iters) continue;
          row.push_back(fmt_e(result.history[c - 1].rel_error, 2));
        }
        table.add_row(std::move(row));
      }
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf("VR costs one exact-gradient round per epoch (two SpMVs + a\n"
              "d-word allreduce) and one extra O(d) subtraction per\n"
              "iteration -- negligible next to the d^2 Gram traffic.\n");
  return 0;
}
