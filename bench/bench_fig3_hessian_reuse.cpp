// Figure 3: the effect of the Hessian-reuse inner loop parameter S on
// convergence.
//
// For each benchmark, runs RC-SFISTA with S in {1, 2, 5, 10} and prints the
// relative objective error trajectory plus iterations-to-tolerance.  The
// paper's claim: even small S improves convergence noticeably, while too
// large S (10) over-solves the stale subproblem and degrades it.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rcf;

  CliParser cli("bench_fig3_hessian_reuse", "Fig 3: convergence vs S");
  bench::add_common_flags(cli);
  cli.add_flag("iters", "max iterations per run", "400");
  cli.add_flag("b", "sampling rate (0 = per-dataset default)", "0");
  cli.add_flag("tol", "relative-error tolerance", "0.01");
  cli.add_flag("s-list", "Hessian-reuse depths", "1,2,5,10");
  cli.add_flag("vr", "variance reduction (Eq. 9)", "true");
  cli.add_flag("restart", "adaptive momentum restart (auto = per-dataset)", "auto");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const auto obs_session = bench::start_observability(cli);
  bench::print_banner(
      "Fig. 3: Convergence of RC-SFISTA for different inner loop parameter S",
      "small S reduces iterations-to-tolerance; S = 10 over-solves and "
      "degrades convergence");

  const int iters = static_cast<int>(cli.get_int("iters", 400));
  const double tol = cli.get_double("tol", 0.01);
  const auto s_list = cli.get_int_list("s-list", {1, 2, 5, 10});
  const std::vector<int> checkpoints = {5, 10, 25, 50, 100, 200, 300};

  for (const auto& name : bench::requested_datasets(cli)) {
    const bench::BenchProblem bp = bench::make_bench_problem(cli, name);
    std::printf("--- %s (lambda=%.4g) ---\n", bp.name().c_str(), bp.lambda());

    std::vector<std::string> header = {"S", "iters to tol"};
    for (int c : checkpoints) {
      if (c <= iters) header.push_back("e@" + std::to_string(c));
    }
    AsciiTable table(header);

    for (auto s : s_list) {
      core::SolverOptions opts;
      opts.threads = bench::requested_threads(cli);
      opts.max_iters = iters;
      opts.sampling_rate = cli.get_double("b", 0.0);
      if (opts.sampling_rate <= 0.0) {
        opts.sampling_rate = bench::default_sampling_rate(name);
      }
      opts.s = static_cast<int>(s);
      opts.tol = tol;
      opts.variance_reduction = cli.get_bool("vr", true);
      opts.adaptive_restart =
          cli.get_string("restart", "auto") == "auto"
              ? bench::default_adaptive_restart(name)
              : cli.get_bool("restart", false);
      opts.f_star = bp.f_star();
      opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
      const auto result = core::solve_rc_sfista(bp.problem(), opts);

      std::vector<std::string> row = {
          std::to_string(s),
          result.converged ? std::to_string(result.iterations)
                           : (std::to_string(result.iterations) + "+")};
      for (int c : checkpoints) {
        if (c > iters) continue;
        if (c - 1 < static_cast<int>(result.history.size())) {
          row.push_back(fmt_e(result.history[c - 1].rel_error, 2));
        } else {
          row.push_back("-");  // run stopped earlier (converged)
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
    bench::maybe_write_csv(cli, "fig3_" + name, table);
  }
  std::printf("\"iters to tol\": iterations until e_n <= %.2g ('+' = not\n"
              "reached within the budget).  Each unit of S costs an extra\n"
              "2 d^2 redundant flops per iteration on every processor.\n",
              tol);
  return 0;
}
