// Golden-trajectory regression tests.  Each fixture in tests/golden/ pins
// one solver's full objective trace and final iterate, written with %.17g
// (exact double round-trip).
//
// Kernel backends: trajectories are backend-dependent (the SIMD backend
// regroups reductions; see la/backend.hpp), so every run here pins its
// backend explicitly with ScopedBackend -- the historical fixtures are
// scalar, rcsfista_simd pins the SIMD trajectory.  That makes this suite
// a backend sweep in itself: it passes unchanged under RCF_BACKEND=scalar
// and RCF_BACKEND=simd (CI runs both).
//
// The suite then asserts:
//
//  * width 1 reproduces the fixture bitwise (the repo's determinism
//    contract: a trajectory is a pure function of (problem, options)),
//  * pool widths 2 and 7 reproduce it bitwise too (kernels are
//    width-invariant by construction),
//  * the 4-rank SPMD execution of RC-SFISTA matches within 1e-9 (the
//    distributed reduction reassociates, so bitwise is not guaranteed).
//
// Regenerate fixtures after an intentional numerical change with
//   RCF_GOLDEN_REGEN=1 ./test_golden
// which rewrites the files under RCF_GOLDEN_DIR (the source tree) so the
// diff shows up in review.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/distributed.hpp"
#include "core/logistic.hpp"
#include "core/prox_cocoa.hpp"
#include "core/prox_newton.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "dist/comm.hpp"
#include "la/backend.hpp"
#include "la/blas.hpp"

#ifndef RCF_GOLDEN_DIR
#error "RCF_GOLDEN_DIR must point at the fixture directory"
#endif

namespace rcf::core {
namespace {

data::Dataset golden_dataset() {
  data::SyntheticOptions opts;
  opts.num_samples = 400;
  opts.num_features = 16;
  opts.density = 0.4;
  opts.condition = 30.0;
  opts.noise_stddev = 0.05;
  opts.seed = 13;
  return data::make_regression(opts);
}

/// The pinned trajectory: per-iteration objectives plus the final iterate.
struct Trajectory {
  std::vector<double> objectives;
  std::vector<double> w;
};

Trajectory trajectory_of(const SolveResult& result) {
  Trajectory t;
  for (const auto& rec : result.history) {
    t.objectives.push_back(rec.objective);
  }
  t.w.assign(result.w.span().begin(), result.w.span().end());
  return t;
}

std::string fixture_path(const std::string& name) {
  return std::string(RCF_GOLDEN_DIR) + "/" + name + ".json";
}

void append_doubles(std::string& out, const std::vector<double>& values) {
  char buf[40];
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.17g", values[i]);
    if (i != 0) {
      out += ", ";
    }
    out += buf;
  }
  out += ']';
}

void write_fixture(const std::string& name, const Trajectory& t) {
  std::string body = "{\n  \"solver\": \"" + name + "\",\n";
  body += "  \"objectives\": ";
  append_doubles(body, t.objectives);
  body += ",\n  \"w\": ";
  append_doubles(body, t.w);
  body += "\n}\n";
  std::ofstream out(fixture_path(name));
  ASSERT_TRUE(out) << "cannot write fixture " << fixture_path(name);
  out << body;
}

std::vector<double> numbers_of(const JsonValue& v) {
  std::vector<double> out;
  for (const auto& e : v.array) {
    out.push_back(e.number);
  }
  return out;
}

bool load_fixture(const std::string& name, Trajectory& t) {
  std::ifstream in(fixture_path(name));
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = parse_json(buf.str());
  if (!parsed || !parsed->is_object()) {
    return false;
  }
  const auto* objectives = parsed->find("objectives");
  const auto* w = parsed->find("w");
  if (objectives == nullptr || w == nullptr) {
    return false;
  }
  t.objectives = numbers_of(*objectives);
  t.w = numbers_of(*w);
  return true;
}

bool regen_requested() {
  const char* env = std::getenv("RCF_GOLDEN_REGEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Runs the solver, then either regenerates the fixture or asserts the
/// trajectory matches it bitwise.
void check_against_fixture(const std::string& name, const Trajectory& got) {
  if (regen_requested()) {
    write_fixture(name, got);
    return;
  }
  Trajectory want;
  ASSERT_TRUE(load_fixture(name, want))
      << "missing or unreadable fixture " << fixture_path(name)
      << " -- regenerate with RCF_GOLDEN_REGEN=1";
  ASSERT_EQ(want.objectives.size(), got.objectives.size());
  for (std::size_t i = 0; i < want.objectives.size(); ++i) {
    EXPECT_EQ(want.objectives[i], got.objectives[i])
        << name << ": objective diverged at iteration " << i;
  }
  ASSERT_EQ(want.w.size(), got.w.size());
  for (std::size_t i = 0; i < want.w.size(); ++i) {
    EXPECT_EQ(want.w[i], got.w[i]) << name << ": w diverged at index " << i;
  }
}

// ---------------------------------------------------------------------------
// SFISTA.

SolveResult run_sfista(int threads) {
  la::ScopedBackend scoped(la::Backend::kScalar);
  const auto dataset = golden_dataset();
  const LassoProblem problem(dataset, 0.005);
  SolverOptions opts;
  opts.max_iters = 48;
  opts.sampling_rate = 0.5;
  opts.seed = 42;
  opts.threads = threads;
  return solve_sfista(problem, opts);
}

TEST(Golden, SfistaMatchesFixture) {
  check_against_fixture("sfista", trajectory_of(run_sfista(1)));
}

TEST(Golden, SfistaIsWidthInvariant) {
  const auto base = run_sfista(1);
  for (const int threads : {2, 7}) {
    const auto wide = run_sfista(threads);
    EXPECT_EQ(base.w, wide.w) << "threads=" << threads;
    EXPECT_EQ(base.objective, wide.objective) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// RC-SFISTA (k-overlap + Hessian reuse).

SolveResult run_rcsfista(int threads) {
  la::ScopedBackend scoped(la::Backend::kScalar);
  const auto dataset = golden_dataset();
  const LassoProblem problem(dataset, 0.005);
  SolverOptions opts;
  opts.max_iters = 48;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.s = 2;
  opts.seed = 42;
  opts.threads = threads;
  return solve_rc_sfista(problem, opts);
}

TEST(Golden, RcSfistaMatchesFixture) {
  check_against_fixture("rcsfista", trajectory_of(run_rcsfista(1)));
}

TEST(Golden, RcSfistaIsWidthInvariant) {
  const auto base = run_rcsfista(1);
  for (const int threads : {2, 7}) {
    const auto wide = run_rcsfista(threads);
    EXPECT_EQ(base.w, wide.w) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Kernel-backend sweep: the SIMD backend's regrouped reductions give it a
// (slightly) different trajectory, pinned bitwise by its own fixture.

SolveResult run_rcsfista_simd(int threads) {
  la::ScopedBackend scoped(la::Backend::kSimd);
  const auto dataset = golden_dataset();
  const LassoProblem problem(dataset, 0.005);
  SolverOptions opts;
  opts.max_iters = 48;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.s = 2;
  opts.seed = 42;
  opts.threads = threads;
  return solve_rc_sfista(problem, opts);
}

TEST(Golden, RcSfistaSimdMatchesOwnFixture) {
  const auto result = run_rcsfista_simd(1);
  EXPECT_EQ(result.backend, "simd");
  check_against_fixture("rcsfista_simd", trajectory_of(result));
}

TEST(Golden, RcSfistaSimdIsWidthInvariant) {
  // The SIMD lane grouping is a pure function of each reduction's length,
  // so the SIMD backend honors the same bitwise width-invariance contract
  // as scalar.
  const auto base = run_rcsfista_simd(1);
  for (const int threads : {2, 7}) {
    EXPECT_EQ(base.w, run_rcsfista_simd(threads).w) << "threads=" << threads;
  }
}

TEST(Golden, BackendTrajectoriesAgreeWithinTolerance) {
  // Scalar vs SIMD is a tolerance contract, not bitwise: both fixtures
  // descend the same problem, so the final iterates must stay close even
  // though per-iteration rounding differs.
  const auto scalar = run_rcsfista(1);
  const auto simd = run_rcsfista_simd(1);
  ASSERT_EQ(scalar.w.size(), simd.w.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < scalar.w.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(scalar.w.span()[i] - simd.w.span()[i]));
  }
  EXPECT_LT(max_diff, 1e-6);
  EXPECT_NEAR(scalar.objective, simd.objective,
              1e-9 * (1.0 + std::abs(scalar.objective)));
}

TEST(Golden, RcSfistaFourRankAgreesWithFixture) {
  // The SPMD reduction reassociates the per-rank partial Gram sums, so
  // cross-rank agreement is within tolerance rather than bitwise.
  la::ScopedBackend scoped(la::Backend::kScalar);
  Trajectory want;
  if (regen_requested()) {
    GTEST_SKIP() << "regen run";
  }
  ASSERT_TRUE(load_fixture("rcsfista", want));
  const auto dataset = golden_dataset();
  const LassoProblem problem(dataset, 0.005);
  SolverOptions opts;
  opts.max_iters = 48;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.s = 2;
  opts.seed = 42;
  opts.track_history = false;
  dist::ThreadGroup group(4);
  const auto par = solve_rc_sfista_distributed(problem, opts, group);
  ASSERT_TRUE(par.ok()) << par.failure_reason;
  ASSERT_EQ(want.w.size(), par.w.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < want.w.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(want.w[i] - par.w[i]));
  }
  EXPECT_LT(max_diff, 1e-9);
}

// ---------------------------------------------------------------------------
// Chunk-pipelined RC-SFISTA (nonblocking iallreduce path).

SolveResult run_rcsfista_pipelined(int staleness) {
  la::ScopedBackend scoped(la::Backend::kScalar);
  const auto dataset = golden_dataset();
  const LassoProblem problem(dataset, 0.005);
  SolverOptions opts;
  opts.max_iters = 48;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.s = 2;
  opts.seed = 42;
  opts.track_history = false;
  opts.pipeline = true;
  opts.staleness = staleness;
  dist::ThreadGroup group(4);
  return solve_rc_sfista_distributed(problem, opts, group);
}

TEST(Golden, PipelinedFourRankAgreesWithFixture) {
  // Staleness 0 replays the blocking reduction schedule exactly, so the
  // pipelined path inherits the blocking path's 1e-9 agreement with the
  // sequential fixture (reduction-order effects only).
  Trajectory want;
  if (regen_requested()) {
    GTEST_SKIP() << "regen run";
  }
  ASSERT_TRUE(load_fixture("rcsfista", want));
  const auto par = run_rcsfista_pipelined(0);
  ASSERT_TRUE(par.ok()) << par.failure_reason;
  ASSERT_EQ(want.w.size(), par.w.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < want.w.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(want.w[i] - par.w[i]));
  }
  EXPECT_LT(max_diff, 1e-9);
}

TEST(Golden, PipelinedStalenessTwoMatchesFixture) {
  // Bounded staleness changes which reduced chunk each update sweep
  // consumes -- numerically different from blocking, but still a pure
  // function of (problem, options), so its own fixture pins the 4-rank
  // S = 2 iterate bitwise (the deterministic-collective contract extended
  // to the stale pipeline).
  const auto par = run_rcsfista_pipelined(2);
  ASSERT_TRUE(par.ok()) << par.failure_reason;
  check_against_fixture("rcsfista_pipelined_s2", trajectory_of(par));
}

// ---------------------------------------------------------------------------
// Proximal Newton (RC-SFISTA inner).

SolveResult run_pn(int threads) {
  la::ScopedBackend scoped(la::Backend::kScalar);
  const auto dataset = golden_dataset();
  const LassoProblem problem(dataset, 0.005);
  PnOptions opts;
  opts.max_outer = 6;
  opts.inner_iters = 20;
  opts.hessian_sampling_rate = 0.3;
  opts.inner = PnInnerSolver::kRcSfista;
  opts.k = 2;
  opts.s = 2;
  opts.seed = 42;
  opts.threads = threads;
  return solve_proximal_newton(problem, opts);
}

TEST(Golden, ProxNewtonMatchesFixture) {
  check_against_fixture("pn", trajectory_of(run_pn(1)));
}

TEST(Golden, ProxNewtonIsWidthInvariant) {
  const auto base = run_pn(1);
  const auto wide = run_pn(3);
  EXPECT_EQ(base.w, wide.w);
}

// ---------------------------------------------------------------------------
// ProxCoCoA baseline (4 workers, adding aggregation).

SolveResult run_proxcocoa(int threads) {
  la::ScopedBackend scoped(la::Backend::kScalar);
  const auto dataset = golden_dataset();
  const LassoProblem problem(dataset, 0.005);
  CocoaOptions opts;
  opts.max_rounds = 40;
  opts.local_epochs = 2;
  opts.procs = 4;
  opts.seed = 42;
  opts.threads = threads;
  return solve_prox_cocoa(problem, opts);
}

TEST(Golden, ProxCocoaMatchesFixture) {
  // The simulated 4-worker round schedule is a pure function of
  // (problem, options) -- the fixture pins the whole objective trace
  // bitwise, like the solver fixtures above.
  check_against_fixture("proxcocoa", trajectory_of(run_proxcocoa(1)));
}

TEST(Golden, ProxCocoaIsWidthInvariant) {
  const auto base = run_proxcocoa(1);
  for (const int threads : {2, 7}) {
    const auto wide = run_proxcocoa(threads);
    EXPECT_EQ(base.w, wide.w) << "threads=" << threads;
    EXPECT_EQ(base.objective, wide.objective) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Logistic proximal Newton (RC-SFISTA inner on the sampled Hessian).

data::Dataset golden_logistic_dataset() {
  data::SyntheticOptions opts;
  opts.num_samples = 400;
  opts.num_features = 16;
  opts.density = 0.4;
  opts.binary_labels = true;
  opts.noise_stddev = 0.3;
  opts.seed = 29;
  return data::make_regression(opts);
}

SolveResult run_logistic_pn(int threads) {
  la::ScopedBackend scoped(la::Backend::kScalar);
  const auto dataset = golden_logistic_dataset();
  const LogisticProblem problem(dataset, 0.002);
  PnOptions opts;
  opts.max_outer = 6;
  opts.inner_iters = 20;
  opts.hessian_sampling_rate = 0.3;
  opts.inner = PnInnerSolver::kRcSfista;
  opts.k = 2;
  opts.s = 2;
  opts.seed = 42;
  opts.threads = threads;
  return solve_logistic_prox_newton(problem, opts);
}

TEST(Golden, LogisticProxNewtonMatchesFixture) {
  check_against_fixture("logistic_pn", trajectory_of(run_logistic_pn(1)));
}

TEST(Golden, LogisticProxNewtonIsWidthInvariant) {
  const auto base = run_logistic_pn(1);
  for (const int threads : {2, 7}) {
    EXPECT_EQ(base.w, run_logistic_pn(threads).w) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rcf::core
