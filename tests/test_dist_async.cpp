// Tests for the nonblocking collective layer: handle post/wait/test
// semantics on both backends, mixing with blocking collectives (quiesce),
// decorator composition over handles (Checked o Retrying o Faulty), and the
// chunk-pipelined distributed solve (bitwise-identical to blocking at
// staleness 0; deterministic under bounded staleness).
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "check/checked_comm.hpp"
#include "common/error.hpp"
#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "dist/comm.hpp"
#include "dist/retry.hpp"
#include "dist/thread_comm.hpp"
#include "fault/faulty_comm.hpp"
#include "fault/plan.hpp"
#include "la/blas.hpp"
#include "obs/trace.hpp"

namespace rcf::dist {
namespace {

// ---------------------------------------------------------------------------
// SeqComm: the single-rank degradation still honours the handle contract.
// ---------------------------------------------------------------------------

TEST(SeqCommAsync, PostWaitTest) {
  SeqComm comm;
  std::vector<double> buf{1.0, 2.0, 3.0};
  CommHandle h = comm.iallreduce_sum(buf);
  EXPECT_TRUE(h.valid());
  EXPECT_TRUE(h.test());
  EXPECT_EQ(h.words(), 3u);
  h.wait();
  h.wait();  // idempotent
  EXPECT_DOUBLE_EQ(buf[0], 1.0);
  EXPECT_EQ(comm.stats().allreduce_calls, 1u);
  EXPECT_EQ(comm.stats().allreduce_words, 3u);
  // A 1-rank reduction is complete at post, so the whole payload counts as
  // overlapped once waited.
  EXPECT_EQ(comm.stats().overlapped_words, 3u);

  CommHandle hmax = comm.iallreduce_max(buf);
  comm.wait(hmax);
  EXPECT_EQ(comm.stats().allreduce_max_calls, 1u);
}

TEST(SeqCommAsync, DefaultConstructedHandleIsInert) {
  CommHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_TRUE(h.test());
  EXPECT_EQ(h.words(), 0u);
  h.wait();  // no-op
}

// ---------------------------------------------------------------------------
// ThreadComm: real asynchronous completion through the progress thread.
// ---------------------------------------------------------------------------

class ThreadCommAsync : public ::testing::TestWithParam<AllreduceAlgo> {};

TEST_P(ThreadCommAsync, PostWaitSum) {
  for (int ranks : {1, 2, 4}) {
    ThreadGroup group(ranks, GetParam());
    group.run([&](ThreadComm& comm) {
      std::vector<double> buf(8);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = comm.rank() + static_cast<double>(i);
      }
      CommHandle h = comm.iallreduce_sum(buf);
      ASSERT_TRUE(h.valid());
      h.wait();
      const double rank_sum = ranks * (ranks - 1) / 2.0;
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_DOUBLE_EQ(buf[i], rank_sum + ranks * static_cast<double>(i));
      }
    });
    // Posts are counted at post time, once per rank.
    EXPECT_EQ(group.last_run_stats().allreduce_calls,
              static_cast<std::uint64_t>(ranks));
  }
}

TEST_P(ThreadCommAsync, OutOfOrderWaits) {
  ThreadGroup group(4, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> a{static_cast<double>(comm.rank())};
    std::vector<double> b{10.0 * comm.rank()};
    CommHandle ha = comm.iallreduce_sum(a);
    CommHandle hb = comm.iallreduce_sum(b);
    // Completion order is FIFO internally, but waits may come in any
    // order: waiting b first simply rides on a's completion.
    hb.wait();
    ASSERT_DOUBLE_EQ(b[0], 60.0);
    ha.wait();
    ASSERT_DOUBLE_EQ(a[0], 6.0);
  });
}

TEST_P(ThreadCommAsync, MaxAndSumInterleaved) {
  ThreadGroup group(3, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> sum{1.0};
    std::vector<double> mx{static_cast<double>(comm.rank())};
    CommHandle hs = comm.iallreduce_sum(sum);
    CommHandle hm = comm.iallreduce_max(mx);
    hs.wait();
    hm.wait();
    ASSERT_DOUBLE_EQ(sum[0], 3.0);
    ASSERT_DOUBLE_EQ(mx[0], 2.0);
  });
}

TEST_P(ThreadCommAsync, BlockingCollectiveQuiescesInFlightPosts) {
  ThreadGroup group(4, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> async_buf{1.0};
    std::vector<double> sync_buf{2.0};
    CommHandle h = comm.iallreduce_sum(async_buf);
    // The blocking collective drains the in-flight post on every rank
    // before entering its own rendezvous, so mixing the two APIs cannot
    // interleave two collectives of one rank.
    comm.allreduce_sum(sync_buf);
    ASSERT_DOUBLE_EQ(sync_buf[0], 8.0);
    h.wait();
    ASSERT_DOUBLE_EQ(async_buf[0], 4.0);
  });
}

TEST_P(ThreadCommAsync, DroppedHandleLeavesBufferUntouched) {
  ThreadGroup group(2, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> dropped{5.0};
    { CommHandle h = comm.iallreduce_sum(dropped); }  // abandoned
    // The collective still executes (the schedule stays symmetric), but
    // the result is only delivered by a successful wait.
    std::vector<double> follow{1.0};
    comm.allreduce_sum(follow);
    ASSERT_DOUBLE_EQ(dropped[0], 5.0);
    ASSERT_DOUBLE_EQ(follow[0], 2.0);
  });
}

TEST_P(ThreadCommAsync, TestEventuallyCompletesWithoutWaitBlocking) {
  ThreadGroup group(2, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> buf{1.0};
    CommHandle h = comm.iallreduce_sum(buf);
    while (!h.test()) {
    }
    // Already complete: this wait cannot block and must credit overlap.
    h.wait();
    ASSERT_DOUBLE_EQ(buf[0], 2.0);
  });
  EXPECT_EQ(group.last_run_stats().overlapped_words, 2u);
}

TEST_P(ThreadCommAsync, DeterministicAcrossRuns) {
  std::vector<double> first;
  for (int trial = 0; trial < 3; ++trial) {
    ThreadGroup group(4, GetParam());
    std::vector<double> captured;
    group.run([&](ThreadComm& comm) {
      std::vector<double> buf(8);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = 0.1 * (comm.rank() + 1) + 1e-9 * static_cast<double>(i);
      }
      CommHandle h = comm.iallreduce_sum(buf);
      h.wait();
      if (comm.rank() == 0) {
        captured = buf;
      }
    });
    if (trial == 0) {
      first = captured;
    } else {
      ASSERT_EQ(captured, first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, ThreadCommAsync,
                         ::testing::Values(AllreduceAlgo::kCentral,
                                           AllreduceAlgo::kRecursiveDoubling));

// ---------------------------------------------------------------------------
// Decorator composition over handles.
// ---------------------------------------------------------------------------

TEST(AsyncDecorators, CheckedRetryingFaultyCompose) {
  // A wait-stage transient on rank 1 must be absorbed by RetryingComm's
  // wait path (re-waiting an in-flight op is idempotent), and the contract
  // checker above must see a clean, symmetric schedule.
  const fault::FaultPlan plan =
      fault::parse_fault_plan("transient:rank=1,call=0,stage=wait");
  std::atomic<std::uint64_t> retries{0};
  ThreadGroup group(4);
  group.run([&](ThreadComm& comm) {
    fault::FaultyComm faulty(comm, &plan);
    RetryPolicy policy;
    policy.backoff_us = 1;
    RetryingComm retrying(faulty, policy);
    check::CheckedComm checked(retrying);
    std::vector<double> buf{1.0};
    CommHandle h = checked.iallreduce_sum(buf);
    h.wait();
    ASSERT_DOUBLE_EQ(buf[0], 4.0);
    retries.fetch_add(retrying.retries());
  });
  EXPECT_EQ(retries.load(), 1u);
}

TEST(AsyncDecorators, WaitStageAbortSurfaces) {
  const fault::FaultPlan plan =
      fault::parse_fault_plan("abort:rank=0,call=0,stage=wait");
  ThreadGroup group(2);
  EXPECT_THROW(group.run([&](ThreadComm& comm) {
    fault::FaultyComm faulty(comm, &plan);
    std::vector<double> buf{1.0};
    CommHandle h = faulty.iallreduce_sum(buf);
    h.wait();
  }),
               fault::FaultAbort);
}

TEST(AsyncDecorators, PostStageTransientRetriesThePostItself) {
  // stage=post (the default) still fires before the inner post, so the
  // retry wraps the *post* and downstream sees exactly one collective.
  const fault::FaultPlan plan =
      fault::parse_fault_plan("transient:rank=2,call=0");
  ThreadGroup group(4);
  group.run([&](ThreadComm& comm) {
    fault::FaultyComm faulty(comm, &plan);
    RetryPolicy policy;
    policy.backoff_us = 1;
    RetryingComm retrying(faulty, policy);
    std::vector<double> buf{2.0};
    CommHandle h = retrying.iallreduce_sum(buf);
    h.wait();
    ASSERT_DOUBLE_EQ(buf[0], 8.0);
  });
  EXPECT_EQ(group.last_run_stats().allreduce_calls, 4u);
}

TEST(AsyncDecorators, WaitStageFaultsRejectCorruptionKinds) {
  EXPECT_THROW(fault::parse_fault_plan("nan:rank=0,stage=wait"),
               InvalidArgument);
  EXPECT_THROW(fault::parse_fault_plan("bitflip:rank=0,stage=wait"),
               InvalidArgument);
  // Straggling completions are a legal plan.
  const auto plan =
      fault::parse_fault_plan("skew:us=50,stage=wait,seed=7");
  EXPECT_EQ(plan.specs.size(), 1u);
  EXPECT_EQ(plan.specs[0].stage, fault::FaultStage::kWait);
  EXPECT_NE(fault::describe(plan).find("stage=wait"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The chunk-pipelined distributed solve.
// ---------------------------------------------------------------------------

data::Dataset async_dataset(std::size_t m = 900, std::size_t d = 20) {
  data::SyntheticOptions opts;
  opts.num_samples = m;
  opts.num_features = d;
  opts.density = 0.4;
  opts.condition = 25.0;
  opts.noise_stddev = 0.05;
  opts.seed = 17;
  return data::make_regression(opts);
}

core::SolverOptions pipeline_options() {
  core::SolverOptions opts;
  // 38 iterations with k = 8 leaves a short tail chunk, so the ring
  // indexing and the drain are both exercised.
  opts.max_iters = 38;
  opts.sampling_rate = 0.25;
  opts.k = 8;
  opts.s = 2;
  opts.track_history = false;
  return opts;
}

TEST(PipelinedSolve, BitwiseIdenticalToBlockingAtStalenessZero) {
  const auto dataset = async_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  auto opts = pipeline_options();

  core::SolveResult blocking;
  {
    ThreadGroup group(4);
    blocking = core::solve_rc_sfista_distributed(problem, opts, group);
  }
  ASSERT_TRUE(blocking.ok());

  opts.pipeline = true;
  ThreadGroup group(4);
  const auto pipelined = core::solve_rc_sfista_distributed(problem, opts, group);
  ASSERT_TRUE(pipelined.ok());

  // Same payloads, same deterministic reduction schedule, same update
  // order: the trajectories must agree bit for bit.
  EXPECT_EQ(la::max_abs_diff(blocking.w.span(), pipelined.w.span()), 0.0);
  EXPECT_EQ(blocking.objective, pipelined.objective);
  EXPECT_EQ(blocking.comm_stats.allreduce_calls,
            pipelined.comm_stats.allreduce_calls);
  EXPECT_EQ(blocking.comm_stats.allreduce_words,
            pipelined.comm_stats.allreduce_words);

  // The pipelined path reports the collective as post + wait phases, one
  // pair per chunk per rank-0 schedule.
  const auto rounds = static_cast<std::uint64_t>((38 + 8 - 1) / 8);
  const auto* post = obs::find_phase(pipelined.phases, "allreduce_post");
  const auto* wait = obs::find_phase(pipelined.phases, "allreduce_wait");
  ASSERT_NE(post, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(post->count, rounds);
  EXPECT_EQ(wait->count, rounds);
  EXPECT_EQ(obs::find_phase(pipelined.phases, "allreduce"), nullptr);
}

TEST(PipelinedSolve, RecursiveDoublingBackendAgreesPipelined) {
  const auto dataset = async_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  auto opts = pipeline_options();
  core::SolveResult blocking;
  {
    ThreadGroup group(4, AllreduceAlgo::kRecursiveDoubling);
    blocking = core::solve_rc_sfista_distributed(problem, opts, group);
  }
  opts.pipeline = true;
  ThreadGroup group(4, AllreduceAlgo::kRecursiveDoubling);
  const auto pipelined = core::solve_rc_sfista_distributed(problem, opts, group);
  ASSERT_TRUE(pipelined.ok());
  EXPECT_EQ(la::max_abs_diff(blocking.w.span(), pipelined.w.span()), 0.0);
}

TEST(PipelinedSolve, SingleRankPipelines) {
  const auto dataset = async_dataset(300, 12);
  const core::LassoProblem problem(dataset, 0.01);
  auto opts = pipeline_options();
  core::SolveResult blocking;
  {
    ThreadGroup group(1);
    blocking = core::solve_rc_sfista_distributed(problem, opts, group);
  }
  opts.pipeline = true;
  opts.staleness = 1;
  ThreadGroup group(1);
  const auto pipelined = core::solve_rc_sfista_distributed(problem, opts, group);
  ASSERT_TRUE(pipelined.ok());
  // Staleness reuses earlier sampled Gram estimates, so the trajectory is
  // different but must stay finite and close on a well-conditioned problem.
  EXPECT_TRUE(std::isfinite(pipelined.objective));
  EXPECT_LT(std::abs(pipelined.objective - blocking.objective) /
                blocking.objective,
            0.5);
}

TEST(PipelinedSolve, BoundedStalenessIsDeterministic) {
  const auto dataset = async_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  auto opts = pipeline_options();
  opts.pipeline = true;
  opts.staleness = 2;

  core::SolveResult first;
  for (int trial = 0; trial < 2; ++trial) {
    ThreadGroup group(4);
    auto result = core::solve_rc_sfista_distributed(problem, opts, group);
    ASSERT_TRUE(result.ok());
    if (trial == 0) {
      first = std::move(result);
    } else {
      // Staleness is a fixed schedule parameter, not a timing decision:
      // reruns are bitwise identical.
      EXPECT_EQ(la::max_abs_diff(first.w.span(), result.w.span()), 0.0);
    }
  }
  EXPECT_TRUE(std::isfinite(first.objective));
}

TEST(PipelinedSolve, StalenessRequiresPipeline) {
  const auto dataset = async_dataset(200, 8);
  const core::LassoProblem problem(dataset, 0.01);
  core::SolverOptions opts;
  opts.staleness = 1;
  ThreadGroup group(2);
  EXPECT_THROW(core::solve_rc_sfista_distributed(problem, opts, group),
               InvalidArgument);
  opts.staleness = -1;
  opts.pipeline = true;
  EXPECT_THROW(core::solve_rc_sfista_distributed(problem, opts, group),
               InvalidArgument);
}

TEST(PipelinedSolve, OverlapIsCreditedUnderStaleness) {
  // With staleness 2 the wait for chunk t's reduction happens two full
  // chunks of compute later; a small payload reduction is certain to have
  // completed by then, so overlapped words must accumulate.
  const auto dataset = async_dataset(2000, 8);
  const core::LassoProblem problem(dataset, 0.01);
  core::SolverOptions opts;
  opts.max_iters = 32;
  opts.sampling_rate = 0.5;
  opts.k = 4;
  opts.s = 2;
  opts.track_history = false;
  opts.pipeline = true;
  opts.staleness = 2;
  ThreadGroup group(2);
  const auto result = core::solve_rc_sfista_distributed(problem, opts, group);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.comm_stats.overlapped_words, 0u);
  EXPECT_LE(result.comm_stats.overlapped_words,
            result.comm_stats.allreduce_words);
}

TEST(PipelinedSolve, NanPoisonRecoversMidPipeline) {
  const auto dataset = async_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  auto opts = pipeline_options();
  opts.pipeline = true;
  opts.retry.backoff_us = 1;

  fault::ScopedFaultPlan quiet{fault::FaultPlan{}};
  core::SolveResult baseline;
  {
    ThreadGroup group(4);
    baseline = core::solve_rc_sfista_distributed(problem, opts, group);
  }
  ASSERT_TRUE(baseline.ok());

  // Corrupt the third post on rank 1: every rank sees the poisoned sums at
  // the wait, rebuilds its local blocks, and re-reduces with a blocking
  // collective that quiesces the still-in-flight later posts.
  fault::ScopedFaultPlan scoped{
      std::string_view("nan:rank=1,call=2,words=4")};
  ThreadGroup group(4);
  const auto result = core::solve_rc_sfista_distributed(problem, opts, group);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_EQ(la::max_abs_diff(result.w.span(), baseline.w.span()), 0.0);
  EXPECT_GE(result.comm_stats.faults_injected, 1u);
}

TEST(PipelinedSolve, WaitStageTransientIsAbsorbedPipelined) {
  const auto dataset = async_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  auto opts = pipeline_options();
  opts.pipeline = true;
  opts.staleness = 1;
  opts.retry.backoff_us = 1;

  fault::ScopedFaultPlan quiet{fault::FaultPlan{}};
  core::SolveResult baseline;
  {
    ThreadGroup group(4);
    baseline = core::solve_rc_sfista_distributed(problem, opts, group);
  }
  ASSERT_TRUE(baseline.ok());

  fault::ScopedFaultPlan scoped{
      std::string_view("transient:rank=3,call=1,stage=wait")};
  ThreadGroup group(4);
  const auto result = core::solve_rc_sfista_distributed(problem, opts, group);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_EQ(la::max_abs_diff(result.w.span(), baseline.w.span()), 0.0);
  EXPECT_GE(result.comm_stats.retries, 1u);
  EXPECT_GE(result.comm_stats.faults_injected, 1u);
}

}  // namespace
}  // namespace rcf::dist
