// Tests for CLI parsing, tables, logging plumbing, and error types.
#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace rcf {
namespace {

TEST(Cli, ParsesKeyValueForms) {
  CliParser cli("t", "test");
  // Note: a bare "--flag" greedily consumes a following non-flag token as
  // its value, so positionals go before bare boolean flags.
  const char* argv[] = {"t", "--a=1", "--b", "2", "pos", "--flag"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_int("a", 0), 1);
  EXPECT_EQ(cli.get_int("b", 0), 2);
  EXPECT_TRUE(cli.get_bool("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Cli, Defaults) {
  CliParser cli("t", "test");
  const char* argv[] = {"t"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cli.get_string("missing", "x"), "x");
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("t", "test");
  const char* argv[] = {"t", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, IntList) {
  CliParser cli("t", "test");
  const char* argv[] = {"t", "--ks=1,2,8"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto ks = cli.get_int_list("ks", {});
  ASSERT_EQ(ks.size(), 3u);
  EXPECT_EQ(ks[2], 8);
  const auto fallback = cli.get_int_list("missing", {4, 5});
  EXPECT_EQ(fallback.size(), 2u);
}

TEST(Cli, DoubleList) {
  CliParser cli("t", "test");
  const char* argv[] = {"t", "--bs=0.5,0.25"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto bs = cli.get_double_list("bs", {});
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_DOUBLE_EQ(bs[1], 0.25);
}

TEST(Cli, BadIntThrows) {
  CliParser cli("t", "test");
  const char* argv[] = {"t", "--a=xyz"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW((void)cli.get_int("a", 0), InvalidArgument);
  EXPECT_THROW((void)cli.get_double("a", 0.0), InvalidArgument);
}

TEST(Cli, NegativeNumberAsValue) {
  CliParser cli("t", "test");
  const char* argv[] = {"t", "--a=-3"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("a", 0), -3);
}

TEST(Table, AlignedRendering) {
  AsciiTable t({"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2"});
  const auto s = t.str();
  EXPECT_NE(s.find("| col"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRendering) {
  AsciiTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Format, Numbers) {
  EXPECT_EQ(fmt_f(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(12), "12");
  EXPECT_EQ(fmt_count(123), "123");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_bytes(512), "512B");
  EXPECT_NE(fmt_bytes(2'500'000).find("MB"), std::string::npos);
}

TEST(Log, LevelParsing) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(Log, LevelNamesRoundTrip) {
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST(Log, RankTracksThread) {
  const int saved = log_rank();
  set_log_rank(3);
  EXPECT_EQ(log_rank(), 3);
  set_log_rank(saved);
}

TEST(Log, ThresholdFilters) {
  const auto saved = log_level();
  set_log_level(LogLevel::kError);
  // Should not crash and should be filtered (no observable side effect to
  // assert beyond not emitting; exercise the macro path).
  RCF_LOG_DEBUG << "invisible " << 42;
  RCF_LOG_ERROR << "visible";
  set_log_level(saved);
}

TEST(Checks, ThrowWithContext) {
  try {
    RCF_CHECK_MSG(false, "ctx");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
  }
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace rcf
