// Tests for the verification layer (src/check): seeded collective-contract
// defects must be *reported* (named ranks + call sites), never hung; seeded
// partition defects must name the colliding parts; and a clean 4-rank
// distributed solve under RCF_CHECK=1 must pass with zero reports and the
// identical iterate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "check/checked_comm.hpp"
#include "check/contract.hpp"
#include "check/fingerprint.hpp"
#include "check/options.hpp"
#include "check/partition.hpp"
#include "check/rendezvous.hpp"
#include "common/error.hpp"
#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"
#include "exec/pool.hpp"
#include "la/blas.hpp"
#include "obs/metrics.hpp"

namespace rcf::check {
namespace {

CheckOptions checked_options(int timeout_ms = 5000) {
  CheckOptions opts;
  opts.enabled = true;
  opts.timeout_ms = timeout_ms;
  return opts;
}

std::uint64_t violations() {
  return obs::MetricsRegistry::global()
      .counter("check.contract_violations")
      .value();
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, IdenticalStreamsMatch) {
  SequenceTracker a, b;
  const auto site = std::source_location::current();
  for (int i = 0; i < 4; ++i) {
    const auto fa = a.next(CollectiveKind::kAllreduceSum, 7, 0, false, site);
    const auto fb = b.next(CollectiveKind::kAllreduceSum, 7, 0, false, site);
    EXPECT_TRUE(fa.matches(fb)) << i;
    EXPECT_EQ(fa.seq, static_cast<std::uint64_t>(i));
  }
}

TEST(Fingerprint, DivergenceStaysInRollingHash) {
  SequenceTracker a, b;
  const auto site = std::source_location::current();
  a.next(CollectiveKind::kAllreduceSum, 7, 0, false, site);
  b.next(CollectiveKind::kBroadcast, 7, 0, false, site);
  // Same kind/words from here on, but the rolling hash remembers the
  // divergence forever.
  const auto fa = a.next(CollectiveKind::kBarrier, 0, 0, false, site);
  const auto fb = b.next(CollectiveKind::kBarrier, 0, 0, false, site);
  EXPECT_FALSE(fa.matches(fb));
  EXPECT_NE(fa.rolling, fb.rolling);
}

TEST(Fingerprint, AuxSpaceIsIndependent) {
  SequenceTracker a, b;
  const auto site = std::source_location::current();
  // a interleaves aux traffic, b does not; the engine streams stay equal.
  a.next(CollectiveKind::kAllreduceSum, 3, 0, true, site);
  const auto fa = a.next(CollectiveKind::kAllreduceSum, 9, 0, false, site);
  const auto fb = b.next(CollectiveKind::kAllreduceSum, 9, 0, false, site);
  EXPECT_TRUE(fa.matches(fb));
  EXPECT_EQ(fa.space, 0);
  const auto ga = a.next(CollectiveKind::kBarrier, 0, 0, true, site);
  EXPECT_EQ(ga.space, 1);
  EXPECT_EQ(ga.seq, 1u) << "aux space counts its own calls";
}

TEST(Fingerprint, DescribeNamesKindSpaceAndSite) {
  SequenceTracker t;
  const auto fp = t.next(CollectiveKind::kAllreduceSum, 132, 0, false,
                         std::source_location::current());
  const std::string text = fp.describe();
  EXPECT_NE(text.find("allreduce_sum"), std::string::npos) << text;
  EXPECT_NE(text.find("engine"), std::string::npos) << text;
  EXPECT_NE(text.find("words=132"), std::string::npos) << text;
  EXPECT_NE(text.find("test_check_contract.cpp"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Contract checker on the threaded backend: seeded defects
// ---------------------------------------------------------------------------

TEST(CheckContract, PayloadMismatchReported) {
  const auto before = violations();
  dist::ThreadGroup group(2, dist::AllreduceAlgo::kCentral, checked_options());
  try {
    group.run([&](dist::ThreadComm& comm) {
      std::vector<double> buf(comm.rank() == 0 ? 4u : 5u, 1.0);
      comm.allreduce_sum(buf);
    });
    FAIL() << "payload mismatch was not reported";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contract violation"), std::string::npos) << what;
    EXPECT_NE(what.find("words=4"), std::string::npos) << what;
    EXPECT_NE(what.find("words=5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check_contract.cpp"), std::string::npos) << what;
  }
  EXPECT_GT(violations(), before);
}

TEST(CheckContract, RankDivergentSequenceReported) {
  dist::ThreadGroup group(2, dist::AllreduceAlgo::kCentral, checked_options());
  try {
    group.run([&](dist::ThreadComm& comm) {
      std::vector<double> buf(8, 0.0);
      if (comm.rank() == 0) {
        comm.allreduce_sum(buf);
      } else {
        comm.broadcast(buf, 0);
      }
    });
    FAIL() << "rank-divergent schedule was not reported";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("allreduce_sum"), std::string::npos) << what;
    EXPECT_NE(what.find("broadcast"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

TEST(CheckContract, BroadcastRootDivergenceReported) {
  dist::ThreadGroup group(2, dist::AllreduceAlgo::kCentral, checked_options());
  EXPECT_THROW(group.run([&](dist::ThreadComm& comm) {
    std::vector<double> buf(4, 0.0);
    comm.broadcast(buf, comm.rank());  // roots disagree
  }),
               ContractViolation);
}

TEST(CheckContract, DeadlockReportedAsTimeoutNamingMissingRank) {
  dist::ThreadGroup group(2, dist::AllreduceAlgo::kCentral,
                          checked_options(/*timeout_ms=*/250));
  try {
    group.run([&](dist::ThreadComm& comm) {
      if (comm.rank() == 0) {
        comm.barrier();  // rank 1 never shows up
      }
    });
    FAIL() << "collective deadlock was not reported";
  } catch (const CommTimeout& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stall"), std::string::npos) << what;
    EXPECT_NE(what.find("never arrived"), std::string::npos) << what;
    EXPECT_NE(what.find("1"), std::string::npos) << what;
  }
}

TEST(CheckContract, AuxAgainstEngineCollectiveReported) {
  dist::ThreadGroup group(2, dist::AllreduceAlgo::kCentral, checked_options());
  EXPECT_THROW(group.run([&](dist::ThreadComm& comm) {
    std::vector<double> buf(4, 0.0);
    if (comm.rank() == 0) {
      dist::Communicator::AuxScope aux(comm);
      comm.allreduce_sum(buf);
    } else {
      comm.allreduce_sum(buf);
    }
  }),
               ContractViolation);
}

TEST(CheckContract, MatchedAuxTrafficIsClean) {
  const auto before = violations();
  dist::ThreadGroup group(4, dist::AllreduceAlgo::kCentral, checked_options());
  group.run([&](dist::ThreadComm& comm) {
    std::vector<double> buf(4, 1.0);
    comm.allreduce_sum(buf);
    {
      dist::Communicator::AuxScope aux(comm);
      comm.allreduce_max(buf);
      comm.barrier();
    }
    comm.allreduce_sum(buf);
    ASSERT_DOUBLE_EQ(buf[0], 16.0);
  });
  EXPECT_EQ(violations(), before);
}

TEST(CheckContract, BodyExceptionDoesNotHangOtherRanks) {
  dist::ThreadGroup group(4, dist::AllreduceAlgo::kCentral, checked_options());
  EXPECT_THROW(group.run([&](dist::ThreadComm& comm) {
    if (comm.rank() == 2) {
      throw InvalidArgument("rank 2 gives up");
    }
    comm.barrier();  // survivors are released by the poison, not a hang
  }),
               InvalidArgument);
}

TEST(CheckContract, GroupIsReusableAfterViolation) {
  dist::ThreadGroup group(2, dist::AllreduceAlgo::kCentral, checked_options());
  EXPECT_THROW(group.run([&](dist::ThreadComm& comm) {
    std::vector<double> buf(comm.rank() == 0 ? 1u : 2u, 0.0);
    comm.allreduce_sum(buf);
  }),
               ContractViolation);
  group.run([&](dist::ThreadComm& comm) {
    std::vector<double> buf(2, 1.0);
    comm.allreduce_sum(buf);
    ASSERT_DOUBLE_EQ(buf[0], 2.0);
  });
}

// ---------------------------------------------------------------------------
// CheckedComm decorator (backend-agnostic epoch exchange)
// ---------------------------------------------------------------------------

/// Single-rank loopback communicator (SeqComm is final) whose aux-mode
/// allreduce_max pretends some other rank reported a larger value:
/// simulates a diverged fleet for the epoch exchange without needing a
/// second real rank.
class DivergentMaxComm final : public dist::Communicator {
 public:
  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int size() const override { return 1; }
  void allreduce_sum(std::span<double>,
                     std::source_location =
                         std::source_location::current()) override {
    ++stats_.allreduce_calls;
  }
  void allreduce_max(std::span<double> inout,
                     std::source_location =
                         std::source_location::current()) override {
    ++stats_.allreduce_max_calls;
    if (aux_mode() && !inout.empty()) {
      inout[0] += 1.0;  // fleet max above this rank's hash -> divergence
    }
  }
  void broadcast(std::span<double>, int,
                 std::source_location =
                     std::source_location::current()) override {
    ++stats_.broadcast_calls;
  }
  void allgather(std::span<const double> input, std::span<double> output,
                 std::source_location =
                     std::source_location::current()) override {
    std::copy(input.begin(), input.end(), output.begin());
    ++stats_.allgather_calls;
  }
  void barrier(std::source_location =
                   std::source_location::current()) override {
    ++stats_.barrier_calls;
  }
  [[nodiscard]] const dist::CommStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] std::string backend_name() const override {
    return "divergent";
  }

 private:
  dist::CommStats stats_;
};

TEST(CheckedComm, CleanScheduleIsQuiet) {
  dist::SeqComm inner;
  CheckOptions opts = checked_options();
  opts.epoch = 2;
  CheckedComm comm(inner, opts);
  EXPECT_TRUE(comm.enabled());
  EXPECT_EQ(comm.backend_name(), "seq+check");
  std::vector<double> buf(4, 1.0);
  for (int i = 0; i < 10; ++i) {
    comm.allreduce_sum(buf);
  }
  comm.barrier();
  // The epoch exchange runs in aux mode: engine stats stay exact.
  EXPECT_EQ(comm.stats().allreduce_calls, 10u);
  EXPECT_EQ(comm.stats().barrier_calls, 1u);
}

TEST(CheckedComm, EpochExchangeReportsHashDivergence) {
  DivergentMaxComm inner;
  CheckOptions opts = checked_options();
  opts.epoch = 4;
  CheckedComm comm(inner, opts);
  std::vector<double> buf(4, 1.0);
  comm.allreduce_sum(buf);
  comm.allreduce_sum(buf);
  comm.allreduce_sum(buf);
  try {
    comm.allreduce_sum(buf);  // 4th engine collective -> exchange fires
    FAIL() << "diverged rolling hash was not reported";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rolling hash diverged"), std::string::npos) << what;
    EXPECT_NE(what.find("allreduce_sum"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check_contract.cpp"), std::string::npos) << what;
  }
}

TEST(CheckedComm, DisabledForwardsUntouched) {
  dist::SeqComm inner;
  CheckOptions opts;  // enabled = false
  CheckedComm comm(inner, opts);
  EXPECT_FALSE(comm.enabled());
  std::vector<double> buf(3, 2.0);
  comm.allreduce_sum(buf);
  comm.broadcast(buf, 0);
  EXPECT_EQ(inner.stats().allreduce_calls, 1u);
  EXPECT_EQ(inner.stats().broadcast_calls, 1u);
  EXPECT_DOUBLE_EQ(buf[0], 2.0);
}

// ---------------------------------------------------------------------------
// Partition auditor
// ---------------------------------------------------------------------------

TEST(CheckPartition, OverlapNamesBothPartsAndIndex) {
  PartitionAudit audit("unit.overlap", 10);
  audit.mark(0, 0, 6);
  try {
    audit.mark(1, 5, 10);
    FAIL() << "overlap was not reported";
  } catch (const PartitionViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit.overlap"), std::string::npos) << what;
    EXPECT_NE(what.find("index 5"), std::string::npos) << what;
    EXPECT_NE(what.find("part 0"), std::string::npos) << what;
    EXPECT_NE(what.find("part 1"), std::string::npos) << what;
  }
}

TEST(CheckPartition, GapNamesFirstUncoveredIndex) {
  PartitionAudit audit("unit.gap", 10);
  audit.mark(0, 0, 4);
  audit.mark(1, 5, 10);
  try {
    audit.finish();
    FAIL() << "gap was not reported";
  } catch (const PartitionViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("index 4"), std::string::npos) << what;
    EXPECT_NE(what.find("gap"), std::string::npos) << what;
  }
}

TEST(CheckPartition, OutOfBoundsRangeReported) {
  PartitionAudit audit("unit.oob", 10);
  EXPECT_THROW(audit.mark(0, 5, 11), PartitionViolation);
  EXPECT_THROW(audit.mark(0, 7, 6), PartitionViolation);
}

TEST(CheckPartition, BlockAndTriangleRangesAlwaysTile) {
  for (const std::size_t n : {0u, 1u, 5u, 17u, 64u, 1000u}) {
    for (const int parts : {1, 2, 3, 7, 16}) {
      const auto nparts = static_cast<std::size_t>(parts);
      audit_partition("sweep.block", n, nparts, [&](std::size_t part) {
        const exec::Range r = exec::block_range(n, parts,
                                                static_cast<int>(part));
        return std::pair<std::size_t, std::size_t>{r.begin, r.end};
      });
      audit_partition("sweep.triangle", n, nparts, [&](std::size_t part) {
        const exec::Range r =
            exec::triangle_range(n, parts, static_cast<int>(part));
        return std::pair<std::size_t, std::size_t>{r.begin, r.end};
      });
    }
  }
}

TEST(CheckPartition, AuditPartitionReportsSeededOverlap) {
  const auto before = obs::MetricsRegistry::global()
                          .counter("check.partition_violations")
                          .value();
  EXPECT_THROW(
      audit_partition("seeded.overlap", 8, 2,
                      [](std::size_t) {
                        // Both parts claim the full range.
                        return std::pair<std::size_t, std::size_t>{0, 8};
                      }),
      PartitionViolation);
  EXPECT_GT(obs::MetricsRegistry::global()
                .counter("check.partition_violations")
                .value(),
            before);
}

TEST(CheckPartition, SampledGateRespectsScopedEnable) {
  {
    ScopedCheckEnable off(false);
    for (int i = 0; i < 64; ++i) {
      EXPECT_FALSE(partition_audit_due());
    }
  }
  {
    ScopedCheckEnable on(true);
    // Default sampling audits every 16th dispatch; 16 consecutive calls
    // must therefore hit at least one audit regardless of counter phase.
    bool any = false;
    for (int i = 0; i < 16; ++i) {
      any = any || partition_audit_due();
    }
    EXPECT_TRUE(any);
  }
}

// ---------------------------------------------------------------------------
// Positive control: clean 4-rank prox-Newton-style solve under RCF_CHECK=1
// ---------------------------------------------------------------------------

TEST(CheckContract, CleanDistributedSolveUnderCheckIsBitwiseIdentical) {
  const auto dataset = [] {
    data::SyntheticOptions o;
    o.num_samples = 600;
    o.num_features = 24;
    o.density = 0.4;
    o.condition = 30.0;
    o.noise_stddev = 0.05;
    o.seed = 13;
    return data::make_regression(o);
  }();
  const core::LassoProblem problem(dataset, 0.01);
  core::SolverOptions opts;
  opts.max_iters = 32;
  opts.sampling_rate = 0.2;
  opts.k = 4;  // PN-style block schedule: k Hessians per allreduce round
  opts.s = 2;
  opts.track_history = false;

  // Reference: checking off.
  core::SolveResult plain;
  {
    ScopedCheckEnable off(false);
    dist::ThreadGroup group(4);
    plain = core::solve_rc_sfista_distributed(problem, opts, group);
  }

  const auto violations_before = violations();
  const auto partition_violations_before =
      obs::MetricsRegistry::global()
          .counter("check.partition_violations")
          .value();

  // Checked: RCF_CHECK=1 configuration via the scoped override.
  core::SolveResult checked;
  {
    ScopedCheckEnable on(true);
    dist::ThreadGroup group(4);
    checked = core::solve_rc_sfista_distributed(problem, opts, group);
  }

  // Zero reports...
  EXPECT_EQ(violations(), violations_before);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("check.partition_violations")
                .value(),
            partition_violations_before);
  // ...the checker actually ran...
  EXPECT_GT(obs::MetricsRegistry::global()
                .counter("check.collectives_checked")
                .value(),
            0u);
  // ...and checking perturbed nothing: same iterate bit for bit, same
  // engine comm schedule.
  ASSERT_EQ(checked.w.size(), plain.w.size());
  EXPECT_EQ(la::max_abs_diff(checked.w.span(), plain.w.span()), 0.0);
  EXPECT_EQ(checked.comm_stats.allreduce_calls,
            plain.comm_stats.allreduce_calls);
  EXPECT_EQ(checked.comm_stats.allreduce_words,
            plain.comm_stats.allreduce_words);
}

}  // namespace
}  // namespace rcf::check
