// Tests for the proximal operators, including the defining variational
// property prox(w) = argmin (1/2t)||x-w||^2 + g(x) checked numerically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.hpp"
#include "la/vector.hpp"
#include "prox/operators.hpp"

namespace rcf::prox {
namespace {

TEST(SoftThreshold, ScalarCases) {
  EXPECT_DOUBLE_EQ(soft_threshold(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(soft_threshold(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(2.0, 0.0), 2.0);
}

TEST(SoftThreshold, VectorForm) {
  la::Vector in{2.0, -0.1, -3.0}, out(3);
  soft_threshold(in.span(), 1.0, out.span());
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], -2.0);
}

/// Numerically verifies the prox definition: for the returned point p,
/// (1/2t)||p - w||^2 + g(p) must not exceed the objective at nearby
/// perturbations.
void check_prox_optimality(const Regularizer& reg, la::Vector w, double t) {
  la::Vector p = w;
  reg.apply(p.span(), t);
  auto objective = [&](const la::Vector& x) {
    double q = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      q += (x[i] - w[i]) * (x[i] - w[i]);
    }
    return q / (2.0 * t) + reg.value(x.span());
  };
  const double at_p = objective(p);
  Rng rng(17, 0);
  for (int trial = 0; trial < 200; ++trial) {
    la::Vector q = p;
    for (auto& v : q) {
      v += 0.05 * rng.normal();
    }
    EXPECT_GE(objective(q), at_p - 1e-9);
  }
}

TEST(L1, ValueAndProx) {
  L1Regularizer reg(0.5);
  la::Vector w{1.0, -2.0, 0.0};
  EXPECT_DOUBLE_EQ(reg.value(w.span()), 1.5);
  reg.apply(w.span(), 2.0);  // threshold = 1.0
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], -1.0);
  EXPECT_EQ(reg.name(), "l1");
  EXPECT_DOUBLE_EQ(reg.lambda(), 0.5);
}

TEST(L1, ProxOptimality) {
  check_prox_optimality(L1Regularizer(0.3), la::Vector{1.0, -0.2, 2.0, 0.05},
                        0.7);
}

TEST(L1, RejectsNegativeLambda) {
  EXPECT_THROW(L1Regularizer(-1.0), rcf::InvalidArgument);
}

TEST(L2, ValueAndProx) {
  L2Regularizer reg(2.0);
  la::Vector w{3.0, -4.0};
  EXPECT_DOUBLE_EQ(reg.value(w.span()), 25.0);
  reg.apply(w.span(), 0.5);  // shrink by 1/(1+1) = 0.5
  EXPECT_DOUBLE_EQ(w[0], 1.5);
  EXPECT_DOUBLE_EQ(w[1], -2.0);
}

TEST(L2, ProxOptimality) {
  check_prox_optimality(L2Regularizer(1.3), la::Vector{0.4, -1.0, 2.0}, 0.9);
}

TEST(ElasticNet, ReducesToComponents) {
  // lambda2 = 0 -> pure l1.
  ElasticNetRegularizer en(0.5, 0.0);
  L1Regularizer l1(0.5);
  la::Vector a{2.0, -0.3}, b{2.0, -0.3};
  en.apply(a.span(), 1.0);
  l1.apply(b.span(), 1.0);
  EXPECT_EQ(a.raw(), b.raw());
  // lambda1 = 0 -> pure l2.
  ElasticNetRegularizer en2(0.0, 2.0);
  L2Regularizer l2(2.0);
  la::Vector c{2.0, -0.3}, d{2.0, -0.3};
  en2.apply(c.span(), 1.0);
  l2.apply(d.span(), 1.0);
  EXPECT_EQ(c.raw(), d.raw());
}

TEST(ElasticNet, ProxOptimality) {
  check_prox_optimality(ElasticNetRegularizer(0.2, 0.8),
                        la::Vector{1.0, -2.0, 0.1}, 0.6);
}

TEST(Box, ClampsAndValues) {
  BoxRegularizer reg(-1.0, 2.0);
  la::Vector w{-3.0, 0.5, 7.0};
  EXPECT_TRUE(std::isinf(reg.value(w.span())));
  reg.apply(w.span(), 1.0);
  EXPECT_DOUBLE_EQ(w[0], -1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[2], 2.0);
  EXPECT_DOUBLE_EQ(reg.value(w.span()), 0.0);
  EXPECT_THROW(BoxRegularizer(2.0, 1.0), rcf::InvalidArgument);
}

TEST(Zero, Identity) {
  ZeroRegularizer reg;
  la::Vector w{1.0, -5.0};
  EXPECT_DOUBLE_EQ(reg.value(w.span()), 0.0);
  reg.apply(w.span(), 10.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], -5.0);
}

// Parameterized prox property sweep: nonexpansiveness of the prox operator
// ||prox(a) - prox(b)|| <= ||a - b|| for all the convex regularizers.
class ProxNonexpansive : public ::testing::TestWithParam<int> {};

TEST_P(ProxNonexpansive, Holds) {
  std::unique_ptr<Regularizer> reg;
  switch (GetParam()) {
    case 0:
      reg = std::make_unique<L1Regularizer>(0.4);
      break;
    case 1:
      reg = std::make_unique<L2Regularizer>(1.2);
      break;
    case 2:
      reg = std::make_unique<ElasticNetRegularizer>(0.3, 0.7);
      break;
    case 3:
      reg = std::make_unique<BoxRegularizer>(-1.0, 1.0);
      break;
    default:
      reg = std::make_unique<ZeroRegularizer>();
  }
  Rng rng(23, static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 100; ++trial) {
    la::Vector a(6), b(6);
    for (std::size_t i = 0; i < 6; ++i) {
      a[i] = rng.normal(0.0, 2.0);
      b[i] = rng.normal(0.0, 2.0);
    }
    double dist_before = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      dist_before += (a[i] - b[i]) * (a[i] - b[i]);
    }
    reg->apply(a.span(), 0.8);
    reg->apply(b.span(), 0.8);
    double dist_after = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      dist_after += (a[i] - b[i]) * (a[i] - b[i]);
    }
    ASSERT_LE(dist_after, dist_before + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegularizers, ProxNonexpansive,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace rcf::prox
