// Tests for RC-SFISTA: the k-invariance identity (Fig. 2b), Hessian-reuse
// behaviour (Fig. 3), communication accounting (Table 1), and agreement of
// the genuinely distributed SPMD execution with the sequential engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "la/blas.hpp"
#include "obs/trace.hpp"
#include "prox/operators.hpp"

namespace rcf::core {
namespace {

data::Dataset test_dataset(std::size_t m = 1200, std::size_t d = 32,
                           double condition = 30.0, std::uint64_t seed = 13) {
  data::SyntheticOptions opts;
  opts.num_samples = m;
  opts.num_features = d;
  opts.density = 0.4;
  opts.condition = condition;
  opts.noise_stddev = 0.05;
  opts.seed = seed;
  return data::make_regression(opts);
}

class RcSfistaTest : public ::testing::Test {
 protected:
  RcSfistaTest() : dataset_(test_dataset()), problem_(dataset_, 0.005) {}

  data::Dataset dataset_;
  LassoProblem problem_;
};

// ---------------------------------------------------------------------------
// The Fig. 2(b) identity: k is a schedule, not an algorithm change.
// ---------------------------------------------------------------------------

class OverlapInvariance : public ::testing::TestWithParam<int> {};

TEST_P(OverlapInvariance, IteratesAreBitwiseIdenticalToK1) {
  const auto dataset = test_dataset();
  const LassoProblem problem(dataset, 0.005);
  SolverOptions base;
  base.max_iters = 96;
  base.sampling_rate = 0.1;
  base.seed = 42;

  SolverOptions k1 = base;
  k1.k = 1;
  const auto ref = solve_rc_sfista(problem, k1);

  SolverOptions kx = base;
  kx.k = GetParam();
  const auto run = solve_rc_sfista(problem, kx);

  EXPECT_EQ(ref.w, run.w) << "k = " << GetParam();
  EXPECT_EQ(ref.objective, run.objective);
}

INSTANTIATE_TEST_SUITE_P(KSweep, OverlapInvariance,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 96, 128));

TEST_F(RcSfistaTest, OverlapInvarianceHoldsWithHessianReuse) {
  SolverOptions base;
  base.max_iters = 60;
  base.sampling_rate = 0.1;
  base.s = 4;
  base.k = 1;
  const auto a = solve_rc_sfista(problem_, base);
  base.k = 8;
  const auto b = solve_rc_sfista(problem_, base);
  EXPECT_EQ(a.w, b.w);
}

TEST_F(RcSfistaTest, PartialFinalBlockHandled) {
  // max_iters not a multiple of k: the last block is short.
  SolverOptions opts;
  opts.max_iters = 50;
  opts.sampling_rate = 0.1;
  opts.k = 8;
  const auto run = solve_rc_sfista(problem_, opts);
  EXPECT_EQ(run.iterations, 50);
  opts.k = 1;
  const auto ref = solve_rc_sfista(problem_, opts);
  EXPECT_EQ(ref.w, run.w);
}

// ---------------------------------------------------------------------------
// Communication accounting (Table 1 structure).
// ---------------------------------------------------------------------------

TEST_F(RcSfistaTest, LatencyFallsAsOneOverK) {
  SolverOptions opts;
  opts.max_iters = 64;
  opts.sampling_rate = 0.1;
  opts.procs = 16;  // log2 = 4 messages per round
  opts.k = 1;
  const auto k1 = solve_rc_sfista(problem_, opts);
  opts.k = 8;
  const auto k8 = solve_rc_sfista(problem_, opts);
  EXPECT_DOUBLE_EQ(k1.cost.messages(), 64.0 * 4.0);
  EXPECT_DOUBLE_EQ(k8.cost.messages(), 8.0 * 4.0);
  // Bandwidth identical (the headline claim).
  EXPECT_DOUBLE_EQ(k1.cost.words(), k8.cost.words());
  // Gram flops identical.
  EXPECT_DOUBLE_EQ(k1.cost.flops(model::Phase::kGram),
                   k8.cost.flops(model::Phase::kGram));
}

TEST_F(RcSfistaTest, CommRoundsAreCeilNOverK) {
  SolverOptions opts;
  opts.max_iters = 50;
  opts.sampling_rate = 0.1;
  opts.k = 8;
  const auto run = solve_rc_sfista(problem_, opts);
  EXPECT_EQ(run.history.back().comm_rounds, 7u);  // ceil(50/8)
}

TEST_F(RcSfistaTest, HessianReuseAddsUpdateFlopsOnly) {
  SolverOptions opts;
  opts.max_iters = 40;
  opts.sampling_rate = 0.1;
  opts.s = 1;
  const auto s1 = solve_rc_sfista(problem_, opts);
  opts.s = 4;
  const auto s4 = solve_rc_sfista(problem_, opts);
  EXPECT_DOUBLE_EQ(s1.cost.flops(model::Phase::kGram),
                   s4.cost.flops(model::Phase::kGram));
  // Ratio is slightly below 4 because of the per-iteration O(d) overhead
  // outside the s-loop.
  EXPECT_NEAR(s4.cost.flops(model::Phase::kUpdate) /
                  s1.cost.flops(model::Phase::kUpdate),
              4.0, 0.4);
  EXPECT_DOUBLE_EQ(s1.cost.words(), s4.cost.words());
}

TEST_F(RcSfistaTest, CacheSpillChargesMemoryTraffic) {
  SolverOptions opts;
  opts.max_iters = 16;
  opts.sampling_rate = 0.1;
  opts.k = 8;
  opts.machine.cache_doubles = 10.0;  // force a spill
  const auto spilled = solve_rc_sfista(problem_, opts);
  EXPECT_GT(spilled.cost.mem_words(), 0.0);
  opts.machine.cache_doubles = 1e12;
  const auto cached = solve_rc_sfista(problem_, opts);
  EXPECT_DOUBLE_EQ(cached.cost.mem_words(), 0.0);
  EXPECT_GT(spilled.sim_seconds, cached.sim_seconds);
}

TEST_F(RcSfistaTest, PerRankGramCriticalPathScalesDown) {
  SolverOptions opts;
  opts.max_iters = 30;
  opts.sampling_rate = 0.2;
  opts.procs = 1;
  const auto p1 = solve_rc_sfista(problem_, opts);
  opts.procs = 8;
  const auto p8 = solve_rc_sfista(problem_, opts);
  const double ratio = p1.cost.flops(model::Phase::kGram) /
                       p8.cost.flops(model::Phase::kGram);
  // Per-rank max of a balanced partition: close to 8x less, never more.
  EXPECT_GT(ratio, 4.0);
  EXPECT_LE(ratio, 8.0 + 1e-9);
}

// ---------------------------------------------------------------------------
// Hessian-reuse improves per-iteration progress (Fig. 3 direction).
// ---------------------------------------------------------------------------

TEST_F(RcSfistaTest, ModerateSImprovesProgress) {
  // The Fig. 3 shape on a covtype-like clone: S = 3 clearly beats S = 1 at
  // the same number of communicated blocks, while S = 10 with a small batch
  // over-solves the stale sampled model and falls behind S = 3.
  const auto ds = data::make_paper_clone("covtype", 0.02);
  const LassoProblem problem(ds, 0.01 * LassoProblem(ds, 0.0).lambda_max());
  const auto ref = solve_reference(problem);
  SolverOptions opts;
  opts.max_iters = 120;
  opts.sampling_rate = 0.05;
  opts.variance_reduction = true;
  opts.f_star = ref.objective;
  auto run = [&](int s) {
    SolverOptions o = opts;
    o.s = s;
    return solve_rc_sfista(problem, o).history.back().rel_error;
  };
  const double e1 = run(1), e3 = run(3), e10 = run(10);
  EXPECT_LT(e3, e1);
  EXPECT_GT(e10, e3);
}

// ---------------------------------------------------------------------------
// Distributed (threaded SPMD) execution agrees with the sequential engine.
// ---------------------------------------------------------------------------

class DistributedAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistributedAgreement, MatchesSequentialEngine) {
  const auto [ranks, k, s] = GetParam();
  const auto dataset = test_dataset(600, 24);
  const LassoProblem problem(dataset, 0.01);
  SolverOptions opts;
  opts.max_iters = 40;
  opts.sampling_rate = 0.2;
  opts.k = k;
  opts.s = s;
  opts.track_history = false;

  const auto seq = solve_rc_sfista(problem, opts);
  dist::ThreadGroup group(ranks);
  const auto par = solve_rc_sfista_distributed(problem, opts, group);

  EXPECT_LT(la::max_abs_diff(seq.w.span(), par.w.span()), 1e-10)
      << "ranks=" << ranks << " k=" << k << " s=" << s;
  // Allreduce rounds: ceil(N/k) per rank.
  const auto rounds = (40 + k - 1) / k;
  EXPECT_EQ(par.comm_stats.allreduce_calls,
            static_cast<std::uint64_t>(rounds * ranks));
  // Largest single payload: one full [H|R] block batch, d = 24.
  EXPECT_EQ(par.comm_stats.max_payload_words,
            static_cast<std::uint64_t>(std::min(k, 40)) * (24u * 24u + 24u));
  // The phase summary mirrors the schedule: both paths report the same
  // allreduce round count (counts are maintained even when tracing is off).
  const auto* seq_ar = obs::find_phase(seq.phases, "allreduce");
  const auto* par_ar = obs::find_phase(par.phases, "allreduce");
  ASSERT_NE(seq_ar, nullptr);
  ASSERT_NE(par_ar, nullptr);
  EXPECT_EQ(seq_ar->count, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(par_ar->count, static_cast<std::uint64_t>(rounds));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistributedAgreement,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 1, 1},
                      std::tuple{2, 4, 1}, std::tuple{3, 4, 1},
                      std::tuple{4, 8, 1}, std::tuple{4, 4, 3},
                      std::tuple{2, 16, 2}));

TEST_F(RcSfistaTest, DistributedRejectsVarianceReduction) {
  SolverOptions opts;
  opts.variance_reduction = true;
  dist::ThreadGroup group(2);
  EXPECT_THROW(solve_rc_sfista_distributed(problem_, opts, group),
               InvalidArgument);
}

TEST_F(RcSfistaTest, RecursiveDoublingBackendAgrees) {
  SolverOptions opts;
  opts.max_iters = 24;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.track_history = false;
  const auto seq = solve_rc_sfista(problem_, opts);
  dist::ThreadGroup group(4, dist::AllreduceAlgo::kRecursiveDoubling);
  const auto par = solve_rc_sfista_distributed(problem_, opts, group);
  EXPECT_LT(la::max_abs_diff(seq.w.span(), par.w.span()), 1e-10);
}


// ---------------------------------------------------------------------------
// Generic regularizer support (engine option).
// ---------------------------------------------------------------------------

TEST_F(RcSfistaTest, ElasticNetRegularizerSatisfiesOptimality) {
  // Run the engine with an elastic-net regularizer override and verify the
  // stationarity conditions of min f(w) + l1|w|_1 + (l2/2)||w||_2^2:
  //   grad f + l2 w = -l1 sign(w_j) on the support, |.| <= l1 off it.
  const double l1 = 0.01, l2 = 0.05;
  const prox::ElasticNetRegularizer reg(l1, l2);
  SolverOptions opts;
  opts.max_iters = 3000;
  opts.sampling_rate = 1.0;  // deterministic
  opts.regularizer = &reg;
  const auto result = solve_rc_sfista(problem_, opts);
  la::Vector grad(problem_.dim());
  problem_.full_gradient(result.w.span(), grad.span());
  for (std::size_t j = 0; j < problem_.dim(); ++j) {
    const double g = grad[j] + l2 * result.w[j];
    if (result.w[j] != 0.0) {
      EXPECT_NEAR(g + l1 * (result.w[j] > 0 ? 1.0 : -1.0), 0.0, 1e-5);
    } else {
      EXPECT_LE(std::abs(g), l1 + 1e-5);
    }
  }
}

TEST_F(RcSfistaTest, ZeroRegularizerSolvesLeastSquares) {
  const prox::ZeroRegularizer reg;
  SolverOptions opts;
  opts.max_iters = 3000;
  opts.sampling_rate = 1.0;
  opts.regularizer = &reg;
  const auto result = solve_rc_sfista(problem_, opts);
  la::Vector grad(problem_.dim());
  problem_.full_gradient(result.w.span(), grad.span());
  EXPECT_LT(la::amax(grad.span()), 1e-5);  // unregularized stationarity
}

TEST_F(RcSfistaTest, RegularizerOverrideKeepsKInvariance) {
  const prox::ElasticNetRegularizer reg(0.01, 0.02);
  SolverOptions opts;
  opts.max_iters = 48;
  opts.sampling_rate = 0.1;
  opts.regularizer = &reg;
  opts.k = 1;
  const auto a = solve_rc_sfista(problem_, opts);
  opts.k = 8;
  const auto b = solve_rc_sfista(problem_, opts);
  EXPECT_EQ(a.w, b.w);
}

}  // namespace
}  // namespace rcf::core
