// Tests for the performance-observatory layer: cross-rank timeline merge,
// critical-path extraction with straggler attribution, hardware-counter
// sampling (including the no-perf fallback), cost-model validation gauges,
// %r trace-path splitting, and the rcf-report malformed-input contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"
#include "fault/plan.hpp"
#include "model/cost.hpp"
#include "model/formulas.hpp"
#include "model/machine.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/critpath.hpp"
#include "obs/metrics.hpp"
#include "obs/perfctr.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "report.hpp"

namespace rcf {
namespace {

// ---------------------------------------------------------------------------
// Timeline merge: hand-built two-rank trace.
//
//   rank 0: [0,1000) gram.task | [1000,1400) allreduce seq=0
//             with nested allreduce_wait [1000,1300)    (waited 300us)
//   rank 1: [0,1200) gram.task | [1200,1400) allreduce seq=0
//             with nested allreduce_wait [1200,1300)    (waited 100us)
//
// Rank 1 arrives last (straggler); it imposed 300-100 = 200us of idle.
// ---------------------------------------------------------------------------

std::vector<obs::TimelineSpan> synthetic_spans() {
  return {
      {"gram.task", 0, -1, 0, 1000, 0.0},
      {"allreduce", 0, 0, 1000, 400, 144.0},
      {"allreduce_wait", 0, 0, 1000, 300, 0.0},
      {"gram.task", 1, -1, 0, 1200, 0.0},
      {"allreduce", 1, 0, 1200, 200, 144.0},
      {"allreduce_wait", 1, 0, 1200, 100, 0.0},
  };
}

TEST(ObsTimeline, ClassifiesSpanNames) {
  EXPECT_EQ(obs::classify_span("gram.task"), obs::SpanCategory::kCompute);
  EXPECT_EQ(obs::classify_span("allreduce"), obs::SpanCategory::kComm);
  EXPECT_EQ(obs::classify_span("broadcast"), obs::SpanCategory::kComm);
  EXPECT_EQ(obs::classify_span("allreduce_wait"), obs::SpanCategory::kWait);
  EXPECT_EQ(obs::classify_span("reduce_wait"), obs::SpanCategory::kWait);
  EXPECT_EQ(obs::classify_span("aux_collective"), obs::SpanCategory::kAux);
  EXPECT_EQ(obs::classify_span("aux_wait"), obs::SpanCategory::kAux);
  EXPECT_TRUE(obs::is_aligned_collective("allreduce"));
  EXPECT_TRUE(obs::is_aligned_collective("barrier_wait"));
  EXPECT_FALSE(obs::is_aligned_collective("allreduce_wait"));
  EXPECT_FALSE(obs::is_aligned_collective("aux_collective"));
}

TEST(ObsTimeline, MergesSyntheticTwoRankTrace) {
  const auto timeline = obs::Timeline::build(synthetic_spans());
  ASSERT_FALSE(timeline.empty());
  ASSERT_EQ(timeline.ranks().size(), 2u);
  EXPECT_EQ(timeline.start_us(), 0);
  EXPECT_EQ(timeline.end_us(), 1400);

  const auto& rt = timeline.rank_times();
  ASSERT_EQ(rt.size(), 2u);
  // Rank 0: 1000us compute, 400us collective of which 300us nested wait.
  EXPECT_NEAR(rt[0].compute_s, 1000e-6, 1e-12);
  EXPECT_NEAR(rt[0].comm_s, 100e-6, 1e-12);
  EXPECT_NEAR(rt[0].wait_s, 300e-6, 1e-12);
  EXPECT_NEAR(rt[0].aux_s, 0.0, 1e-12);
  // Rank 1: 1200us compute, 200us collective of which 100us nested wait.
  EXPECT_NEAR(rt[1].compute_s, 1200e-6, 1e-12);
  EXPECT_NEAR(rt[1].comm_s, 100e-6, 1e-12);
  EXPECT_NEAR(rt[1].wait_s, 100e-6, 1e-12);

  ASSERT_EQ(timeline.collectives().size(), 1u);
  const auto& c = timeline.collectives()[0];
  EXPECT_EQ(c.name, "allreduce");
  EXPECT_EQ(c.seq, 0);
  EXPECT_EQ(c.straggler_rank, 1);
  EXPECT_EQ(c.last_arrival_us, 1200);
  EXPECT_EQ(c.wait_imposed_us, 200);
  EXPECT_EQ(c.wait_total_us, 400);
  EXPECT_NEAR(c.words, 144.0, 1e-12);
  ASSERT_EQ(c.ranks.size(), 2u);
  EXPECT_TRUE(c.ranks[0].present);
  EXPECT_TRUE(c.ranks[1].present);
  EXPECT_EQ(c.ranks[0].wait_us, 300);
  EXPECT_EQ(c.ranks[1].wait_us, 100);
}

TEST(ObsTimeline, OrdinalFallbackAlignsUnstampedSpans) {
  // Two collectives per rank, no sequence numbers: alignment must fall
  // back to per-rank arrival order and still pair them up.
  std::vector<obs::TimelineSpan> spans = {
      {"allreduce", 0, -1, 0, 100, 8.0},
      {"allreduce", 0, -1, 500, 100, 8.0},
      {"allreduce", 1, -1, 10, 100, 8.0},
      {"allreduce", 1, -1, 510, 100, 8.0},
  };
  const auto timeline = obs::Timeline::build(std::move(spans));
  ASSERT_EQ(timeline.collectives().size(), 2u);
  for (const auto& c : timeline.collectives()) {
    EXPECT_EQ(c.name, "allreduce");
    ASSERT_EQ(c.ranks.size(), 2u);
    EXPECT_TRUE(c.ranks[0].present);
    EXPECT_TRUE(c.ranks[1].present);
    // Rank 1 starts 10us later in both instances.
    EXPECT_EQ(c.straggler_rank, 1);
  }
}

// ---------------------------------------------------------------------------
// Critical path on the synthetic timeline: exact segment arithmetic.
// ---------------------------------------------------------------------------

TEST(ObsCritpath, SyntheticPathChargesStragglerComputeAndCollective) {
  const auto timeline = obs::Timeline::build(synthetic_spans());
  const auto path = obs::critical_path(timeline);
  ASSERT_FALSE(path.segments.empty());

  const auto& seg = path.segments[0];
  EXPECT_EQ(seg.name, "allreduce");
  EXPECT_EQ(seg.seq, 0);
  EXPECT_EQ(seg.critical_rank, 1);
  // Straggler (rank 1) computed 1200us before arriving; the collective
  // then took max-end (1400) - arrival (1200) = 200us.
  EXPECT_NEAR(seg.compute_s, 1200e-6, 1e-12);
  EXPECT_NEAR(seg.collective_s, 200e-6, 1e-12);
  EXPECT_NEAR(seg.wait_imposed_s, 200e-6, 1e-12);

  // The chain explains the whole 1400us makespan: coverage = 1.
  EXPECT_NEAR(path.makespan_s, 1400e-6, 1e-12);
  EXPECT_NEAR(path.compute_s + path.comm_s, 1400e-6, 1e-12);
  EXPECT_NEAR(path.coverage, 1.0, 1e-9);

  ASSERT_FALSE(path.top_stragglers.empty());
  EXPECT_EQ(path.top_stragglers[0].rank, 1);
  EXPECT_NEAR(path.top_stragglers[0].wait_imposed_s, 200e-6, 1e-12);

  // The text renderers consume the same struct; smoke them.
  EXPECT_NE(obs::critpath_table(path).find("allreduce"), std::string::npos);
  EXPECT_NE(obs::straggler_table(path).find("allreduce"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Critical path on a real 4-rank solve with a fault-seeded straggler.
// ---------------------------------------------------------------------------

core::LassoProblem small_problem(data::Dataset& storage) {
  data::SyntheticOptions opts;
  opts.num_samples = 300;
  opts.num_features = 12;
  opts.density = 0.5;
  opts.seed = 5;
  storage = data::make_regression(opts);
  return core::LassoProblem(storage, 0.01);
}

core::SolverOptions small_options() {
  core::SolverOptions opts;
  opts.max_iters = 12;
  opts.sampling_rate = 0.3;
  opts.k = 2;
  opts.s = 2;
  opts.track_history = false;
  opts.retry.backoff_us = 1;
  return opts;
}

TEST(ObsCritpath, AttributesFaultSeededStraggler) {
  data::Dataset storage;
  const auto problem = small_problem(storage);

  // Delay rank 1 by 3ms before every engine collective: it must show up
  // as the dominant straggler in the merged timeline.
  fault::ScopedFaultPlan scoped{std::string_view("delay:rank=1,us=3000,every=1")};

  auto& session = obs::TraceSession::global();
  session.start();
  {
    dist::ThreadGroup group(4);
    const auto result =
        core::solve_rc_sfista_distributed(problem, small_options(), group);
    EXPECT_GT(result.iterations, 0u);
  }
  const auto events = session.snapshot();
  session.stop();
  session.clear();
  ASSERT_FALSE(events.empty());

  const auto timeline = obs::Timeline::build(obs::to_timeline_spans(events));
  ASSERT_EQ(timeline.ranks().size(), 4u);
  ASSERT_FALSE(timeline.collectives().size() == 0u);

  // Every aligned collective must carry a sequence number: the comm
  // backend stamps them, so an unstamped one means the contract broke.
  std::size_t rank1_stragglers = 0;
  for (const auto& c : timeline.collectives()) {
    EXPECT_GE(c.seq, 0) << c.name;
    if (c.straggler_rank == 1) {
      ++rank1_stragglers;
    }
  }
  // The injected 3ms dwarfs scheduler noise; rank 1 must lose the race to
  // the rendezvous in the (strict) majority of collectives.
  EXPECT_GT(rank1_stragglers * 2, timeline.collectives().size());

  const auto path = obs::critical_path(timeline);
  ASSERT_FALSE(path.segments.empty());
  ASSERT_FALSE(path.top_stragglers.empty());
  EXPECT_EQ(path.top_stragglers[0].rank, 1);
  EXPECT_GT(path.coverage, 0.5);
  EXPECT_GT(path.makespan_s, 0.0);
}

// ---------------------------------------------------------------------------
// Hardware counters: both the live path and the no-perf fallback must be
// structured (no crash, explicit error, inert scopes).
// ---------------------------------------------------------------------------

TEST(ObsPerfctr, SamplerIsStructuredOnBothPaths) {
  obs::PerfCounters counters;
  if (counters.available()) {
    counters.start();
    double acc = 0.0;
    for (int i = 0; i < 10000; ++i) {
      acc += static_cast<double>(i) * 1.0000001;
    }
    const auto sample = counters.stop();
    EXPECT_TRUE(sample.valid);
    EXPECT_GT(sample.cycles, 0u);
    EXPECT_GT(acc, 0.0);
  } else {
    // Fallback contract: a reason is recorded, start/stop are no-ops, and
    // the sample is explicitly invalid.
    EXPECT_FALSE(counters.error().empty());
    counters.start();
    const auto sample = counters.stop();
    EXPECT_FALSE(sample.valid);
    EXPECT_EQ(sample.cycles, 0u);
  }
}

TEST(ObsPerfctr, ScopePublishesCountersOrUnavailableMarker) {
  auto& registry = obs::MetricsRegistry::global();
  const bool was_enabled = obs::perf_scopes_enabled();
  obs::set_perf_scopes_enabled(true);
  {
    obs::PerfScope scope("obs_test_kernel");
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) {
      acc += static_cast<double>(i);
    }
    EXPECT_GT(acc, 0.0);
  }
  obs::set_perf_scopes_enabled(was_enabled);

  const auto samples =
      registry.counter("perf.obs_test_kernel.samples").value();
  if (obs::PerfCounters::supported()) {
    EXPECT_GE(samples, 1u);
  } else {
    // Structured no-op: no half-written sample, and the unavailable
    // marker is materialized (at 0) so reports can tell "off" from
    // "degraded".
    EXPECT_EQ(samples, 0u);
    const auto names = registry.counter_names();
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "perf.unavailable.obs_test_kernel"),
              names.end());
  }
}

// ---------------------------------------------------------------------------
// Cost-model validation: hand-computed Table 1 totals must round-trip
// through CostLedger into the model.* gauges exactly.
// ---------------------------------------------------------------------------

TEST(ObsCostLedger, HandComputedTotalsMatchExportedGauges) {
  // N=8, d=4, mbar=10, f=0.5, P=4 (log2 P = 2), k=2, S=2:
  //   L = (N/k) log2 P           = 4 * 2            = 8
  //   W = N d^2 log2 P           = 8 * 16 * 2       = 256
  //   F = N d^2 mbar f / P + S d^2 = 160 + 32       = 192
  model::AlgorithmShape shape;
  shape.n_iters = 8;
  shape.d = 4;
  shape.m_bar = 10;
  shape.fill = 0.5;
  shape.p = 4;
  shape.k = 2;
  shape.s = 2;

  const auto triple = model::rcsfista_cost(shape);
  EXPECT_DOUBLE_EQ(triple.latency_msgs, 8.0);
  EXPECT_DOUBLE_EQ(triple.bandwidth_words, 256.0);
  EXPECT_DOUBLE_EQ(triple.flops, 192.0);

  const auto spec = model::machine_by_name("comet");
  obs::CostLedger ledger(spec);

  // Count exactly what the closed form predicts, so every residual is 0.
  model::CostTracker measured;
  measured.add_flops(model::Phase::kGram, 192.0);
  measured.add_comm(8.0, 256.0);
  ledger.add("ksweep.k2", shape, measured);

  ASSERT_EQ(ledger.rows().size(), 1u);
  const auto& row = ledger.rows()[0];
  EXPECT_EQ(row.label, "ksweep_k2");
  EXPECT_DOUBLE_EQ(row.pred_latency_msgs, 8.0);
  EXPECT_DOUBLE_EQ(row.pred_bw_words, 256.0);
  EXPECT_DOUBLE_EQ(row.pred_flops, 192.0);
  EXPECT_DOUBLE_EQ(row.pred_rounds, 4.0);  // ceil(N/k)
  // Eq. 7 runtime (charges the raw injection alpha) and the ledger's
  // alpha-beta communication part (which includes the rendezvous
  // alpha_sync, matching what a wall measurement would see).
  const double expected_seconds =
      spec.gamma * 192.0 + spec.alpha * 8.0 + spec.beta * 256.0;
  const double expected_comm =
      spec.alpha_effective() * 8.0 + spec.beta * 256.0;
  EXPECT_DOUBLE_EQ(row.pred_seconds, expected_seconds);
  EXPECT_DOUBLE_EQ(row.pred_comm_seconds, expected_comm);
  EXPECT_DOUBLE_EQ(row.latency_err, 0.0);
  EXPECT_DOUBLE_EQ(row.bw_err, 0.0);
  EXPECT_DOUBLE_EQ(row.flops_err, 0.0);
  // No traced phase summary was supplied, so comm seconds are modeled,
  // not wall-measured, and must be marked as such.
  EXPECT_FALSE(row.meas_comm_is_wall);
  EXPECT_DOUBLE_EQ(row.comm_err, 0.0);

  obs::MetricsRegistry registry;
  ledger.export_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("model.ksweep_k2.latency.pred").value(),
                   8.0);
  EXPECT_DOUBLE_EQ(registry.gauge("model.ksweep_k2.latency.meas").value(),
                   8.0);
  EXPECT_DOUBLE_EQ(registry.gauge("model.ksweep_k2.bw.pred").value(), 256.0);
  EXPECT_DOUBLE_EQ(registry.gauge("model.ksweep_k2.flops.pred").value(),
                   192.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("model.ksweep_k2.comm_seconds.pred").value(),
      expected_comm);
  EXPECT_DOUBLE_EQ(registry.gauge("model.ksweep_k2.latency_err").value(),
                   0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("model.residual.latency").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("model.residual.bw").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("model.residual.flops").value(), 0.0);

  // The table marks modeled (non-wall) comm seconds with '*'.
  EXPECT_NE(ledger.table().find("ksweep_k2"), std::string::npos);
}

TEST(ObsCostLedger, PipelinedRowCreditsOverlap) {
  model::AlgorithmShape shape;
  shape.n_iters = 8;
  shape.d = 4;
  shape.m_bar = 10;
  shape.fill = 0.5;
  shape.p = 4;
  shape.k = 2;
  shape.s = 2;
  const auto spec = model::machine_by_name("comet");
  obs::CostLedger ledger(spec);

  model::CostTracker measured;
  measured.add_flops(model::Phase::kGram, 192.0);
  measured.add_comm(8.0, 256.0);

  // A pipelined traced run reports the collective as a post/wait phase
  // pair instead of one "allreduce" phase.
  obs::PhaseSummary phases;
  obs::PhaseStat post;
  post.name = "allreduce_post";
  post.count = 4;
  post.seconds = 1e-5;
  obs::PhaseStat wait;
  wait.name = "allreduce_wait";
  wait.count = 4;
  wait.seconds = 4e-4;
  phases.push_back(post);
  phases.push_back(wait);

  obs::OverlapCredit overlap;
  overlap.predicted = 0.75;
  overlap.measured = 0.5;
  ledger.add("pipe.k2", shape, measured, &phases, &overlap);

  ASSERT_EQ(ledger.rows().size(), 1u);
  const auto& row = ledger.rows()[0];
  EXPECT_TRUE(row.pipelined);
  EXPECT_DOUBLE_EQ(row.pred_overlap, 0.75);
  EXPECT_DOUBLE_EQ(row.meas_overlap, 0.5);
  // Rounds come from the post count; comm wall is the exposed wait time
  // plus the (small) post time.
  EXPECT_DOUBLE_EQ(row.meas_rounds, 4.0);
  EXPECT_TRUE(row.meas_comm_is_wall);
  EXPECT_DOUBLE_EQ(row.meas_comm_seconds, 4.1e-4);
  // The predicted comm seconds keep only the exposed (1 - overlap) slice.
  const double full_comm =
      spec.alpha_effective() * 8.0 + spec.beta * 256.0;
  EXPECT_DOUBLE_EQ(row.pred_comm_seconds, 0.25 * full_comm);

  obs::MetricsRegistry registry;
  ledger.export_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("model.pipe_k2.overlap.pred").value(),
                   0.75);
  EXPECT_DOUBLE_EQ(registry.gauge("model.pipe_k2.overlap.meas").value(), 0.5);
  EXPECT_NE(ledger.table().find("0.75/0.50"), std::string::npos);
}

// ---------------------------------------------------------------------------
// %r trace-path splitting.
// ---------------------------------------------------------------------------

TEST(ObsTracePath, ExpandsRankPlaceholder) {
  EXPECT_EQ(obs::expand_rank_path("tr%r.json", 3), "tr3.json");
  EXPECT_EQ(obs::expand_rank_path("a/%r/b%r.json", 12), "a/12/b12.json");
  EXPECT_EQ(obs::expand_rank_path("plain.json", 3), "plain.json");
}

TEST(ObsTracePath, WritesOneFilePerRank) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rcf_obs_rankpath";
  fs::create_directories(dir);
  const std::string pattern = (dir / "tr%r.json").string();

  auto& session = obs::TraceSession::global();
  obs::TraceConfig config;
  config.trace_out = pattern;
  session.start(config);
  // Record one span per rank from this thread by switching the rank
  // attribution (the splitting keys on TraceEvent::rank, not the thread).
  obs::set_thread_rank(0);
  session.record("gram.task", 0, 10);
  obs::set_thread_rank(1);
  session.record("gram.task", 20, 10);
  obs::set_thread_rank(0);
  EXPECT_TRUE(session.write_outputs());
  session.stop();
  session.clear();

  EXPECT_TRUE(fs::exists(dir / "tr0.json"));
  EXPECT_TRUE(fs::exists(dir / "tr1.json"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Histogram export: count / min / max / explicit bucket boundaries.
// ---------------------------------------------------------------------------

TEST(ObsMetrics, HistogramExportsMinAndBuckets) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("t_hist_us");
  hist.observe(3.0);
  hist.observe(100.0);

  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.min(), 3.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bin_edge(0), 1.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bin_edge(3), 8.0);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"min\""), std::string::npos);
  EXPECT_NE(json.find("\"max\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);

  // An empty histogram must report min = 0, not the +inf sentinel.
  auto& empty = registry.histogram("t_empty_us");
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
}

// ---------------------------------------------------------------------------
// rcf-report: malformed metrics must fail loudly, and the analyzer must
// reconstruct the timeline sections from loaded events.
// ---------------------------------------------------------------------------

TEST(ObsReport, RejectsMalformedMetricsJson) {
  tools::Report report;
  std::string error;
  EXPECT_FALSE(tools::build_report({}, "this is not json", {}, report, error));
  EXPECT_FALSE(error.empty());
}

TEST(ObsReport, BuildsTimelineSectionsFromEvents) {
  std::vector<tools::ReportEvent> events;
  for (const auto& span : synthetic_spans()) {
    tools::ReportEvent ev;
    ev.name = span.name;
    ev.rank = span.rank;
    ev.ts_us = span.start_us;
    ev.dur_us = span.dur_us;
    ev.words = span.words;
    ev.seq = span.seq;
    events.push_back(ev);
  }
  tools::Report report;
  std::string error;
  ASSERT_TRUE(tools::build_report(events, "", {}, report, error)) << error;
  ASSERT_EQ(report.decomposition.size(), 2u);
  EXPECT_NEAR(report.decomposition[1].compute_s, 1200e-6, 1e-12);
  ASSERT_FALSE(report.critpath.segments.empty());
  EXPECT_EQ(report.critpath.segments[0].critical_rank, 1);
  ASSERT_FALSE(report.critpath.top_stragglers.empty());
  EXPECT_EQ(report.critpath.top_stragglers[0].rank, 1);

  const std::string text = tools::render_text(report);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  const std::string json = tools::render_json(report);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
}

}  // namespace
}  // namespace rcf
