// Tests for LIBSVM / MatrixMarket I/O.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sparse/generate.hpp"
#include "sparse/io.hpp"

namespace rcf::sparse {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rcf_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, LibsvmParseBasic) {
  std::istringstream in(
      "1.5 1:0.5 3:2.0\n"
      "-1 2:1.25\n");
  const auto data = read_libsvm_stream(in);
  EXPECT_EQ(data.xt.rows(), 2u);
  EXPECT_EQ(data.xt.cols(), 3u);
  EXPECT_DOUBLE_EQ(data.y[0], 1.5);
  EXPECT_DOUBLE_EQ(data.y[1], -1.0);
  const auto row0 = data.xt.row(0);
  EXPECT_EQ(row0.cols[0], 0u);  // 1-based -> 0-based
  EXPECT_DOUBLE_EQ(row0.vals[1], 2.0);
}

TEST_F(IoTest, LibsvmCommentsAndBlankLines) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "2 1:1.0  # trailing comment\n");
  const auto data = read_libsvm_stream(in);
  EXPECT_EQ(data.xt.rows(), 1u);
  EXPECT_DOUBLE_EQ(data.y[0], 2.0);
}

TEST_F(IoTest, LibsvmForcedDimension) {
  std::istringstream in("1 1:1.0\n");
  const auto data = read_libsvm_stream(in, 10);
  EXPECT_EQ(data.xt.cols(), 10u);
}

TEST_F(IoTest, LibsvmDimensionTooSmallThrows) {
  std::istringstream in("1 5:1.0\n");
  EXPECT_THROW(read_libsvm_stream(in, 3), IoError);
}

TEST_F(IoTest, LibsvmMalformedTokenThrows) {
  std::istringstream in("1 notanindex\n");
  EXPECT_THROW(read_libsvm_stream(in), IoError);
  std::istringstream zero("1 0:1.0\n");
  EXPECT_THROW(read_libsvm_stream(zero), IoError);
  std::istringstream bad("1 a:b\n");
  EXPECT_THROW(read_libsvm_stream(bad), IoError);
}

TEST_F(IoTest, LibsvmRoundTrip) {
  GenerateOptions opts;
  opts.rows = 25;
  opts.cols = 13;
  opts.density = 0.3;
  LabelledMatrix data;
  data.xt = generate_random(opts);
  data.y = la::Vector(25);
  for (std::size_t i = 0; i < 25; ++i) {
    data.y[i] = static_cast<double>(i) * 0.25 - 3.0;
  }
  write_libsvm(path("roundtrip.svm"), data);
  const auto back = read_libsvm(path("roundtrip.svm"), 13);
  EXPECT_EQ(back.xt, data.xt);
  EXPECT_EQ(back.y.raw(), data.y.raw());
}

TEST_F(IoTest, LibsvmMissingFileThrows) {
  EXPECT_THROW(read_libsvm(path("does_not_exist.svm")), IoError);
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  GenerateOptions opts;
  opts.rows = 17;
  opts.cols = 9;
  opts.density = 0.4;
  const auto m = generate_random(opts);
  write_matrix_market(path("m.mtx"), m);
  const auto back = read_matrix_market(path("m.mtx"));
  EXPECT_EQ(back, m);
}

TEST_F(IoTest, MatrixMarketSymmetric) {
  std::ofstream out(path("sym.mtx"));
  out << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "2 2 2\n"
      << "1 1 1.0\n"
      << "2 1 3.0\n";
  out.close();
  const auto m = read_matrix_market(path("sym.mtx"));
  EXPECT_EQ(m.nnz(), 3u);  // mirror of the off-diagonal entry
  EXPECT_DOUBLE_EQ(m.row(0).vals[1], 3.0);
}

TEST_F(IoTest, MatrixMarketBadHeaderThrows) {
  std::ofstream out(path("bad.mtx"));
  out << "not a matrix market file\n";
  out.close();
  EXPECT_THROW(read_matrix_market(path("bad.mtx")), IoError);
}

TEST_F(IoTest, MatrixMarketTruncatedThrows) {
  std::ofstream out(path("trunc.mtx"));
  out << "%%MatrixMarket matrix coordinate real general\n"
      << "2 2 3\n"
      << "1 1 1.0\n";
  out.close();
  EXPECT_THROW(read_matrix_market(path("trunc.mtx")), IoError);
}

}  // namespace
}  // namespace rcf::sparse
