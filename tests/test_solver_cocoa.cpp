// Tests for the ProxCoCoA baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/problem.hpp"
#include "core/prox_cocoa.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"

namespace rcf::core {
namespace {

data::Dataset test_dataset() {
  data::SyntheticOptions opts;
  opts.num_samples = 900;
  opts.num_features = 30;
  opts.density = 0.5;
  opts.condition = 10.0;
  opts.noise_stddev = 0.05;
  opts.seed = 19;
  return data::make_regression(opts);
}

class CocoaTest : public ::testing::Test {
 protected:
  CocoaTest()
      : dataset_(test_dataset()),
        problem_(dataset_, 0.01),
        reference_(solve_reference(problem_)) {}

  data::Dataset dataset_;
  LassoProblem problem_;
  SolveResult reference_;
};

TEST_F(CocoaTest, SingleWorkerIsCoordinateDescent) {
  // P = 1, adding aggregation: exact cyclic coordinate descent, which must
  // converge to the lasso optimum.
  CocoaOptions opts;
  opts.max_rounds = 300;
  opts.procs = 1;
  opts.tol = 0.01;
  opts.f_star = reference_.objective;
  const auto result = solve_prox_cocoa(problem_, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.solver, "prox-cocoa");
}

TEST_F(CocoaTest, ManyWorkersStillDecrease) {
  CocoaOptions opts;
  opts.max_rounds = 60;
  opts.procs = 8;
  opts.f_star = reference_.objective;
  const auto result = solve_prox_cocoa(problem_, opts);
  ASSERT_FALSE(result.history.empty());
  EXPECT_LT(result.history.back().objective,
            result.history.front().objective);
  // Objective must never increase (block-separable descent with safe
  // aggregation).
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i].objective,
              result.history[i - 1].objective + 1e-10);
  }
}

TEST_F(CocoaTest, MoreWorkersSlowPerRoundProgress) {
  // The sigma' = P scaling makes per-round progress conservative: after a
  // fixed number of rounds, more workers must not be (much) better.
  CocoaOptions opts;
  opts.max_rounds = 30;
  opts.procs = 1;
  const auto p1 = solve_prox_cocoa(problem_, opts);
  opts.procs = 16;
  const auto p16 = solve_prox_cocoa(problem_, opts);
  EXPECT_GE(p16.objective, p1.objective - 1e-9);
}

TEST_F(CocoaTest, AveragingAlsoConverges) {
  CocoaOptions opts;
  opts.max_rounds = 150;
  opts.procs = 4;
  opts.aggregation = CocoaAggregation::kAverage;
  opts.f_star = reference_.objective;
  const auto result = solve_prox_cocoa(problem_, opts);
  EXPECT_LT(result.history.back().objective,
            result.history.front().objective);
}

TEST_F(CocoaTest, MaintainedObjectiveMatchesRecomputed) {
  CocoaOptions opts;
  opts.max_rounds = 25;
  opts.procs = 4;
  const auto result = solve_prox_cocoa(problem_, opts);
  // History objective comes from the incrementally maintained residual; it
  // must agree with a from-scratch evaluation at the final iterate.
  EXPECT_NEAR(result.history.back().objective, result.objective,
              1e-9 * std::max(1.0, std::abs(result.objective)));
}

TEST_F(CocoaTest, CommunicationChargesMWordsPerRound) {
  CocoaOptions opts;
  opts.max_rounds = 10;
  opts.procs = 8;  // log2 = 3
  const auto result = solve_prox_cocoa(problem_, opts);
  EXPECT_DOUBLE_EQ(result.cost.messages(), 10.0 * 3.0);
  EXPECT_DOUBLE_EQ(result.cost.words(), 10.0 * 900.0 * 3.0);
}

TEST_F(CocoaTest, DeterministicForFixedSeed) {
  CocoaOptions opts;
  opts.max_rounds = 15;
  opts.procs = 4;
  opts.seed = 77;
  const auto a = solve_prox_cocoa(problem_, opts);
  const auto b = solve_prox_cocoa(problem_, opts);
  EXPECT_EQ(a.w, b.w);
}

TEST_F(CocoaTest, LocalEpochsAccelerateRounds) {
  CocoaOptions opts;
  opts.max_rounds = 20;
  opts.procs = 4;
  opts.local_epochs = 1;
  const auto e1 = solve_prox_cocoa(problem_, opts);
  opts.local_epochs = 4;
  const auto e4 = solve_prox_cocoa(problem_, opts);
  EXPECT_LE(e4.objective, e1.objective + 1e-12);
}

TEST_F(CocoaTest, InvalidOptionsThrow) {
  CocoaOptions opts;
  opts.max_rounds = 0;
  EXPECT_THROW(solve_prox_cocoa(problem_, opts), InvalidArgument);
  opts = {};
  opts.local_epochs = 0;
  EXPECT_THROW(solve_prox_cocoa(problem_, opts), InvalidArgument);
  opts = {};
  opts.procs = 0;
  EXPECT_THROW(solve_prox_cocoa(problem_, opts), InvalidArgument);
  opts = {};
  opts.tol = 0.1;
  EXPECT_THROW(solve_prox_cocoa(problem_, opts), InvalidArgument);
}

}  // namespace
}  // namespace rcf::core
