// Tests for the sampled-Gram kernel: correctness against dense reference,
// flop accounting, and partition-sum consistency (the distributed identity).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "sparse/generate.hpp"
#include "sparse/gram.hpp"

namespace rcf::sparse {
namespace {

/// Dense reference: H = (1/|idx|) sum x_i x_i^T, R = (1/|idx|) sum y_i x_i.
void dense_reference(const CsrMatrix& xt, std::span<const double> y,
                     std::span<const std::uint32_t> idx, la::Matrix& h,
                     la::Vector& r) {
  const std::size_t d = xt.cols();
  h.reset(d, d);
  r = la::Vector(d);
  const auto dense = xt.to_dense();
  const double scale = 1.0 / static_cast<double>(idx.size());
  for (auto i : idx) {
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = dense[i * d + a];
      r[a] += scale * y[i] * xa;
      for (std::size_t b = 0; b < d; ++b) {
        h(a, b) += scale * xa * dense[i * d + b];
      }
    }
  }
}

CsrMatrix test_matrix(std::size_t rows = 60, std::size_t cols = 12,
                      double density = 0.4) {
  GenerateOptions opts;
  opts.rows = rows;
  opts.cols = cols;
  opts.density = density;
  opts.seed = 17;
  return generate_random(opts);
}

TEST(SampledGram, MatchesDenseReference) {
  const auto xt = test_matrix();
  la::Vector y(60);
  Rng rng(2, 0);
  for (auto& v : y) v = rng.normal();

  Rng srng(3, 1);
  const auto idx = srng.sample_without_replacement(60, 20);
  la::Matrix h(12, 12), href;
  la::Vector r(12), rref;
  sampled_gram(xt, y.span(), idx, h, r.span());
  dense_reference(xt, y.span(), idx, href, rref);
  EXPECT_LT(la::Matrix::max_abs_diff(h, href), 1e-13);
  EXPECT_LT(la::max_abs_diff(r.span(), rref.span()), 1e-13);
}

TEST(SampledGram, DenseRowsFastPathMatches) {
  // density = 1 exercises the contiguous-row fast path.
  const auto xt = test_matrix(30, 9, 1.0);
  la::Vector y(30, 1.0);
  Rng srng(3, 1);
  const auto idx = srng.sample_without_replacement(30, 10);
  la::Matrix h(9, 9), href;
  la::Vector r(9), rref;
  sampled_gram(xt, y.span(), idx, h, r.span());
  dense_reference(xt, y.span(), idx, href, rref);
  EXPECT_LT(la::Matrix::max_abs_diff(h, href), 1e-13);
  EXPECT_LT(la::max_abs_diff(r.span(), rref.span()), 1e-12);
}

TEST(SampledGram, ResultIsSymmetric) {
  const auto xt = test_matrix();
  la::Vector y(60, 0.5);
  Rng srng(9, 1);
  const auto idx = srng.sample_without_replacement(60, 15);
  la::Matrix h(12, 12);
  la::Vector r(12);
  sampled_gram(xt, y.span(), idx, h, r.span());
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_EQ(h(i, j), h(j, i));
    }
  }
}

TEST(SampledGram, FullGramEqualsAllIndices) {
  const auto xt = test_matrix();
  la::Vector y(60);
  Rng rng(2, 0);
  for (auto& v : y) v = rng.normal();
  la::Matrix h1(12, 12), h2(12, 12);
  la::Vector r1(12), r2(12);
  full_gram(xt, y.span(), h1, r1.span());
  std::vector<std::uint32_t> all(60);
  std::iota(all.begin(), all.end(), 0u);
  sampled_gram(xt, y.span(), all, h2, r2.span());
  EXPECT_EQ(la::Matrix::max_abs_diff(h1, h2), 0.0);
}

TEST(SampledGram, PartitionedAccumulationSumsToWhole) {
  // The distributed identity: per-rank partial sums (scaled by the global
  // 1/mbar) add up to the sequential result.
  const auto xt = test_matrix(80, 10, 0.5);
  la::Vector y(80);
  Rng rng(4, 0);
  for (auto& v : y) v = rng.normal();
  Rng srng(5, 1);
  const auto idx = srng.sample_without_replacement(80, 32);

  la::Matrix h_seq(10, 10);
  la::Vector r_seq(10);
  sampled_gram(xt, y.span(), idx, h_seq, r_seq.span());

  la::Matrix h_sum(10, 10);
  la::Vector r_sum(10);
  const double scale = 1.0 / 32.0;
  // Split the sorted index set at an arbitrary boundary (rank 0: rows < 40).
  std::vector<std::uint32_t> lo, hi;
  for (auto i : idx) {
    (i < 40 ? lo : hi).push_back(i);
  }
  accumulate_sampled_gram(xt, y.span(), lo, scale, h_sum, r_sum.span());
  accumulate_sampled_gram(xt, y.span(), hi, scale, h_sum, r_sum.span());
  la::symmetrize_from_upper(h_sum);
  EXPECT_LT(la::Matrix::max_abs_diff(h_seq, h_sum), 1e-14);
  EXPECT_LT(la::max_abs_diff(r_seq.span(), r_sum.span()), 1e-14);
}

TEST(SampledGram, UnbiasedEstimatorOfFullGram) {
  // E[H_S] = H: average many sampled Grams and compare.
  const auto xt = test_matrix(200, 8, 0.6);
  la::Vector y(200, 1.0);
  la::Matrix h_full(8, 8), h_avg(8, 8), h_s(8, 8);
  la::Vector r(8);
  full_gram(xt, y.span(), h_full, r.span());
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(100, static_cast<std::uint64_t>(t));
    const auto idx = rng.sample_without_replacement(200, 20);
    sampled_gram(xt, y.span(), idx, h_s, r.span());
    la::axpy(1.0 / kTrials, h_s.flat(), h_avg.flat());
  }
  EXPECT_LT(la::Matrix::max_abs_diff(h_full, h_avg), 0.05);
}

TEST(SampledGram, FlopCountMatchesPredictor) {
  const auto xt = test_matrix();
  la::Vector y(60, 1.0);
  Rng srng(6, 1);
  const auto idx = srng.sample_without_replacement(60, 25);
  la::Matrix h(12, 12);
  la::Vector r(12);
  const auto flops = sampled_gram(xt, y.span(), idx, h, r.span());
  EXPECT_EQ(flops, sampled_gram_flops(xt, idx));
  EXPECT_GT(flops, 0u);
}

TEST(SampledGram, RejectsBadShapes) {
  const auto xt = test_matrix();
  la::Vector y(60, 1.0);
  Rng srng(6, 1);
  const auto idx = srng.sample_without_replacement(60, 5);
  la::Matrix h_bad(5, 5);
  la::Vector r(12);
  EXPECT_THROW(sampled_gram(xt, y.span(), idx, h_bad, r.span()),
               InvalidArgument);
  la::Matrix h(12, 12);
  la::Vector r_bad(3);
  EXPECT_THROW(sampled_gram(xt, y.span(), idx, h, r_bad.span()),
               InvalidArgument);
  EXPECT_THROW(sampled_gram(xt, y.span(), {}, h, r.span()), InvalidArgument);
}

}  // namespace
}  // namespace rcf::sparse
