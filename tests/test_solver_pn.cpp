// Tests for the proximal Newton driver with both inner solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/problem.hpp"
#include "core/prox_newton.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"

namespace rcf::core {
namespace {

data::Dataset test_dataset() {
  data::SyntheticOptions opts;
  opts.num_samples = 1000;
  opts.num_features = 36;
  opts.density = 0.4;
  opts.condition = 20.0;
  opts.noise_stddev = 0.05;
  opts.seed = 31;
  return data::make_regression(opts);
}

class PnTest : public ::testing::Test {
 protected:
  PnTest()
      : dataset_(test_dataset()),
        problem_(dataset_, 0.01),
        reference_(solve_reference(problem_)) {}

  data::Dataset dataset_;
  LassoProblem problem_;
  SolveResult reference_;
};

TEST_F(PnTest, FistaInnerConverges) {
  PnOptions opts;
  opts.max_outer = 25;
  opts.inner_iters = 50;
  opts.hessian_sampling_rate = 0.3;
  opts.tol = 0.01;
  opts.f_star = reference_.objective;
  const auto result = solve_proximal_newton(problem_, opts);
  EXPECT_TRUE(result.converged) << "rel_error = " << result.rel_error;
  EXPECT_EQ(result.solver, "pn-fista");
}

TEST_F(PnTest, RcSfistaInnerConverges) {
  PnOptions opts;
  opts.max_outer = 25;
  opts.inner_iters = 50;
  opts.hessian_sampling_rate = 0.3;
  opts.inner = PnInnerSolver::kRcSfista;
  opts.k = 4;
  opts.s = 2;
  opts.tol = 0.01;
  opts.f_star = reference_.objective;
  const auto result = solve_proximal_newton(problem_, opts);
  EXPECT_TRUE(result.converged) << "rel_error = " << result.rel_error;
  EXPECT_EQ(result.solver, "pn-rc-sfista");
}

TEST_F(PnTest, ObjectiveMonotoneUnderSafeguard) {
  PnOptions opts;
  opts.max_outer = 12;
  opts.inner_iters = 25;
  opts.hessian_sampling_rate = 0.1;  // noisy Hessians: safeguard must act
  opts.inner = PnInnerSolver::kRcSfista;
  const auto result = solve_proximal_newton(problem_, opts);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i].objective,
              result.history[i - 1].objective + 1e-12);
  }
}

TEST_F(PnTest, DeterministicForFixedSeed) {
  PnOptions opts;
  opts.max_outer = 6;
  opts.inner_iters = 20;
  opts.seed = 5;
  const auto a = solve_proximal_newton(problem_, opts);
  const auto b = solve_proximal_newton(problem_, opts);
  EXPECT_EQ(a.w, b.w);
}

TEST_F(PnTest, OverlapReducesRounds) {
  PnOptions opts;
  opts.max_outer = 4;
  opts.inner_iters = 32;
  opts.inner = PnInnerSolver::kRcSfista;
  opts.procs = 16;
  opts.k = 1;
  const auto k1 = solve_proximal_newton(problem_, opts);
  opts.k = 8;
  const auto k8 = solve_proximal_newton(problem_, opts);
  // Inner-solve allreduce rounds shrink by ~k; the shared per-outer rounds
  // (gradient + step probe) are identical.
  EXPECT_LT(k8.history.back().comm_rounds, k1.history.back().comm_rounds);
  EXPECT_LT(k8.cost.messages(), k1.cost.messages());
}

TEST_F(PnTest, FistaInnerCommunicatesDWordsPerInnerIteration) {
  PnOptions opts;
  opts.max_outer = 2;
  opts.inner_iters = 10;
  opts.procs = 4;
  const auto result = solve_proximal_newton(problem_, opts);
  // Every inner iteration is one allreduce round (plus per-outer overhead),
  // so rounds must exceed max_outer * inner_iters.
  EXPECT_GE(result.history.back().comm_rounds, 2u * 10u);
}

TEST_F(PnTest, InvalidOptionsThrow) {
  PnOptions opts;
  opts.max_outer = 0;
  EXPECT_THROW(solve_proximal_newton(problem_, opts), InvalidArgument);
  opts = {};
  opts.inner_iters = 0;
  EXPECT_THROW(solve_proximal_newton(problem_, opts), InvalidArgument);
  opts = {};
  opts.hessian_sampling_rate = 0.0;
  EXPECT_THROW(solve_proximal_newton(problem_, opts), InvalidArgument);
  opts = {};
  opts.damping = 1.5;
  EXPECT_THROW(solve_proximal_newton(problem_, opts), InvalidArgument);
  opts = {};
  opts.tol = 0.1;  // without f_star
  EXPECT_THROW(solve_proximal_newton(problem_, opts), InvalidArgument);
}

TEST_F(PnTest, HistoryTracksOuterIterations) {
  PnOptions opts;
  opts.max_outer = 7;
  opts.inner_iters = 10;
  const auto result = solve_proximal_newton(problem_, opts);
  EXPECT_EQ(result.history.size(), 7u);
  EXPECT_EQ(result.history.back().iteration, 7);
}

}  // namespace
}  // namespace rcf::core
