// Tests for the CSR matrix: construction, kernels, slicing, transpose.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"
#include "sparse/generate.hpp"

namespace rcf::sparse {
namespace {

CsrMatrix small() {
  // [1 0 2]
  // [0 0 0]
  // [3 4 0]
  return CsrMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(Csr, FromTripletsBasics) {
  const auto m = small();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_nnz(1), 0u);
  EXPECT_DOUBLE_EQ(m.density(), 4.0 / 9.0);
}

TEST(Csr, DuplicatesAreSummed) {
  const auto m =
      CsrMatrix::from_triplets(1, 2, {{0, 1, 1.5}, {0, 1, 2.5}, {0, 0, 1.0}});
  EXPECT_EQ(m.nnz(), 2u);
  const auto row = m.row(0);
  EXPECT_DOUBLE_EQ(row.vals[1], 4.0);
}

TEST(Csr, DuplicatesCancellingToZeroAreDropped) {
  const auto m = CsrMatrix::from_triplets(1, 1, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Csr, OutOfBoundsTripletThrows) {
  EXPECT_THROW(CsrMatrix::from_triplets(1, 1, {{0, 1, 1.0}}),
               InvalidArgument);
  EXPECT_THROW(CsrMatrix::from_triplets(1, 1, {{1, 0, 1.0}}),
               InvalidArgument);
}

TEST(Csr, FromPartsValidates) {
  // Non-monotone row_ptr.
  EXPECT_THROW(CsrMatrix::from_parts(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               InvalidArgument);
  // Unsorted columns within a row.
  EXPECT_THROW(CsrMatrix::from_parts(1, 3, {0, 2}, {2, 0}, {1.0, 2.0}),
               InvalidArgument);
  // Column out of range.
  EXPECT_THROW(CsrMatrix::from_parts(1, 2, {0, 1}, {5}, {1.0}),
               InvalidArgument);
  // Length mismatch.
  EXPECT_THROW(CsrMatrix::from_parts(1, 2, {0, 2}, {0, 1}, {1.0}),
               InvalidArgument);
}

TEST(Csr, FromDenseRoundTrip) {
  const std::vector<double> dense = {1.0, 0.0, 2.0, 0.0, 0.0, 0.0,
                                     3.0, 4.0, 0.0};
  const auto m = CsrMatrix::from_dense(3, 3, dense);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.to_dense(), dense);
  EXPECT_EQ(m, small());
}

TEST(Csr, Spmv) {
  const auto m = small();
  la::Vector x{1.0, 2.0, 3.0}, y(3);
  m.spmv(x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);  // 3*1 + 4*2
}

TEST(Csr, SpmvT) {
  const auto m = small();
  la::Vector x{1.0, 5.0, 2.0}, y(3);
  m.spmv_t(x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 7.0);  // 1*1 + 3*2
  EXPECT_DOUBLE_EQ(y[1], 8.0);  // 4*2
  EXPECT_DOUBLE_EQ(y[2], 2.0);  // 2*1
}

TEST(Csr, SpmvShapeChecks) {
  const auto m = small();
  la::Vector wrong(2), y(3);
  EXPECT_THROW(m.spmv(wrong.span(), y.span()), DimensionMismatch);
  EXPECT_THROW(m.spmv_t(wrong.span(), y.span()), DimensionMismatch);
}

TEST(Csr, SpmvTransposeConsistency) {
  // <A x, y> == <x, A^T y> for random data.
  GenerateOptions opts;
  opts.rows = 40;
  opts.cols = 23;
  opts.density = 0.3;
  const auto a = generate_random(opts);
  Rng rng(8, 0);
  la::Vector x(23), y(40), ax(40), aty(23);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  a.spmv(x.span(), ax.span());
  a.spmv_t(y.span(), aty.span());
  EXPECT_NEAR(la::dot(ax.span(), y.span()), la::dot(x.span(), aty.span()),
              1e-11);
}

TEST(Csr, SelectRows) {
  const auto m = small();
  const std::vector<std::uint32_t> rows = {2, 0};
  const auto s = m.select_rows(rows);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.row_nnz(0), 2u);  // old row 2
  EXPECT_DOUBLE_EQ(s.row(0).vals[1], 4.0);
  EXPECT_DOUBLE_EQ(s.row(1).vals[0], 1.0);
}

TEST(Csr, SelectRowsOutOfRangeThrows) {
  const std::vector<std::uint32_t> rows = {5};
  EXPECT_THROW(small().select_rows(rows), InvalidArgument);
}

TEST(Csr, SliceRows) {
  const auto m = small();
  const auto s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_DOUBLE_EQ(s.row(1).vals[0], 3.0);
  EXPECT_THROW(m.slice_rows(2, 1), InvalidArgument);
  EXPECT_THROW(m.slice_rows(0, 4), InvalidArgument);
}

TEST(Csr, SlicesConcatenateToWhole) {
  GenerateOptions opts;
  opts.rows = 33;
  opts.cols = 10;
  opts.density = 0.4;
  const auto a = generate_random(opts);
  const auto s1 = a.slice_rows(0, 11);
  const auto s2 = a.slice_rows(11, 33);
  EXPECT_EQ(s1.nnz() + s2.nnz(), a.nnz());
  // SpMV over slices must agree with whole-matrix SpMV.
  la::Vector x(10), y(33), y1(11), y2(22);
  Rng rng(1, 0);
  for (auto& v : x) v = rng.normal();
  a.spmv(x.span(), y.span());
  s1.spmv(x.span(), y1.span());
  s2.spmv(x.span(), y2.span());
  for (std::size_t i = 0; i < 11; ++i) EXPECT_DOUBLE_EQ(y[i], y1[i]);
  for (std::size_t i = 0; i < 22; ++i) EXPECT_DOUBLE_EQ(y[11 + i], y2[i]);
}

TEST(Csr, TransposedMatchesDense) {
  GenerateOptions opts;
  opts.rows = 12;
  opts.cols = 7;
  opts.density = 0.5;
  const auto a = generate_random(opts);
  const auto at = a.transposed();
  EXPECT_EQ(at.rows(), 7u);
  EXPECT_EQ(at.cols(), 12u);
  const auto dense = a.to_dense();
  const auto dense_t = at.to_dense();
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_DOUBLE_EQ(dense[r * 7 + c], dense_t[c * 12 + r]);
    }
  }
}

TEST(Csr, SumRowNnzSquared) {
  const auto m = small();
  EXPECT_EQ(m.sum_row_nnz_squared(), 4u + 0u + 4u);
}

TEST(Csr, MemoryBytesPositive) {
  EXPECT_GT(small().memory_bytes(), 0u);
}

TEST(Generate, ShapeAndDensity) {
  GenerateOptions opts;
  opts.rows = 100;
  opts.cols = 50;
  opts.density = 0.2;
  const auto a = generate_random(opts);
  EXPECT_EQ(a.rows(), 100u);
  EXPECT_EQ(a.cols(), 50u);
  EXPECT_NEAR(a.density(), 0.2, 0.02);
  // Every row must have the same nnz (round(f * cols)).
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(a.row_nnz(r), 10u);
  }
}

TEST(Generate, Deterministic) {
  GenerateOptions opts;
  opts.rows = 20;
  opts.cols = 20;
  opts.density = 0.3;
  opts.seed = 5;
  const auto a = generate_random(opts);
  EXPECT_EQ(a, generate_random(opts));
  opts.seed = 6;
  EXPECT_FALSE(a == generate_random(opts));
}

TEST(Generate, RejectsBadOptions) {
  GenerateOptions opts;
  opts.rows = 0;
  opts.cols = 5;
  EXPECT_THROW(generate_random(opts), InvalidArgument);
  opts.rows = 5;
  opts.density = 0.0;
  EXPECT_THROW(generate_random(opts), InvalidArgument);
  opts.density = 1.5;
  EXPECT_THROW(generate_random(opts), InvalidArgument);
}

}  // namespace
}  // namespace rcf::sparse
