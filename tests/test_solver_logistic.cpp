// Tests for the logistic-regression extension (general ERM per paper §2.1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/logistic.hpp"
#include "data/synthetic.hpp"
#include "la/blas.hpp"
#include "sparse/gram.hpp"

namespace rcf::core {
namespace {

data::Dataset test_dataset(std::size_t m = 1200, std::size_t d = 24) {
  data::SyntheticOptions opts;
  opts.num_samples = m;
  opts.num_features = d;
  opts.density = 0.5;
  opts.binary_labels = true;
  opts.noise_stddev = 0.3;
  opts.seed = 23;
  return data::make_regression(opts);
}

class LogisticTest : public ::testing::Test {
 protected:
  LogisticTest() : dataset_(test_dataset()), problem_(dataset_, 0.002) {}

  data::Dataset dataset_;
  LogisticProblem problem_;
};

TEST_F(LogisticTest, RejectsNonBinaryLabels) {
  data::SyntheticOptions opts;
  opts.num_samples = 10;
  opts.num_features = 4;
  opts.binary_labels = false;  // continuous labels
  const auto bad = data::make_regression(opts);
  EXPECT_THROW(LogisticProblem(bad, 0.1), InvalidArgument);
}

TEST_F(LogisticTest, ObjectiveAtZeroIsLogTwo) {
  la::Vector zero(24);
  EXPECT_NEAR(problem_.smooth_value(zero.span()), std::log(2.0), 1e-12);
}

TEST_F(LogisticTest, GradientMatchesFiniteDifferences) {
  la::Vector w(24);
  Rng rng(5, 0);
  for (auto& v : w) v = 0.1 * rng.normal();
  la::Vector grad(24);
  problem_.gradient(w.span(), grad.span());
  const double h = 1e-6;
  for (std::size_t j : {0ul, 11ul, 23ul}) {
    la::Vector wp = w, wm = w;
    wp[j] += h;
    wm[j] -= h;
    const double fd =
        (problem_.smooth_value(wp.span()) - problem_.smooth_value(wm.span())) /
        (2.0 * h);
    EXPECT_NEAR(grad[j], fd, 1e-6);
  }
}

TEST_F(LogisticTest, HessianWeightsAreCurvatures) {
  la::Vector w(24);
  la::Vector grad(24), weights(1200);
  problem_.gradient(w.span(), grad.span(), weights.span());
  // At w = 0, sigma = 1/2 so every weight is 1/4.
  for (std::size_t i = 0; i < 1200; ++i) {
    EXPECT_NEAR(weights[i], 0.25, 1e-12);
  }
}

TEST_F(LogisticTest, WeightedGramMatchesUnweightedAtConstantWeights) {
  la::Vector w(24);
  la::Vector grad(24), weights(1200);
  problem_.gradient(w.span(), grad.span(), weights.span());
  Rng rng(6, 1);
  const auto idx = rng.sample_without_replacement(1200, 100);
  la::Matrix hw(24, 24), h(24, 24);
  la::Vector r(24);
  sparse::weighted_sampled_gram(dataset_.xt, weights.raw(), idx, hw);
  sparse::sampled_gram(dataset_.xt, dataset_.y.span(), idx, h, r.span());
  // weights == 1/4 everywhere => weighted Gram == Gram / 4.
  la::scal(0.25, h.flat());
  EXPECT_LT(la::Matrix::max_abs_diff(hw, h), 1e-14);
}

TEST_F(LogisticTest, LipschitzBoundsCurvature) {
  // L = lambda_max((1/4m) X X^T) must dominate the curvature along random
  // directions at any w (D_ii <= 1/4).
  Rng rng(7, 0);
  la::Vector w(24), grad(24), weights(1200);
  for (auto& v : w) v = rng.normal();
  problem_.gradient(w.span(), grad.span(), weights.span());
  for (double wt : weights) {
    EXPECT_LE(wt, 0.25 + 1e-15);
    EXPECT_GE(wt, 0.0);
  }
  EXPECT_GT(problem_.lipschitz(), 0.0);
}

TEST_F(LogisticTest, FistaBaselineConverges) {
  const auto result = solve_logistic_fista(problem_, 20000, 1e-13);
  EXPECT_TRUE(result.converged);
  // Optimality: |grad_j| <= lambda off-support; grad_j = -lambda sign(w_j)
  // on support.
  la::Vector grad(24);
  problem_.gradient(result.w.span(), grad.span());
  for (std::size_t j = 0; j < 24; ++j) {
    if (result.w[j] != 0.0) {
      EXPECT_NEAR(grad[j] + 0.002 * (result.w[j] > 0 ? 1.0 : -1.0), 0.0, 1e-5);
    } else {
      EXPECT_LE(std::abs(grad[j]), 0.002 + 1e-5);
    }
  }
}

TEST_F(LogisticTest, ProxNewtonConvergesWithBothInnerSolvers) {
  const auto ref = solve_logistic_fista(problem_);
  for (auto inner : {PnInnerSolver::kFista, PnInnerSolver::kRcSfista}) {
    PnOptions opts;
    opts.max_outer = 30;
    opts.inner_iters = 60;
    opts.hessian_sampling_rate = 0.5;
    opts.inner = inner;
    opts.k = 4;
    opts.tol = 0.01;
    opts.f_star = ref.objective;
    const auto result = solve_logistic_prox_newton(problem_, opts);
    EXPECT_TRUE(result.converged)
        << result.solver << " rel_error=" << result.rel_error;
  }
}

TEST_F(LogisticTest, NewtonNeedsFewOuterIterations) {
  // Second-order methods should reach 1% in a handful of outer steps.
  const auto ref = solve_logistic_fista(problem_);
  PnOptions opts;
  opts.max_outer = 20;
  opts.inner_iters = 80;
  opts.hessian_sampling_rate = 1.0;  // exact Hessian
  opts.tol = 0.01;
  opts.f_star = ref.objective;
  const auto result = solve_logistic_prox_newton(problem_, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 12);
}

TEST_F(LogisticTest, ObjectiveMonotone) {
  PnOptions opts;
  opts.max_outer = 10;
  opts.inner_iters = 30;
  opts.hessian_sampling_rate = 0.2;
  const auto result = solve_logistic_prox_newton(problem_, opts);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i].objective,
              result.history[i - 1].objective + 1e-12);
  }
}

TEST_F(LogisticTest, OverlapReducesRounds) {
  PnOptions opts;
  opts.max_outer = 3;
  opts.inner_iters = 24;
  opts.inner = PnInnerSolver::kRcSfista;
  opts.procs = 16;
  opts.k = 1;
  const auto k1 = solve_logistic_prox_newton(problem_, opts);
  opts.k = 8;
  const auto k8 = solve_logistic_prox_newton(problem_, opts);
  EXPECT_LT(k8.history.back().comm_rounds, k1.history.back().comm_rounds);
}

TEST_F(LogisticTest, DeterministicForFixedSeed) {
  PnOptions opts;
  opts.max_outer = 4;
  opts.inner_iters = 15;
  opts.seed = 3;
  const auto a = solve_logistic_prox_newton(problem_, opts);
  const auto b = solve_logistic_prox_newton(problem_, opts);
  EXPECT_EQ(a.w, b.w);
}

TEST_F(LogisticTest, InvalidOptionsThrow) {
  PnOptions opts;
  opts.max_outer = 0;
  EXPECT_THROW(solve_logistic_prox_newton(problem_, opts), InvalidArgument);
  opts = {};
  opts.hessian_sampling_rate = 2.0;
  EXPECT_THROW(solve_logistic_prox_newton(problem_, opts), InvalidArgument);
  opts = {};
  opts.tol = 0.1;
  EXPECT_THROW(solve_logistic_prox_newton(problem_, opts), InvalidArgument);
}

}  // namespace
}  // namespace rcf::core
