// Tests for the counter-based RNG: determinism, stream independence,
// statistical sanity, and the sampling primitives the solvers depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rcf {
namespace {

TEST(Philox, KnownStructure) {
  // The block function must be a pure function of (counter, key).
  const auto a = Philox4x32::block({1, 2, 3, 4}, {5, 6});
  const auto b = Philox4x32::block({1, 2, 3, 4}, {5, 6});
  EXPECT_EQ(a, b);
  // Different counters / keys must give different blocks.
  EXPECT_NE(a, Philox4x32::block({1, 2, 3, 5}, {5, 6}));
  EXPECT_NE(a, Philox4x32::block({1, 2, 3, 4}, {5, 7}));
}

TEST(Rng, DeterministicPerSeedAndStream) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u32() == b.next_u32();
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SeedsAreIndependent) {
  Rng a(1, 0), b(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u32() == b.next_u32();
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123, 0);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(9, 0);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexUnbiased) {
  Rng rng(7, 0);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.uniform_index(kBuckets)];
  }
  for (auto c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, 0.05 * kN / kBuckets);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(7, 0);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMoments) {
  Rng rng(99, 0);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(99, 1);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(SampleWithoutReplacement, BasicContract) {
  Rng rng(5, 3);
  const auto sample = rng.sample_without_replacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (auto v : sample) {
    EXPECT_LT(v, 1000u);
  }
}

TEST(SampleWithoutReplacement, FullRange) {
  Rng rng(5, 3);
  const auto sample = rng.sample_without_replacement(50, 50);
  EXPECT_EQ(sample.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sample[i], i);  // sorted permutation of 0..49
  }
}

TEST(SampleWithoutReplacement, DenseAndSparseRegimesAgreeOnContract) {
  // count*3 >= n triggers Fisher-Yates; smaller counts use Floyd.
  for (std::uint64_t count : {5ull, 400ull}) {
    Rng rng(11, count);
    const auto sample = rng.sample_without_replacement(1000, count);
    EXPECT_EQ(sample.size(), count);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
  }
}

TEST(SampleWithoutReplacement, CountZero) {
  Rng rng(5, 3);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(SampleWithoutReplacement, CountGreaterThanNThrows) {
  Rng rng(5, 3);
  EXPECT_THROW(rng.sample_without_replacement(10, 11), InvalidArgument);
}

TEST(SampleWithoutReplacement, UniformCoverage) {
  // Every index should be sampled with roughly equal frequency.
  constexpr std::uint64_t kN = 50, kCount = 10;
  std::vector<int> hits(kN, 0);
  constexpr int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(13, static_cast<std::uint64_t>(t));
    for (auto v : rng.sample_without_replacement(kN, kCount)) {
      ++hits[v];
    }
  }
  const double expected = kTrials * static_cast<double>(kCount) / kN;
  for (auto h : hits) {
    EXPECT_NEAR(h, expected, 0.15 * expected);
  }
}

TEST(SampleWithReplacement, Range) {
  Rng rng(21, 0);
  const auto sample = rng.sample_with_replacement(10, 1000);
  EXPECT_EQ(sample.size(), 1000u);
  for (auto v : sample) {
    EXPECT_LT(v, 10u);
  }
}

TEST(DeriveSeed, Decorrelates) {
  const auto a = derive_seed(42, 1);
  const auto b = derive_seed(42, 2);
  const auto c = derive_seed(43, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(42, 1));
}

TEST(Rng, UniformRandomBitGeneratorConcept) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(1, 2);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and terminate
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace rcf
