// rcf-analyze check suite: drives the analyzer library over the seeded
// fixture corpus in tests/analyze/ and asserts an exact correspondence
// between `// BAD(<check>)` markers and emitted findings -- every marked
// line fires, nothing unmarked fires, and the known-good twins stay
// silent.  Also covers the inline-waiver path, the suppression-baseline
// round-trip, and SARIF well-formedness (via the repo's own JSON parser).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "common/json.hpp"

#ifndef RCF_ANALYZE_FIXTURE_DIR
#error "RCF_ANALYZE_FIXTURE_DIR must point at tests/analyze"
#endif

namespace {

using rcf::analyze::Baseline;
using rcf::analyze::Finding;

std::string fixture_path(const std::string& name) {
  return std::string(RCF_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// line -> expected check name, from `// BAD(<check>)` markers.
std::map<int, std::string> expected_findings(const std::string& text) {
  std::map<int, std::string> out;
  int line = 1;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string_view l(text.data() + pos, eol - pos);
    const std::size_t mark = l.find("// BAD(");
    if (mark != std::string_view::npos) {
      const std::size_t close = l.find(')', mark);
      if (close != std::string_view::npos) {
        out[line] = std::string(l.substr(mark + 7, close - mark - 7));
      }
    }
    pos = eol + 1;
    ++line;
  }
  return out;
}

struct FixtureCase {
  const char* file;
  const char* scope_as;  ///< repo prefix the checks scope the fixture under
};

/// Analyzes one fixture and asserts marker <-> finding correspondence.
/// Waived findings are excluded on both sides (good fixtures use waivers
/// to exercise that path without becoming "bad").
void check_fixture(const FixtureCase& c) {
  SCOPED_TRACE(c.file);
  const std::string text = slurp(fixture_path(c.file));
  const auto expected = expected_findings(text);
  const std::vector<Finding> findings =
      rcf::analyze::analyze_text(c.file, text, c.scope_as);

  std::map<int, std::set<std::string>> got;
  for (const Finding& f : findings) {
    EXPECT_FALSE(f.baselined) << "no baseline was applied";
    if (!f.waived) {
      got[f.line].insert(f.check);
    }
  }
  for (const auto& [line, check] : expected) {
    EXPECT_TRUE(got.count(line) != 0 && got[line].count(check) != 0)
        << "marked line " << line << " did not produce a '" << check
        << "' finding";
  }
  for (const auto& [line, checks] : got) {
    for (const std::string& check : checks) {
      const auto it = expected.find(line);
      EXPECT_TRUE(it != expected.end() && it->second == check)
          << "unmarked finding [" << check << "] at " << c.file << ":"
          << line;
    }
  }
}

TEST(Analyze, CollectiveDivergenceFiresOnSeededBad) {
  check_fixture({"divergence_bad.cpp", "src/core/fixture.cpp"});
}

TEST(Analyze, CollectiveDivergenceSilentOnKnownGood) {
  check_fixture({"divergence_good.cpp", "src/core/fixture.cpp"});
}

TEST(Analyze, NondeterministicReductionFiresOnSeededBad) {
  check_fixture({"reduction_bad.cpp", "src/la/fixture_kernel.cpp"});
}

TEST(Analyze, NondeterministicReductionSilentOnKnownGood) {
  check_fixture({"reduction_good.cpp", "src/la/fixture_kernel_ok.cpp"});
}

TEST(Analyze, HandleLeakFiresOnSeededBad) {
  check_fixture({"handle_bad.cpp", "src/core/fixture.cpp"});
}

TEST(Analyze, HandleLeakSilentOnKnownGood) {
  check_fixture({"handle_good.cpp", "src/core/fixture.cpp"});
}

TEST(Analyze, TelemetryDisciplineFiresOnSeededBad) {
  check_fixture({"telemetry_bad.cpp", "src/core/fixture.cpp"});
}

TEST(Analyze, TelemetryDisciplineSilentOnKnownGood) {
  check_fixture({"telemetry_good.cpp", "src/core/fixture.cpp"});
}

TEST(Analyze, ScopingGatesTheChecks) {
  const std::string text = slurp(fixture_path("divergence_bad.cpp"));
  // Under src/dist/ the divergence check must not run: the backends are
  // legitimately rank-conditional inside the collective implementations.
  const auto findings =
      rcf::analyze::analyze_text("divergence_bad.cpp", text,
                                 "src/dist/fixture.cpp");
  for (const Finding& f : findings) {
    EXPECT_NE(f.check, "collective-divergence");
  }
}

TEST(Analyze, InlineWaiverIsCountedNotActive) {
  const std::string text = slurp(fixture_path("telemetry_good.cpp"));
  const auto findings = rcf::analyze::analyze_text(
      "telemetry_good.cpp", text, "src/core/fixture.cpp");
  std::size_t waived = 0;
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.waived) << "active finding in known-good fixture at line "
                          << f.line;
    waived += f.waived ? 1 : 0;
  }
  EXPECT_EQ(waived, 1u) << "the std::thread waiver line must still be seen";
}

TEST(Analyze, BaselineRoundTrips) {
  const std::string text = slurp(fixture_path("handle_bad.cpp"));
  auto findings = rcf::analyze::analyze_text("handle_bad.cpp", text,
                                             "src/core/fixture.cpp");
  ASSERT_FALSE(findings.empty());

  // Serialize the active findings as a baseline, reload it, and apply it
  // to a fresh run: everything must now be suppressed, nothing stale.
  const std::string doc = rcf::analyze::render_baseline(findings);
  // render_baseline stamps NEEDS-REVIEW notes, which load_baseline accepts
  // (a note is required, its content is for humans).
  Baseline baseline;
  std::string err;
  const std::string tmp = ::testing::TempDir() + "analyze-baseline.json";
  {
    std::ofstream out(tmp);
    out << doc;
  }
  ASSERT_TRUE(rcf::analyze::load_baseline(tmp, baseline, err)) << err;
  // Entries are deduplicated by (check, file, excerpt), so there are at
  // most as many as there are active findings -- and at least one.
  ASSERT_FALSE(baseline.entries.empty());
  ASSERT_LE(baseline.entries.size(),
            static_cast<std::size_t>(
                std::count_if(findings.begin(), findings.end(),
                              rcf::analyze::active)));

  auto rerun = rcf::analyze::analyze_text("handle_bad.cpp", text,
                                          "src/core/fixture.cpp");
  rcf::analyze::apply_baseline(baseline, rerun);
  for (const Finding& f : rerun) {
    EXPECT_FALSE(rcf::analyze::active(f))
        << "finding at line " << f.line << " escaped its baseline entry";
  }
  for (const Baseline::Entry& e : baseline.entries) {
    EXPECT_TRUE(e.used) << "stale baseline entry for " << e.file;
  }
}

TEST(Analyze, BaselineIsZeroToleranceForNewFindings) {
  const std::string text = slurp(fixture_path("handle_bad.cpp"));
  auto findings = rcf::analyze::analyze_text("handle_bad.cpp", text,
                                             "src/core/fixture.cpp");
  ASSERT_GE(findings.size(), 2u);

  // A baseline naming only the first finding must leave the rest active.
  Baseline baseline;
  Baseline::Entry e;
  e.check = findings[0].check;
  e.file = findings[0].file;
  e.excerpt = findings[0].excerpt;
  e.note = "fixture";
  baseline.entries.push_back(e);
  rcf::analyze::apply_baseline(baseline, findings);
  EXPECT_TRUE(findings[0].baselined);
  std::size_t still_active = 0;
  for (const Finding& f : findings) {
    still_active += rcf::analyze::active(f) ? 1u : 0u;
  }
  EXPECT_GT(still_active, 0u);
}

TEST(Analyze, MissingBaselineFileIsEmptyNotError) {
  Baseline baseline;
  std::string err;
  EXPECT_TRUE(rcf::analyze::load_baseline(
      ::testing::TempDir() + "does-not-exist.json", baseline, err));
  EXPECT_TRUE(baseline.entries.empty());
}

TEST(Analyze, MalformedBaselineIsRejectedWithContext) {
  const std::string tmp = ::testing::TempDir() + "bad-baseline.json";
  {
    std::ofstream out(tmp);
    out << "{\"suppressions\": [{\"check\": \"handle-leak\", "
           "\"file\": \"x.cpp\"}]}";  // no note
  }
  Baseline baseline;
  std::string err;
  EXPECT_FALSE(rcf::analyze::load_baseline(tmp, baseline, err));
  EXPECT_NE(err.find("note"), std::string::npos);
}

TEST(Analyze, SarifIsWellFormed) {
  const std::string text = slurp(fixture_path("telemetry_bad.cpp"));
  const auto findings = rcf::analyze::analyze_text(
      "telemetry_bad.cpp", text, "src/core/fixture.cpp");
  ASSERT_FALSE(findings.empty());
  const std::string sarif = rcf::analyze::render_sarif(findings);
  const auto doc = rcf::parse_json(sarif);
  ASSERT_TRUE(doc.has_value()) << "SARIF output is not valid JSON";
  EXPECT_EQ(doc->string_or("version", ""), "2.1.0");
  const rcf::JsonValue* runs = doc->find("runs");
  ASSERT_TRUE(runs != nullptr && runs->is_array() && runs->array.size() == 1);
  const rcf::JsonValue* results = runs->array[0].find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  EXPECT_EQ(results->array.size(), findings.size());
  for (const rcf::JsonValue& r : results->array) {
    EXPECT_FALSE(r.string_or("ruleId", "").empty());
    const rcf::JsonValue* locs = r.find("locations");
    ASSERT_TRUE(locs != nullptr && locs->is_array() && !locs->array.empty());
  }
}

TEST(Analyze, RegistryNamesTheFourChecks) {
  std::set<std::string> names;
  for (const auto& c : rcf::analyze::check_registry()) {
    names.insert(c.name);
  }
  EXPECT_EQ(names, (std::set<std::string>{
                       "collective-divergence", "nondeterministic-reduction",
                       "handle-leak", "telemetry-discipline"}));
}

TEST(Analyze, LexerSurvivesHostileInput) {
  // Unbalanced brackets, raw strings, and preprocessor continuations must
  // not crash or wedge the frontend; flat checks still run.
  const char* hostile =
      "#define X(a) \\\n  (a))\n"
      "const char* s = R\"(rand() \" unbalanced })\";\n"
      "void f( { if ( ;\n";
  const auto findings =
      rcf::analyze::analyze_text("hostile.cpp", hostile, "src/core/x.cpp");
  for (const Finding& f : findings) {
    // rand() inside the raw string must NOT fire.
    EXPECT_EQ(f.check, "");
  }
  const auto src = rcf::analyze::lex_source("hostile.cpp", hostile);
  EXPECT_FALSE(src.balanced);
  EXPECT_TRUE(rcf::analyze::parse_functions(src).empty());
}

}  // namespace
