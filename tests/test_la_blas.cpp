// Tests for the dense BLAS substitute: levels 1-3, shape checking, and
// reference-value cross-checks.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "la/vector.hpp"

namespace rcf::la {
namespace {

TEST(Blas1, Axpy) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{10.0, 20.0, 30.0};
  axpy(2.0, x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(Blas1, Waxpby) {
  Vector x{1.0, 2.0}, y{3.0, 4.0}, w(2);
  waxpby(2.0, x.span(), -1.0, y.span(), w.span());
  EXPECT_DOUBLE_EQ(w[0], -1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(Blas1, DotNrm2Asum) {
  Vector x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(dot(x.span(), x.span()), 25.0);
  EXPECT_DOUBLE_EQ(nrm2(x.span()), 5.0);
  EXPECT_DOUBLE_EQ(asum(x.span()), 7.0);
  EXPECT_DOUBLE_EQ(amax(x.span()), 4.0);
}

TEST(Blas1, ScalCopyZero) {
  Vector x{1.0, -2.0};
  scal(-2.0, x.span());
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  Vector y(2);
  copy(x.span(), y.span());
  EXPECT_EQ(x, y);
  set_zero(y.span());
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(Blas1, MaxAbsDiff) {
  Vector a{1.0, 2.0}, b{1.5, 1.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a.span(), b.span()), 1.0);
}

TEST(Blas1, SizeMismatchThrows) {
  Vector a(3), b(4);
  EXPECT_THROW(axpy(1.0, a.span(), b.span()), DimensionMismatch);
  EXPECT_THROW((void)dot(a.span(), b.span()), DimensionMismatch);
  EXPECT_THROW(copy(a.span(), b.span()), DimensionMismatch);
}

TEST(Blas2, GemvKnownValues) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  for (std::size_t i = 0; i < 6; ++i) {
    a(i / 3, i % 3) = static_cast<double>(i + 1);
  }
  Vector x{1.0, 1.0, 1.0}, y(2, 1.0);
  gemv(1.0, a, x.span(), 2.0, y.span());
  EXPECT_DOUBLE_EQ(y[0], 8.0);   // 6 + 2
  EXPECT_DOUBLE_EQ(y[1], 17.0);  // 15 + 2
}

TEST(Blas2, GemvTransposeMatchesExplicitTranspose) {
  Rng rng(3, 0);
  Matrix a(5, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = rng.normal();
  }
  Vector x(5), y1(7), y2(7);
  for (auto& v : x) v = rng.normal();
  gemv_t(1.0, a, x.span(), 0.0, y1.span());
  const Matrix at = a.transposed();
  gemv(1.0, at, x.span(), 0.0, y2.span());
  EXPECT_LT(max_abs_diff(y1.span(), y2.span()), 1e-14);
}

TEST(Blas2, GemvShapeChecks) {
  Matrix a(2, 3);
  Vector x(2), y(2);
  EXPECT_THROW(gemv(1.0, a, x.span(), 0.0, y.span()), DimensionMismatch);
}

TEST(Blas2, Ger) {
  Matrix a(2, 2);
  Vector x{1.0, 2.0}, y{3.0, 4.0};
  ger(1.0, x.span(), y.span(), a);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 8.0);
}

TEST(Blas2, SymvRequiresSquare) {
  Matrix a(2, 3);
  Vector x(3), y(2);
  EXPECT_THROW(symv(1.0, a, x.span(), 0.0, y.span()), DimensionMismatch);
}

TEST(Blas3, GemmAgainstGemv) {
  Rng rng(4, 0);
  Matrix a(4, 6), b(6, 3), c(4, 3);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();
  gemm(1.0, a, b, 0.0, c);
  // Column j of C must equal A * (column j of B).
  for (std::size_t j = 0; j < 3; ++j) {
    Vector bj(6), cj(4);
    for (std::size_t i = 0; i < 6; ++i) bj[i] = b(i, j);
    gemv(1.0, a, bj.span(), 0.0, cj.span());
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(c(i, j), cj[i], 1e-13);
    }
  }
}

TEST(Blas3, SyrkMatchesGemmWithTranspose) {
  Rng rng(5, 0);
  Matrix a(5, 8);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  Matrix c1(5, 5), c2(5, 5);
  syrk(1.0, a, 0.0, c1);
  gemm(1.0, a, a.transposed(), 0.0, c2);
  EXPECT_LT(Matrix::max_abs_diff(c1, c2), 1e-13);
  // Result must be symmetric to the bit.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(c1(i, j), c1(j, i));
    }
  }
}

TEST(Blas3, GemmBetaAccumulates) {
  Matrix a(1, 1), b(1, 1), c(1, 1);
  a(0, 0) = 2.0;
  b(0, 0) = 3.0;
  c(0, 0) = 10.0;
  gemm(1.0, a, b, 0.5, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 11.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(6, 0);
  Matrix a(9, 17);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  EXPECT_LT(Matrix::max_abs_diff(a, a.transposed().transposed()), 0.0 + 1e-300);
}

TEST(Matrix, RowViewsAreContiguous) {
  Matrix a(3, 4);
  a(1, 2) = 5.0;
  auto row = a.row(1);
  EXPECT_DOUBLE_EQ(row[2], 5.0);
  row[3] = 7.0;
  EXPECT_DOUBLE_EQ(a(1, 3), 7.0);
}

TEST(Matrix, SymmetrizeFromUpper) {
  Matrix c(3, 3);
  c(0, 1) = 2.0;
  c(0, 2) = 3.0;
  c(1, 2) = 4.0;
  symmetrize_from_upper(c);
  EXPECT_DOUBLE_EQ(c(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(2, 1), 4.0);
}

TEST(Matrix, MaxAbsDiffShapeChecks) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW((void)Matrix::max_abs_diff(a, b), DimensionMismatch);
}

}  // namespace
}  // namespace rcf::la
