// Tests for the intra-rank execution layer (src/exec): partitioning,
// pool lifecycle, exception propagation, and -- the load-bearing property --
// the determinism contract: every pooled kernel and the full solvers produce
// BIT-IDENTICAL results at pool widths 1, 2, 7, with width 1 being exactly
// the sequential code path.  Suites are named ExecPool* so the CI TSan job
// can select them with -R ExecPool.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/prox_newton.hpp"
#include "core/solvers.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "exec/pool.hpp"
#include "la/blas.hpp"
#include "sparse/generate.hpp"
#include "sparse/gram.hpp"

namespace rcf {
namespace {

// ---------------------------------------------------------------------------
// Partitioning.
// ---------------------------------------------------------------------------

TEST(ExecPool, BlockRangeCoversDisjointly) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (const int parts : {1, 2, 3, 7, 16}) {
      std::size_t expect_begin = 0;
      std::size_t min_size = n, max_size = 0;
      for (int t = 0; t < parts; ++t) {
        const exec::Range r = exec::block_range(n, parts, t);
        EXPECT_EQ(r.begin, expect_begin) << "n=" << n << " parts=" << parts;
        expect_begin = r.end;
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_EQ(expect_begin, n);
      // Balanced: sizes differ by at most one.
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(ExecPool, TriangleRangeCoversDisjointly) {
  for (const std::size_t n : {0u, 1u, 5u, 64u, 257u}) {
    for (const int parts : {1, 2, 3, 7, 16}) {
      std::size_t expect_begin = 0;
      for (int t = 0; t < parts; ++t) {
        const exec::Range r = exec::triangle_range(n, parts, t);
        EXPECT_EQ(r.begin, expect_begin) << "n=" << n << " parts=" << parts;
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, n) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(ExecPool, TriangleRangeBalancesArea) {
  // Row i of an upper-triangle loop carries n - i units; each of the parts
  // should carry roughly total/parts.
  const std::size_t n = 1000;
  const int parts = 4;
  const double total = 0.5 * static_cast<double>(n) * (n + 1);
  for (int t = 0; t < parts; ++t) {
    const exec::Range r = exec::triangle_range(n, parts, t);
    double area = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      area += static_cast<double>(n - i);
    }
    EXPECT_NEAR(area, total / parts, total * 0.02)
        << "part " << t << " of " << parts;
  }
}

// ---------------------------------------------------------------------------
// Pool lifecycle and dispatch.
// ---------------------------------------------------------------------------

TEST(ExecPool, RunExecutesEveryTaskIndexOnce) {
  exec::Pool pool(4);
  EXPECT_EQ(pool.width(), 4);
  std::vector<int> hits(4, 0);
  pool.run("test.run", [&](int t) { ++hits[static_cast<std::size_t>(t)]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 1}));
  // Reusable: a second dispatch behaves identically.
  pool.run(nullptr, [&](int t) { ++hits[static_cast<std::size_t>(t)]; });
  EXPECT_EQ(hits, (std::vector<int>{2, 2, 2, 2}));
}

TEST(ExecPool, WidthOneRunsInline) {
  exec::Pool pool(1);
  int calls = 0;
  pool.run("test.inline", [&](int t) {
    EXPECT_EQ(t, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ExecPool, RejectsNonPositiveWidth) {
  EXPECT_THROW(exec::Pool pool(0), InvalidArgument);
  EXPECT_THROW(exec::Pool pool(-2), InvalidArgument);
}

TEST(ExecPool, ScratchPersistsAndGrows) {
  exec::Pool pool(2);
  auto s = pool.scratch(1, 16);
  EXPECT_EQ(s.size(), 16u);
  s[0] = 42.0;
  auto s2 = pool.scratch(1, 8);  // smaller request: same arena
  EXPECT_EQ(s2.size(), 8u);
  EXPECT_EQ(s2[0], 42.0);
  auto s3 = pool.scratch(1, 64);  // grows
  EXPECT_EQ(s3.size(), 64u);
}

TEST(ExecPool, ResolveWidth) {
  EXPECT_EQ(exec::Pool::resolve_width(1, 1), 1);
  EXPECT_EQ(exec::Pool::resolve_width(7, 4), 7);  // explicit wins over ranks
  // 0 = auto: hardware / ranks, at least 1 even when ranks > hardware.
  EXPECT_GE(exec::Pool::resolve_width(0, 1), 1);
  EXPECT_EQ(exec::Pool::resolve_width(0, 1 << 20), 1);
  EXPECT_THROW(static_cast<void>(exec::Pool::resolve_width(-1, 1)),
               InvalidArgument);
}

TEST(ExecPool, ThreadsFromEnv) {
  ::setenv("RCF_THREADS", "5", 1);
  EXPECT_EQ(exec::threads_from_env(1), 5);
  ::setenv("RCF_THREADS", "0", 1);
  EXPECT_EQ(exec::threads_from_env(3), 0);
  ::setenv("RCF_THREADS", "garbage", 1);
  EXPECT_EQ(exec::threads_from_env(3), 3);
  ::unsetenv("RCF_THREADS");
  EXPECT_EQ(exec::threads_from_env(2), 2);
}

TEST(ExecPool, AmbientPoolGuardNestsAndRestores) {
  EXPECT_EQ(exec::current_pool(), nullptr);
  exec::Pool outer(2), inner(3);
  {
    exec::PoolGuard g1(&outer);
    EXPECT_EQ(exec::current_pool(), &outer);
    {
      exec::PoolGuard g2(&inner);
      EXPECT_EQ(exec::current_pool(), &inner);
    }
    EXPECT_EQ(exec::current_pool(), &outer);
  }
  EXPECT_EQ(exec::current_pool(), nullptr);
}

TEST(ExecPool, WorkersSeeNoAmbientPool) {
  // Nested dispatch from a worker must degrade to inline, not deadlock.
  exec::Pool pool(3);
  exec::PoolGuard guard(&pool);
  std::vector<int> nested(3, -1);
  pool.run("test.outer", [&](int t) {
    nested[static_cast<std::size_t>(t)] =
        exec::current_pool() == nullptr ? 1 : 0;
  });
  // Thread 0 is the submitter and keeps its ambient pool; workers see none.
  EXPECT_EQ(nested[0], 0);
  EXPECT_EQ(nested[1], 1);
  EXPECT_EQ(nested[2], 1);
}

TEST(ExecPool, ExceptionPropagatesOutOfParallelFor) {
  exec::Pool pool(3);
  exec::PoolGuard guard(&pool);
  const std::size_t n = std::size_t{1} << 16;  // above the dispatch cutoff
  EXPECT_THROW(
      exec::parallel_for(n, "test.throw",
                         [&](int, exec::Range range) {
                           if (range.begin >= n / 2) {
                             throw std::runtime_error("boom");
                           }
                         }),
      std::runtime_error);
  // The pool survives a throwing dispatch and runs the next one cleanly.
  std::vector<std::size_t> counts(3, 0);
  exec::parallel_for(n, "test.recover", [&](int t, exec::Range range) {
    counts[static_cast<std::size_t>(t)] = range.size();
  });
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}), n);
}

TEST(ExecPool, ParallelForInlineWithoutPool) {
  // No ambient pool: one inline range, and exceptions surface unchanged.
  std::size_t covered = 0;
  exec::parallel_for(100, nullptr, [&](int t, exec::Range range) {
    EXPECT_EQ(t, 0);
    covered = range.size();
  });
  EXPECT_EQ(covered, 100u);
  EXPECT_THROW(exec::parallel_for(
                   10, nullptr,
                   [](int, exec::Range) { throw std::runtime_error("inline"); }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Kernel bit-identity across pool widths.  Every problem size sits above
// exec::kParallelWorkCutoff so the width > 1 runs genuinely dispatch.
// ---------------------------------------------------------------------------

sparse::CsrMatrix kernel_matrix(std::size_t rows, std::size_t cols,
                                double density) {
  sparse::GenerateOptions gen;
  gen.rows = rows;
  gen.cols = cols;
  gen.density = density;
  gen.seed = 17;
  return sparse::generate_random(gen);
}

la::Matrix dense_matrix(std::size_t rows, std::size_t cols,
                        std::uint64_t salt) {
  la::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = std::sin(0.7 * static_cast<double>(i * cols + j) +
                         static_cast<double>(salt));
    }
  }
  return m;
}

std::vector<double> dense_vector(std::size_t n, std::uint64_t salt) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::cos(1.3 * static_cast<double>(i) + static_cast<double>(salt));
  }
  return v;
}

/// Runs `kernel` with no pool (sequential reference), then under pools of
/// width 2 and 7, asserting the produced doubles are bit-identical.
template <typename Kernel>
void expect_bit_identical(const Kernel& kernel) {
  const std::vector<double> reference = kernel();
  for (const int width : {1, 2, 7}) {
    exec::Pool pool(width);
    exec::PoolGuard guard(&pool);
    const std::vector<double> pooled = kernel();
    ASSERT_EQ(pooled.size(), reference.size());
    EXPECT_EQ(pooled, reference) << "pool width " << width;
  }
}

TEST(ExecPoolKernels, SampledGramBitIdenticalAcrossWidths) {
  const auto xt = kernel_matrix(600, 48, 0.8);
  const auto y = dense_vector(600, 1);
  Rng rng(9, 0);
  const auto idx = rng.sample_without_replacement(600, 300);
  std::uint64_t reference_flops = 0;
  expect_bit_identical([&] {
    la::Matrix h(48, 48);
    std::vector<double> r(48, 0.0);
    const std::uint64_t flops =
        sparse::sampled_gram(xt, y, idx, h, r);
    if (reference_flops == 0) {
      reference_flops = flops;
    }
    EXPECT_EQ(flops, reference_flops);  // flop accounting is width-invariant
    std::vector<double> out(h.flat().begin(), h.flat().end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  });
}

TEST(ExecPoolKernels, WeightedGramBitIdenticalAcrossWidths) {
  const auto xt = kernel_matrix(600, 48, 0.8);
  const auto weights = dense_vector(600, 2);
  Rng rng(9, 1);
  const auto idx = rng.sample_without_replacement(600, 300);
  expect_bit_identical([&] {
    la::Matrix h(48, 48);
    sparse::weighted_sampled_gram(xt, weights, idx, h);
    return std::vector<double>(h.flat().begin(), h.flat().end());
  });
}

TEST(ExecPoolKernels, SpmvBitIdenticalAcrossWidths) {
  const auto a = kernel_matrix(4000, 256, 0.2);
  const auto x = dense_vector(256, 3);
  const auto xt_in = dense_vector(4000, 4);
  expect_bit_identical([&] {
    std::vector<double> y(4000), yt(256);
    a.spmv(x, y);
    a.spmv_t(xt_in, yt);
    y.insert(y.end(), yt.begin(), yt.end());
    return y;
  });
}

TEST(ExecPoolKernels, SpmmBitIdenticalAcrossWidths) {
  const auto a = kernel_matrix(2000, 128, 0.3);
  const auto b = dense_matrix(128, 16, 5);
  expect_bit_identical([&] {
    la::Matrix y(2000, 16);
    a.spmm(b, y);
    return std::vector<double>(y.flat().begin(), y.flat().end());
  });
}

TEST(ExecPoolKernels, Blas2BitIdenticalAcrossWidths) {
  const auto h = dense_matrix(256, 256, 6);
  const auto x = dense_vector(256, 7);
  expect_bit_identical([&] {
    std::vector<double> y = dense_vector(256, 8);
    std::vector<double> yt = dense_vector(256, 9);
    la::gemv(1.25, h, x, 0.5, y);
    la::gemv_t(0.75, h, x, 1.5, yt);
    la::symv(2.0, h, x, 0.0, yt);
    y.insert(y.end(), yt.begin(), yt.end());
    return y;
  });
}

TEST(ExecPoolKernels, Blas3BitIdenticalAcrossWidths) {
  const auto a = dense_matrix(64, 96, 10);
  const auto b = dense_matrix(96, 80, 11);
  expect_bit_identical([&] {
    la::Matrix c(64, 80, 0.25);
    la::gemm(1.1, a, b, 0.3, c);
    la::Matrix g(64, 64, 0.5);
    la::syrk(0.9, a, 0.2, g);
    std::vector<double> out(c.flat().begin(), c.flat().end());
    out.insert(out.end(), g.flat().begin(), g.flat().end());
    return out;
  });
}

// ---------------------------------------------------------------------------
// Solver-level bit-identity: the acceptance property of the execution
// layer.  threads = 1 is literally the sequential path, so equality with
// the width-2 and width-7 runs proves the whole solve is width-invariant.
// ---------------------------------------------------------------------------

data::Dataset solver_dataset() {
  data::SyntheticOptions gen;
  gen.num_samples = 1600;
  gen.num_features = 64;
  gen.density = 0.9;  // keeps the per-rank Gram above the dispatch cutoff
  gen.condition = 20.0;
  gen.noise_stddev = 0.05;
  gen.seed = 23;
  return data::make_regression(gen);
}

TEST(ExecPoolSolver, SequentialEngineBitIdenticalAcrossWidths) {
  const auto dataset = solver_dataset();
  const core::LassoProblem problem(dataset, 0.005);
  core::SolverOptions opts;
  opts.max_iters = 32;
  opts.sampling_rate = 0.25;
  opts.k = 4;
  opts.s = 2;
  const auto run = [&](int threads) {
    core::SolverOptions o = opts;
    o.threads = threads;
    return core::solve_rc_sfista(problem, o);
  };
  const auto ref = run(1);
  for (const int threads : {2, 7}) {
    const auto result = run(threads);
    EXPECT_EQ(result.w.raw(), ref.w.raw()) << "threads=" << threads;
    EXPECT_EQ(result.objective, ref.objective) << "threads=" << threads;
  }
}

TEST(ExecPoolSolver, FourRanksBitIdenticalAcrossPoolWidths) {
  // 4 SPMD ranks x {1, 2, 7} pool threads: the full RC-SFISTA solve must
  // produce bit-identical iterates, and they must equal the sequential
  // engine's (existing DistributedAgreement guarantee, now at any width).
  const auto dataset = solver_dataset();
  const core::LassoProblem problem(dataset, 0.005);
  core::SolverOptions opts;
  opts.max_iters = 24;
  opts.sampling_rate = 0.25;
  opts.k = 4;
  opts.track_history = false;
  const auto run = [&](int threads) {
    core::SolverOptions o = opts;
    o.threads = threads;
    dist::ThreadGroup group(4);
    return core::solve_rc_sfista_distributed(problem, o, group);
  };
  const auto ref = run(1);
  for (const int threads : {2, 7}) {
    const auto result = run(threads);
    EXPECT_EQ(result.w.raw(), ref.w.raw()) << "threads=" << threads;
  }
  const auto seq = core::solve_rc_sfista(problem, opts);
  EXPECT_LT(la::max_abs_diff(seq.w.span(), ref.w.span()), 1e-10);
}

TEST(ExecPoolSolver, ProxNewtonBitIdenticalAcrossWidths) {
  const auto dataset = solver_dataset();
  const core::LassoProblem problem(dataset, 0.005);
  core::PnOptions opts;
  opts.max_outer = 4;
  opts.inner_iters = 10;
  opts.hessian_sampling_rate = 0.25;
  const auto run = [&](int threads) {
    core::PnOptions o = opts;
    o.threads = threads;
    return core::solve_proximal_newton(problem, o);
  };
  const auto ref = run(1);
  for (const int threads : {2, 7}) {
    EXPECT_EQ(run(threads).w.raw(), ref.w.raw()) << "threads=" << threads;
  }
}

TEST(ExecPoolSolver, RejectsNegativeThreads) {
  const auto dataset = solver_dataset();
  const core::LassoProblem problem(dataset, 0.005);
  core::SolverOptions opts;
  opts.threads = -1;
  EXPECT_THROW(core::solve_rc_sfista(problem, opts), InvalidArgument);
}

}  // namespace
}  // namespace rcf
