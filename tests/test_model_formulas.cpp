// Tests for the Table 1 cost formulas and the Eq. 25-28 parameter bounds,
// including the paper's own worked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "model/formulas.hpp"

namespace rcf::model {
namespace {

AlgorithmShape base_shape() {
  AlgorithmShape s;
  s.n_iters = 100;
  s.d = 50;
  s.m_bar = 500;
  s.fill = 0.2;
  s.p = 16;
  s.k = 4;
  s.s = 2;
  return s;
}

TEST(Table1, SfistaCosts) {
  auto s = base_shape();
  const auto cost = sfista_cost(s);
  EXPECT_DOUBLE_EQ(cost.latency_msgs, 100 * 4.0);  // N log2(16)
  EXPECT_DOUBLE_EQ(cost.flops, 100.0 * 2500 * 500 * 0.2 / 16);
  EXPECT_DOUBLE_EQ(cost.bandwidth_words, 100.0 * 2500 * 4.0);
}

TEST(Table1, RcSfistaLatencyDividedByK) {
  auto s = base_shape();
  const auto rc = rcsfista_cost(s);
  const auto base = sfista_cost(s);
  EXPECT_DOUBLE_EQ(rc.latency_msgs, base.latency_msgs / s.k);
  // Bandwidth unchanged (the paper's headline claim).
  EXPECT_DOUBLE_EQ(rc.bandwidth_words, base.bandwidth_words);
  // Flops pick up the S d^2 term.
  EXPECT_DOUBLE_EQ(rc.flops, base.flops + s.s * s.d * s.d);
}

TEST(Table1, SingleProcessorNoCommunication) {
  auto s = base_shape();
  s.p = 1;
  EXPECT_DOUBLE_EQ(sfista_cost(s).latency_msgs, 0.0);
  EXPECT_DOUBLE_EQ(sfista_cost(s).bandwidth_words, 0.0);
}

TEST(Eq24, RuntimeCombinesTerms) {
  auto s = base_shape();
  MachineSpec spec;
  spec.alpha = 1.0;
  spec.beta = 1.0;
  spec.gamma = 1.0;
  const auto cost = rcsfista_cost(s);
  EXPECT_DOUBLE_EQ(rcsfista_runtime(s, spec),
                   cost.flops + cost.latency_msgs + cost.bandwidth_words);
}

TEST(Eq25, PaperWorkedExample) {
  // §5.3: Comet alpha = 1e-6, beta = 1.42e-10 => covtype (d = 54) bound
  // k <= alpha/(beta d^2) ~ 2.
  const auto spec = comet();
  const double bound = k_bound_latency_bandwidth(spec, 54.0);
  EXPECT_NEAR(bound, 2.0, 0.5);
}

TEST(Eq25, ScalesInverselyWithDSquared) {
  const auto spec = comet();
  EXPECT_NEAR(k_bound_latency_bandwidth(spec, 10.0) /
                  k_bound_latency_bandwidth(spec, 20.0),
              4.0, 1e-9);
  EXPECT_THROW((void)k_bound_latency_bandwidth(spec, 0.0),
               InvalidArgument);
}

TEST(Eq26, MonotoneInAlpha) {
  auto s = base_shape();
  auto spec = comet();
  const double b1 = k_bound_latency_flops(s, spec);
  spec.alpha *= 10.0;
  EXPECT_NEAR(k_bound_latency_flops(s, spec) / b1, 10.0, 1e-9);
}

TEST(Eq27, PaperWorkedExample) {
  // §5.3: mnist with k = 1, P = 256, N = 200, gamma = 4e-10: S <~ 7.
  AlgorithmShape s;
  s.n_iters = 200;
  s.d = 780;
  s.p = 256;
  const auto spec = comet();
  const double bound = ks_bound_sparse(s, spec);
  EXPECT_GT(bound, 4.0);
  EXPECT_LT(bound, 10.0);
}

TEST(Eq28, DependsOnBetaGammaRatio) {
  AlgorithmShape s;
  s.n_iters = 100;
  s.p = 16;
  auto spec = comet();
  const double b1 = s_bound(s, spec);
  spec.beta *= 2.0;
  EXPECT_NEAR(s_bound(s, spec) / b1, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(b1, spec.beta / 2.0 * 100.0 * 4.0 / spec.gamma);
}

TEST(Overlap, SingleProcessorFullyHidden) {
  auto s = base_shape();
  s.p = 1;
  EXPECT_DOUBLE_EQ(pipelined_overlap_fraction(s, comet(), 0), 1.0);
}

TEST(Overlap, MonotoneInStalenessAndClamped) {
  // A latency-dominated machine keeps the fraction strictly inside (0, 1)
  // at staleness 0, so the staleness ordering is visible before the clamp.
  auto s = base_shape();
  MachineSpec spec = comet();
  spec.alpha_sync = 1e-3;
  const double f0 = pipelined_overlap_fraction(s, spec, 0);
  const double f1 = pipelined_overlap_fraction(s, spec, 1);
  const double f4 = pipelined_overlap_fraction(s, spec, 4);
  EXPECT_GT(f0, 0.0);
  EXPECT_LT(f0, 1.0);
  EXPECT_LT(f0, f1);
  EXPECT_LE(f1, f4);
  EXPECT_LE(f4, 1.0);
  // Deeper staleness adds (build + update) chunks of hide time; with an
  // enormous hide budget the fraction saturates at 1.
  EXPECT_DOUBLE_EQ(pipelined_overlap_fraction(s, spec, 1000000), 1.0);
}

TEST(Overlap, MoreComputePerChunkHidesMore) {
  auto light = base_shape();
  auto heavy = base_shape();
  heavy.m_bar = 50 * light.m_bar;
  MachineSpec spec = comet();
  spec.alpha_sync = 1e-4;
  EXPECT_LT(pipelined_overlap_fraction(light, spec, 0),
            pipelined_overlap_fraction(heavy, spec, 0));
}

TEST(Overlap, RejectsBadParameters) {
  auto s = base_shape();
  EXPECT_THROW((void)pipelined_overlap_fraction(s, comet(), -1), Error);
  s.k = 0;
  EXPECT_THROW((void)pipelined_overlap_fraction(s, comet(), 0), Error);
}

TEST(Bounds, DegenerateShapesRejected) {
  AlgorithmShape s = base_shape();
  s.p = 0.5;
  EXPECT_THROW((void)sfista_cost(s), InvalidArgument);
  s = base_shape();
  s.k = 0.0;
  EXPECT_THROW((void)rcsfista_cost(s), InvalidArgument);
}

}  // namespace
}  // namespace rcf::model
