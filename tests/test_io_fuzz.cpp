// Fuzz-style negative tests for the sparse I/O parsers: every malformed
// input class must surface a structured IoError -- never a crash, never a
// silently misparsed matrix.  The generative suites at the bottom drive the
// parsers with seeded random mutations of valid files.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/generate.hpp"
#include "sparse/io.hpp"

namespace rcf::sparse {
namespace {

namespace fs = std::filesystem;

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rcf_io_fuzz_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& body) {
    const auto path = (dir_ / name).string();
    std::ofstream out(path);
    out << body;
    return path;
  }

  fs::path dir_;
};

LabelledMatrix parse_libsvm(const std::string& body,
                            std::size_t num_features = 0) {
  std::istringstream in(body);
  return read_libsvm_stream(in, num_features);
}

CsrMatrix random_csr(std::size_t rows, std::size_t cols, double density,
                     std::uint64_t seed) {
  GenerateOptions opts;
  opts.rows = rows;
  opts.cols = cols;
  opts.density = density;
  opts.seed = seed;
  return generate_random(opts);
}

LabelledMatrix random_labelled(std::size_t rows, std::size_t cols,
                               double density, std::uint64_t seed) {
  LabelledMatrix data;
  data.xt = random_csr(rows, cols, density, seed);
  std::vector<double> labels(rows);
  Rng rng(seed, 0xF022);
  for (double& y : labels) {
    y = rng.normal();
  }
  data.y = la::Vector(std::move(labels));
  return data;
}

// ---------------------------------------------------------------------------
// LIBSVM: malformed labels and tokens.

TEST_F(IoFuzzTest, LibsvmBadLabelThrowsInsteadOfSkipping) {
  // A line whose label fails to parse used to be skipped silently,
  // dropping a sample from the dataset.  It must be a structured error.
  EXPECT_THROW(parse_libsvm("nonsense 1:2.0\n"), IoError);
  EXPECT_THROW(parse_libsvm(":3 1:2.0\n"), IoError);
  EXPECT_THROW(parse_libsvm("1.5.7 1:2.0\n"), IoError);
}

TEST_F(IoFuzzTest, LibsvmLabelTrailingJunkThrows) {
  EXPECT_THROW(parse_libsvm("1x 1:2.0\n"), IoError);
  EXPECT_THROW(parse_libsvm("1.0e 1:2.0\n"), IoError);
}

TEST_F(IoFuzzTest, LibsvmExplicitPlusLabelParses) {
  const auto data = parse_libsvm("+1 1:2.0\n-1 1:3.0\n");
  ASSERT_EQ(data.y.size(), 2u);
  EXPECT_EQ(data.y[0], 1.0);
  EXPECT_EQ(data.y[1], -1.0);
}

TEST_F(IoFuzzTest, LibsvmIndexTrailingJunkThrows) {
  EXPECT_THROW(parse_libsvm("1 2x:1.0\n"), IoError);
  EXPECT_THROW(parse_libsvm("1 2 :1.0\n"), IoError);
}

TEST_F(IoFuzzTest, LibsvmNegativeIndexThrows) {
  // stoull would wrap "-3" to a huge unsigned value; the strict parser
  // must reject the sign outright.
  EXPECT_THROW(parse_libsvm("1 -3:1.0\n"), IoError);
}

TEST_F(IoFuzzTest, LibsvmIndexOverflowThrows) {
  EXPECT_THROW(parse_libsvm("1 99999999999999999999:1.0\n"), IoError);
  EXPECT_THROW(parse_libsvm("1 4294967296:1.0\n"), IoError);  // 2^32
}

TEST_F(IoFuzzTest, LibsvmValueTrailingJunkThrows) {
  EXPECT_THROW(parse_libsvm("1 2:1.0junk\n"), IoError);
  EXPECT_THROW(parse_libsvm("1 2:\n"), IoError);
}

TEST_F(IoFuzzTest, LibsvmNonFiniteValueThrows) {
  EXPECT_THROW(parse_libsvm("1 2:nan\n"), IoError);
  EXPECT_THROW(parse_libsvm("1 2:inf\n"), IoError);
  EXPECT_THROW(parse_libsvm("1 2:-inf\n"), IoError);
  EXPECT_THROW(parse_libsvm("1 2:1e999\n"), IoError);  // overflows to inf
}

TEST_F(IoFuzzTest, LibsvmDuplicateFeatureThrows) {
  // from_triplets sums duplicates, so "3:1.0 3:2.0" would silently become
  // 3.0 -- corrupt data must not change values.
  EXPECT_THROW(parse_libsvm("1 3:1.0 3:2.0\n"), IoError);
}

TEST_F(IoFuzzTest, LibsvmEmbeddedColonInValueThrows) {
  EXPECT_THROW(parse_libsvm("1 2:3:4\n"), IoError);
}

TEST_F(IoFuzzTest, LibsvmWellFormedEdgeCasesStillParse) {
  const auto data = parse_libsvm("0 1:0.0\n-2.5e-3 2:1.0 4:-7\n");
  ASSERT_EQ(data.y.size(), 2u);
  EXPECT_EQ(data.xt.cols(), 4u);
  EXPECT_EQ(data.y[1], -2.5e-3);
}

// ---------------------------------------------------------------------------
// MatrixMarket: banner, size line, and entry corruption.

TEST_F(IoFuzzTest, MatrixMarketNonRealBannerThrows) {
  for (const char* banner :
       {"%%MatrixMarket matrix coordinate pattern general",
        "%%MatrixMarket matrix coordinate complex general",
        "%%MatrixMarket matrix coordinate integer general",
        "%%MatrixMarket matrix array real general",
        "%%MatrixMarket vector coordinate real general",
        "%%MatrixMarket matrix coordinate real hermitian",
        "%%MatrixMarket matrix coordinate real"}) {
    const auto path =
        write_file("banner.mtx", std::string(banner) + "\n2 2 1\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(path), IoError) << banner;
  }
}

TEST_F(IoFuzzTest, MatrixMarketSizeLineJunkThrows) {
  const auto path = write_file(
      "junk.mtx", "%%MatrixMarket matrix coordinate real general\n"
                  "2 2 1 extra\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketNnzExceedsShapeThrows) {
  const auto path = write_file(
      "nnz.mtx", "%%MatrixMarket matrix coordinate real general\n"
                 "2 2 5\n1 1 1.0\n1 2 1.0\n2 1 1.0\n2 2 1.0\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketHugeClaimedNnzFailsCheaply) {
  // A multi-exabyte nnz claim must fail with a structured error before
  // any proportional allocation happens.
  const auto path = write_file(
      "huge.mtx", "%%MatrixMarket matrix coordinate real general\n"
                  "1000000 1000000 999999999999\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketZeroCoordinateThrows) {
  // MatrixMarket is 1-based; a 0 coordinate used to wrap to a huge
  // uint32 row index.
  const auto zero_row = write_file(
      "zr.mtx", "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n0 1 1.0\n");
  const auto zero_col = write_file(
      "zc.mtx", "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 0 1.0\n");
  EXPECT_THROW(read_matrix_market(zero_row), IoError);
  EXPECT_THROW(read_matrix_market(zero_col), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketOutOfBoundsCoordinateThrows) {
  const auto path = write_file(
      "oob.mtx", "%%MatrixMarket matrix coordinate real general\n"
                 "2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketNonFiniteValueThrows) {
  const auto path = write_file(
      "nan.mtx", "%%MatrixMarket matrix coordinate real general\n"
                 "2 2 1\n1 1 nan\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketDuplicateEntryThrows) {
  const auto path = write_file(
      "dup.mtx", "%%MatrixMarket matrix coordinate real general\n"
                 "2 2 2\n1 1 1.0\n1 1 2.0\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketSymmetricDiagonalDuplicateThrows) {
  // The mirrored copy of an off-diagonal entry collides with an explicit
  // entry at the transposed coordinate.
  const auto path = write_file(
      "symdup.mtx", "%%MatrixMarket matrix coordinate real symmetric\n"
                    "2 2 2\n2 1 1.0\n2 1 2.0\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketSymmetricNonSquareThrows) {
  const auto path = write_file(
      "rect.mtx", "%%MatrixMarket matrix coordinate real symmetric\n"
                  "2 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), IoError);
}

TEST_F(IoFuzzTest, MatrixMarketEmptyMatrixParses) {
  const auto path = write_file(
      "empty.mtx", "%%MatrixMarket matrix coordinate real general\n0 0 0\n");
  const auto m = read_matrix_market(path);
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

// ---------------------------------------------------------------------------
// Generative fuzzing: random single-character mutations of valid files must
// either round-trip to the same matrix (mutation hit a don't-care byte) or
// throw IoError -- never crash or change parsed values silently.

std::string render_libsvm(const LabelledMatrix& data) {
  std::ostringstream out;
  char buf[64];
  for (std::size_t r = 0; r < data.xt.rows(); ++r) {
    std::snprintf(buf, sizeof buf, "%.17g", data.y[r]);
    out << buf;
    const auto row = data.xt.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      std::snprintf(buf, sizeof buf, " %u:%.17g", row.cols[i] + 1,
                    row.vals[i]);
      out << buf;
    }
    out << '\n';
  }
  return out.str();
}

TEST_F(IoFuzzTest, LibsvmMutationFuzz) {
  constexpr std::uint64_t kSeed = 20180814;
  constexpr const char* kMutants = "x:- .#\t\n09e";
  Rng gen(kSeed, 0);
  const auto data = random_labelled(/*rows=*/12, /*cols=*/8,
                                    /*density=*/0.4, /*seed=*/kSeed);
  const std::string clean = render_libsvm(data);
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = clean;
    const auto pos = static_cast<std::size_t>(
        gen.uniform_index(static_cast<std::uint64_t>(mutated.size())));
    mutated[pos] = kMutants[gen.uniform_index(11)];
    try {
      const auto parsed = parse_libsvm(mutated);
      // Accepted: the mutation must not have silently changed sample count
      // beyond +/-1 (a newline edit can merge or split lines).
      EXPECT_LE(parsed.y.size(), data.y.size() + 1);
    } catch (const IoError&) {
      ++rejected;  // structured rejection is the expected common outcome
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST_F(IoFuzzTest, MatrixMarketMutationFuzz) {
  constexpr std::uint64_t kSeed = 20180815;
  constexpr const char* kMutants = "x:- .%\t\n09e";
  Rng gen(kSeed, 1);
  const auto m = random_csr(/*rows=*/9, /*cols=*/7, /*density=*/0.5,
                            /*seed=*/kSeed);
  const auto clean_path = (dir_ / "clean.mtx").string();
  write_matrix_market(clean_path, m);
  std::string clean;
  {
    std::ifstream in(clean_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    clean = buf.str();
  }
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = clean;
    const auto pos = static_cast<std::size_t>(
        gen.uniform_index(static_cast<std::uint64_t>(mutated.size())));
    mutated[pos] = kMutants[gen.uniform_index(11)];
    const auto path = write_file("mut.mtx", mutated);
    try {
      const auto parsed = read_matrix_market(path);
      EXPECT_LE(parsed.nnz(), m.nnz());
    } catch (const IoError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

// Truncating a valid file at any byte must never crash and never yield a
// larger matrix than the original.
TEST_F(IoFuzzTest, MatrixMarketTruncationSweep) {
  const auto m = random_csr(/*rows=*/6, /*cols=*/5, /*density=*/0.6,
                            /*seed=*/99);
  const auto clean_path = (dir_ / "trunc_clean.mtx").string();
  write_matrix_market(clean_path, m);
  std::string clean;
  {
    std::ifstream in(clean_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    clean = buf.str();
  }
  for (std::size_t cut = 0; cut < clean.size(); cut += 3) {
    const auto path = write_file("trunc.mtx", clean.substr(0, cut));
    try {
      const auto parsed = read_matrix_market(path);
      EXPECT_LE(parsed.nnz(), m.nnz());
    } catch (const IoError&) {
      // structured rejection is fine
    }
  }
}

TEST_F(IoFuzzTest, LibsvmRoundTripSurvivesHardening) {
  // The strict parser must still accept everything the writer emits.
  const auto data = random_labelled(/*rows=*/20, /*cols=*/11,
                                    /*density=*/0.35, /*seed=*/7);
  const auto path = (dir_ / "round.libsvm").string();
  write_libsvm(path, data);
  const auto back = read_libsvm(path, data.xt.cols());
  ASSERT_EQ(back.y.size(), data.y.size());
  for (std::size_t i = 0; i < data.y.size(); ++i) {
    EXPECT_EQ(back.y[i], data.y[i]);
  }
  EXPECT_EQ(back.xt.nnz(), data.xt.nnz());
}

}  // namespace
}  // namespace rcf::sparse
