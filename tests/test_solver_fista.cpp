// Tests for the deterministic solvers (ISTA / FISTA / reference), the
// momentum schedule, and the lasso optimality of the reference solution.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/momentum.hpp"
#include "la/blas.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"

namespace rcf::core {
namespace {

data::Dataset test_dataset(std::size_t m = 800, std::size_t d = 40,
                           double condition = 20.0, std::uint64_t seed = 42) {
  data::SyntheticOptions opts;
  opts.num_samples = m;
  opts.num_features = d;
  opts.density = 0.4;
  opts.condition = condition;
  opts.noise_stddev = 0.05;
  opts.seed = seed;
  return data::make_regression(opts);
}

class FistaTest : public ::testing::Test {
 protected:
  FistaTest() : dataset_(test_dataset()), problem_(dataset_, lambda_) {}

  static constexpr double lambda_ = 0.01;
  data::Dataset dataset_;
  LassoProblem problem_;
};

TEST(MomentumSchedule, StandardFistaValues) {
  const MomentumSchedule mu(MomentumRule::kFista);
  EXPECT_DOUBLE_EQ(mu.t(0), 1.0);
  EXPECT_NEAR(mu.t(1), (1.0 + std::sqrt(5.0)) / 2.0, 1e-15);
  EXPECT_DOUBLE_EQ(mu.mu(1), 0.0);
  EXPECT_GT(mu.mu(2), 0.0);
  // t_n grows ~ n/2, so mu_n -> 1.
  EXPECT_GT(mu.mu(200), 0.97);
  // Monotone increasing mu.
  for (int n = 2; n < 50; ++n) {
    EXPECT_GT(mu.mu(n + 1), mu.mu(n));
  }
}

TEST(MomentumSchedule, PaperTypoLosesAcceleration) {
  const MomentumSchedule mu(MomentumRule::kPaperTypo);
  // t converges to the fixed point 4/3, mu to 1/4.
  EXPECT_NEAR(mu.t(200), 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(mu.mu(200), 0.25, 1e-6);
}

TEST(MomentumSchedule, NoneIsZero) {
  const MomentumSchedule mu(MomentumRule::kNone);
  for (int n = 1; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(mu.mu(n), 0.0);
  }
}

TEST(MomentumSchedule, RandomAccessConsistency) {
  const MomentumSchedule a(MomentumRule::kFista);
  const MomentumSchedule b(MomentumRule::kFista);
  const double late = a.mu(100);  // force extension out of order
  EXPECT_DOUBLE_EQ(a.mu(3), b.mu(3));
  EXPECT_DOUBLE_EQ(late, b.mu(100));
  EXPECT_THROW((void)a.mu(0), InvalidArgument);
  EXPECT_THROW((void)a.t(-1), InvalidArgument);
}

TEST_F(FistaTest, ProblemBasics) {
  EXPECT_EQ(problem_.dim(), 40u);
  EXPECT_EQ(problem_.num_samples(), 800u);
  EXPECT_GT(problem_.lipschitz(), 0.0);
  EXPECT_GT(problem_.lambda_max(), 0.0);
  // Objective at zero is (1/2m)||y||^2.
  la::Vector zero(40);
  double y2 = 0.0;
  for (std::size_t i = 0; i < 800; ++i) {
    y2 += dataset_.y[i] * dataset_.y[i];
  }
  EXPECT_NEAR(problem_.objective(zero.span()), y2 / 1600.0, 1e-12);
}

TEST_F(FistaTest, GradientMatchesFiniteDifferences) {
  la::Vector w(40);
  Rng rng(3, 0);
  for (auto& v : w) v = rng.normal();
  la::Vector grad(40);
  problem_.full_gradient(w.span(), grad.span());
  const double h = 1e-6;
  for (std::size_t j : {0ul, 7ul, 39ul}) {
    la::Vector wp = w, wm = w;
    wp[j] += h;
    wm[j] -= h;
    const double fd =
        (problem_.smooth_value(wp.span()) - problem_.smooth_value(wm.span())) /
        (2.0 * h);
    EXPECT_NEAR(grad[j], fd, 1e-5);
  }
}

TEST_F(FistaTest, GradientMatchesHessianForm) {
  // grad f(w) = H w - R with the cached full Gram pair.
  la::Vector w(40);
  Rng rng(4, 0);
  for (auto& v : w) v = rng.normal();
  la::Vector g1(40), g2(40);
  problem_.full_gradient(w.span(), g1.span());
  la::gemv(1.0, problem_.full_hessian(), w.span(), 0.0, g2.span());
  la::axpy(-1.0, problem_.full_rhs().span(), g2.span());
  EXPECT_LT(la::max_abs_diff(g1.span(), g2.span()), 1e-10);
}

TEST_F(FistaTest, LipschitzBoundsHessianSpectrum) {
  // L must dominate the Rayleigh quotient of H for random directions.
  Rng rng(5, 0);
  const auto& h = problem_.full_hessian();
  for (int trial = 0; trial < 10; ++trial) {
    la::Vector v(40), hv(40);
    for (auto& x : v) x = rng.normal();
    la::gemv(1.0, h, v.span(), 0.0, hv.span());
    const double rayleigh =
        la::dot(v.span(), hv.span()) / la::dot(v.span(), v.span());
    EXPECT_LE(rayleigh, problem_.lipschitz() * 1.0001);
  }
}

TEST_F(FistaTest, ReferenceSatisfiesLassoOptimality) {
  const auto ref = solve_reference(problem_);
  EXPECT_TRUE(ref.converged);
  la::Vector grad(40);
  problem_.full_gradient(ref.w.span(), grad.span());
  for (std::size_t j = 0; j < 40; ++j) {
    if (ref.w[j] != 0.0) {
      // grad_j + lambda sign(w_j) = 0 on the support.
      EXPECT_NEAR(grad[j] + lambda_ * (ref.w[j] > 0 ? 1.0 : -1.0), 0.0, 1e-6);
    } else {
      // |grad_j| <= lambda off the support.
      EXPECT_LE(std::abs(grad[j]), lambda_ + 1e-6);
    }
  }
}

TEST_F(FistaTest, ConvergesToReference) {
  const auto ref = solve_reference(problem_);
  SolverOptions opts;
  opts.max_iters = 400;
  opts.tol = 1e-3;
  opts.f_star = ref.objective;
  const auto result = solve_fista(problem_, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.rel_error, 1e-3);
  EXPECT_EQ(result.solver, "fista");
}

TEST_F(FistaTest, FistaBeatsIstaAtFixedIterations) {
  SolverOptions opts;
  opts.max_iters = 60;
  const auto fista = solve_fista(problem_, opts);
  const auto ista = solve_ista(problem_, opts);
  EXPECT_LT(fista.objective, ista.objective);
  EXPECT_EQ(ista.solver, "ista");
}

TEST_F(FistaTest, PaperTypoMomentumIsSlower) {
  SolverOptions opts;
  opts.max_iters = 120;
  const auto standard = solve_fista(problem_, opts);
  opts.momentum = MomentumRule::kPaperTypo;
  const auto typo = solve_fista(problem_, opts);
  EXPECT_LT(standard.objective, typo.objective);
}

TEST_F(FistaTest, ObjectiveDecreasesOverall) {
  SolverOptions opts;
  opts.max_iters = 100;
  const auto result = solve_fista(problem_, opts);
  ASSERT_GE(result.history.size(), 100u);
  EXPECT_LT(result.history.back().objective,
            result.history.front().objective);
  // Sim-seconds and comm-rounds must be monotone.
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].sim_seconds,
              result.history[i - 1].sim_seconds);
    EXPECT_GE(result.history[i].comm_rounds,
              result.history[i - 1].comm_rounds);
  }
}

TEST_F(FistaTest, HistoryStride) {
  SolverOptions opts;
  opts.max_iters = 100;
  opts.history_stride = 10;
  const auto result = solve_fista(problem_, opts);
  EXPECT_EQ(result.history.size(), 10u);
  EXPECT_EQ(result.history.front().iteration, 10);
}

TEST_F(FistaTest, TolWithoutFStarThrows) {
  SolverOptions opts;
  opts.tol = 0.01;  // no f_star
  EXPECT_THROW(solve_fista(problem_, opts), InvalidArgument);
}

TEST_F(FistaTest, InvalidOptionsThrow) {
  SolverOptions opts;
  opts.k = 0;
  EXPECT_THROW(solve_rc_sfista(problem_, opts), InvalidArgument);
  opts = {};
  opts.s = -1;
  EXPECT_THROW(solve_rc_sfista(problem_, opts), InvalidArgument);
  opts = {};
  opts.sampling_rate = 0.0;
  EXPECT_THROW(solve_rc_sfista(problem_, opts), InvalidArgument);
  opts = {};
  opts.sampling_rate = 1.5;
  EXPECT_THROW(solve_rc_sfista(problem_, opts), InvalidArgument);
  opts = {};
  opts.procs = 0;
  EXPECT_THROW(solve_rc_sfista(problem_, opts), InvalidArgument);
  opts = {};
  opts.max_iters = 0;
  EXPECT_THROW(solve_rc_sfista(problem_, opts), InvalidArgument);
}

TEST_F(FistaTest, Theorem1StepBound) {
  // Full batch: the variance term of Eq. 10 collapses to sqrt(1/4), so the
  // bound is 1 / max(L/2 + 1/2, L).
  const double l = problem_.lipschitz();
  EXPECT_NEAR(problem_.theorem1_step_bound(800),
              1.0 / std::max(0.5 * l + 0.5, l), 1e-12);
  // Smaller batches force smaller steps.
  EXPECT_LT(problem_.theorem1_step_bound(8),
            problem_.theorem1_step_bound(400));
  // The bound never exceeds the classical 2/L region boundary scaled form.
  EXPECT_LE(problem_.theorem1_step_bound(8), 1.0 / l);
  EXPECT_THROW((void)problem_.theorem1_step_bound(0), InvalidArgument);
  EXPECT_THROW((void)problem_.theorem1_step_bound(801), InvalidArgument);
}

TEST_F(FistaTest, ExplicitStepSizeHonored) {
  SolverOptions opts;
  opts.max_iters = 5;
  opts.step_size = 1e-9;  // absurdly small: barely moves
  const auto tiny = solve_fista(problem_, opts);
  la::Vector zero(40);
  EXPECT_NEAR(tiny.objective, problem_.objective(zero.span()),
              problem_.objective(zero.span()) * 0.01);
}

}  // namespace
}  // namespace rcf::core
