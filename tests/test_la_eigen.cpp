// Tests for the power-iteration eigensolver.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "la/matrix.hpp"

namespace rcf::la {
namespace {

TEST(PowerIteration, DiagonalMatrix) {
  Matrix a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  a(3, 3) = 0.5;
  const auto result = power_iteration(a, 500, 1e-10);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 5.0, 1e-6);
}

TEST(PowerIteration, GramMatrixAgainstKnownSpectrum) {
  // A = u u^T has eigenvalue ||u||^2.
  Vector u{1.0, 2.0, 2.0};
  Matrix a(3, 3);
  ger(1.0, u.span(), u.span(), a);
  const auto result = power_iteration(a, 200, 1e-12);
  EXPECT_NEAR(result.eigenvalue, 9.0, 1e-8);
}

TEST(PowerIteration, OperatorForm) {
  // Operator that scales by 2.5 in every direction.
  const auto result = power_iteration(
      [](std::span<const double> x, std::span<double> y) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          y[i] = 2.5 * x[i];
        }
      },
      10, 100, 1e-12);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 2.5, 1e-9);
}

TEST(PowerIteration, ZeroOperator) {
  const auto result = power_iteration(
      [](std::span<const double>, std::span<double> y) {
        std::fill(y.begin(), y.end(), 0.0);
      },
      5, 50, 1e-10);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.eigenvalue, 0.0);
}

TEST(PowerIteration, DeterministicAcrossRuns) {
  Matrix a(6, 6);
  Rng rng(3, 0);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i; j < 6; ++j) {
      a(i, j) = a(j, i) = rng.normal();
    }
  }
  // Make it PSD-ish by squaring: B = A A^T.
  Matrix b(6, 6);
  syrk(1.0, a, 0.0, b);
  const auto r1 = power_iteration(b, 300, 1e-10, /*seed=*/77);
  const auto r2 = power_iteration(b, 300, 1e-10, /*seed=*/77);
  EXPECT_EQ(r1.eigenvalue, r2.eigenvalue);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

TEST(PowerIteration, RequiresSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(power_iteration(a), InvalidArgument);
}

}  // namespace
}  // namespace rcf::la
