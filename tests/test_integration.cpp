// End-to-end integration tests: the full public-API flow on paper-dataset
// clones, cross-solver agreement, and reproducibility.
#include <gtest/gtest.h>

#include <cmath>

#include "rcf.hpp"

namespace rcf {
namespace {

TEST(Integration, QuickstartFlowOnCovtypeClone) {
  // Mirrors examples/quickstart.cpp: clone -> problem -> reference ->
  // RC-SFISTA to the paper's tolerance.
  const auto dataset = data::make_paper_clone("covtype", 0.01);
  EXPECT_EQ(dataset.num_features(), 54u);
  const core::LassoProblem probe(dataset, 0.0);
  const double lambda = 0.01 * probe.lambda_max();
  const core::LassoProblem problem(dataset, lambda);
  const auto ref = core::solve_reference(problem);
  ASSERT_TRUE(ref.converged);

  core::SolverOptions opts;
  opts.max_iters = 800;
  opts.sampling_rate = 0.1;
  opts.k = 8;
  opts.s = 2;
  opts.variance_reduction = true;
  opts.tol = 0.01;
  opts.f_star = ref.objective;
  opts.procs = 16;
  const auto result = core::solve_rc_sfista(problem, opts);
  EXPECT_TRUE(result.converged) << "rel_error = " << result.rel_error;
  EXPECT_GT(result.cost.messages(), 0.0);
  EXPECT_GT(result.sim_seconds, 0.0);
}

TEST(Integration, AllSolversReachTheSameOptimum) {
  const auto dataset = data::make_paper_clone("SUSY", 0.005);
  const core::LassoProblem probe(dataset, 0.0);
  const double lambda = 0.01 * probe.lambda_max();
  const core::LassoProblem problem(dataset, lambda);
  const auto ref = core::solve_reference(problem);

  core::SolverOptions fopts;
  fopts.max_iters = 2000;
  fopts.tol = 0.005;
  fopts.f_star = ref.objective;
  const auto fista = core::solve_fista(problem, fopts);

  core::SolverOptions sopts = fopts;
  sopts.sampling_rate = 0.1;
  sopts.variance_reduction = true;
  const auto rc = core::solve_rc_sfista(problem, sopts);

  core::PnOptions popts;
  popts.max_outer = 40;
  // PN's accuracy at a given budget is set by the inexact inner solve (each
  // outer iteration restarts the inner momentum) and the sampled-Hessian
  // bias, so it gets a deeper inner budget and the looser paper tolerance.
  popts.inner_iters = 120;
  popts.hessian_sampling_rate = 0.5;
  popts.tol = 0.01;
  popts.f_star = ref.objective;
  const auto pn = core::solve_proximal_newton(problem, popts);

  core::CocoaOptions copts;
  copts.max_rounds = 4000;
  copts.local_epochs = 2;
  copts.procs = 4;
  copts.tol = 0.005;
  copts.f_star = ref.objective;
  const auto cocoa = core::solve_prox_cocoa(problem, copts);

  for (const auto* r : {&fista, &rc, &pn, &cocoa}) {
    EXPECT_TRUE(r->converged) << r->solver << " rel_error=" << r->rel_error;
    EXPECT_NEAR(r->objective, ref.objective,
                0.015 * std::abs(ref.objective))
        << r->solver;
  }
}

TEST(Integration, SupportRecovery) {
  // With low noise and strong-enough signal the lasso support must be a
  // subset of the planted support (no false positives at this lambda).
  data::SyntheticOptions gen;
  gen.num_samples = 2000;
  gen.num_features = 50;
  gen.density = 1.0;
  gen.support_fraction = 0.2;  // 10 true features
  gen.noise_stddev = 0.01;
  gen.condition = 1.0;
  gen.seed = 3;
  const auto dataset = data::make_regression(gen);
  const core::LassoProblem probe(dataset, 0.0);
  const core::LassoProblem problem(dataset, 0.05 * probe.lambda_max());
  const auto ref = core::solve_reference(problem);
  int support = 0;
  for (double v : ref.w) {
    support += v != 0.0;
  }
  EXPECT_GE(support, 5);
  EXPECT_LE(support, 20);
}

TEST(Integration, FullRunIsReproducible) {
  const auto d1 = data::make_paper_clone("covtype", 0.005, 11);
  const auto d2 = data::make_paper_clone("covtype", 0.005, 11);
  EXPECT_EQ(d1.xt, d2.xt);
  const core::LassoProblem p1(d1, 0.001), p2(d2, 0.001);
  core::SolverOptions opts;
  opts.max_iters = 60;
  opts.sampling_rate = 0.1;
  opts.k = 4;
  const auto r1 = core::solve_rc_sfista(p1, opts);
  const auto r2 = core::solve_rc_sfista(p2, opts);
  EXPECT_EQ(r1.w, r2.w);
}

TEST(Integration, DistributedEndToEnd) {
  const auto dataset = data::make_paper_clone("SUSY", 0.002);
  const core::LassoProblem problem(dataset, 0.005);
  core::SolverOptions opts;
  opts.max_iters = 60;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.s = 2;
  opts.track_history = false;
  const auto seq = core::solve_rc_sfista(problem, opts);
  dist::ThreadGroup group(4);
  const auto par = core::solve_rc_sfista_distributed(problem, opts, group);
  EXPECT_LT(la::max_abs_diff(seq.w.span(), par.w.span()), 1e-9);
  EXPECT_NEAR(seq.objective, par.objective,
              1e-9 * std::abs(seq.objective) + 1e-12);
}

TEST(Integration, CostModelRoundTripThroughRecords) {
  // The per-record raw counters must reproduce the tracker's modeled time
  // for the run's own (P, machine, collective).
  const auto dataset = data::make_paper_clone("covtype", 0.005);
  const core::LassoProblem problem(dataset, 0.001);
  core::SolverOptions opts;
  opts.max_iters = 64;
  opts.sampling_rate = 0.1;
  opts.k = 4;
  opts.procs = 16;
  const auto run = core::solve_rc_sfista(problem, opts);
  const auto& last = run.history.back();

  // Rebuild the time from raw counters (balanced-partition approximation).
  const double lg = 4.0;  // log2(16)
  const auto& m = opts.machine;
  const double rebuilt =
      m.gamma * (last.raw_gram_flops / 16.0 + last.raw_update_flops) +
      m.alpha_effective() * static_cast<double>(last.comm_rounds) * lg +
      m.beta * last.comm_payload_words * lg;
  // The tracker uses the true per-rank max for Gram flops, so allow a few
  // percent of imbalance.
  EXPECT_NEAR(rebuilt, run.sim_seconds, 0.1 * run.sim_seconds);
}

TEST(Integration, LibsvmRoundTripThroughSolver) {
  // Write a clone to LIBSVM, read it back, and verify the solver sees the
  // identical problem.
  const auto dataset = data::make_paper_clone("SUSY", 0.001);
  const std::string path = std::string(::testing::TempDir()) + "/susy.svm";
  sparse::write_libsvm(path, {dataset.xt, dataset.y});
  const auto loaded = sparse::read_libsvm(path, dataset.num_features());
  EXPECT_EQ(loaded.xt, dataset.xt);

  data::Dataset reloaded;
  reloaded.name = "reloaded";
  reloaded.xt = loaded.xt;
  reloaded.y = loaded.y;
  const core::LassoProblem p1(dataset, 0.01), p2(reloaded, 0.01);
  core::SolverOptions opts;
  opts.max_iters = 30;
  opts.sampling_rate = 0.5;
  const auto r1 = core::solve_rc_sfista(p1, opts);
  const auto r2 = core::solve_rc_sfista(p2, opts);
  EXPECT_EQ(r1.w, r2.w);
}

}  // namespace
}  // namespace rcf
