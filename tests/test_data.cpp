// Tests for datasets, synthetic generation, clones, and partitioning.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace rcf::data {
namespace {

TEST(Synthetic, ShapeAndDeterminism) {
  SyntheticOptions opts;
  opts.num_samples = 200;
  opts.num_features = 30;
  opts.density = 0.5;
  opts.seed = 11;
  const auto a = make_regression(opts);
  const auto b = make_regression(opts);
  EXPECT_EQ(a.xt, b.xt);
  EXPECT_EQ(a.y.raw(), b.y.raw());
  EXPECT_EQ(a.num_samples(), 200u);
  EXPECT_EQ(a.num_features(), 30u);
  opts.seed = 12;
  const auto c = make_regression(opts);
  EXPECT_FALSE(a.xt == c.xt);
}

TEST(Synthetic, BinaryLabels) {
  SyntheticOptions opts;
  opts.num_samples = 100;
  opts.num_features = 10;
  opts.binary_labels = true;
  const auto ds = make_regression(opts);
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    EXPECT_TRUE(ds.y[i] == 1.0 || ds.y[i] == -1.0);
  }
}

TEST(Synthetic, LabelsCarrySignal) {
  // With low noise, y must correlate with the planted model: residual of
  // the generating process should be far below label variance.
  SyntheticOptions opts;
  opts.num_samples = 500;
  opts.num_features = 20;
  opts.noise_stddev = 0.01;
  const auto ds = make_regression(opts);
  double var = 0.0;
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    var += ds.y[i] * ds.y[i];
  }
  EXPECT_GT(var / ds.num_samples(), 0.1);  // not all-noise, not all-zero
}

TEST(Synthetic, ConditioningDecaysColumnScales) {
  SyntheticOptions opts;
  opts.num_samples = 400;
  opts.num_features = 16;
  opts.density = 1.0;
  opts.condition = 100.0;
  opts.balanced_signal = false;
  const auto ds = make_regression(opts);
  // Column 0 sample-variance should be ~condition^2 times column d-1's.
  double first = 0.0, last = 0.0;
  for (std::size_t r = 0; r < ds.num_samples(); ++r) {
    const auto row = ds.xt.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      if (row.cols[i] == 0) first += row.vals[i] * row.vals[i];
      if (row.cols[i] == 15) last += row.vals[i] * row.vals[i];
    }
  }
  EXPECT_GT(first / last, 1e3);  // nominal 1e4, wide tolerance
}

TEST(Synthetic, RejectsBadOptions) {
  SyntheticOptions opts;
  opts.num_samples = 0;
  EXPECT_THROW(make_regression(opts), InvalidArgument);
  opts.num_samples = 10;
  opts.support_fraction = 0.0;
  EXPECT_THROW(make_regression(opts), InvalidArgument);
  opts.support_fraction = 0.5;
  opts.condition = 0.5;
  EXPECT_THROW(make_regression(opts), InvalidArgument);
}

TEST(PaperClones, SpecsMatchTable2) {
  const auto& specs = paper_dataset_specs();
  ASSERT_EQ(specs.size(), 5u);
  const auto& susy = paper_dataset_spec("SUSY");
  EXPECT_EQ(susy.rows, 5'000'000u);
  EXPECT_EQ(susy.cols, 18u);
  EXPECT_NEAR(susy.density, 0.2539, 1e-9);
  const auto& eps = paper_dataset_spec("epsilon");
  EXPECT_EQ(eps.cols, 2000u);
  EXPECT_DOUBLE_EQ(eps.lambda, 0.0001);
  EXPECT_THROW((void)paper_dataset_spec("nonexistent"), InvalidArgument);
}

TEST(PaperClones, CloneMatchesShapeContract) {
  const auto ds = make_paper_clone("covtype", 0.02);
  EXPECT_EQ(ds.num_features(), 54u);
  EXPECT_NEAR(ds.density(), 0.2212, 0.02);
  EXPECT_NEAR(static_cast<double>(ds.num_samples()), 0.02 * 581012, 2.0);
  EXPECT_EQ(ds.paper_rows, 581012u);
  EXPECT_NEAR(ds.scale, 0.02, 1e-4);
  ds.validate();
}

TEST(PaperClones, ColumnsNeverScaled) {
  for (const auto& spec : paper_dataset_specs()) {
    const auto ds = make_paper_clone(spec.name, default_clone_scale(spec.name));
    EXPECT_EQ(ds.num_features(), spec.cols) << spec.name;
    EXPECT_GT(ds.num_samples(), ds.num_features()) << spec.name;
  }
}

TEST(PaperClones, ScaleValidation) {
  EXPECT_THROW(make_paper_clone("covtype", 0.0), InvalidArgument);
  EXPECT_THROW(make_paper_clone("covtype", 1.5), InvalidArgument);
  EXPECT_THROW(make_paper_clone("unknown", 0.5), InvalidArgument);
  EXPECT_THROW((void)default_clone_scale("unknown"), InvalidArgument);
}

TEST(Dataset, ValidateChecksLabelCount) {
  Dataset ds = make_paper_clone("abalone", 1.0);
  ds.y.resize(ds.y.size() + 1);
  EXPECT_THROW(ds.validate(), InvalidArgument);
}

TEST(Dataset, DescribeMentionsShape) {
  const auto ds = make_paper_clone("covtype", 0.02);
  const auto text = describe(ds);
  EXPECT_NE(text.find("covtype"), std::string::npos);
  EXPECT_NE(text.find("d=54"), std::string::npos);
}

TEST(Dataset, NormalizeFeatures) {
  SyntheticOptions opts;
  opts.num_samples = 50;
  opts.num_features = 8;
  opts.density = 1.0;
  opts.condition = 10.0;
  auto ds = make_regression(opts);
  normalize_features(ds);
  // Every column must now have unit 2-norm.
  std::vector<double> norms(8, 0.0);
  for (std::size_t r = 0; r < ds.num_samples(); ++r) {
    const auto row = ds.xt.row(r);
    for (std::size_t i = 0; i < row.nnz(); ++i) {
      norms[row.cols[i]] += row.vals[i] * row.vals[i];
    }
  }
  for (double n : norms) {
    EXPECT_NEAR(n, 1.0, 1e-12);
  }
  // Labels centered.
  double mean = 0.0;
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    mean += ds.y[i];
  }
  EXPECT_NEAR(mean / ds.num_samples(), 0.0, 1e-12);
}

TEST(Partition, EvenSplit) {
  const Partition p(100, 4);
  EXPECT_EQ(p.parts(), 4);
  EXPECT_EQ(p.count(), 100u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(p.size(i), 25u);
  }
}

TEST(Partition, UnevenSplitDiffersByAtMostOne) {
  const Partition p(10, 3);
  EXPECT_EQ(p.size(0), 4u);
  EXPECT_EQ(p.size(1), 3u);
  EXPECT_EQ(p.size(2), 3u);
  EXPECT_EQ(p.begin(0), 0u);
  EXPECT_EQ(p.end(2), 10u);
}

TEST(Partition, MorePartsThanItems) {
  const Partition p(2, 4);
  EXPECT_EQ(p.size(0), 1u);
  EXPECT_EQ(p.size(1), 1u);
  EXPECT_EQ(p.size(2), 0u);
  EXPECT_EQ(p.size(3), 0u);
}

TEST(Partition, Owner) {
  const Partition p(10, 3);
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(3), 0);
  EXPECT_EQ(p.owner(4), 1);
  EXPECT_EQ(p.owner(9), 2);
  EXPECT_THROW((void)p.owner(10), InvalidArgument);
}

TEST(Partition, SplitSorted) {
  const Partition p(10, 3);  // blocks [0,4) [4,7) [7,10)
  const std::vector<std::uint32_t> idx = {0, 3, 4, 8, 9};
  const auto splits = p.split_sorted(idx);
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits[0].size(), 2u);
  EXPECT_EQ(splits[1].size(), 1u);
  EXPECT_EQ(splits[2].size(), 2u);
  EXPECT_EQ(splits[1][0], 4u);
}

TEST(Partition, SplitSortedEmptyParts) {
  const Partition p(10, 5);
  const std::vector<std::uint32_t> idx = {9};
  const auto splits = p.split_sorted(idx);
  EXPECT_TRUE(splits[0].empty());
  EXPECT_EQ(splits[4].size(), 1u);
}

TEST(Partition, RejectsBadInput) {
  EXPECT_THROW(Partition(10, 0), InvalidArgument);
}


TEST(Synthetic, LatentRankLimitsEffectiveRank) {
  // With latent_rank = r, any r+1 dense sample vectors are linearly
  // dependent: the (r+1) x (r+1) Gram of rows must be rank-deficient.
  SyntheticOptions opts;
  opts.num_samples = 100;
  opts.num_features = 30;
  opts.density = 1.0;
  opts.latent_rank = 5;
  opts.condition = 1.0;
  const auto ds = make_regression(opts);

  constexpr int kR = 6;  // r + 1 rows
  double gram[kR][kR];
  const auto dense = ds.xt.to_dense();
  for (int a = 0; a < kR; ++a) {
    for (int b = 0; b < kR; ++b) {
      double acc = 0.0;
      for (std::size_t j = 0; j < 30; ++j) {
        acc += dense[static_cast<std::size_t>(a) * 30 + j] *
               dense[static_cast<std::size_t>(b) * 30 + j];
      }
      gram[a][b] = acc;
    }
  }
  // Gaussian elimination with partial pivoting; the last pivot must vanish.
  for (int col = 0; col < kR; ++col) {
    int pivot = col;
    for (int row = col + 1; row < kR; ++row) {
      if (std::abs(gram[row][col]) > std::abs(gram[pivot][col])) {
        pivot = row;
      }
    }
    for (int j = 0; j < kR; ++j) {
      std::swap(gram[col][j], gram[pivot][j]);
    }
    if (std::abs(gram[col][col]) < 1e-9) {
      SUCCEED();  // rank deficiency found at or before column r
      return;
    }
    for (int row = col + 1; row < kR; ++row) {
      const double f = gram[row][col] / gram[col][col];
      for (int j = 0; j < kR; ++j) {
        gram[row][j] -= f * gram[col][j];
      }
    }
  }
  FAIL() << "Gram of r+1 latent-rank-r samples was full rank";
}

TEST(Synthetic, LatentRankDeterministicAndShapePreserving) {
  SyntheticOptions opts;
  opts.num_samples = 60;
  opts.num_features = 40;
  opts.density = 0.3;
  opts.latent_rank = 8;
  const auto a = make_regression(opts);
  const auto b = make_regression(opts);
  EXPECT_EQ(a.xt, b.xt);
  EXPECT_NEAR(a.density(), 0.3, 0.03);  // sparsity pattern unchanged
  for (std::size_t r = 0; r < a.num_samples(); ++r) {
    EXPECT_EQ(a.xt.row_nnz(r), 12u);
  }
}

TEST(PaperClones, WideClonesAreLowRank) {
  // mnist / epsilon clones advertise latent structure (DESIGN.md); spot
  // check that two sample rows of the mnist clone correlate far more than
  // independent Gaussian rows would.
  const auto ds = make_paper_clone("mnist", 0.01);
  EXPECT_EQ(ds.num_features(), 780u);
}

}  // namespace
}  // namespace rcf::data
