// Tests for the alpha-beta-gamma cost tracker and machine specs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "model/cost.hpp"
#include "model/machine.hpp"

namespace rcf::model {
namespace {

TEST(Machine, PresetsMatchPaperConstants) {
  const auto spec = comet();
  EXPECT_DOUBLE_EQ(spec.alpha, 1.0e-6);
  EXPECT_DOUBLE_EQ(spec.beta, 1.42e-10);
  EXPECT_DOUBLE_EQ(spec.gamma, 4.0e-10);
  EXPECT_GT(spec.alpha_effective(), spec.alpha);
  EXPECT_GT(spec.alpha_beta_ratio(), 0.0);
  EXPECT_GT(spec.beta_gamma_ratio(), 0.0);
}

TEST(Machine, LookupByName) {
  EXPECT_EQ(machine_by_name("comet").name, "comet");
  EXPECT_EQ(machine_by_name("spark").name, "spark");
  EXPECT_EQ(machine_by_name("ethernet").name, "ethernet");
  EXPECT_EQ(machine_by_name("infiniband").name, "infiniband");
  EXPECT_THROW(machine_by_name("cray"), InvalidArgument);
}

TEST(Machine, SparkHasHigherPerRoundOverhead) {
  EXPECT_GT(spark_like().alpha_effective(), comet().alpha_effective());
}

TEST(Collective, PaperModelCounts) {
  const auto c = allreduce_cost(CollectiveModel::kPaperLogP, 8, 100);
  EXPECT_DOUBLE_EQ(c.messages, 3.0);
  EXPECT_DOUBLE_EQ(c.words, 300.0);
}

TEST(Collective, SingleRankIsFree) {
  for (auto m : {CollectiveModel::kPaperLogP, CollectiveModel::kRabenseifner,
                 CollectiveModel::kTree}) {
    const auto c = allreduce_cost(m, 1, 1000);
    EXPECT_DOUBLE_EQ(c.messages, 0.0);
    EXPECT_DOUBLE_EQ(c.words, 0.0);
  }
}

TEST(Collective, NonPowerOfTwoUsesCeiling) {
  const auto c = allreduce_cost(CollectiveModel::kPaperLogP, 5, 10);
  EXPECT_DOUBLE_EQ(c.messages, 3.0);  // ceil(log2 5)
}

TEST(Collective, RabenseifnerBandwidthOptimal) {
  // 2n(P-1)/P < n log P for P >= 8: the bandwidth-optimal algorithm moves
  // fewer words.
  const auto paper = allreduce_cost(CollectiveModel::kPaperLogP, 64, 1000);
  const auto rab = allreduce_cost(CollectiveModel::kRabenseifner, 64, 1000);
  EXPECT_LT(rab.words, paper.words);
  EXPECT_GT(rab.messages, paper.messages);
}

TEST(Collective, NameRoundTrip) {
  EXPECT_EQ(collective_model_by_name("paper"), CollectiveModel::kPaperLogP);
  EXPECT_EQ(collective_model_by_name("rabenseifner"),
            CollectiveModel::kRabenseifner);
  EXPECT_EQ(collective_model_by_name("tree"), CollectiveModel::kTree);
  EXPECT_THROW((void)collective_model_by_name("bogus"), InvalidArgument);
  EXPECT_EQ(to_string(CollectiveModel::kPaperLogP), "paper-logP");
}

TEST(CostTracker, AccumulatesAndConverts) {
  CostTracker t(CollectiveModel::kPaperLogP);
  t.add_flops(Phase::kGram, 1e6);
  t.add_flops(Phase::kUpdate, 2e6);
  t.add_allreduce(4, 100);  // 2 msgs, 200 words
  EXPECT_DOUBLE_EQ(t.flops(), 3e6);
  EXPECT_DOUBLE_EQ(t.flops(Phase::kGram), 1e6);
  EXPECT_DOUBLE_EQ(t.messages(), 2.0);
  EXPECT_DOUBLE_EQ(t.words(), 200.0);

  MachineSpec spec;
  spec.alpha = 1.0;
  spec.beta = 0.5;
  spec.gamma = 1e-6;
  const double expected = 1e-6 * 3e6 + 1.0 * 2.0 + 0.5 * 200.0;
  EXPECT_DOUBLE_EQ(t.seconds(spec), expected);
  EXPECT_DOUBLE_EQ(t.compute_seconds(spec), 3.0);
  EXPECT_DOUBLE_EQ(t.latency_seconds(spec), 2.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_seconds(spec), 100.0);
}

TEST(CostTracker, AlphaSyncChargedPerMessage) {
  CostTracker t;
  t.add_allreduce(2, 10);  // 1 msg
  MachineSpec spec;
  spec.alpha = 1.0;
  spec.alpha_sync = 2.0;
  EXPECT_DOUBLE_EQ(t.latency_seconds(spec), 3.0);
}

TEST(CostTracker, MemoryTrafficTerm) {
  CostTracker t;
  t.add_mem_words(Phase::kUpdate, 1000.0);
  MachineSpec spec;
  spec.beta_mem = 0.01;
  EXPECT_DOUBLE_EQ(t.memory_seconds(spec), 10.0);
  EXPECT_DOUBLE_EQ(t.mem_words(), 1000.0);
}

TEST(CostTracker, ResetAndAccumulate) {
  CostTracker a, b;
  a.add_flops(Phase::kGram, 5.0);
  b.add_flops(Phase::kGram, 7.0);
  b.add_comm(1.0, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.flops(), 12.0);
  EXPECT_DOUBLE_EQ(a.messages(), 1.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.flops(), 0.0);
  EXPECT_DOUBLE_EQ(a.words(), 0.0);
}

TEST(CostTracker, PhaseNames) {
  EXPECT_STREQ(phase_name(Phase::kGram), "gram");
  EXPECT_STREQ(phase_name(Phase::kComm), "comm");
  EXPECT_STREQ(phase_name(Phase::kSampling), "sampling");
  EXPECT_STREQ(phase_name(Phase::kUpdate), "update");
  EXPECT_STREQ(phase_name(Phase::kOther), "other");
}

}  // namespace
}  // namespace rcf::model
