// Tests for the stochastic solver (SFISTA): sampling determinism, variance
// reduction, convergence, and cost accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"

namespace rcf::core {
namespace {

data::Dataset test_dataset(std::size_t m = 1500, std::size_t d = 48,
                           double condition = 30.0, std::uint64_t seed = 7) {
  data::SyntheticOptions opts;
  opts.num_samples = m;
  opts.num_features = d;
  opts.density = 0.5;
  opts.condition = condition;
  opts.noise_stddev = 0.05;
  opts.seed = seed;
  return data::make_regression(opts);
}

class SfistaTest : public ::testing::Test {
 protected:
  SfistaTest()
      : dataset_(test_dataset()),
        problem_(dataset_, 0.01),
        reference_(solve_reference(problem_)) {}

  data::Dataset dataset_;
  LassoProblem problem_;
  SolveResult reference_;
};

TEST_F(SfistaTest, DeterministicForFixedSeed) {
  SolverOptions opts;
  opts.max_iters = 50;
  opts.sampling_rate = 0.1;
  opts.seed = 9;
  const auto a = solve_sfista(problem_, opts);
  const auto b = solve_sfista(problem_, opts);
  EXPECT_EQ(a.w, b.w);  // bitwise
  EXPECT_EQ(a.objective, b.objective);
}

TEST_F(SfistaTest, DifferentSeedsDiffer) {
  SolverOptions opts;
  opts.max_iters = 50;
  opts.sampling_rate = 0.1;
  opts.seed = 1;
  const auto a = solve_sfista(problem_, opts);
  opts.seed = 2;
  const auto b = solve_sfista(problem_, opts);
  EXPECT_FALSE(a.w == b.w);
}

TEST_F(SfistaTest, FullSamplingEqualsFista) {
  SolverOptions opts;
  opts.max_iters = 40;
  opts.sampling_rate = 1.0;
  const auto sf = solve_sfista(problem_, opts);
  const auto fi = solve_fista(problem_, opts);
  EXPECT_EQ(sf.w, fi.w);  // same engine, same schedule: bitwise
}

TEST_F(SfistaTest, ConvergesWithSampling) {
  SolverOptions opts;
  opts.max_iters = 600;
  opts.sampling_rate = 0.1;
  opts.variance_reduction = true;
  opts.tol = 0.01;
  opts.f_star = reference_.objective;
  const auto result = solve_sfista(problem_, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.rel_error, 0.011);
}

TEST_F(SfistaTest, VarianceReductionBeatsPlainAtSmallBatch) {
  SolverOptions opts;
  opts.max_iters = 400;
  opts.sampling_rate = 0.02;  // 30 samples per draw: noisy
  opts.f_star = reference_.objective;
  const auto plain = solve_sfista(problem_, opts);
  opts.variance_reduction = true;
  const auto vr = solve_sfista(problem_, opts);
  EXPECT_LT(vr.rel_error, plain.rel_error);
}

TEST_F(SfistaTest, LiteralAlg3RestartAlsoConverges) {
  SolverOptions opts;
  opts.max_iters = 500;
  opts.sampling_rate = 0.1;
  opts.variance_reduction = true;
  opts.vr_restart_momentum = true;
  opts.epoch_length = 60;
  opts.f_star = reference_.objective;
  const auto result = solve_sfista(problem_, opts);
  EXPECT_LT(result.rel_error, 0.2);
}

TEST_F(SfistaTest, CostAccountingPerIteration) {
  SolverOptions opts;
  opts.max_iters = 20;
  opts.sampling_rate = 0.1;
  opts.procs = 8;
  const auto result = solve_sfista(problem_, opts);
  const double d = 48.0;
  // One allreduce of d^2+d words per iteration, log2(8)=3 messages each.
  EXPECT_DOUBLE_EQ(result.cost.messages(), 20.0 * 3.0);
  EXPECT_DOUBLE_EQ(result.cost.words(), 20.0 * (d * d + d) * 3.0);
  EXPECT_GT(result.cost.flops(), 0.0);
  EXPECT_GT(result.sim_seconds, 0.0);
}

TEST_F(SfistaTest, VarianceReductionChargesAnchorRounds) {
  SolverOptions base;
  base.max_iters = 100;
  base.sampling_rate = 0.1;
  base.procs = 8;
  const auto plain = solve_sfista(problem_, base);
  SolverOptions vr = base;
  vr.variance_reduction = true;
  vr.epoch_length = 25;
  const auto reduced = solve_sfista(problem_, vr);
  // VR adds one d-word allreduce per epoch (4 epochs + initial anchor).
  EXPECT_GT(reduced.cost.messages(), plain.cost.messages());
  EXPECT_GT(reduced.cost.words(), plain.cost.words());
}

TEST_F(SfistaTest, SmallerBatchLowersGramFlops) {
  SolverOptions opts;
  opts.max_iters = 30;
  opts.sampling_rate = 0.5;
  const auto big = solve_sfista(problem_, opts);
  opts.sampling_rate = 0.05;
  const auto small = solve_sfista(problem_, opts);
  EXPECT_LT(small.cost.flops(model::Phase::kGram),
            big.cost.flops(model::Phase::kGram));
}

TEST_F(SfistaTest, HistoryRecordsRawCounters) {
  SolverOptions opts;
  opts.max_iters = 30;
  opts.sampling_rate = 0.1;
  const auto result = solve_sfista(problem_, opts);
  ASSERT_EQ(result.history.size(), 30u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GT(result.history[i].raw_gram_flops,
              result.history[i - 1].raw_gram_flops);
    EXPECT_GT(result.history[i].raw_update_flops,
              result.history[i - 1].raw_update_flops);
    EXPECT_GE(result.history[i].comm_payload_words,
              result.history[i - 1].comm_payload_words);
  }
  EXPECT_DOUBLE_EQ(result.history.back().comm_payload_words,
                   30.0 * (48.0 * 48.0 + 48.0));
}

TEST_F(SfistaTest, EpochLengthValidation) {
  SolverOptions opts;
  opts.variance_reduction = true;
  opts.epoch_length = 0;
  EXPECT_THROW(solve_sfista(problem_, opts), InvalidArgument);
}


TEST_F(SfistaTest, MomentumCapBoundsExtrapolation) {
  // A capped schedule must still converge and be deterministic; cap = 0 is
  // exactly ISTA.
  SolverOptions opts;
  opts.max_iters = 200;
  opts.sampling_rate = 1.0;
  opts.momentum_cap = 0.0;
  const auto capped = solve_sfista(problem_, opts);
  opts.momentum = MomentumRule::kNone;
  opts.momentum_cap = 1.0;
  const auto ista = solve_sfista(problem_, opts);
  EXPECT_EQ(capped.w, ista.w);  // mu capped to zero == no momentum
}

TEST_F(SfistaTest, AdaptiveRestartConvergesAndIsDeterministic) {
  SolverOptions opts;
  opts.max_iters = 400;
  opts.sampling_rate = 0.1;
  opts.variance_reduction = true;
  opts.adaptive_restart = true;
  opts.tol = 0.01;
  opts.f_star = reference_.objective;
  const auto a = solve_sfista(problem_, opts);
  const auto b = solve_sfista(problem_, opts);
  EXPECT_TRUE(a.converged);
  EXPECT_EQ(a.w, b.w);
}

TEST_F(SfistaTest, AdaptiveRestartStabilizesSmallBatchHighD) {
  // mbar << d: plain momentum amplifies rank-deficient sampled-Hessian
  // noise; the restart keeps the trajectory bounded.
  data::SyntheticOptions gen;
  gen.num_samples = 400;
  gen.num_features = 200;
  gen.density = 1.0;
  gen.condition = 30.0;
  gen.noise_stddev = 0.05;
  gen.seed = 77;
  const auto ds = data::make_regression(gen);
  const LassoProblem problem(ds, 0.002);
  SolverOptions opts;
  opts.max_iters = 300;
  opts.sampling_rate = 0.05;  // mbar = 20 << d = 200
  opts.variance_reduction = true;
  opts.s = 3;
  opts.adaptive_restart = true;
  const auto stable = solve_rc_sfista(problem, opts);
  EXPECT_TRUE(std::isfinite(stable.objective));
  la::Vector zero(200);
  EXPECT_LT(stable.objective, problem.objective(zero.span()));
}

}  // namespace
}  // namespace rcf::core
