// Minimal property-based testing harness over the repo's counter-based RNG.
//
// Why not a third-party library: the container must stay dependency-free,
// and the repo's determinism rules (no ambient randomness, replay from
// (seed, stream)) are exactly what a property tester needs anyway.  Every
// generated case is a pure function of (suite seed, case index, shrink
// scale): a failure report prints that triple and re-running the property
// with it reproduces the counterexample bit-for-bit on any machine.
//
// Shrinking is scale-based rather than structural: the generator multiplies
// every size request by the current scale in (0, 1], so re-running the
// property at geometrically smaller scales yields structurally similar but
// smaller inputs.  The harness keeps the smallest scale that still fails
// and reports it.  This is deliberately simpler than tree-shrinking -- the
// properties below are over dense/sparse kernels where "smaller dimensions"
// is the only shrink that matters.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace rcf::prop {

/// Source of generated values for one property case.  All draws flow
/// through one rcf::Rng stream keyed on (seed, case index), so a Gen is
/// replayable from its constructor arguments alone.
class Gen {
 public:
  Gen(std::uint64_t seed, std::uint64_t case_index, double scale = 1.0)
      : rng_(seed, case_index), scale_(scale) {}

  /// Integer in [lo, hi], with the span above lo shrunk by the current
  /// scale (scale 1 = full range, smaller scales bias toward lo).
  std::size_t size(std::size_t lo, std::size_t hi) {
    const auto span = static_cast<double>(hi - lo);
    const auto scaled = static_cast<std::uint64_t>(scale_ * span) + 1;
    return lo + static_cast<std::size_t>(rng_.uniform_index(scaled));
  }

  /// Uniform double in [lo, hi).  Not scaled: magnitudes rarely shrink a
  /// kernel counterexample, dimensions do.
  double real(double lo, double hi) { return rng_.uniform(lo, hi); }

  /// Standard normal deviate.
  double normal() { return rng_.normal(); }

  /// Uniform index in [0, n).
  std::uint64_t index(std::uint64_t n) { return rng_.uniform_index(n); }

  /// Length-n vector of Normal(0, 1) entries.
  std::vector<double> vector(std::size_t n) {
    std::vector<double> v(n);
    for (double& x : v) {
      x = rng_.normal();
    }
    return v;
  }

  /// Fresh child seed for APIs that take a seed themselves (e.g.
  /// sparse::generate_random), keeping those draws on this case's stream.
  std::uint64_t seed() { return rng_.next_u64(); }

  /// The underlying stream, for draws the helpers above don't cover.
  Rng& rng() { return rng_; }

  [[nodiscard]] double scale() const { return scale_; }

 private:
  Rng rng_;
  double scale_;
};

// ---------------------------------------------------------------------------
// Shape and payload generators, shared by the kernel property suite
// (test_prop_kernels.cpp) and the backend differential suite
// (test_backend_diff.cpp).
// ---------------------------------------------------------------------------

/// One generated (rows x cols) kernel shape.
struct Shape {
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// One seeded dimension in [0 | 1, hi]: mostly ragged uniform draws, with a
/// deliberate bias toward the sizes that break vectorized kernels --
/// 0 (when allowed), 1 (single element), exact multiples of the 4-lane SIMD
/// width (full vector bodies, empty tails), and off-by-one neighbours of
/// those multiples (maximal tails, unaligned leading dims).
inline std::size_t dim(Gen& g, std::size_t hi, bool allow_empty = true) {
  const std::size_t lo = allow_empty ? 0 : 1;
  switch (g.index(8)) {
    case 0:
      return lo;  // empty (or degenerate 1)
    case 1:
      return std::min<std::size_t>(1, hi);  // single element
    case 2: {  // SIMD-aligned: a multiple of 4 lanes
      const std::size_t quads = hi / 4;
      return quads == 0 ? std::max(lo, std::min<std::size_t>(1, hi))
                        : 4 * (1 + g.index(quads));
    }
    case 3: {  // off-by-one from a lane boundary
      const std::size_t quads = hi / 4;
      const std::size_t base =
          quads == 0 ? 1 : 4 * (1 + g.index(quads));
      return std::min(hi, base + 1);
    }
    default:
      return g.size(lo, hi);  // ragged
  }
}

/// A seeded matrix shape with the edge-case mix of dim() on both axes
/// (0-row, 0-col, 1x1, aligned, off-by-one, ragged).
inline Shape shape(Gen& g, std::size_t hi, bool allow_empty = true) {
  return {dim(g, hi, allow_empty), dim(g, hi, allow_empty)};
}

/// Value classes for generated payloads.  kDenormal mixes subnormals into
/// normal data (exercising gradual-underflow paths at full speed);
/// kNonFinite mixes NaN and +-inf in (propagation-order tests only -- see
/// the differential suite for why cross-backend comparison stops there).
enum class Payload { kNormal, kDenormal, kNonFinite };

/// One seeded value of the given payload class.
inline double value(Gen& g, Payload p) {
  switch (p) {
    case Payload::kDenormal:
      if (g.index(2) == 0) {
        return static_cast<double>(1 + g.index(std::uint64_t{1} << 20)) *
               std::numeric_limits<double>::denorm_min();
      }
      return g.normal();
    case Payload::kNonFinite:
      switch (g.index(8)) {
        case 0:
          return std::numeric_limits<double>::quiet_NaN();
        case 1:
          return std::numeric_limits<double>::infinity();
        case 2:
          return -std::numeric_limits<double>::infinity();
        default:
          return g.normal();
      }
    case Payload::kNormal:
    default:
      return g.normal();
  }
}

/// Length-n vector of the given payload class.
inline std::vector<double> payload_vector(Gen& g, std::size_t n, Payload p) {
  std::vector<double> v(n);
  for (double& x : v) {
    x = value(g, p);
  }
  return v;
}

/// A seeded CSR matrix whose row structure covers the kernel edge cases:
/// each row independently picks a regime -- empty, single-entry, fully
/// dense (the sampled-Gram fast path), or ragged random fill -- and its
/// columns are drawn as a sorted distinct subset (sequential selection
/// sampling, replayable).  Values come from the payload class.
inline sparse::CsrMatrix csr(Gen& g, std::size_t rows, std::size_t cols,
                             Payload p = Payload::kNormal) {
  std::vector<std::size_t> row_ptr(rows + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t nnz = 0;
    if (cols > 0) {
      switch (g.index(4)) {
        case 0:
          nnz = 0;
          break;
        case 1:
          nnz = 1;
          break;
        case 2:
          nnz = cols;
          break;
        default:
          nnz = g.size(0, cols);
          break;
      }
    }
    std::size_t need = nnz;
    for (std::uint32_t c = 0; need > 0; ++c) {
      const std::size_t left = cols - c;
      if (g.index(left) < need) {
        double v = value(g, p);
        while (v == 0.0) {  // CSR stores no explicit zeros
          v = g.normal() + 1e-3;
        }
        col_idx.push_back(c);
        values.push_back(v);
        --need;
      }
    }
    row_ptr[r + 1] = col_idx.size();
  }
  return sparse::CsrMatrix::from_parts(rows, cols, std::move(row_ptr),
                                       std::move(col_idx), std::move(values));
}

/// A property: generate inputs from `g`, check the invariant, return
/// AssertionFailure() (with a message) to reject.
using Property = std::function<testing::AssertionResult(Gen& g)>;

/// Smallest shrink scale tried (dimensions of ~1/1024 of the original).
inline constexpr double kMinShrinkScale = 1.0 / 1024.0;

/// Runs `prop` against `cases` independently generated inputs.  On the
/// first failing case, re-runs at geometrically decreasing scales to find
/// the smallest still-failing input, then reports one gtest failure with
/// the (seed, case, scale) replay triple and stops.
inline void for_all(const char* name, std::uint64_t seed, int cases,
                    const Property& prop) {
  for (int c = 0; c < cases; ++c) {
    Gen g(seed, static_cast<std::uint64_t>(c));
    testing::AssertionResult result = prop(g);
    if (result) {
      continue;
    }
    double worst_scale = 1.0;
    std::string worst_message = result.message();
    for (double scale = 0.5; scale >= kMinShrinkScale; scale *= 0.5) {
      Gen shrunk(seed, static_cast<std::uint64_t>(c), scale);
      const testing::AssertionResult at_scale = prop(shrunk);
      if (!at_scale) {
        worst_scale = scale;
        worst_message = at_scale.message();
      }
    }
    ADD_FAILURE() << "property '" << name << "' failed\n"
                  << "  replay: seed=" << seed << " case=" << c
                  << " scale=" << worst_scale << "\n"
                  << "  " << worst_message;
    return;
  }
}

}  // namespace rcf::prop
