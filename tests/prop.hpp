// Minimal property-based testing harness over the repo's counter-based RNG.
//
// Why not a third-party library: the container must stay dependency-free,
// and the repo's determinism rules (no ambient randomness, replay from
// (seed, stream)) are exactly what a property tester needs anyway.  Every
// generated case is a pure function of (suite seed, case index, shrink
// scale): a failure report prints that triple and re-running the property
// with it reproduces the counterexample bit-for-bit on any machine.
//
// Shrinking is scale-based rather than structural: the generator multiplies
// every size request by the current scale in (0, 1], so re-running the
// property at geometrically smaller scales yields structurally similar but
// smaller inputs.  The harness keeps the smallest scale that still fails
// and reports it.  This is deliberately simpler than tree-shrinking -- the
// properties below are over dense/sparse kernels where "smaller dimensions"
// is the only shrink that matters.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace rcf::prop {

/// Source of generated values for one property case.  All draws flow
/// through one rcf::Rng stream keyed on (seed, case index), so a Gen is
/// replayable from its constructor arguments alone.
class Gen {
 public:
  Gen(std::uint64_t seed, std::uint64_t case_index, double scale = 1.0)
      : rng_(seed, case_index), scale_(scale) {}

  /// Integer in [lo, hi], with the span above lo shrunk by the current
  /// scale (scale 1 = full range, smaller scales bias toward lo).
  std::size_t size(std::size_t lo, std::size_t hi) {
    const auto span = static_cast<double>(hi - lo);
    const auto scaled = static_cast<std::uint64_t>(scale_ * span) + 1;
    return lo + static_cast<std::size_t>(rng_.uniform_index(scaled));
  }

  /// Uniform double in [lo, hi).  Not scaled: magnitudes rarely shrink a
  /// kernel counterexample, dimensions do.
  double real(double lo, double hi) { return rng_.uniform(lo, hi); }

  /// Standard normal deviate.
  double normal() { return rng_.normal(); }

  /// Uniform index in [0, n).
  std::uint64_t index(std::uint64_t n) { return rng_.uniform_index(n); }

  /// Length-n vector of Normal(0, 1) entries.
  std::vector<double> vector(std::size_t n) {
    std::vector<double> v(n);
    for (double& x : v) {
      x = rng_.normal();
    }
    return v;
  }

  /// Fresh child seed for APIs that take a seed themselves (e.g.
  /// sparse::generate_random), keeping those draws on this case's stream.
  std::uint64_t seed() { return rng_.next_u64(); }

  /// The underlying stream, for draws the helpers above don't cover.
  Rng& rng() { return rng_; }

  [[nodiscard]] double scale() const { return scale_; }

 private:
  Rng rng_;
  double scale_;
};

/// A property: generate inputs from `g`, check the invariant, return
/// AssertionFailure() (with a message) to reject.
using Property = std::function<testing::AssertionResult(Gen& g)>;

/// Smallest shrink scale tried (dimensions of ~1/1024 of the original).
inline constexpr double kMinShrinkScale = 1.0 / 1024.0;

/// Runs `prop` against `cases` independently generated inputs.  On the
/// first failing case, re-runs at geometrically decreasing scales to find
/// the smallest still-failing input, then reports one gtest failure with
/// the (seed, case, scale) replay triple and stops.
inline void for_all(const char* name, std::uint64_t seed, int cases,
                    const Property& prop) {
  for (int c = 0; c < cases; ++c) {
    Gen g(seed, static_cast<std::uint64_t>(c));
    testing::AssertionResult result = prop(g);
    if (result) {
      continue;
    }
    double worst_scale = 1.0;
    std::string worst_message = result.message();
    for (double scale = 0.5; scale >= kMinShrinkScale; scale *= 0.5) {
      Gen shrunk(seed, static_cast<std::uint64_t>(c), scale);
      const testing::AssertionResult at_scale = prop(shrunk);
      if (!at_scale) {
        worst_scale = scale;
        worst_message = at_scale.message();
      }
    }
    ADD_FAILURE() << "property '" << name << "' failed\n"
                  << "  replay: seed=" << seed << " case=" << c
                  << " scale=" << worst_scale << "\n"
                  << "  " << worst_message;
    return;
  }
}

}  // namespace rcf::prop
