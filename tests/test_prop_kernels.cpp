// Property-based tests for the numerical kernels (see tests/prop.hpp for
// the harness).  Each property runs against dozens of generated shapes --
// ragged dimensions, varying densities, degenerate 1 x 1 cases -- instead
// of the handful of hand-picked fixtures in the per-kernel suites, and
// shrinks to a minimal replayable counterexample on failure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "exec/pool.hpp"
#include "la/backend.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "prop.hpp"
#include "prox/operators.hpp"
#include "sparse/csr.hpp"
#include "sparse/generate.hpp"
#include "sparse/gram.hpp"

namespace rcf {
namespace {

constexpr std::uint64_t kSeed = 20180813;  // ICPP'18 vintage.

sparse::CsrMatrix random_csr(prop::Gen& g, std::size_t rows,
                             std::size_t cols) {
  sparse::GenerateOptions opts;
  opts.rows = rows;
  opts.cols = cols;
  opts.density = g.real(0.05, 1.0);
  opts.seed = g.seed();
  return sparse::generate_random(opts);
}

la::Matrix dense_of(const sparse::CsrMatrix& a) {
  la::Matrix m(a.rows(), a.cols());
  const auto flat = a.to_dense();
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

// ---------------------------------------------------------------------------
// SpMV against the dense reference.
// ---------------------------------------------------------------------------

// y = A x must equal the dense gemv *bitwise* on the scalar backend: both
// kernels accumulate one row's products in ascending column order, and the
// dense sum's extra terms are exact zeros (0 * x adds +-0.0, which never
// changes a finite partial sum under ==).  On the SIMD backend the two
// kernels group the same terms differently (spmv's four strided chains vs
// gemv's four-lane dot), so the match is to tolerance there -- this test
// honors whatever backend the environment installed, which is how the CI
// RCF_BACKEND=simd sweep exercises it.  Shapes come from the shared
// prop::shape edge-case mix (0-row/0-col/1x1/aligned/ragged), structure
// from prop::csr (empty, single-entry and dense rows) -- the same
// generators the backend differential suite replays.
TEST(PropKernels, SpmvMatchesDenseGemv) {
  prop::for_all("spmv == dense gemv", kSeed, 40, [](prop::Gen& g) {
    const auto [rows, cols] = prop::shape(g, 40);
    const sparse::CsrMatrix a = prop::csr(g, rows, cols);
    const std::vector<double> x = g.vector(cols);
    std::vector<double> y(rows), y_ref(rows);
    a.spmv(x, y);
    la::gemv(1.0, dense_of(a), x, 0.0, y_ref);
    const double diff = la::max_abs_diff(y, y_ref);
    const double bound = la::active_backend() == la::Backend::kScalar
                             ? 0.0
                             : 1e-12 * (1.0 + la::nrm2(y_ref));
    if (diff > bound) {
      return testing::AssertionFailure()
             << rows << "x" << cols << " spmv diverged from dense gemv by "
             << diff;
    }
    return testing::AssertionSuccess();
  });
}

// y = A^T x: the scatter-order transpose kernel regroups the sums, so the
// match is to tolerance, not bitwise.
TEST(PropKernels, SpmvTransposeMatchesDenseGemvT) {
  prop::for_all("spmv_t ~= dense gemv_t", kSeed, 40, [](prop::Gen& g) {
    const auto [rows, cols] = prop::shape(g, 40);
    const sparse::CsrMatrix a = prop::csr(g, rows, cols);
    const std::vector<double> x = g.vector(rows);
    std::vector<double> y(cols), y_ref(cols);
    a.spmv_t(x, y);
    la::gemv_t(1.0, dense_of(a), x, 0.0, y_ref);
    const double diff = la::max_abs_diff(y, y_ref);
    const double bound = 1e-12 * (1.0 + la::nrm2(y_ref));
    if (diff > bound) {
      return testing::AssertionFailure()
             << rows << "x" << cols << " spmv_t off by " << diff
             << " (bound " << bound << ")";
    }
    return testing::AssertionSuccess();
  });
}

// ---------------------------------------------------------------------------
// Sampled Gram: symmetry, PSD structure, and the naive reference.
// ---------------------------------------------------------------------------

TEST(PropKernels, SampledGramSymmetricPsd) {
  prop::for_all("sampled_gram symmetric + PSD", kSeed, 30, [](prop::Gen& g) {
    const std::size_t m = g.size(2, 60);
    const std::size_t d = g.size(1, 24);
    const sparse::CsrMatrix xt = random_csr(g, m, d);
    const std::vector<double> y = g.vector(m);
    const auto mbar = static_cast<std::uint64_t>(g.size(1, m));
    const auto idx = g.rng().sample_without_replacement(m, mbar);
    la::Matrix h(d, d);
    std::vector<double> r(d);
    sparse::sampled_gram(xt, y, idx, h, r);

    // Exact symmetry: the kernel mirrors the upper triangle.
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (h(i, j) != h(j, i)) {
          return testing::AssertionFailure()
                 << "asymmetric H at (" << i << "," << j
                 << "): " << h(i, j) << " vs " << h(j, i);
        }
      }
      if (h(i, i) < 0.0) {
        return testing::AssertionFailure()
               << "negative diagonal H(" << i << "," << i
               << ") = " << h(i, i);
      }
    }
    // PSD: v^T H v = ||X_S v||^2 / mbar >= 0 up to rounding.
    const std::vector<double> v = g.vector(d);
    std::vector<double> hv(d);
    la::gemv(1.0, h, v, 0.0, hv);
    const double quad = la::dot(v, hv);
    const double slack = 1e-10 * (1.0 + std::abs(quad));
    if (quad < -slack) {
      return testing::AssertionFailure()
             << "indefinite sampled Gram: v^T H v = " << quad;
    }
    return testing::AssertionSuccess();
  });
}

// The optimized accumulation (sparse outer products into the upper
// triangle) must agree with the naive dense reference sum.
TEST(PropKernels, SampledGramMatchesNaiveReference) {
  prop::for_all("sampled_gram ~= naive", kSeed, 30, [](prop::Gen& g) {
    const std::size_t m = g.size(2, 50);
    const std::size_t d = g.size(1, 20);
    const sparse::CsrMatrix xt = random_csr(g, m, d);
    const std::vector<double> y = g.vector(m);
    const auto mbar = static_cast<std::uint64_t>(g.size(1, m));
    const auto idx = g.rng().sample_without_replacement(m, mbar);
    la::Matrix h(d, d);
    std::vector<double> r(d);
    sparse::sampled_gram(xt, y, idx, h, r);

    const auto dense = xt.to_dense();  // m x d, row-major
    const double scale = 1.0 / static_cast<double>(idx.size());
    la::Matrix h_ref(d, d);
    std::vector<double> r_ref(d, 0.0);
    for (const auto i : idx) {
      const double* xi = dense.data() + static_cast<std::size_t>(i) * d;
      for (std::size_t a = 0; a < d; ++a) {
        for (std::size_t b = 0; b < d; ++b) {
          h_ref(a, b) += scale * xi[a] * xi[b];
        }
        r_ref[a] += scale * y[i] * xi[a];
      }
    }
    const double h_diff = la::max_abs_diff(h.flat(), h_ref.flat());
    const double r_diff = la::max_abs_diff(r, r_ref);
    const double bound = 1e-11 * (1.0 + static_cast<double>(idx.size()));
    if (h_diff > bound || r_diff > bound) {
      return testing::AssertionFailure()
             << "H off by " << h_diff << ", R off by " << r_diff
             << " (bound " << bound << ")";
    }
    return testing::AssertionSuccess();
  });
}

// ---------------------------------------------------------------------------
// syrk + symmetrize against the naive reference.
// ---------------------------------------------------------------------------

TEST(PropKernels, SyrkMatchesReference) {
  prop::for_all("syrk ~= A A^T", kSeed, 30, [](prop::Gen& g) {
    const std::size_t r = g.size(1, 24);
    const std::size_t c = g.size(1, 24);
    la::Matrix a(r, c);
    for (std::size_t i = 0; i < r * c; ++i) {
      a.data()[i] = g.normal();
    }
    la::Matrix out(r, r);
    la::syrk(1.0, a, 0.0, out);
    la::symmetrize_from_upper(out);

    la::Matrix ref(r, r);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < c; ++k) {
          acc += a(i, k) * a(j, k);
        }
        ref(i, j) = acc;
      }
    }
    const double diff = la::max_abs_diff(out.flat(), ref.flat());
    const double bound = 1e-12 * (1.0 + static_cast<double>(c));
    if (diff > bound) {
      return testing::AssertionFailure()
             << r << "x" << c << " syrk off by " << diff;
    }
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        if (out(i, j) != out(j, i)) {
          return testing::AssertionFailure()
                 << "syrk+symmetrize left asymmetry at (" << i << "," << j
                 << ")";
        }
      }
    }
    return testing::AssertionSuccess();
  });
}

// ---------------------------------------------------------------------------
// Prox operator properties.
// ---------------------------------------------------------------------------

// Soft-thresholding is firmly nonexpansive; elementwise:
// |st(a) - st(b)| <= |a - b| (up to one rounding of the subtractions).
TEST(PropKernels, ProxSoftThresholdNonexpansive) {
  prop::for_all("soft_threshold nonexpansive", kSeed, 50, [](prop::Gen& g) {
    const std::size_t n = g.size(1, 100);
    const double thresh = g.real(0.0, 2.0);
    std::vector<double> a = g.vector(n), b = g.vector(n);
    std::vector<double> sa(n), sb(n);
    prox::soft_threshold(a, thresh, sa);
    prox::soft_threshold(b, thresh, sb);
    for (std::size_t i = 0; i < n; ++i) {
      const double lhs = std::abs(sa[i] - sb[i]);
      const double rhs = std::abs(a[i] - b[i]);
      if (lhs > rhs * (1.0 + 1e-15) + 1e-300) {
        return testing::AssertionFailure()
               << "expansion at i=" << i << ": |st(a)-st(b)|=" << lhs
               << " > |a-b|=" << rhs << " (thresh " << thresh << ")";
      }
    }
    return testing::AssertionSuccess();
  });
}

// Shrinkage: st(x) keeps the sign, never grows magnitude, and maps
// |x| <= thresh exactly to zero (the sparsity mechanism the paper's L1
// term relies on).
TEST(PropKernels, ProxSoftThresholdShrinks) {
  prop::for_all("soft_threshold shrinks", kSeed, 50, [](prop::Gen& g) {
    const std::size_t n = g.size(1, 100);
    const double thresh = g.real(0.0, 2.0);
    std::vector<double> x = g.vector(n);
    std::vector<double> sx(n);
    prox::soft_threshold(x, thresh, sx);
    for (std::size_t i = 0; i < n; ++i) {
      if (sx[i] * x[i] < 0.0) {
        return testing::AssertionFailure() << "sign flip at i=" << i;
      }
      if (std::abs(sx[i]) > std::abs(x[i])) {
        return testing::AssertionFailure() << "magnitude grew at i=" << i;
      }
      if (std::abs(x[i]) <= thresh && sx[i] != 0.0) {
        return testing::AssertionFailure()
               << "|x| <= thresh not mapped to zero at i=" << i << " (x="
               << x[i] << ", thresh=" << thresh << ")";
      }
    }
    return testing::AssertionSuccess();
  });
}

// ---------------------------------------------------------------------------
// Pool-width invariance: the pooled kernels must be BIT-identical at any
// width (the repo's core determinism contract).
// ---------------------------------------------------------------------------

TEST(PropKernels, PooledKernelsWidthInvariant) {
  prop::for_all("kernels bitwise across widths 1/2/7", kSeed, 20,
                [](prop::Gen& g) {
    const std::size_t m = g.size(2, 60);
    const std::size_t d = prop::dim(g, 24, /*allow_empty=*/false);
    const sparse::CsrMatrix xt = prop::csr(g, m, d);
    const std::vector<double> y = g.vector(m);
    const std::vector<double> x = g.vector(d);
    const auto mbar = static_cast<std::uint64_t>(g.size(1, m));
    const auto idx = g.rng().sample_without_replacement(m, mbar);

    struct Outputs {
      la::Matrix h;
      std::vector<double> r;
      std::vector<double> yv;
    };
    const auto run_at = [&](int width) {
      exec::Pool pool(width);
      exec::PoolGuard guard(&pool);
      Outputs out{la::Matrix(d, d), std::vector<double>(d),
                  std::vector<double>(m)};
      sparse::sampled_gram(xt, y, idx, out.h, out.r);
      xt.spmv(x, out.yv);
      return out;
    };

    const Outputs base = run_at(1);
    for (const int width : {2, 7}) {
      const Outputs wide = run_at(width);
      if (la::max_abs_diff(base.h.flat(), wide.h.flat()) != 0.0 ||
          la::max_abs_diff(base.r, wide.r) != 0.0 ||
          la::max_abs_diff(base.yv, wide.yv) != 0.0) {
        return testing::AssertionFailure()
               << "width " << width << " diverged from width 1 at m=" << m
               << " d=" << d;
      }
    }
    return testing::AssertionSuccess();
  });
}

// ---------------------------------------------------------------------------
// Harness self-checks: generation is replayable, shrinking reaches lo.
// ---------------------------------------------------------------------------

TEST(PropKernels, HarnessIsReplayable) {
  prop::Gen a(kSeed, 7), b(kSeed, 7);
  EXPECT_EQ(a.vector(32), b.vector(32));
  EXPECT_EQ(a.size(1, 100), b.size(1, 100));
  EXPECT_EQ(a.seed(), b.seed());
}

TEST(PropKernels, HarnessShrinksTowardLowerBound) {
  // At the smallest shrink scale every size request collapses to ~lo, so a
  // shrunk counterexample really is structurally minimal.
  prop::Gen tiny(kSeed, 0, prop::kMinShrinkScale);
  for (int i = 0; i < 100; ++i) {
    const std::size_t v = tiny.size(1, 512);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 2u);
  }
}

}  // namespace
}  // namespace rcf
