// Cross-rank metric aggregation (obs::aggregate): exactness, determinism,
// imbalance semantics, and the end-to-end wiring through the threaded SPMD
// solver.  The determinism contract under test is the one documented in
// obs/aggregate.hpp: reduction order is a function of the instrument names
// only, so aggregated schedule-shape metrics are bit-identical across
// repeated runs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rcf.hpp"

namespace {

using namespace rcf;

// Fills one rank's registry with dyadic-rational values (exact under any
// summation order) keyed off the rank id.
void fill_registry(obs::MetricsRegistry& reg, int rank) {
  reg.counter("phase.gram.count").add(static_cast<std::uint64_t>(3 * (rank + 1)));
  reg.counter("comm.allreduce_calls").add(10);
  reg.gauge("phase.gram.seconds").set(0.25 * static_cast<double>(rank + 1));
  reg.gauge("phase.allreduce.words").set(4096.0);
  auto& hist = reg.histogram("allreduce_latency_us");
  for (int i = 0; i <= rank; ++i) {
    hist.observe(std::ldexp(1.0, rank));  // 1, 2, 4, 8 us
  }
}

bool same_metric(const obs::AggregatedMetric& a,
                 const obs::AggregatedMetric& b) {
  return a.name == b.name && a.min == b.min && a.max == b.max &&
         a.sum == b.sum && a.mean == b.mean && a.imbalance == b.imbalance;
}

bool same_fleet(const obs::FleetMetrics& a, const obs::FleetMetrics& b) {
  if (a.ranks != b.ranks || a.counters.size() != b.counters.size() ||
      a.gauges.size() != b.gauges.size() ||
      a.histograms.size() != b.histograms.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    if (!same_metric(a.counters[i], b.counters[i])) return false;
  }
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    if (!same_metric(a.gauges[i], b.gauges[i])) return false;
  }
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    const auto& x = a.histograms[i];
    const auto& y = b.histograms[i];
    if (x.name != y.name || x.count != y.count || x.sum != y.sum ||
        x.max != y.max || x.p50 != y.p50 || x.p95 != y.p95 ||
        x.p99 != y.p99) {
      return false;
    }
  }
  return true;
}

// Runs a 4-rank aggregation of fill_registry registries and returns every
// rank's view.
std::vector<obs::FleetMetrics> aggregate_fleet(int ranks) {
  std::vector<obs::FleetMetrics> views(static_cast<std::size_t>(ranks));
  dist::ThreadGroup group(ranks);
  group.run([&](dist::ThreadComm& comm) {
    obs::MetricsRegistry local;
    fill_registry(local, comm.rank());
    views[static_cast<std::size_t>(comm.rank())] =
        obs::aggregate(local, comm);
  });
  return views;
}

TEST(ObsAggregate, SeqCommSingleRankIsIdentity) {
  obs::MetricsRegistry local;
  fill_registry(local, 0);
  dist::SeqComm comm;
  const auto fleet = obs::aggregate(local, comm);

  EXPECT_EQ(fleet.ranks, 1);
  const auto* gram = fleet.find("phase.gram.count");
  ASSERT_NE(gram, nullptr);
  EXPECT_EQ(gram->min, 3.0);
  EXPECT_EQ(gram->max, 3.0);
  EXPECT_EQ(gram->sum, 3.0);
  EXPECT_EQ(gram->mean, 3.0);
  EXPECT_EQ(gram->imbalance, 1.0);

  ASSERT_EQ(fleet.histograms.size(), 1u);
  EXPECT_EQ(fleet.histograms[0].count, 1u);
  EXPECT_EQ(fleet.histograms[0].max, 1.0);
  EXPECT_EQ(fleet.histograms[0].p50,
            local.histogram("allreduce_latency_us").percentile(0.5));
}

TEST(ObsAggregate, SumsEqualPerRankSumsBitExactly) {
  constexpr int kRanks = 4;
  const auto views = aggregate_fleet(kRanks);

  // Expected sums computed directly from fill_registry's per-rank values;
  // all inputs are dyadic rationals so every reduction order is exact.
  double count_sum = 0.0, seconds_sum = 0.0;
  for (int r = 0; r < kRanks; ++r) {
    count_sum += 3.0 * (r + 1);
    seconds_sum += 0.25 * (r + 1);
  }

  const auto& fleet = views[0];
  EXPECT_EQ(fleet.ranks, kRanks);
  const auto* count = fleet.find("phase.gram.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->sum, count_sum);
  EXPECT_EQ(count->min, 3.0);
  EXPECT_EQ(count->max, 12.0);
  EXPECT_EQ(count->mean, count_sum / kRanks);

  const auto* seconds = fleet.find("phase.gram.seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->sum, seconds_sum);

  // Every rank must hold the identical fleet view (allreduce semantics).
  for (int r = 1; r < kRanks; ++r) {
    EXPECT_TRUE(same_fleet(views[0], views[static_cast<std::size_t>(r)]))
        << "rank " << r << " view diverged";
  }
}

TEST(ObsAggregate, ImbalanceGaugesAtLeastOne) {
  const auto views = aggregate_fleet(4);
  const auto check = [](const std::vector<obs::AggregatedMetric>& ms) {
    for (const auto& m : ms) {
      EXPECT_GE(m.imbalance, 1.0) << m.name;
    }
  };
  check(views[0].counters);
  check(views[0].gauges);

  // The rank-skewed gram counter: max 12 over mean 7.5.
  const auto* count = views[0].find("phase.gram.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->imbalance, 12.0 / 7.5);
  // The rank-uniform payload gauge is perfectly balanced.
  const auto* words = views[0].find("phase.allreduce.words");
  ASSERT_NE(words, nullptr);
  EXPECT_EQ(words->imbalance, 1.0);
}

TEST(ObsAggregate, DeterministicAcrossRepeatedRuns) {
  const auto first = aggregate_fleet(4);
  const auto second = aggregate_fleet(4);
  EXPECT_TRUE(same_fleet(first[0], second[0]));
}

TEST(ObsAggregate, HistogramMergeMatchesPooledObservations) {
  const auto views = aggregate_fleet(4);
  // fill_registry pushes (r+1) observations of 2^r: 10 total, max 8.
  obs::Histogram pooled;
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i <= r; ++i) {
      pooled.observe(std::ldexp(1.0, r));
    }
  }
  ASSERT_EQ(views[0].histograms.size(), 1u);
  const auto& merged = views[0].histograms[0];
  EXPECT_EQ(merged.name, "allreduce_latency_us");
  EXPECT_EQ(merged.count, pooled.count());
  EXPECT_EQ(merged.sum, pooled.sum());
  EXPECT_EQ(merged.max, pooled.max());
  EXPECT_EQ(merged.p50, pooled.percentile(0.50));
  EXPECT_EQ(merged.p95, pooled.percentile(0.95));
  EXPECT_EQ(merged.p99, pooled.percentile(0.99));
}

TEST(ObsAggregate, PublishRoundTripsThroughMetricsJson) {
  obs::MetricsRegistry local;
  fill_registry(local, 2);
  dist::SeqComm comm;
  const auto fleet = obs::aggregate(local, comm);

  obs::MetricsRegistry out;
  obs::publish(fleet, out);
  EXPECT_EQ(out.gauge("agg.phase.gram.count.sum").value(), 9.0);
  EXPECT_EQ(out.gauge("agg.phase.gram.count.imbalance").value(), 1.0);
  EXPECT_EQ(out.gauge("agg.allreduce_latency_us.count").value(), 3.0);

  // The JSON export of the published registry must parse (dogfoods the
  // shared escaping helper on the dotted agg.* names).
  const auto doc = parse_json(out.to_json());
  ASSERT_TRUE(doc.has_value() && doc->is_object());
  const auto* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const auto* sum = gauges->find("agg.phase.gram.count.sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->number, 9.0);
}

TEST(ObsAggregate, JsonEscapingSurvivesHostileNames) {
  obs::MetricsRegistry reg;
  reg.counter("weird \"name\"\n\twith\\escapes").add(7);
  const auto doc = parse_json(reg.to_json());
  ASSERT_TRUE(doc.has_value() && doc->is_object());
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* v = counters->find("weird \"name\"\n\twith\\escapes");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->number, 7.0);
}

TEST(ObsAggregate, DistributedSolvePopulatesFleet) {
  const auto dataset = data::make_paper_clone("covtype", 0.005);
  const core::LassoProblem problem(dataset, 0.001);
  core::SolverOptions opts;
  opts.max_iters = 24;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.track_history = false;

  auto& session = obs::TraceSession::global();
  session.start();
  dist::ThreadGroup group(4);
  const auto run = core::solve_rc_sfista_distributed(problem, opts, group);
  session.stop();
  session.clear();

  ASSERT_FALSE(run.fleet.empty());
  EXPECT_EQ(run.fleet.ranks, 4);
  // Every rank performs the same blocked schedule: ceil(24/4) = 6 rounds.
  const auto* rounds = run.fleet.find("phase.allreduce.count");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->min, 6.0);
  EXPECT_EQ(rounds->max, 6.0);
  EXPECT_EQ(rounds->sum, 24.0);
  EXPECT_EQ(rounds->imbalance, 1.0);
  // The aggregated per-rank call counters must reproduce the group's
  // summed CommStats exactly (the aggregation itself runs under AuxScope,
  // so it never perturbs the counters it is reporting on).
  const auto* calls = run.fleet.find("comm.allreduce_calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->sum, static_cast<double>(run.comm_stats.allreduce_calls));
  for (const auto& m : run.fleet.counters) {
    EXPECT_GE(m.imbalance, 1.0) << m.name;
  }
  // Convergence telemetry rides along on the distributed path too.
  EXPECT_EQ(run.conv.size(), 24u);
}

TEST(ObsAggregate, DistributedScheduleShapeDeterministic) {
  // Schedule-shape metrics (span counts, payload words, comm call counts)
  // must be bit-identical across repeated traced runs; time-valued metrics
  // carry jitter and are exempt.
  const auto dataset = data::make_paper_clone("covtype", 0.005);
  const core::LassoProblem problem(dataset, 0.001);
  core::SolverOptions opts;
  opts.max_iters = 16;
  opts.sampling_rate = 0.2;
  opts.k = 2;
  opts.track_history = false;

  const auto run_once = [&]() {
    auto& session = obs::TraceSession::global();
    session.start();
    dist::ThreadGroup group(4);
    auto run = core::solve_rc_sfista_distributed(problem, opts, group);
    session.stop();
    session.clear();
    return run;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_FALSE(a.fleet.empty());
  ASSERT_EQ(a.fleet.counters.size(), b.fleet.counters.size());
  for (std::size_t i = 0; i < a.fleet.counters.size(); ++i) {
    EXPECT_TRUE(same_metric(a.fleet.counters[i], b.fleet.counters[i]))
        << a.fleet.counters[i].name;
  }
  const auto* words_a = a.fleet.find("phase.allreduce.words");
  const auto* words_b = b.fleet.find("phase.allreduce.words");
  ASSERT_NE(words_a, nullptr);
  ASSERT_NE(words_b, nullptr);
  EXPECT_EQ(words_a->sum, words_b->sum);
}

}  // namespace
