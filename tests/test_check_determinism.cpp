// Tests for the determinism auditor (src/check/determinism): the replay
// harness must certify the engine's reproducibility contract -- bitwise
// identity across pool widths and run-to-run, tolerance-level agreement
// across rank counts -- and must catch seeded nondeterminism, reporting
// the first divergent element with both bit patterns.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"

namespace rcf::check {
namespace {

data::Dataset test_dataset() {
  data::SyntheticOptions opts;
  opts.num_samples = 600;
  opts.num_features = 24;
  opts.density = 0.4;
  opts.condition = 30.0;
  opts.noise_stddev = 0.05;
  opts.seed = 13;
  return data::make_regression(opts);
}

core::SolverOptions solver_options(int threads) {
  core::SolverOptions opts;
  opts.max_iters = 24;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.s = 2;
  opts.threads = threads;
  opts.track_history = false;
  return opts;
}

/// Sequential RC-SFISTA solve at the given pool width; the closure the
/// width-replay fixture hands to the harness.
ReplayRun width_run(const core::LassoProblem& problem, int threads) {
  return {"width=" + std::to_string(threads), [&problem, threads] {
            const auto result =
                core::solve_rc_sfista(problem, solver_options(threads));
            return result.w.raw();
          }};
}

/// Distributed RC-SFISTA solve at the given rank count.
ReplayRun rank_run(const core::LassoProblem& problem, int ranks) {
  return {"ranks=" + std::to_string(ranks), [&problem, ranks] {
            dist::ThreadGroup group(ranks);
            const auto result = core::solve_rc_sfista_distributed(
                problem, solver_options(1), group);
            return result.w.raw();
          }};
}

// ---------------------------------------------------------------------------
// Harness mechanics
// ---------------------------------------------------------------------------

TEST(CheckDeterminism, EmptyAndSingleRunPass) {
  EXPECT_TRUE(verify_replay({}).ok);
  EXPECT_TRUE(verify_replay({{"only", [] {
                                return std::vector<double>{1.0, 2.0};
                              }}})
                  .ok);
}

TEST(CheckDeterminism, ReportsFirstDivergentElementWithBits) {
  const std::vector<ReplayRun> runs = {
      {"ref", [] { return std::vector<double>{1.0, 2.0, 3.0}; }},
      {"bad", [] { return std::vector<double>{1.0, 2.5, 99.0}; }},
  };
  const auto report = verify_replay(runs);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.detail.find("element 1"), std::string::npos)
      << report.detail;
  EXPECT_NE(report.detail.find("'ref'"), std::string::npos) << report.detail;
  EXPECT_NE(report.detail.find("'bad'"), std::string::npos) << report.detail;
  EXPECT_NE(report.detail.find("bits 0x"), std::string::npos)
      << report.detail;
  EXPECT_THROW(enforce_replay(runs), DeterminismViolation);
}

TEST(CheckDeterminism, SizeMismatchReported) {
  const auto report = verify_replay({
      {"a", [] { return std::vector<double>(4, 0.0); }},
      {"b", [] { return std::vector<double>(5, 0.0); }},
  });
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.detail.find("size mismatch"), std::string::npos)
      << report.detail;
}

TEST(CheckDeterminism, BitwiseCatchesSignedZeroButToleranceForgives) {
  const std::vector<ReplayRun> runs = {
      {"pos", [] { return std::vector<double>{0.0}; }},
      {"neg", [] { return std::vector<double>{-0.0}; }},
  };
  EXPECT_FALSE(verify_replay(runs, 0.0).ok) << "-0.0 must fail bitwise";
  EXPECT_TRUE(verify_replay(runs, 1e-12).ok);
}

TEST(CheckDeterminism, ToleranceScalesWithMagnitude) {
  const std::vector<ReplayRun> runs = {
      {"a", [] { return std::vector<double>{1e6}; }},
      {"b", [] { return std::vector<double>{1e6 + 1e-3}; }},
  };
  // Absolute error 1e-3, relative 1e-9: the relative criterion passes.
  EXPECT_TRUE(verify_replay(runs, 1e-8).ok);
  EXPECT_FALSE(verify_replay(runs, 1e-12).ok);
}

// ---------------------------------------------------------------------------
// The engine's contract, certified through the harness
// ---------------------------------------------------------------------------

TEST(CheckDeterminism, SolverIsBitwiseIdenticalAcrossPoolWidths) {
  const auto dataset = test_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  // Width replay at {1, W}: kernels partition output ranges, so any pool
  // width reproduces the width-1 (sequential) iterate bit for bit.
  enforce_replay({width_run(problem, 1), width_run(problem, 2),
                  width_run(problem, 4)},
                 /*tol=*/0.0);
}

TEST(CheckDeterminism, SolverIsBitwiseIdenticalRunToRun) {
  const auto dataset = test_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  enforce_replay({rank_run(problem, 2), rank_run(problem, 2)}, /*tol=*/0.0);
}

TEST(CheckDeterminism, RankReplayAgreesAtTolerance) {
  const auto dataset = test_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  // Rank replay at {1, P}: rank blocks regroup the stage-C partial sums,
  // so cross-rank-count agreement is analytic (tolerance), not bitwise.
  enforce_replay({rank_run(problem, 1), rank_run(problem, 2),
                  rank_run(problem, 4)},
                 /*tol=*/1e-9);
}

TEST(CheckDeterminism, SeededNondeterminismIsCaught) {
  const auto dataset = test_dataset();
  const core::LassoProblem problem(dataset, 0.01);
  // Seeded defect: the second run solves a perturbed problem, standing in
  // for any unseeded RNG / accumulation-order bug.
  std::vector<ReplayRun> runs;
  runs.push_back(rank_run(problem, 1));
  runs.push_back({"perturbed", [&problem] {
                    auto opts = solver_options(1);
                    opts.seed += 1;
                    dist::ThreadGroup group(1);
                    return core::solve_rc_sfista_distributed(problem, opts,
                                                             group)
                        .w.raw();
                  }});
  const auto report = verify_replay(runs, /*tol=*/0.0);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.detail.find("'perturbed'"), std::string::npos)
      << report.detail;
}

}  // namespace
}  // namespace rcf::check
