// Differential kernel tests: scalar vs SIMD backend, over replayable
// seeded shapes (tests/prop.hpp generators: ragged dims, empty rows,
// 0-row/0-col/1x1 matrices, SIMD-aligned and off-by-one "unaligned
// leading dim" sizes, denormal and NaN/Inf payloads).
//
// Every kernel pair is held to two contracts (la/backend.hpp):
//
//  * Width invariance, bitwise, PER BACKEND: each backend must produce
//    bit-identical bytes at pool widths 1, 2 and 7 (the repo's core
//    determinism contract; compared with memcmp so NaN payloads count as
//    equal when their bit patterns are).
//  * Cross-backend agreement, to tolerance, on finite inputs: the SIMD
//    reductions (gemv/syrk/spmv row dots, dot) regroup terms into 4-lane
//    accumulators, so scalar and SIMD legitimately differ within rounding.
//    Denormal payloads are finite and stay inside this gate.
//
// NaN/Inf payloads are checked for width invariance only: the scalar gemm
// short-circuits exact-zero A entries (skipping 0 * inf = NaN products)
// and the SIMD tiles do not, so cross-backend comparison on non-finite
// data is not part of the contract -- only that each backend propagates
// them deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "exec/pool.hpp"
#include "la/backend.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "prop.hpp"
#include "sparse/csr.hpp"
#include "sparse/gram.hpp"

namespace rcf {
namespace {

constexpr std::uint64_t kSeed = 20180813;  // ICPP'18 vintage.

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

double linf(const std::vector<double>& v) {
  double m = 0.0;
  for (const double x : v) {
    if (std::isfinite(x)) {
      m = std::max(m, std::abs(x));
    }
  }
  return m;
}

/// Runs `compute` under both backends at pool widths 1/2/7, asserting the
/// bitwise width-invariance contract per backend; when `cross_tol` >= 0,
/// additionally asserts |scalar - simd|_inf <= cross_tol * (1 + |scalar|_inf).
testing::AssertionResult check_kernel(
    const char* what, const std::function<std::vector<double>()>& compute,
    double cross_tol) {
  const auto run = [&](la::Backend backend, int width) {
    la::ScopedBackend scoped(backend);
    exec::Pool pool(width);
    exec::PoolGuard guard(&pool);
    return compute();
  };
  std::vector<double> base[2];
  for (const la::Backend backend : {la::Backend::kScalar, la::Backend::kSimd}) {
    const auto idx = static_cast<std::size_t>(backend);
    base[idx] = run(backend, 1);
    for (const int width : {2, 7}) {
      const auto wide = run(backend, width);
      if (!bits_equal(base[idx], wide)) {
        return testing::AssertionFailure()
               << what << ": " << la::backend_name(backend) << " backend not "
               << "bitwise width-invariant (width " << width << " vs 1)";
      }
    }
  }
  if (cross_tol >= 0.0) {
    if (base[0].size() != base[1].size()) {
      return testing::AssertionFailure() << what << ": output size mismatch";
    }
    const double bound = cross_tol * (1.0 + linf(base[0]));
    for (std::size_t i = 0; i < base[0].size(); ++i) {
      const double diff = std::abs(base[0][i] - base[1][i]);
      if (!(diff <= bound)) {
        return testing::AssertionFailure()
               << what << ": scalar vs simd diverged at [" << i << "]: "
               << base[0][i] << " vs " << base[1][i] << " (bound " << bound
               << ")";
      }
    }
  }
  return testing::AssertionSuccess();
}

la::Matrix payload_matrix(prop::Gen& g, std::size_t rows, std::size_t cols,
                          prop::Payload p) {
  la::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = prop::value(g, p);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Dense level-1/2/3 kernel pairs.
// ---------------------------------------------------------------------------

TEST(BackendDiff, Dot) {
  prop::for_all("dot scalar-vs-simd", kSeed, 40, [](prop::Gen& g) {
    const std::size_t n = prop::dim(g, 200);
    const auto x = g.vector(n), y = g.vector(n);
    return check_kernel(
        "dot",
        [&] { return std::vector<double>{la::dot(x, y)}; },
        1e-12);
  });
}

TEST(BackendDiff, Gemv) {
  prop::for_all("gemv scalar-vs-simd", kSeed, 40, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 48);
    const la::Matrix a = payload_matrix(g, s.rows, s.cols,
                                        prop::Payload::kNormal);
    const auto x = g.vector(s.cols);
    const double alpha = g.real(-2.0, 2.0), beta = g.real(-1.0, 1.0);
    const auto y0 = g.vector(s.rows);
    return check_kernel(
        "gemv",
        [&] {
          auto y = y0;
          la::gemv(alpha, a, x, beta, y);
          return y;
        },
        1e-12);
  });
}

TEST(BackendDiff, GemvT) {
  prop::for_all("gemv_t scalar-vs-simd", kSeed, 40, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 48);
    const la::Matrix a = payload_matrix(g, s.rows, s.cols,
                                        prop::Payload::kNormal);
    const auto x = g.vector(s.rows);
    const double alpha = g.real(-2.0, 2.0), beta = g.real(-1.0, 1.0);
    const auto y0 = g.vector(s.cols);
    return check_kernel(
        "gemv_t",
        [&] {
          auto y = y0;
          la::gemv_t(alpha, a, x, beta, y);
          return y;
        },
        1e-12);
  });
}

TEST(BackendDiff, Gemm) {
  prop::for_all("gemm scalar-vs-simd", kSeed, 30, [](prop::Gen& g) {
    const std::size_t m = prop::dim(g, 24);
    const std::size_t k = prop::dim(g, 24);
    const std::size_t n = prop::dim(g, 24);
    const la::Matrix a = payload_matrix(g, m, k, prop::Payload::kNormal);
    const la::Matrix b = payload_matrix(g, k, n, prop::Payload::kNormal);
    const la::Matrix c0 = payload_matrix(g, m, n, prop::Payload::kNormal);
    const double alpha = g.real(-2.0, 2.0), beta = g.real(-1.0, 1.0);
    return check_kernel(
        "gemm",
        [&] {
          la::Matrix c = c0;
          la::gemm(alpha, a, b, beta, c);
          return std::vector<double>(c.data(), c.data() + m * n);
        },
        1e-11);
  });
}

TEST(BackendDiff, SyrkAndSymmetrize) {
  prop::for_all("syrk scalar-vs-simd", kSeed, 30, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 32);
    const la::Matrix a = payload_matrix(g, s.rows, s.cols,
                                        prop::Payload::kNormal);
    const double alpha = g.real(-2.0, 2.0);
    return check_kernel(
        "syrk",
        [&] {
          la::Matrix c(s.rows, s.rows);
          la::syrk(alpha, a, 0.0, c);
          return std::vector<double>(c.data(),
                                     c.data() + s.rows * s.rows);
        },
        1e-11);
  });
}

// ---------------------------------------------------------------------------
// Sparse kernel pairs (ragged rows, empty rows, dense fast-path rows).
// ---------------------------------------------------------------------------

TEST(BackendDiff, Spmv) {
  prop::for_all("spmv scalar-vs-simd", kSeed, 40, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 48);
    const sparse::CsrMatrix a = prop::csr(g, s.rows, s.cols);
    const auto x = g.vector(s.cols);
    return check_kernel(
        "spmv",
        [&] {
          std::vector<double> y(s.rows);
          a.spmv(x, y);
          return y;
        },
        1e-12);
  });
}

TEST(BackendDiff, SpmvT) {
  prop::for_all("spmv_t scalar-vs-simd", kSeed, 40, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 48);
    const sparse::CsrMatrix a = prop::csr(g, s.rows, s.cols);
    const auto x = g.vector(s.rows);
    return check_kernel(
        "spmv_t",
        [&] {
          std::vector<double> y(s.cols);
          a.spmv_t(x, y);
          return y;
        },
        1e-12);
  });
}

TEST(BackendDiff, Spmm) {
  prop::for_all("spmm scalar-vs-simd", kSeed, 30, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 32);
    const std::size_t n = prop::dim(g, 24);
    const sparse::CsrMatrix a = prop::csr(g, s.rows, s.cols);
    const la::Matrix b = payload_matrix(g, s.cols, n, prop::Payload::kNormal);
    return check_kernel(
        "spmm",
        [&] {
          la::Matrix y(s.rows, n);
          a.spmm(b, y);
          return std::vector<double>(y.data(), y.data() + s.rows * n);
        },
        1e-12);
  });
}

TEST(BackendDiff, SampledGram) {
  prop::for_all("sampled_gram scalar-vs-simd", kSeed, 30, [](prop::Gen& g) {
    const std::size_t m = g.size(2, 48);
    const std::size_t d = prop::dim(g, 24, /*allow_empty=*/false);
    const sparse::CsrMatrix xt = prop::csr(g, m, d);
    const auto y = g.vector(m);
    const auto mbar = static_cast<std::uint64_t>(g.size(1, m));
    const auto idx = g.rng().sample_without_replacement(m, mbar);
    return check_kernel(
        "sampled_gram",
        [&] {
          la::Matrix h(d, d);
          std::vector<double> r(d);
          sparse::sampled_gram(xt, y, idx, h, r);
          std::vector<double> out(h.data(), h.data() + d * d);
          out.insert(out.end(), r.begin(), r.end());
          return out;
        },
        1e-11);
  });
}

// ---------------------------------------------------------------------------
// Edge payloads: denormals stay in the tolerance gate; NaN/Inf are checked
// for per-backend width invariance only (see the header comment).
// ---------------------------------------------------------------------------

TEST(BackendDiff, DenormalPayloads) {
  prop::for_all("denormal payloads", kSeed, 20, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 32);
    const la::Matrix a = payload_matrix(g, s.rows, s.cols,
                                        prop::Payload::kDenormal);
    const auto x = prop::payload_vector(g, s.cols, prop::Payload::kDenormal);
    const auto res = check_kernel(
        "gemv(denormal)",
        [&] {
          std::vector<double> y(s.rows, 0.0);
          la::gemv(1.0, a, x, 0.0, y);
          return y;
        },
        1e-12);
    if (!res) {
      return res;
    }
    const auto v = prop::payload_vector(g, prop::dim(g, 100),
                                        prop::Payload::kDenormal);
    return check_kernel(
        "dot(denormal)",
        [&] { return std::vector<double>{la::dot(v, v)}; },
        1e-12);
  });
}

TEST(BackendDiff, NonFinitePayloadsWidthInvariant) {
  prop::for_all("NaN/Inf payloads", kSeed, 20, [](prop::Gen& g) {
    const prop::Shape s = prop::shape(g, 32);
    const la::Matrix a = payload_matrix(g, s.rows, s.cols,
                                        prop::Payload::kNonFinite);
    const auto x = prop::payload_vector(g, s.cols, prop::Payload::kNonFinite);
    const auto gemv_res = check_kernel(
        "gemv(nonfinite)",
        [&] {
          std::vector<double> y(s.rows, 0.0);
          la::gemv(1.0, a, x, 0.0, y);
          return y;
        },
        /*cross_tol=*/-1.0);
    if (!gemv_res) {
      return gemv_res;
    }
    const sparse::CsrMatrix sp =
        prop::csr(g, s.rows, s.cols, prop::Payload::kNonFinite);
    return check_kernel(
        "spmv(nonfinite)",
        [&] {
          std::vector<double> y(s.rows, 0.0);
          sp.spmv(x, y);
          return y;
        },
        /*cross_tol=*/-1.0);
  });
}

// ---------------------------------------------------------------------------
// Backend selection plumbing.
// ---------------------------------------------------------------------------

TEST(BackendSelect, ParseAndName) {
  EXPECT_EQ(la::parse_backend("scalar"), la::Backend::kScalar);
  EXPECT_EQ(la::parse_backend("simd"), la::Backend::kSimd);
  EXPECT_STREQ(la::backend_name(la::Backend::kScalar), "scalar");
  EXPECT_STREQ(la::backend_name(la::Backend::kSimd), "simd");
}

TEST(BackendSelect, RejectsUnknownName) {
  EXPECT_THROW(static_cast<void>(la::parse_backend("avx9000")),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(la::parse_backend("")), InvalidArgument);
  EXPECT_THROW(la::install_backend_from("turbo"), InvalidArgument);
}

TEST(BackendSelect, EnvOverrideAndCliPrecedence) {
  la::ScopedBackend restore(la::active_backend());
  // Env alone drives the fallback path.
  ASSERT_EQ(setenv("RCF_BACKEND", "simd", 1), 0);
  EXPECT_EQ(la::backend_from_env(la::Backend::kScalar), la::Backend::kSimd);
  EXPECT_EQ(la::install_backend_from(""), la::Backend::kSimd);
  EXPECT_EQ(la::active_backend(), la::Backend::kSimd);
  // A non-empty CLI value (--backend) beats the env.
  EXPECT_EQ(la::install_backend_from("scalar"), la::Backend::kScalar);
  EXPECT_EQ(la::active_backend(), la::Backend::kScalar);
  // Unknown env value: rejected, not silently scalar.
  ASSERT_EQ(setenv("RCF_BACKEND", "bogus", 1), 0);
  EXPECT_THROW(static_cast<void>(la::backend_from_env(la::Backend::kScalar)),
               InvalidArgument);
  ASSERT_EQ(unsetenv("RCF_BACKEND"), 0);
  EXPECT_EQ(la::backend_from_env(la::Backend::kScalar), la::Backend::kScalar);
}

TEST(BackendSelect, ScopedBackendRestores) {
  const la::Backend before = la::active_backend();
  {
    la::ScopedBackend scoped(la::Backend::kSimd);
    EXPECT_EQ(la::active_backend(), la::Backend::kSimd);
    {
      la::ScopedBackend nested(la::Backend::kScalar);
      EXPECT_EQ(la::active_backend(), la::Backend::kScalar);
    }
    EXPECT_EQ(la::active_backend(), la::Backend::kSimd);
  }
  EXPECT_EQ(la::active_backend(), before);
}

TEST(BackendSelect, SolveResultStampsActiveBackend) {
  data::SyntheticOptions dopts;
  dopts.num_samples = 60;
  dopts.num_features = 8;
  dopts.density = 0.5;
  dopts.seed = 7;
  const data::Dataset dataset = data::make_regression(dopts);
  const core::LassoProblem problem(dataset, 0.01);
  core::SolverOptions opts;
  opts.max_iters = 3;
  opts.track_history = false;
  for (const la::Backend backend :
       {la::Backend::kScalar, la::Backend::kSimd}) {
    la::ScopedBackend scoped(backend);
    const core::SolveResult result = core::solve_rc_sfista(problem, opts);
    EXPECT_EQ(result.backend, la::backend_name(backend));
  }
  // The failure factory stamps too.
  la::ScopedBackend scoped(la::Backend::kSimd);
  const auto failed = core::SolveResult::failure("x", "reason");
  EXPECT_EQ(failed.backend, "simd");
}

}  // namespace
}  // namespace rcf
