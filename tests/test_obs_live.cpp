// Tests for the live telemetry layer (src/obs): the SPSC telemetry ring
// and global publish gate, MetricsRegistry snapshot/delta semantics under
// concurrent writers, every watchdog alert rule from synthetic samples,
// zero false positives on clean solves, and the LiveMonitor end-to-end
// (stream framing, SolveResult::alerts annotation, fault-injected storms).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"
#include "fault/plan.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"

namespace rcf {
namespace {

// ---------------------------------------------------------------------------
// TelemetryRing (SPSC)
// ---------------------------------------------------------------------------

obs::TelemetryEvent make_event(double a) {
  obs::TelemetryEvent ev;
  ev.kind = obs::TelemetryKind::kSpan;
  ev.label = "test";
  ev.a = a;
  return ev;
}

TEST(TelemetryRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::TelemetryRing(5).capacity(), 8u);
  EXPECT_EQ(obs::TelemetryRing(8).capacity(), 8u);
  EXPECT_EQ(obs::TelemetryRing(0).capacity(), 2u);
}

TEST(TelemetryRing, PushDrainPreservesOrder) {
  obs::TelemetryRing ring(16);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ring.try_push(make_event(i)));
  }
  EXPECT_EQ(ring.size(), 10u);
  std::vector<obs::TelemetryEvent> out;
  EXPECT_EQ(ring.drain(out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)].a, i);
  }
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TelemetryRing, FullRingDropsAndCounts) {
  obs::TelemetryRing ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(make_event(i)));
  }
  EXPECT_FALSE(ring.try_push(make_event(99)));
  EXPECT_FALSE(ring.try_push(make_event(100)));
  EXPECT_EQ(ring.dropped(), 2u);
  // Drain frees capacity; pushes succeed again and the dropped events are
  // gone (drop-newest, never overwrite).
  std::vector<obs::TelemetryEvent> out;
  EXPECT_EQ(ring.drain(out), 4u);
  EXPECT_TRUE(ring.try_push(make_event(4)));
  out.clear();
  EXPECT_EQ(ring.drain(out), 1u);
  EXPECT_DOUBLE_EQ(out[0].a, 4.0);
}

TEST(TelemetryRing, ConcurrentProducerConsumer) {
  // One producer, one consumer, both hammering: every pushed event is
  // either drained in order or counted as dropped (TSan covers the memory
  // ordering of the head/tail handoff).
  obs::TelemetryRing ring(64);
  constexpr std::size_t kEvents = 20000;
  std::thread producer([&ring] {  // rcf-analyze: allow(telemetry-discipline)
    for (std::size_t i = 0; i < kEvents; ++i) {
      ring.try_push(make_event(static_cast<double>(i)));
    }
  });
  std::vector<obs::TelemetryEvent> got;
  while (true) {
    const std::size_t n = ring.drain(got);
    if (n == 0 && got.size() + ring.dropped() >= kEvents) {
      break;
    }
  }
  producer.join();
  ring.drain(got);
  EXPECT_EQ(got.size() + ring.dropped(), kEvents);
  // The drained subsequence preserves push order.
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].a, got[i].a);
  }
}

// ---------------------------------------------------------------------------
// Global publish gate
// ---------------------------------------------------------------------------

TEST(Telemetry, PublishIsGatedOff) {
  ASSERT_FALSE(obs::live_enabled());
  obs::telemetry_reset();
  obs::telemetry_publish(obs::TelemetryKind::kSpan, "gated", 1.0);
  std::vector<obs::TelemetryEvent> out;
  EXPECT_EQ(obs::telemetry_drain(out), 0u);
}

TEST(Telemetry, PublishRecordsWhenGateOpen) {
  obs::telemetry_reset();
  obs::detail::set_gate_bit(obs::detail::kGateLive, true);
  obs::telemetry_publish(obs::TelemetryKind::kProgress, "iter", 3.0, 0.5, 0.1);
  obs::detail::set_gate_bit(obs::detail::kGateLive, false);
  std::vector<obs::TelemetryEvent> out;
  ASSERT_EQ(obs::telemetry_drain(out), 1u);
  EXPECT_EQ(out[0].kind, obs::TelemetryKind::kProgress);
  EXPECT_STREQ(out[0].label, "iter");
  EXPECT_DOUBLE_EQ(out[0].a, 3.0);
  EXPECT_DOUBLE_EQ(out[0].b, 0.5);
  EXPECT_DOUBLE_EQ(out[0].c, 0.1);
  EXPECT_GE(out[0].t_us, 0);
  obs::telemetry_reset();
}

// ---------------------------------------------------------------------------
// MetricsRegistry snapshots / deltas
// ---------------------------------------------------------------------------

TEST(MetricsSnapshot, DeltaSubtractsCountersCarriesGauges) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  auto& c = reg.counter("snap.test.counter");
  auto& g = reg.gauge("snap.test.gauge");
  c.add(5);
  g.set(1.5);
  const auto prev = reg.snapshot();
  c.add(7);
  g.set(9.0);
  const auto cur = reg.snapshot();
  const auto delta = obs::delta_snapshot(prev, cur);
  EXPECT_EQ(delta.counters.at("snap.test.counter"), 7u);
  // Gauges have no meaningful delta; the current value carries through.
  EXPECT_DOUBLE_EQ(delta.gauges.at("snap.test.gauge"), 9.0);
}

TEST(MetricsSnapshot, DeltaClampsAfterResetAndCountsNewInstruments) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  auto& c = reg.counter("snap.clamp.counter");
  c.add(10);
  const auto prev = reg.snapshot();
  c.reset();
  c.add(3);  // 3 < 10: a naive subtraction would underflow
  reg.counter("snap.clamp.fresh").add(2);
  const auto cur = reg.snapshot();
  const auto delta = obs::delta_snapshot(prev, cur);
  // Post-reset the delta is the count since the reset, never underflow.
  EXPECT_EQ(delta.counters.at("snap.clamp.counter"), 3u);
  EXPECT_EQ(delta.counters.at("snap.clamp.fresh"), 2u);
}

TEST(MetricsSnapshot, HistogramDeltaAndBucketEdgeStability) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  auto& h = reg.histogram("snap.test.hist");
  // Bucket layout: bin 0 = [0,1), bin i = [2^(i-1), 2^i).  Edges are a
  // static property -- identical in every snapshot.
  h.observe(0.5);   // bin 0
  h.observe(1.0);   // bin 1
  h.observe(1.99);  // bin 1
  h.observe(2.0);   // bin 2
  const auto prev = reg.snapshot();
  h.observe(3.0);  // bin 2
  const auto cur = reg.snapshot();
  const auto& pb = prev.histograms.at("snap.test.hist").bins;
  const auto& cb = cur.histograms.at("snap.test.hist").bins;
  EXPECT_EQ(pb[0], 1u);
  EXPECT_EQ(pb[1], 2u);
  EXPECT_EQ(pb[2], 1u);
  EXPECT_EQ(cb[2], 2u);
  const auto delta = obs::delta_snapshot(prev, cur);
  const auto& db = delta.histograms.at("snap.test.hist");
  EXPECT_EQ(db.count, 1u);
  EXPECT_EQ(db.bins[2], 1u);
  EXPECT_EQ(db.bins[0], 0u);
  EXPECT_DOUBLE_EQ(obs::Histogram::bin_edge(0), 1.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bin_edge(1), 2.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bin_edge(10), 1024.0);
}

TEST(MetricsSnapshot, MonotoneUnderConcurrentWriters) {
  // Counters and histogram buckets only ever increase, so successive
  // snapshots taken while writer threads hammer the instruments must be
  // elementwise monotone (the per-field relaxed loads never tear a
  // monotone counter backwards).  TSan covers the access pattern itself.
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  auto& c = reg.counter("snap.mono.counter");
  auto& h = reg.histogram("snap.mono.hist");
  std::atomic<bool> stop{false};
  std::thread writer([&] {  // rcf-analyze: allow(telemetry-discipline)
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      c.add(1);
      h.observe(static_cast<double>(i % 512));
      ++i;
    }
  });
  std::uint64_t prev_count = 0;
  std::uint64_t prev_hist = 0;
  std::array<std::uint64_t, obs::Histogram::kNumBins> prev_bins{};
  for (int pass = 0; pass < 200; ++pass) {
    const auto snap = reg.snapshot();
    const std::uint64_t count = snap.counters.at("snap.mono.counter");
    const auto& hist = snap.histograms.at("snap.mono.hist");
    EXPECT_GE(count, prev_count);
    EXPECT_GE(hist.count, prev_hist);
    for (std::size_t i = 0; i < hist.bins.size(); ++i) {
      EXPECT_GE(hist.bins[i], prev_bins[i]);
    }
    prev_count = count;
    prev_hist = hist.count;
    prev_bins = hist.bins;
  }
  stop.store(true);
  writer.join();
  reg.reset();
}

// ---------------------------------------------------------------------------
// Watchdog rules from synthetic samples
// ---------------------------------------------------------------------------

obs::ConvergenceRecord conv_rec(std::uint64_t iter, double objective,
                                double step) {
  obs::ConvergenceRecord rec;
  rec.iteration = iter;
  rec.objective = objective;
  rec.step = step;
  return rec;
}

obs::HealthSample sample_with_conv(std::vector<obs::ConvergenceRecord> conv) {
  obs::HealthSample sample;
  sample.conv = std::move(conv);
  return sample;
}

TEST(Watchdog, CleanConvergingSeriesRaisesNothing) {
  obs::Watchdog dog;
  // Geometric decay with shrinking steps: the plateau at the end comes
  // with collapsing steps, which the step-ratio test must reject.
  std::vector<obs::ConvergenceRecord> conv;
  double f = 1.0;
  double step = 0.1;
  for (std::uint64_t i = 0; i < 400; ++i) {
    conv.push_back(conv_rec(i, 0.25 + f, step));
    f *= 0.95;
    step *= 0.95;
  }
  const auto alerts = dog.on_sample(sample_with_conv(std::move(conv)));
  EXPECT_TRUE(alerts.empty());
}

TEST(Watchdog, RestartedSolveResetsRunState) {
  obs::WatchdogConfig config;
  config.stall_window = 8;
  obs::Watchdog dog(config);
  // Two identical converging runs back to back, as a bench loop re-running
  // the solver under one monitor produces.  Without run-state reset the
  // window straddles the restart (low run-1 tail, high run-2 head): a
  // negative "improvement" with fresh large steps, i.e. a false stall.
  for (int run = 0; run < 2; ++run) {
    std::vector<obs::ConvergenceRecord> conv;
    double f = 1.0;
    double step = 0.1;
    for (std::uint64_t i = 0; i < 60; ++i) {
      conv.push_back(conv_rec(i, 0.25 + f, step));
      f *= 0.9;
      step *= 0.9;
    }
    const auto alerts = dog.on_sample(sample_with_conv(std::move(conv)));
    EXPECT_TRUE(alerts.empty()) << "run " << run;
  }
}

TEST(Watchdog, StallFiresOncePerEpisode) {
  obs::WatchdogConfig config;
  config.stall_window = 8;
  obs::Watchdog dog(config);
  std::vector<obs::ConvergenceRecord> conv;
  for (std::uint64_t i = 0; i < 32; ++i) {
    conv.push_back(conv_rec(i, 1.0, 0.05));  // flat objective, live steps
  }
  auto alerts = dog.on_sample(sample_with_conv(std::move(conv)));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, obs::AlertKind::kStall);
  // Still stalled next sample: episode already reported, no new alert.
  alerts = dog.on_sample(sample_with_conv({conv_rec(32, 1.0, 0.05)}));
  EXPECT_TRUE(alerts.empty());
}

TEST(Watchdog, DivergenceFires) {
  obs::Watchdog dog;
  std::vector<obs::ConvergenceRecord> conv;
  for (std::uint64_t i = 0; i < 4; ++i) {
    conv.push_back(conv_rec(i, 1.0 - 0.1 * static_cast<double>(i), 0.1));
  }
  conv.push_back(conv_rec(4, 1e6, 0.1));  // 1e6 > 1e4 * best(0.7)
  const auto alerts = dog.on_sample(sample_with_conv(std::move(conv)));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, obs::AlertKind::kNonFinite);
  EXPECT_DOUBLE_EQ(alerts[0].value, 1e6);
}

TEST(Watchdog, NonFiniteStepFiresOnlyAfterFiniteSteps) {
  obs::Watchdog dog;
  // NaN step before any finite one means "untracked", not broken.
  auto alerts = dog.on_sample(
      sample_with_conv({conv_rec(0, 1.0, std::nan(""))}));
  EXPECT_TRUE(alerts.empty());
  alerts = dog.on_sample(sample_with_conv({conv_rec(1, 0.9, 0.1)}));
  EXPECT_TRUE(alerts.empty());
  alerts = dog.on_sample(
      sample_with_conv({conv_rec(2, 0.8, std::nan(""))}));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, obs::AlertKind::kNonFinite);
}

TEST(Watchdog, StragglerNeedsLagAndIdleGrace) {
  obs::WatchdogConfig config;
  config.straggler_epochs = 8;
  config.straggler_grace_us = 1000;
  obs::Watchdog dog(config);
  obs::HealthSample sample;
  sample.ranks = {{0, 100, 10}, {1, 100, 10}, {2, 92, 400}};
  // Rank 2 lags by 8 epochs but has not been idle long enough.
  EXPECT_TRUE(dog.on_sample(sample).empty());
  sample.ranks[2].idle_us = 2000;
  auto alerts = dog.on_sample(sample);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, obs::AlertKind::kStraggler);
  EXPECT_EQ(alerts[0].rank, 2);
  // Still lagging: deduplicated until it recovers.
  EXPECT_TRUE(dog.on_sample(sample).empty());
  // Recovery re-arms the rule.
  sample.ranks[2] = {2, 100, 10};
  EXPECT_TRUE(dog.on_sample(sample).empty());
  sample.ranks[2] = {2, 80, 5000};
  alerts = dog.on_sample(sample);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, obs::AlertKind::kStraggler);
}

TEST(Watchdog, RetryStormUsesPerWindowDelta) {
  obs::WatchdogConfig config;
  config.retry_storm = 4;
  obs::Watchdog dog(config);
  obs::HealthSample sample;
  sample.retries_total = 100;
  // First sample only establishes the baseline, even at a high total.
  EXPECT_TRUE(dog.on_sample(sample).empty());
  sample.retries_total = 103;  // +3 < 4
  EXPECT_TRUE(dog.on_sample(sample).empty());
  sample.retries_total = 108;  // +5 >= 4
  auto alerts = dog.on_sample(sample);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, obs::AlertKind::kRetryStorm);
  EXPECT_DOUBLE_EQ(alerts[0].value, 5.0);
  // Calm window re-arms; the next storm alerts again.
  sample.retries_total = 109;
  EXPECT_TRUE(dog.on_sample(sample).empty());
  sample.retries_total = 120;
  EXPECT_EQ(dog.on_sample(sample).size(), 1u);
}

TEST(Watchdog, RingOverflowFiresOnNewDrops) {
  obs::Watchdog dog;
  obs::HealthSample sample;
  sample.drops_total = 0;
  EXPECT_TRUE(dog.on_sample(sample).empty());
  sample.drops_total = 7;
  auto alerts = dog.on_sample(sample);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, obs::AlertKind::kRingOverflow);
  EXPECT_DOUBLE_EQ(alerts[0].value, 7.0);
  // No new drops, no new alert.
  EXPECT_TRUE(dog.on_sample(sample).empty());
}

TEST(Watchdog, AlertJsonIsWellFormed) {
  obs::Alert alert;
  alert.kind = obs::AlertKind::kStraggler;
  alert.rank = 3;
  alert.iteration = 17;
  alert.value = 9.0;
  alert.threshold = 8.0;
  alert.detail = "rank 3 \"lags\"";
  const std::string json = obs::alert_json(alert);
  EXPECT_NE(json.find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"straggler\""), std::string::npos);
  EXPECT_NE(json.find("\\\"lags\\\""), std::string::npos);
}

TEST(Watchdog, ScanConvergenceCleanOnRealSolve) {
  // The acceptance bar: zero false positives on a clean converging solve.
  data::SyntheticOptions gen;
  gen.num_samples = 400;
  gen.num_features = 60;
  gen.density = 0.3;
  const auto dataset = data::make_regression(gen);
  const core::LassoProblem problem(dataset, 0.05);
  core::SolverOptions opts;
  opts.max_iters = 150;
  const auto result = core::solve_rc_sfista(problem, opts);
  const auto alerts = obs::scan_convergence(result.conv.ordered());
  EXPECT_TRUE(alerts.empty());
  EXPECT_TRUE(result.alerts.empty());
}

// ---------------------------------------------------------------------------
// LiveMonitor end-to-end
// ---------------------------------------------------------------------------

/// Parses a length-prefixed JSONL stream; returns the JSON payloads.
std::vector<std::string> parse_frames(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  std::vector<std::string> frames;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data[pos] == '\n') {
      ++pos;
      continue;
    }
    const std::size_t tab = data.find('\t', pos);
    EXPECT_NE(tab, std::string::npos) << "unterminated length prefix";
    if (tab == std::string::npos) {
      break;
    }
    const std::size_t len =
        static_cast<std::size_t>(std::stoul(data.substr(pos, tab - pos)));
    EXPECT_LE(tab + 1 + len, data.size()) << "truncated frame";
    if (tab + 1 + len > data.size()) {
      break;
    }
    frames.push_back(data.substr(tab + 1, len));
    pos = tab + 1 + len;
  }
  return frames;
}

class TempFile {
 public:
  explicit TempFile(const char* stem) {
    path_ = ::testing::TempDir() + stem;
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(LiveMonitor, CleanSolveStreamsSnapshotsWithZeroAlerts) {
  TempFile stream("live_clean.jsonl");
  obs::LiveConfig config;
  config.out = stream.path();
  config.period_ms = 10;
  ASSERT_TRUE(obs::LiveMonitor::global().start(config));
  EXPECT_TRUE(obs::LiveMonitor::global().running());
  EXPECT_FALSE(obs::LiveMonitor::global().start(config));  // already running

  data::SyntheticOptions gen;
  gen.num_samples = 600;
  gen.num_features = 64;
  gen.density = 0.3;
  const auto dataset = data::make_regression(gen);
  const core::LassoProblem problem(dataset, 0.05);
  core::SolverOptions opts;
  opts.max_iters = 80;
  const auto result = core::solve_rc_sfista(problem, opts);

  obs::LiveMonitor::global().sample_now();
  EXPECT_EQ(obs::LiveMonitor::global().alert_count(), 0u);
  obs::LiveMonitor::global().stop();
  EXPECT_FALSE(obs::LiveMonitor::global().running());

  EXPECT_TRUE(result.alerts.empty());
  const auto frames = parse_frames(stream.path());
  ASSERT_GE(frames.size(), 2u);
  EXPECT_NE(frames[0].find("\"type\":\"header\""), std::string::npos);
  bool saw_progress = false;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_NE(frames[i].find("\"type\":\"snapshot\""), std::string::npos);
    if (frames[i].find("\"epoch\":0") == std::string::npos) {
      saw_progress = true;
    }
  }
  EXPECT_TRUE(saw_progress) << "no snapshot observed solver progress";
}

TEST(LiveMonitor, DistributedSolveReportsAllRanks) {
  TempFile stream("live_dist.jsonl");
  obs::LiveConfig config;
  config.out = stream.path();
  config.period_ms = 10;
  ASSERT_TRUE(obs::LiveMonitor::global().start(config));

  const auto dataset = data::make_paper_clone("SUSY", 0.002);
  const core::LassoProblem problem(dataset, 0.005);
  core::SolverOptions opts;
  opts.max_iters = 40;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.track_history = false;
  dist::ThreadGroup group(4);
  const auto result = core::solve_rc_sfista_distributed(problem, opts, group);

  obs::LiveMonitor::global().sample_now();
  const std::uint64_t alerts = obs::LiveMonitor::global().alert_count();
  obs::LiveMonitor::global().stop();

  EXPECT_EQ(alerts, 0u) << "clean distributed solve must not alert";
  EXPECT_TRUE(result.alerts.empty());
  const auto frames = parse_frames(stream.path());
  ASSERT_GE(frames.size(), 2u);
  bool saw_all_ranks = false;
  for (const std::string& frame : frames) {
    if (frame.find("\"rank\":3") != std::string::npos) {
      saw_all_ranks = true;
    }
  }
  EXPECT_TRUE(saw_all_ranks) << "rank 3 never appeared in any snapshot";
}

TEST(LiveMonitor, RetryStormAnnotatesSolveResult) {
  // Transient faults on every collective force RetryingComm retries; with
  // the storm threshold at 1 the watchdog must alert, and the runtime
  // alert must land on SolveResult::alerts.
  TempFile stream("live_storm.jsonl");
  obs::LiveConfig config;
  config.out = stream.path();
  config.period_ms = 2;  // fine-grained windows: retries land after baseline
  config.watchdog.retry_storm = 1;
  ASSERT_TRUE(obs::LiveMonitor::global().start(config));

  // Single-shot transients at distinct call indices: each costs exactly
  // one retry (never exhausting the retry budget), spread across the run
  // so some land after the watchdog's baseline window.
  // (k=4 over 40 iterations means only ~10 collectives per rank, so the
  // targeted call indices must stay small.)
  fault::ScopedFaultPlan plan(
      "transient:rank=1,call=2;transient:rank=1,call=4;"
      "transient:rank=1,call=6;transient:rank=1,call=8");
  const auto dataset = data::make_paper_clone("SUSY", 0.002);
  const core::LassoProblem problem(dataset, 0.005);
  core::SolverOptions opts;
  opts.max_iters = 40;
  opts.sampling_rate = 0.2;
  opts.k = 4;
  opts.track_history = false;
  dist::ThreadGroup group(4);
  const auto result = core::solve_rc_sfista_distributed(problem, opts, group);

  obs::LiveMonitor::global().stop();

  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_GE(result.comm_stats.retries, 1u);
  bool saw_storm = false;
  for (const obs::Alert& alert : result.alerts) {
    if (alert.kind == obs::AlertKind::kRetryStorm) {
      saw_storm = true;
    }
  }
  EXPECT_TRUE(saw_storm) << "retry storm not annotated on SolveResult";
  bool alert_frame = false;
  for (const std::string& frame : parse_frames(stream.path())) {
    if (frame.find("\"type\":\"alert\"") != std::string::npos &&
        frame.find("\"kind\":\"retry_storm\"") != std::string::npos) {
      alert_frame = true;
    }
  }
  EXPECT_TRUE(alert_frame) << "retry-storm alert missing from the stream";
}

TEST(LiveMonitor, AlertsSinceHonorsMark) {
  obs::LiveConfig config;
  config.out = "";  // sample without streaming
  config.period_ms = 1000;
  ASSERT_TRUE(obs::LiveMonitor::global().start(config));
  const std::uint64_t mark = obs::LiveMonitor::global().alert_count();
  EXPECT_TRUE(obs::LiveMonitor::global().alerts_since(mark).empty());
  obs::LiveMonitor::global().stop();
}

}  // namespace
}  // namespace rcf
