// Tests for the fault-injection & resilience layer (src/fault, dist/retry,
// PN checkpoint/restore).  Suites are named Fault* so the CI TSan job can
// select them alongside the comm suites.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/prox_newton.hpp"
#include "data/synthetic.hpp"
#include "dist/comm.hpp"
#include "dist/retry.hpp"
#include "dist/thread_comm.hpp"
#include "fault/faulty_comm.hpp"
#include "fault/plan.hpp"
#include "la/blas.hpp"
#include "obs/metrics.hpp"

namespace rcf {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: grammar, scoping, iteration points.
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesSingleSpec) {
  const auto plan = fault::parse_fault_plan("delay:rank=1,us=2000,every=3");
  ASSERT_EQ(plan.specs.size(), 1u);
  const auto& s = plan.specs[0];
  EXPECT_EQ(s.kind, fault::FaultKind::kDelay);
  EXPECT_EQ(s.rank, 1);
  EXPECT_EQ(s.us, 2000u);
  EXPECT_EQ(s.every, 3u);
  EXPECT_FALSE(s.call.has_value());
}

TEST(FaultPlan, ParsesMultiSpecAndDescribes) {
  const auto plan = fault::parse_fault_plan(
      "transient:rank=2,call=4;nan:rank=0,call=1,words=8;"
      "bitflip:rank=3,call=2,word=7,bit=52");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].kind, fault::FaultKind::kTransient);
  ASSERT_TRUE(plan.specs[0].call.has_value());
  EXPECT_EQ(*plan.specs[0].call, 4u);
  EXPECT_EQ(plan.specs[1].words, 8u);
  EXPECT_EQ(plan.specs[2].bit, 52u);
  // Breaking kinds default to a single firing.
  EXPECT_EQ(plan.specs[0].count, 1u);
  const std::string text = fault::describe(plan);
  EXPECT_NE(text.find("transient"), std::string::npos);
  EXPECT_NE(text.find("bitflip"), std::string::npos);
}

TEST(FaultPlan, ParsesIterationAbort) {
  const auto plan = fault::parse_fault_plan("abort:at=pn.outer,index=5");
  ASSERT_EQ(plan.specs.size(), 1u);
  EXPECT_EQ(plan.specs[0].kind, fault::FaultKind::kIterAbort);
  EXPECT_EQ(plan.specs[0].at, "pn.outer");
  EXPECT_EQ(plan.specs[0].index, 5u);
}

TEST(FaultPlan, RejectsMalformedPlans) {
  EXPECT_THROW(fault::parse_fault_plan("explode:rank=1"), InvalidArgument);
  EXPECT_THROW(fault::parse_fault_plan("delay:rank=1"), InvalidArgument);
  EXPECT_THROW(fault::parse_fault_plan("delay:us=abc"), InvalidArgument);
  EXPECT_THROW(fault::parse_fault_plan("delay:us=10,bogus=1"),
               InvalidArgument);
  EXPECT_THROW(fault::parse_fault_plan("bitflip:bit=64"), InvalidArgument);
  EXPECT_THROW(fault::parse_fault_plan("nan:words=0"), InvalidArgument);
}

TEST(FaultPlan, ScopedPlanNestsAndRestores) {
  const fault::FaultPlan* outer_before = fault::active_plan();
  {
    fault::ScopedFaultPlan outer{std::string_view("delay:us=1")};
    const fault::FaultPlan* outer_plan = fault::active_plan();
    ASSERT_NE(outer_plan, nullptr);
    EXPECT_EQ(outer_plan->specs[0].kind, fault::FaultKind::kDelay);
    {
      fault::ScopedFaultPlan inner{std::string_view("skew:us=5")};
      ASSERT_NE(fault::active_plan(), nullptr);
      EXPECT_EQ(fault::active_plan()->specs[0].kind, fault::FaultKind::kSkew);
    }
    EXPECT_EQ(fault::active_plan(), outer_plan);
  }
  EXPECT_EQ(fault::active_plan(), outer_before);
}

TEST(FaultPlan, IterationPointFiresOnlyOnMatch) {
  fault::ScopedFaultPlan scoped{std::string_view("abort:at=pn.outer,index=3")};
  EXPECT_NO_THROW(fault::iteration_point("pn.outer", 2));
  EXPECT_NO_THROW(fault::iteration_point("other.loop", 3));
  EXPECT_THROW(fault::iteration_point("pn.outer", 3), fault::FaultAbort);
  EXPECT_NO_THROW(fault::iteration_point("pn.outer", 4));
}

// ---------------------------------------------------------------------------
// FaultyComm: injection mechanics over a 1-rank backend.
// ---------------------------------------------------------------------------

TEST(FaultyComm, DelayCountsAsInjectedFault) {
  const auto plan = fault::parse_fault_plan("delay:us=1,every=2");
  dist::SeqComm seq;
  fault::FaultyComm faulty(seq, &plan);
  std::vector<double> buf(4, 1.0);
  for (int i = 0; i < 6; ++i) {
    faulty.allreduce_sum(buf);
  }
  // Fires at call indices 0, 2, 4.
  EXPECT_EQ(faulty.faults_injected(), 3u);
  EXPECT_EQ(faulty.stats().faults_injected, 3u);
  EXPECT_EQ(faulty.stats().allreduce_calls, 6u);
}

TEST(FaultyComm, NanPoisonFiresOnce) {
  const auto plan = fault::parse_fault_plan("nan:call=1,words=2");
  dist::SeqComm seq;
  fault::FaultyComm faulty(seq, &plan);
  std::vector<double> buf(4, 1.0);
  faulty.allreduce_sum(buf);  // call 0: clean
  EXPECT_TRUE(std::isfinite(buf[0]));
  std::fill(buf.begin(), buf.end(), 1.0);
  faulty.allreduce_sum(buf);  // call 1: poisoned
  EXPECT_TRUE(std::isnan(buf[0]));
  EXPECT_TRUE(std::isnan(buf[1]));
  EXPECT_DOUBLE_EQ(buf[2], 1.0);
  std::fill(buf.begin(), buf.end(), 1.0);
  faulty.allreduce_sum(buf);  // call 2: spec exhausted
  EXPECT_DOUBLE_EQ(buf[0], 1.0);
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

TEST(FaultyComm, BitFlipTogglesExactBit) {
  const auto plan = fault::parse_fault_plan("bitflip:call=0,word=1,bit=62");
  dist::SeqComm seq;
  fault::FaultyComm faulty(seq, &plan);
  std::vector<double> buf = {1.0, 1.5, 2.0};
  faulty.allreduce_sum(buf);
  EXPECT_DOUBLE_EQ(buf[0], 1.0);
  EXPECT_DOUBLE_EQ(buf[2], 2.0);
  // 1.5 has exponent 0x3FF; setting bit 62 saturates the exponent field,
  // so the corrupted word is a NaN -- exactly what the engine's payload
  // guard (!isfinite || > 1e100) detects.
  EXPECT_FALSE(std::isfinite(buf[1]));
}

TEST(FaultyComm, TransientThrownBeforeBackend) {
  const auto plan = fault::parse_fault_plan("transient:call=0");
  dist::SeqComm seq;
  fault::FaultyComm faulty(seq, &plan);
  std::vector<double> buf(2, 1.0);
  EXPECT_THROW(faulty.allreduce_sum(buf), dist::TransientCommFailure);
  // The failed attempt never reached the backend, and the call index was
  // not consumed -- a retry re-issues the same index (now exhausted).
  EXPECT_EQ(seq.stats().allreduce_calls, 0u);
  faulty.allreduce_sum(buf);
  EXPECT_EQ(seq.stats().allreduce_calls, 1u);
}

TEST(FaultyComm, RankFilterSkipsOtherRanks) {
  const auto plan = fault::parse_fault_plan("abort:rank=3,call=0");
  dist::SeqComm seq;  // rank 0
  fault::FaultyComm faulty(seq, &plan);
  std::vector<double> buf(2, 1.0);
  EXPECT_NO_THROW(faulty.allreduce_sum(buf));
  EXPECT_EQ(faulty.faults_injected(), 0u);
}

TEST(FaultyComm, AuxCollectivesAreNeverFaulted) {
  const auto plan = fault::parse_fault_plan("abort:call=0;delay:us=1");
  dist::SeqComm seq;
  fault::FaultyComm faulty(seq, &plan);
  std::vector<double> buf(2, 1.0);
  {
    dist::Communicator::AuxScope aux(faulty);
    EXPECT_NO_THROW(faulty.allreduce_sum(buf));
  }
  EXPECT_EQ(faulty.faults_injected(), 0u);
  // Outside the scope the abort fires on the still-unconsumed call 0.
  EXPECT_THROW(faulty.allreduce_sum(buf), fault::FaultAbort);
}

// ---------------------------------------------------------------------------
// RetryingComm: absorb / exhaust / account.
// ---------------------------------------------------------------------------

TEST(FaultRetry, AbsorbsTransientFailures) {
  const auto plan = fault::parse_fault_plan("transient:call=0,count=2");
  dist::SeqComm seq;
  fault::FaultyComm faulty(seq, &plan);
  dist::RetryPolicy policy;
  policy.backoff_us = 1;
  dist::RetryingComm retrying(faulty, policy);
  std::vector<double> buf(2, 1.0);
  const auto backoff_before =
      obs::MetricsRegistry::global().counter("comm.backoff_us").value();
  EXPECT_NO_THROW(retrying.allreduce_sum(buf));
  EXPECT_EQ(retrying.retries(), 2u);
  EXPECT_EQ(retrying.stats().retries, 2u);
  EXPECT_EQ(retrying.stats().allreduce_calls, 1u);
  EXPECT_GT(obs::MetricsRegistry::global().counter("comm.backoff_us").value(),
            backoff_before);
}

TEST(FaultRetry, ExhaustsAndRethrows) {
  const auto plan = fault::parse_fault_plan("transient:call=0,count=99");
  dist::SeqComm seq;
  fault::FaultyComm faulty(seq, &plan);
  dist::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_us = 1;
  dist::RetryingComm retrying(faulty, policy);
  std::vector<double> buf(2, 1.0);
  EXPECT_THROW(retrying.allreduce_sum(buf), dist::TransientCommFailure);
  // 1 initial attempt + 3 retries, none of which reached the backend.
  EXPECT_EQ(faulty.faults_injected(), 4u);
  EXPECT_EQ(seq.stats().allreduce_calls, 0u);
}

TEST(FaultRetry, RejectsInvalidPolicy) {
  dist::SeqComm seq;
  dist::RetryPolicy negative;
  negative.max_retries = -1;
  EXPECT_THROW(dist::RetryingComm(seq, negative), Error);
}

// ---------------------------------------------------------------------------
// End-to-end resilience on the 4-rank SPMD backend (small problems; the
// full soak lives in tools/rcf-chaos).
// ---------------------------------------------------------------------------

core::LassoProblem small_problem(data::Dataset& storage) {
  data::SyntheticOptions opts;
  opts.num_samples = 300;
  opts.num_features = 12;
  opts.density = 0.5;
  opts.seed = 5;
  storage = data::make_regression(opts);
  return core::LassoProblem(storage, 0.01);
}

core::SolverOptions small_options() {
  core::SolverOptions opts;
  opts.max_iters = 12;
  opts.sampling_rate = 0.3;
  opts.k = 2;
  opts.s = 2;
  opts.track_history = false;
  opts.retry.backoff_us = 1;
  return opts;
}

TEST(FaultResilience, RecoversBitwiseFromTransientAndPoison) {
  data::Dataset storage;
  const auto problem = small_problem(storage);
  fault::ScopedFaultPlan quiet{fault::FaultPlan{}};
  core::SolveResult baseline;
  {
    dist::ThreadGroup group(4);
    baseline = core::solve_rc_sfista_distributed(problem, small_options(),
                                                 group);
  }
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline.comm_stats.faults_injected, 0u);

  fault::ScopedFaultPlan scoped{
      std::string_view("transient:rank=1,call=2;nan:rank=2,call=4,words=3")};
  dist::ThreadGroup group(4);
  const auto result =
      core::solve_rc_sfista_distributed(problem, small_options(), group);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_EQ(la::max_abs_diff(result.w.span(), baseline.w.span()), 0.0);
  EXPECT_GE(result.comm_stats.faults_injected, 2u);
  EXPECT_GE(result.comm_stats.retries, 1u);
}

TEST(FaultResilience, AbortYieldsStructuredFailure) {
  data::Dataset storage;
  const auto problem = small_problem(storage);
  fault::ScopedFaultPlan scoped{std::string_view("abort:rank=2,call=3")};
  dist::ThreadGroup group(4);
  const auto result =
      core::solve_rc_sfista_distributed(problem, small_options(), group);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.failure_reason.find("abort"), std::string::npos);
  EXPECT_GE(result.comm_stats.faults_injected, 1u);
}

TEST(FaultResilience, PersistentPoisonIsRejectedNotPropagated) {
  data::Dataset storage;
  const auto problem = small_problem(storage);
  fault::ScopedFaultPlan scoped{
      std::string_view("nan:rank=0,every=1,count=64")};
  dist::ThreadGroup group(4);
  const auto result =
      core::solve_rc_sfista_distributed(problem, small_options(), group);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.failure_reason.find("corrupt"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint / restore.
// ---------------------------------------------------------------------------

TEST(FaultCheckpoint, JsonRoundTripIsExact) {
  core::PnCheckpoint ck;
  ck.outer = 7;
  ck.objective = 0.1234567890123456789;
  ck.w = {1.0 / 3.0, -2.718281828459045, 0.0, 1e-300};
  const auto back = core::checkpoint_from_json(core::to_json(ck));
  EXPECT_EQ(back.outer, ck.outer);
  EXPECT_EQ(back.objective, ck.objective);
  ASSERT_EQ(back.w.size(), ck.w.size());
  for (std::size_t i = 0; i < ck.w.size(); ++i) {
    EXPECT_EQ(back.w[i], ck.w[i]) << "at " << i;
  }
}

TEST(FaultCheckpoint, RejectsMalformedJson) {
  EXPECT_THROW(core::checkpoint_from_json("not json"), IoError);
  EXPECT_THROW(core::checkpoint_from_json("[1,2]"), IoError);
  EXPECT_THROW(core::checkpoint_from_json("{\"outer\": 1}"), IoError);
  EXPECT_THROW(
      core::checkpoint_from_json(
          "{\"outer\": -2, \"objective\": 1.0, \"w\": []}"),
      IoError);
  EXPECT_THROW(
      core::checkpoint_from_json(
          "{\"outer\": 1, \"objective\": 1.0, \"w\": [\"x\"]}"),
      IoError);
}

TEST(FaultCheckpoint, SaveLoadFile) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("rcf_fault_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "ck.json").string();
  core::PnCheckpoint ck;
  ck.outer = 3;
  ck.objective = 42.5;
  ck.w = {0.25, -0.5};
  core::save_checkpoint(path, ck);
  const auto back = core::load_checkpoint(path);
  EXPECT_EQ(back.outer, 3);
  EXPECT_EQ(back.w, ck.w);
  EXPECT_THROW(core::load_checkpoint((dir / "missing.json").string()),
               IoError);
  std::filesystem::remove_all(dir);
}

TEST(FaultCheckpoint, PnAbortThenResumeIsBitwise) {
  data::Dataset storage;
  const auto problem = small_problem(storage);
  core::PnOptions opts;
  opts.max_outer = 6;
  opts.inner_iters = 8;
  opts.inner = core::PnInnerSolver::kRcSfista;
  opts.k = 2;
  opts.hessian_sampling_rate = 0.3;
  opts.track_history = false;

  fault::ScopedFaultPlan quiet{fault::FaultPlan{}};
  const auto baseline = core::solve_proximal_newton(problem, opts);
  ASSERT_TRUE(baseline.ok());

  core::PnCheckpoint last;
  opts.checkpoint_sink = [&last](const core::PnCheckpoint& ck) { last = ck; };
  core::SolveResult interrupted;
  {
    fault::ScopedFaultPlan scoped{
        std::string_view("abort:at=pn.outer,index=4")};
    interrupted = core::solve_proximal_newton(problem, opts);
  }
  EXPECT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.iterations, 3);
  ASSERT_EQ(last.outer, 3);

  opts.checkpoint_sink = nullptr;
  opts.resume_from = &last;
  const auto resumed = core::solve_proximal_newton(problem, opts);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(la::max_abs_diff(resumed.w.span(), baseline.w.span()), 0.0);
  EXPECT_EQ(resumed.objective, baseline.objective);
}

TEST(FaultCheckpoint, PnResumeRejectsDimensionMismatch) {
  data::Dataset storage;
  const auto problem = small_problem(storage);
  core::PnOptions opts;
  opts.max_outer = 3;
  opts.inner_iters = 4;
  core::PnCheckpoint bad;
  bad.outer = 1;
  bad.w = {1.0};  // problem dim is 12
  opts.resume_from = &bad;
  EXPECT_THROW(core::solve_proximal_newton(problem, opts), Error);
}

}  // namespace
}  // namespace rcf
