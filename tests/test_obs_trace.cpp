// Tests for the observability subsystem (src/obs): span recording and
// Chrome-trace export, the metrics registry, and the span/CommStats
// agreement on real multi-rank ThreadComm solves.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/problem.hpp"
#include "core/solvers.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (objects, arrays, strings, numbers, literals)
// -- enough to prove the emitted traces are well-formed without a JSON
// library dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Restarts the global session with no outputs and drops prior events, so
/// each test observes only its own spans.
obs::TraceSession& fresh_session() {
  auto& session = obs::TraceSession::global();
  session.start();
  return session;
}

data::Dataset make_dataset(std::size_t m = 600, std::size_t d = 24) {
  data::SyntheticOptions gen;
  gen.num_samples = m;
  gen.num_features = d;
  gen.density = 0.4;
  gen.seed = 13;
  return data::make_regression(gen);
}

/// Keeps the dataset alive alongside the problem that points into it.
struct TestProblem {
  data::Dataset dataset = make_dataset();
  core::LassoProblem problem{dataset, 0.01};
};

// ---------------------------------------------------------------------------
// Span recording
// ---------------------------------------------------------------------------

TEST(TraceSession, SpansNest) {
  auto& session = fresh_session();
  {
    RCF_TRACE_SCOPE("outer");
    { RCF_TRACE_SCOPE("inner"); }
  }
  session.stop();

  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner completes (and is recorded) first.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us);
  EXPECT_EQ(inner.rank, 0);
  session.clear();
}

TEST(TraceSession, DisabledSessionRecordsNothing) {
  auto& session = fresh_session();
  session.stop();
  session.clear();
  ASSERT_FALSE(session.enabled());
  {
    RCF_TRACE_SCOPE("ghost");
    RCF_TRACE_SCOPE_W("ghost_words", 128);
    session.record("ghost_direct", 0, 1, 2.0);
  }
  EXPECT_TRUE(session.snapshot().empty());
  EXPECT_EQ(session.count_spans("ghost"), 0u);
}

TEST(TraceSession, PayloadWordsAttachToSpans) {
  auto& session = fresh_session();
  { RCF_TRACE_SCOPE_W("payload", 600); }
  session.stop();
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].words, 600.0);
  session.clear();
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(TraceExport, ChromeTraceParsesAndRoundTrips) {
  auto& session = fresh_session();
  {
    RCF_TRACE_SCOPE("alpha");
    RCF_TRACE_SCOPE_W("beta \"quoted\"\n", 42);
  }
  session.stop();
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 2u);

  std::ostringstream chrome;
  session.write_chrome_trace(chrome);
  const std::string text = chrome.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  // One "X" duration event per recorded span.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), events.size());
  // The awkward name survived escaping.
  EXPECT_NE(text.find("beta \\\"quoted\\\"\\n"), std::string::npos);

  std::ostringstream jsonl;
  session.write_jsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++n;
  }
  EXPECT_EQ(n, events.size());
  session.clear();
}

TEST(TraceExport, PhaseTableListsEveryPhase) {
  obs::PhaseSummary summary;
  obs::PhaseAgg agg;
  agg.count = 3;
  agg.us = 1500;
  agg.words = 600.0;
  obs::append_phase(summary, "allreduce", agg);
  obs::append_phase(summary, "never_ran", obs::PhaseAgg{});
  ASSERT_EQ(summary.size(), 1u);  // zero-count phases are skipped
  EXPECT_DOUBLE_EQ(summary[0].seconds, 1.5e-3);
  const std::string table = obs::phase_table(summary);
  EXPECT_NE(table.find("allreduce"), std::string::npos);
  EXPECT_NE(obs::find_phase(summary, "allreduce"), nullptr);
  EXPECT_EQ(obs::find_phase(summary, "missing"), nullptr);
}

TEST(TraceExport, TimedPhaseCountsWithoutTracing) {
  obs::PhaseAgg agg;
  int runs = 0;
  obs::timed_phase(/*tracing=*/false, agg, "phase", 10.0, [&] { ++runs; });
  obs::timed_phase(/*tracing=*/false, agg, "phase", 10.0, [&] { ++runs; });
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(agg.count, 2u);
  EXPECT_DOUBLE_EQ(agg.words, 20.0);
  EXPECT_EQ(agg.us, 0);  // no timing without tracing
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CountersAndGauges) {
  auto& registry = obs::MetricsRegistry::global();
  registry.reset();
  auto& counter = registry.counter("test.counter");
  counter.add(3);
  counter.add(4);
  EXPECT_EQ(counter.value(), 7u);
  EXPECT_EQ(&counter, &registry.counter("test.counter"));  // stable reference
  auto& gauge = registry.gauge("test.gauge");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);  // reset zeroes, reference stays valid
}

TEST(Metrics, HistogramPercentilesMonotone) {
  obs::Histogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.observe(static_cast<double>(i));
  }
  EXPECT_EQ(hist.count(), 1000u);
  const double p50 = hist.percentile(0.50);
  const double p90 = hist.percentile(0.90);
  const double p99 = hist.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p50, 0.0);
  // Power-of-two bins: the upper edge can overshoot by at most 2x.
  EXPECT_LE(p99, 2048.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1000.0);
}

TEST(Metrics, RegistryJsonIsValid) {
  auto& registry = obs::MetricsRegistry::global();
  registry.reset();
  registry.counter("json.counter").add(5);
  registry.gauge("json.gauge").set(1.25);
  registry.histogram("json.hist").observe(7.0);
  const std::string text = registry.to_json();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("json.counter"), std::string::npos);
  EXPECT_NE(text.find("json.hist"), std::string::npos);
  registry.reset();
}

// ---------------------------------------------------------------------------
// Span counts agree with CommStats on a real 4-rank ThreadComm solve
// ---------------------------------------------------------------------------

core::SolveResult traced_distributed_solve(const core::LassoProblem& problem,
                                           int ranks, int k) {
  core::SolverOptions opts;
  opts.max_iters = 40;
  opts.sampling_rate = 0.2;
  opts.k = k;
  opts.track_history = false;
  dist::ThreadGroup group(ranks);
  return core::solve_rc_sfista_distributed(problem, opts, group);
}

TEST(TraceIntegration, AllreduceSpansMatchCommStats) {
  const TestProblem tp;
  const core::LassoProblem& problem = tp.problem;
  auto& session = fresh_session();
  obs::MetricsRegistry::global().reset();

  const auto result = traced_distributed_solve(problem, /*ranks=*/4, /*k=*/4);
  session.stop();

  // One "allreduce" span per collective call per rank: 4 ranks x
  // ceil(40 / 4) rounds.
  const auto spans = session.count_spans("allreduce");
  EXPECT_EQ(spans, result.comm_stats.allreduce_calls);
  EXPECT_EQ(spans, 4u * 10u);
  // Spans carry every rank id.
  bool saw_rank[4] = {false, false, false, false};
  for (const auto& ev : session.snapshot()) {
    ASSERT_GE(ev.rank, 0);
    ASSERT_LT(ev.rank, 4);
    saw_rank[ev.rank] = true;
  }
  for (const bool saw : saw_rank) {
    EXPECT_TRUE(saw);
  }
  // The enabled session also published the aggregated comm counters.
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("comm.thread.allreduce_calls")
          .value(),
      result.comm_stats.allreduce_calls);
  // Collective latencies were observed into the shared histogram.
  EXPECT_GE(
      obs::MetricsRegistry::global().histogram("allreduce_latency_us").count(),
      static_cast<std::uint64_t>(spans));
  session.clear();
  obs::MetricsRegistry::global().reset();
}

TEST(TraceIntegration, OverlapDepthShrinksAllreduceSpans) {
  const TestProblem tp;
  const core::LassoProblem& problem = tp.problem;
  auto& session = fresh_session();

  traced_distributed_solve(problem, /*ranks=*/4, /*k=*/1);
  session.stop();
  const auto spans_k1 = session.count_spans("allreduce");

  session.start();
  traced_distributed_solve(problem, /*ranks=*/4, /*k=*/8);
  session.stop();
  const auto spans_k8 = session.count_spans("allreduce");

  // ceil(40/1) = 40 rounds vs ceil(40/8) = 5: exactly k-fold fewer.
  EXPECT_EQ(spans_k1, 4u * 40u);
  EXPECT_EQ(spans_k8, 4u * 5u);
  EXPECT_EQ(spans_k1, 8u * spans_k8);
  session.clear();
}

TEST(TraceIntegration, SequentialEnginePhasesMatchSchedule) {
  const TestProblem tp;
  const core::LassoProblem& problem = tp.problem;
  auto& session = fresh_session();
  core::SolverOptions opts;
  opts.max_iters = 40;
  opts.sampling_rate = 0.2;
  opts.k = 8;
  opts.track_history = false;
  const auto result = core::solve_rc_sfista(problem, opts);
  session.stop();

  const auto* ar = obs::find_phase(result.phases, "allreduce");
  ASSERT_NE(ar, nullptr);
  EXPECT_EQ(ar->count, 5u);  // ceil(40 / 8) modeled rounds
  EXPECT_EQ(session.count_spans("allreduce"), 5u);
  const auto* update = obs::find_phase(result.phases, "update");
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->count, 40u);  // one sweep per iteration (S = 1 each)
  EXPECT_GT(obs::find_phase(result.phases, "gram")->seconds, 0.0);
  session.clear();
}

TEST(TraceIntegration, SolverOptionsCanOptOut) {
  const TestProblem tp;
  const core::LassoProblem& problem = tp.problem;
  auto& session = fresh_session();
  core::SolverOptions opts;
  opts.max_iters = 8;
  opts.sampling_rate = 0.2;
  opts.track_history = false;
  opts.trace = false;
  const auto result = core::solve_rc_sfista(problem, opts);
  session.stop();

  EXPECT_EQ(session.count_spans("allreduce"), 0u);
  // Counts are still maintained; only spans/timing are suppressed.
  const auto* ar = obs::find_phase(result.phases, "allreduce");
  ASSERT_NE(ar, nullptr);
  EXPECT_EQ(ar->count, 8u);
  EXPECT_DOUBLE_EQ(ar->seconds, 0.0);
  session.clear();
}

}  // namespace
}  // namespace rcf
