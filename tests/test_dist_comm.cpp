// Tests for the communicator substrate: sequential backend semantics and
// the threaded SPMD backend's collectives (both reduction schedules).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "dist/comm.hpp"
#include "dist/thread_comm.hpp"

namespace rcf::dist {
namespace {

TEST(SeqComm, Identities) {
  SeqComm comm;
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
  std::vector<double> buf{1.0, 2.0};
  comm.allreduce_sum(buf);
  EXPECT_DOUBLE_EQ(buf[0], 1.0);
  comm.allreduce_max(buf);
  EXPECT_DOUBLE_EQ(buf[1], 2.0);
  comm.broadcast(buf, 0);
  std::vector<double> out(2);
  comm.allgather(buf, out);
  EXPECT_EQ(out, buf);
  comm.barrier();
  EXPECT_EQ(comm.stats().allreduce_calls, 1u);
  EXPECT_EQ(comm.stats().allreduce_max_calls, 1u);
  EXPECT_EQ(comm.stats().allreduce_words, 4u);
  EXPECT_EQ(comm.stats().max_payload_words, 2u);
  EXPECT_EQ(comm.stats().barrier_calls, 1u);
  EXPECT_EQ(comm.backend_name(), "seq");
}

TEST(SeqComm, ScalarHelpers) {
  SeqComm comm;
  EXPECT_DOUBLE_EQ(comm.allreduce_sum_scalar(3.5), 3.5);
  EXPECT_DOUBLE_EQ(comm.allreduce_max_scalar(-1.0), -1.0);
}

class ThreadCommTest : public ::testing::TestWithParam<AllreduceAlgo> {};

TEST_P(ThreadCommTest, AllreduceSum) {
  for (int ranks : {1, 2, 4, 8}) {
    ThreadGroup group(ranks, GetParam());
    group.run([&](ThreadComm& comm) {
      std::vector<double> buf(16);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = comm.rank() + static_cast<double>(i);
      }
      comm.allreduce_sum(buf);
      const double rank_sum = ranks * (ranks - 1) / 2.0;
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_DOUBLE_EQ(buf[i], rank_sum + ranks * static_cast<double>(i));
      }
    });
  }
}

TEST_P(ThreadCommTest, AllreduceMax) {
  ThreadGroup group(4, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> buf{static_cast<double>(comm.rank()),
                            -static_cast<double>(comm.rank())};
    comm.allreduce_max(buf);
    ASSERT_DOUBLE_EQ(buf[0], 3.0);
    ASSERT_DOUBLE_EQ(buf[1], 0.0);
  });
}

TEST_P(ThreadCommTest, AllreduceDeterministicAcrossRuns) {
  // Floating-point reduction must be reproducible run-to-run.
  std::vector<double> first;
  for (int trial = 0; trial < 3; ++trial) {
    ThreadGroup group(4, GetParam());
    std::vector<double> captured;
    group.run([&](ThreadComm& comm) {
      std::vector<double> buf(8);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = 0.1 * (comm.rank() + 1) + 1e-9 * static_cast<double>(i);
      }
      comm.allreduce_sum(buf);
      if (comm.rank() == 0) {
        captured = buf;
      }
    });
    if (trial == 0) {
      first = captured;
    } else {
      ASSERT_EQ(captured, first);
    }
  }
}

TEST_P(ThreadCommTest, Broadcast) {
  ThreadGroup group(4, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> buf(4, comm.rank() == 2 ? 7.5 : 0.0);
    comm.broadcast(buf, 2);
    for (double v : buf) {
      ASSERT_DOUBLE_EQ(v, 7.5);
    }
  });
}

TEST_P(ThreadCommTest, Allgather) {
  ThreadGroup group(3, GetParam());
  group.run([](ThreadComm& comm) {
    const std::vector<double> mine(2, static_cast<double>(comm.rank()));
    std::vector<double> all(6);
    comm.allgather(mine, all);
    for (int r = 0; r < 3; ++r) {
      const auto i = static_cast<std::size_t>(r);
      ASSERT_DOUBLE_EQ(all[2 * i], r);
      ASSERT_DOUBLE_EQ(all[2 * i + 1], r);
    }
  });
}

TEST_P(ThreadCommTest, BarrierSynchronizes) {
  constexpr int kRanks = 4;
  ThreadGroup group(kRanks, GetParam());
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  group.run([&](ThreadComm& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != kRanks) {
      violated = true;  // someone passed the barrier too early
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(ThreadCommTest, StatsAggregateAcrossRanks) {
  ThreadGroup group(4, GetParam());
  group.run([](ThreadComm& comm) {
    std::vector<double> buf(10, 1.0);
    comm.allreduce_sum(buf);
    comm.barrier();
  });
  const auto stats = group.last_run_stats();
  EXPECT_EQ(stats.allreduce_calls, 4u);
  EXPECT_EQ(stats.allreduce_max_calls, 0u);
  EXPECT_EQ(stats.allreduce_words, 40u);
  EXPECT_EQ(stats.max_payload_words, 10u);
  EXPECT_EQ(stats.barrier_calls, 4u);
}

TEST_P(ThreadCommTest, SequentialRunsReuseGroup) {
  ThreadGroup group(2, GetParam());
  for (int i = 0; i < 3; ++i) {
    group.run([&](ThreadComm& comm) {
      std::vector<double> buf{1.0};
      comm.allreduce_sum(buf);
      ASSERT_DOUBLE_EQ(buf[0], 2.0);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, ThreadCommTest,
                         ::testing::Values(AllreduceAlgo::kCentral,
                                           AllreduceAlgo::kRecursiveDoubling),
                         [](const auto& param_info) {
                           return param_info.param == AllreduceAlgo::kCentral
                                      ? "Central"
                                      : "RecursiveDoubling";
                         });

TEST(ThreadComm, RecursiveDoublingNonPowerOfTwoFallsBack) {
  // 3 ranks: kRecursiveDoubling must still produce correct sums (central
  // fallback).
  ThreadGroup group(3, AllreduceAlgo::kRecursiveDoubling);
  group.run([](ThreadComm& comm) {
    std::vector<double> buf{static_cast<double>(comm.rank() + 1)};
    comm.allreduce_sum(buf);
    ASSERT_DOUBLE_EQ(buf[0], 6.0);
  });
}

TEST(ThreadComm, BothSchedulesAgreeNumerically) {
  std::vector<double> central, rd;
  for (auto algo : {AllreduceAlgo::kCentral, AllreduceAlgo::kRecursiveDoubling}) {
    ThreadGroup group(4, algo);
    std::vector<double> captured;
    group.run([&](ThreadComm& comm) {
      std::vector<double> buf(4, 1.0 / (comm.rank() + 3.0));
      comm.allreduce_sum(buf);
      if (comm.rank() == 0) {
        captured = buf;
      }
    });
    (algo == AllreduceAlgo::kCentral ? central : rd) = captured;
  }
  for (std::size_t i = 0; i < central.size(); ++i) {
    EXPECT_NEAR(central[i], rd[i], 1e-15);
  }
}

TEST(ThreadGroup, RethrowsBodyException) {
  ThreadGroup group(1);
  EXPECT_THROW(group.run([](ThreadComm&) {
    throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

TEST(ThreadGroup, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadGroup(0), rcf::InvalidArgument);
}

}  // namespace
}  // namespace rcf::dist
