// Known-good fixture for the collective-divergence check: every shape
// here is SPMD-correct and must produce zero findings (analyzed with
// scope_as=src/core/fixture.cpp).
#include <vector>

namespace fixture {

struct Comm {
  int rank();
  int size();
  void allreduce_sum(std::vector<double>& v);
  void broadcast(std::vector<double>& v, int root);
  void barrier();
};

void log_line(const char* msg);

void uniform_schedule(Comm& comm, std::vector<double>& buf) {
  comm.allreduce_sum(buf);
  if (comm.rank() == 0) {
    log_line("round done");  // rank-guarded *non-collective* work is fine
  }
  comm.barrier();
}

void uniform_loop(Comm& comm, std::vector<double>& buf, int rounds) {
  for (int it = 0; it < rounds; ++it) {
    comm.allreduce_sum(buf);  // same trip count on every rank
  }
}

void size_guard(Comm& comm, std::vector<double>& buf) {
  if (comm.size() > 1) {
    comm.barrier();  // size() is uniform across ranks, unlike rank()
  }
  comm.broadcast(buf, 0);  // root argument does not diverge the schedule
}

void rank_partitioned_work(Comm& comm, std::vector<double>& buf) {
  const int r = comm.rank();
  double local = 0.0;
  for (std::size_t i = static_cast<std::size_t>(r); i < buf.size();
       i += static_cast<std::size_t>(comm.size())) {
    local += buf[i];  // rank-strided *local* work, no collectives inside
  }
  buf[0] = local;
  comm.allreduce_sum(buf);
}

}  // namespace fixture
