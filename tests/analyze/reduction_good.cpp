// Known-good fixture for the nondeterministic-reduction check, analyzed
// with scope_as=src/la/fixture_kernel_ok.cpp: output-partitioned writes,
// body-local accumulators, and ordered containers must stay silent.
#include <cstddef>
#include <map>
#include <vector>

namespace fixture {

struct Pool {
  void run(const char* label, const std::vector<double>& xs);
};
void parallel_for(Pool& pool, std::size_t n, const char* label,
                  const std::vector<double>& xs);

void partitioned_axpy(Pool& pool, std::vector<double>& out,
                      const std::vector<double>& xs, double alpha) {
  parallel_for(pool, out.size(), "ok-axpy", [&](std::size_t i) {
    out[i] += alpha * xs[i];  // indexed write into the output partition
  });
}

void blockwise_partial(Pool& pool, std::vector<double>& partials,
                       const std::vector<double>& xs) {
  parallel_for(pool, partials.size(), "ok-partial", [&](std::size_t b) {
    double local = 0.0;  // body-local accumulator, folded per block
    for (std::size_t j = b * 4; j < b * 4 + 4 && j < xs.size(); ++j) {
      local += xs[j];
    }
    partials[b] = local;  // one writer per slot
  });
}

// Stand-in for la::simd::V4 (the fixture corpus is lexed, not compiled
// against src/): four lanes combined only through a fixed-order hsum.
struct V4 {
  double lane[4];
  V4& operator+=(const V4& o) {
    for (int l = 0; l < 4; ++l) {
      lane[l] += o.lane[l];
    }
    return *this;
  }
};

void simd_blockwise_partial(Pool& pool, std::vector<double>& partials,
                            const std::vector<V4>& xs) {
  parallel_for(pool, partials.size(), "ok-simd", [&](std::size_t b) {
    V4 acc = {{0.0, 0.0, 0.0, 0.0}};  // body-local vector accumulator
    for (std::size_t j = b * 4; j < b * 4 + 4 && j < xs.size(); ++j) {
      acc += xs[j];  // lane order fixed by element position, not pool width
    }
    // Fixed combine (l0+l1)+(l2+l3); one writer per output slot.
    partials[b] = (acc.lane[0] + acc.lane[1]) + (acc.lane[2] + acc.lane[3]);
  });
}

double ordered_sum(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;  // std::map iterates in key order: replayable
  }
  return total;
}

}  // namespace fixture
