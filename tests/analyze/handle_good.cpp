// Known-good fixture for the handle-leak check (analyzed with
// scope_as=src/core/fixture.cpp): every sanctioned handle lifecycle must
// stay silent.
#include <span>
#include <utility>
#include <vector>

namespace fixture {

namespace dist {
struct CommHandle {
  CommHandle();
  void wait();
  bool valid() const;
};
}  // namespace dist

struct Comm {
  dist::CommHandle iallreduce_sum(std::span<double> buf);
  dist::CommHandle iallreduce_max(std::span<double> buf);
  void wait(dist::CommHandle h);
};

void consume(dist::CommHandle h);

void post_then_wait(Comm& comm, std::span<double> buf) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  h.wait();
}

void wait_on_both_branches(Comm& comm, std::span<double> buf, bool fast) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  if (fast) {
    h.wait();
  } else {
    h.wait();
  }
}

dist::CommHandle transfer_to_caller(Comm& comm, std::span<double> buf) {
  return comm.iallreduce_sum(buf);
}

dist::CommHandle early_return_hands_off(Comm& comm, std::span<double> buf,
                                        bool flag) {
  dist::CommHandle h = comm.iallreduce_max(buf);
  if (flag) {
    return h;  // ownership (and the wait obligation) moves to the caller
  }
  h.wait();
  return dist::CommHandle();
}

void handoff_via_move(Comm& comm, std::span<double> buf) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  comm.wait(std::move(h));
}

void handoff_to_helper(Comm& comm, std::span<double> buf) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  consume(std::move(h));
}

void overlap_then_drain(Comm& comm, std::span<double> buf) {
  std::vector<dist::CommHandle> handles(4);
  for (std::size_t s = 0; s < 4; ++s) {
    handles[s] = comm.iallreduce_sum(buf);
  }
  for (std::size_t s = 0; s < 4; ++s) {
    handles[s].wait();
  }
}

}  // namespace fixture
