// Known-good fixture for the telemetry-discipline check (analyzed with
// scope_as=src/core/fixture.cpp): sanctioned layering plus one inline
// waiver (the waived finding must be reported as waived, not active).
#include <cstdint>
#include <string_view>
#include <thread>

namespace fixture {

namespace rcf {
struct Rng {
  Rng(std::uint64_t seed, std::uint64_t stream);
  double uniform();
};
}  // namespace rcf

namespace obs {
void telemetry_publish(std::string_view key, double value);
}

double seeded_draw(std::uint64_t seed) {
  rcf::Rng rng(seed, 7);  // counter-based, replayable from the run config
  return rng.uniform();
}

void publish_metric(double residual) {
  obs::telemetry_publish("solver.residual", residual);  // sanctioned API
}

void waived_worker() {
  std::thread t;  // rcf-analyze: allow(telemetry-discipline) fixture: exercises the inline waiver path
  t.join();
}

}  // namespace fixture
