// Seeded-bad fixture for the handle-leak check (analyzed with
// scope_as=src/core/fixture.cpp): every way a posted CommHandle can
// escape its wait().
#include <span>
#include <stdexcept>
#include <vector>

namespace fixture {

namespace dist {
struct CommHandle {
  CommHandle();
  void wait();
  bool valid() const;
};
}  // namespace dist

struct Comm {
  dist::CommHandle iallreduce_sum(std::span<double> buf);
  dist::CommHandle iallreduce_max(std::span<double> buf);
};

void early_return_leak(Comm& comm, std::span<double> buf, bool flag) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  if (flag) {
    return;  // BAD(handle-leak)
  }
  h.wait();
}

void throw_leak(Comm& comm, std::span<double> buf, bool poisoned) {
  dist::CommHandle h = comm.iallreduce_max(buf);
  if (poisoned) {
    throw std::runtime_error("poisoned payload");  // BAD(handle-leak)
  }
  h.wait();
}

void discarded_post(Comm& comm, std::span<double> buf) {
  comm.iallreduce_sum(buf);  // BAD(handle-leak)
}

void reset_without_wait(Comm& comm, std::span<double> buf) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  h = dist::CommHandle();  // BAD(handle-leak)
}

void reposted_before_wait(Comm& comm, std::span<double> buf) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  h = comm.iallreduce_sum(buf);  // BAD(handle-leak)
  h.wait();
}

void one_sided_wait(Comm& comm, std::span<double> buf, bool fast) {
  dist::CommHandle h = comm.iallreduce_sum(buf);
  if (fast) {
    h.wait();
  }
}  // BAD(handle-leak)

void container_never_waited(Comm& comm, std::span<double> buf) {
  std::vector<dist::CommHandle> handles(4);
  for (int s = 0; s < 4; ++s) {
    handles[static_cast<std::size_t>(s)] = comm.iallreduce_sum(buf);
  }
}  // BAD(handle-leak)

}  // namespace fixture
