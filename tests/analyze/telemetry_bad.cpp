// Seeded-bad fixture for the telemetry-discipline check (analyzed with
// scope_as=src/core/fixture.cpp): naked threads, ambient randomness,
// wall-clock seeding, and ring access outside src/obs.
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>
#include <vector>

namespace fixture {

namespace obs {
struct TelemetryRing;  // BAD(telemetry-discipline)
}

void naked_thread(std::vector<double>& xs) {
  std::thread worker([&xs] { xs.clear(); });  // BAD(telemetry-discipline)
  worker.join();
}

double ambient_engine() {
  std::mt19937 gen(42);  // BAD(telemetry-discipline)
  return static_cast<double>(gen());
}

void wallclock_seed() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // BAD(telemetry-discipline)
}

int ambient_rand() {
  return rand();  // BAD(telemetry-discipline)
}

void poke_ring(obs::TelemetryRing& ring);  // BAD(telemetry-discipline)

}  // namespace fixture
