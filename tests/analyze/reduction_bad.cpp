// Seeded-bad fixture for the nondeterministic-reduction check, analyzed
// with scope_as=src/la/fixture_kernel.cpp so both the kernel-file rules
// (float, unordered iteration anywhere) and the parallel-body rules
// (shared accumulators) apply.
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Pool {
  void run(const char* label, const std::vector<double>& xs);
};
void parallel_for(Pool& pool, std::size_t n, const char* label,
                  const std::vector<double>& xs);

float unstable_norm(const std::vector<double>& xs);  // BAD(nondeterministic-reduction)

double hash_order_sum(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {  // BAD(nondeterministic-reduction)
    total += kv.second;
  }
  return total;
}

double shared_accumulator(Pool& pool, const std::vector<double>& xs) {
  double sum = 0.0;
  parallel_for(pool, xs.size(), "bad-sum", [&](std::size_t i) {
    sum += xs[i];  // BAD(nondeterministic-reduction)
  });
  return sum;
}

double shared_member_accumulator(Pool& pool, const std::vector<double>& xs,
                                 std::vector<double>& out) {
  struct Stats {
    double total = 0.0;
  };
  Stats stats;
  parallel_for(pool, xs.size(), "bad-member", [&](std::size_t i) {
    stats.total += xs[i];  // BAD(nondeterministic-reduction)
    out[i] = xs[i];
  });
  return stats.total;
}

// Reordered SIMD reduction: the V4 accumulator lives OUTSIDE the parallel
// body, so blocks fold into it in pool-width-dependent order -- the lanes'
// fixed hsum cannot save a reduction whose block order reassociates.
struct V4 {
  double lane[4];
  V4& operator+=(const V4& o) {
    for (int l = 0; l < 4; ++l) {
      lane[l] += o.lane[l];
    }
    return *this;
  }
};

double shared_simd_accumulator(Pool& pool, const std::vector<V4>& xs) {
  V4 acc = {{0.0, 0.0, 0.0, 0.0}};
  parallel_for(pool, xs.size(), "bad-simd", [&](std::size_t i) {
    acc += xs[i];  // BAD(nondeterministic-reduction)
  });
  return (acc.lane[0] + acc.lane[1]) + (acc.lane[2] + acc.lane[3]);
}

}  // namespace fixture
