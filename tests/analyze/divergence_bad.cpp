// Seeded-bad fixture for the collective-divergence check.  Each marked
// line must produce exactly that finding; tests/test_analyze.cpp analyzes
// this file with scope_as=src/core/fixture.cpp so the src/-scoped rules
// apply.
//
// This corpus is excluded from the repo-wide sweep and from rcf-lint; it
// never compiles as part of the build.
#include <vector>

namespace fixture {

struct Comm {
  int rank();
  int size();
  void allreduce_sum(std::vector<double>& v);
  void broadcast(std::vector<double>& v, int root);
  void barrier();
};

void diverged_direct(Comm& comm, std::vector<double>& buf) {
  if (comm.rank() == 0) {
    comm.allreduce_sum(buf);  // BAD(collective-divergence)
  }
  comm.barrier();
}

void diverged_via_taint(Comm& comm, std::vector<double>& buf) {
  const int leader = comm.rank();
  while (leader != 0) {
    comm.broadcast(buf, 0);  // BAD(collective-divergence)
  }
}

void diverged_chained_taint(Comm& comm, std::vector<double>& buf) {
  const int r = comm.rank();
  const int is_leader = r == 0 ? 1 : 0;
  if (is_leader != 0) {
    comm.barrier();  // BAD(collective-divergence)
  }
}

void diverged_ternary(Comm& comm, std::vector<double>& buf) {
  const int r = comm.rank();
  const int v = r == 0 ? (comm.barrier(), 0) : 1;  // BAD(collective-divergence)
  (void)v;
  (void)buf;
}

void diverged_switch(Comm& comm, std::vector<double>& buf) {
  switch (comm.rank()) {
    case 0:
      comm.allreduce_sum(buf);  // BAD(collective-divergence)
      break;
    default:
      break;
  }
}

}  // namespace fixture
