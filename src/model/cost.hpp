// Cost accounting for the alpha-beta-gamma model.
//
// Solvers charge flops / messages / words as they run; the tracker converts
// the counters to simulated seconds under a MachineSpec.  Counters are kept
// per phase so benches can print the latency/bandwidth/flop breakdown of
// Table 1 and Eq. 24.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "model/machine.hpp"

namespace rcf::model {

/// How collective costs are charged.
enum class CollectiveModel {
  /// The paper's Table 1 model: an allreduce of n words on P processors
  /// costs L = ceil(log2 P) messages and W = n * ceil(log2 P) words.
  kPaperLogP,
  /// Rabenseifner / ring model: L = 2*ceil(log2 P), W = 2*n*(P-1)/P.
  kRabenseifner,
  /// Binomial-tree reduce + broadcast: L = 2*ceil(log2 P), W = 2*n*ceil(log2 P).
  kTree,
};

[[nodiscard]] CollectiveModel collective_model_by_name(const std::string& name);
[[nodiscard]] std::string to_string(CollectiveModel model);

/// Message/word cost of one allreduce of n words over P ranks.
struct CollectiveCost {
  double messages = 0.0;
  double words = 0.0;
};
[[nodiscard]] CollectiveCost allreduce_cost(CollectiveModel model, int p,
                                            std::uint64_t words);
[[nodiscard]] CollectiveCost broadcast_cost(CollectiveModel model, int p,
                                            std::uint64_t words);

/// Phases of the solver loop, for the breakdown printed by the benches.
enum class Phase : int {
  kSampling = 0,  ///< index-set generation (stage A)
  kGram = 1,      ///< local H/R accumulation (stage B)
  kComm = 2,      ///< allreduce / broadcast  (stage C)
  kUpdate = 3,    ///< vector recurrences / prox (stage D)
  kOther = 4,
};
inline constexpr int kNumPhases = 5;
[[nodiscard]] const char* phase_name(Phase phase);

/// Raw counters (flops / messages / words), one triple per phase.
class CostTracker {
 public:
  CostTracker() = default;
  explicit CostTracker(CollectiveModel model) : model_(model) {}

  void add_flops(Phase phase, double flops) {
    flops_[static_cast<std::size_t>(phase)] += flops;
  }
  /// Charges one allreduce of `words` doubles over `p` ranks.
  void add_allreduce(int p, std::uint64_t words) {
    const auto c = allreduce_cost(model_, p, words);
    messages_[static_cast<int>(Phase::kComm)] += c.messages;
    words_[static_cast<int>(Phase::kComm)] += c.words;
  }
  void add_broadcast(int p, std::uint64_t words) {
    const auto c = broadcast_cost(model_, p, words);
    messages_[static_cast<int>(Phase::kComm)] += c.messages;
    words_[static_cast<int>(Phase::kComm)] += c.words;
  }
  /// Free-form charge (used by baselines with other communication shapes).
  void add_comm(double messages, double words) {
    messages_[static_cast<int>(Phase::kComm)] += messages;
    words_[static_cast<int>(Phase::kComm)] += words;
  }
  /// Charges DRAM traffic for working sets that spill the cache (model
  /// extension; see MachineSpec::beta_mem).
  void add_mem_words(Phase phase, double words) {
    mem_words_[static_cast<std::size_t>(phase)] += words;
  }

  [[nodiscard]] double flops() const;
  [[nodiscard]] double messages() const;
  [[nodiscard]] double words() const;
  [[nodiscard]] double mem_words() const;
  [[nodiscard]] double flops(Phase phase) const {
    return flops_[static_cast<std::size_t>(phase)];
  }

  /// Simulated execution time
  ///   T = gamma*F + alpha_eff*L + beta*W + beta_mem*M  (Eq. 7 + extensions).
  [[nodiscard]] double seconds(const MachineSpec& spec) const;

  /// Individual terms of Eq. 7 (for breakdown tables).
  [[nodiscard]] double compute_seconds(const MachineSpec& spec) const;
  [[nodiscard]] double latency_seconds(const MachineSpec& spec) const;
  [[nodiscard]] double bandwidth_seconds(const MachineSpec& spec) const;
  [[nodiscard]] double memory_seconds(const MachineSpec& spec) const;

  [[nodiscard]] CollectiveModel collective_model() const { return model_; }

  void reset();

  CostTracker& operator+=(const CostTracker& other);

 private:
  CollectiveModel model_ = CollectiveModel::kPaperLogP;
  std::array<double, kNumPhases> flops_{};
  std::array<double, kNumPhases> messages_{};
  std::array<double, kNumPhases> words_{};
  std::array<double, kNumPhases> mem_words_{};
};

}  // namespace rcf::model
