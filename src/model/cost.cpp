#include "model/cost.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace rcf::model {

namespace {
double ceil_log2(int p) {
  RCF_CHECK_MSG(p >= 1, "collective cost: P must be >= 1");
  if (p == 1) {
    return 0.0;
  }
  return std::ceil(std::log2(static_cast<double>(p)));
}
}  // namespace

CollectiveModel collective_model_by_name(const std::string& name) {
  if (name == "paper" || name == "logp") return CollectiveModel::kPaperLogP;
  if (name == "rabenseifner" || name == "ring")
    return CollectiveModel::kRabenseifner;
  if (name == "tree") return CollectiveModel::kTree;
  throw InvalidArgument("unknown collective model: " + name);
}

std::string to_string(CollectiveModel model) {
  switch (model) {
    case CollectiveModel::kPaperLogP:
      return "paper-logP";
    case CollectiveModel::kRabenseifner:
      return "rabenseifner";
    case CollectiveModel::kTree:
      return "tree";
  }
  return "?";
}

CollectiveCost allreduce_cost(CollectiveModel model, int p,
                              std::uint64_t words) {
  const double lg = ceil_log2(p);
  const auto n = static_cast<double>(words);
  switch (model) {
    case CollectiveModel::kPaperLogP:
      return {lg, n * lg};
    case CollectiveModel::kRabenseifner:
      return {2.0 * lg, p > 1 ? 2.0 * n * (p - 1.0) / p : 0.0};
    case CollectiveModel::kTree:
      return {2.0 * lg, 2.0 * n * lg};
  }
  return {};
}

CollectiveCost broadcast_cost(CollectiveModel model, int p,
                              std::uint64_t words) {
  const double lg = ceil_log2(p);
  const auto n = static_cast<double>(words);
  switch (model) {
    case CollectiveModel::kPaperLogP:
    case CollectiveModel::kTree:
      return {lg, n * lg};
    case CollectiveModel::kRabenseifner:
      // scatter + allgather
      return {2.0 * lg, p > 1 ? 2.0 * n * (p - 1.0) / p : 0.0};
  }
  return {};
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSampling:
      return "sampling";
    case Phase::kGram:
      return "gram";
    case Phase::kComm:
      return "comm";
    case Phase::kUpdate:
      return "update";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

double CostTracker::flops() const {
  return std::accumulate(flops_.begin(), flops_.end(), 0.0);
}

double CostTracker::messages() const {
  return std::accumulate(messages_.begin(), messages_.end(), 0.0);
}

double CostTracker::words() const {
  return std::accumulate(words_.begin(), words_.end(), 0.0);
}

double CostTracker::mem_words() const {
  return std::accumulate(mem_words_.begin(), mem_words_.end(), 0.0);
}

double CostTracker::compute_seconds(const MachineSpec& spec) const {
  return spec.gamma * flops();
}

double CostTracker::latency_seconds(const MachineSpec& spec) const {
  return spec.alpha_effective() * messages();
}

double CostTracker::bandwidth_seconds(const MachineSpec& spec) const {
  return spec.beta * words();
}

double CostTracker::memory_seconds(const MachineSpec& spec) const {
  return spec.beta_mem * mem_words();
}

double CostTracker::seconds(const MachineSpec& spec) const {
  return compute_seconds(spec) + latency_seconds(spec) +
         bandwidth_seconds(spec) + memory_seconds(spec);
}

void CostTracker::reset() {
  flops_.fill(0.0);
  messages_.fill(0.0);
  words_.fill(0.0);
  mem_words_.fill(0.0);
}

CostTracker& CostTracker::operator+=(const CostTracker& other) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(kNumPhases); ++i) {
    flops_[i] += other.flops_[i];
    messages_[i] += other.messages_[i];
    words_[i] += other.words_[i];
    mem_words_[i] += other.mem_words_[i];
  }
  return *this;
}

}  // namespace rcf::model
