// Machine specifications for the alpha-beta-gamma performance model
// (paper Eq. 7):  T = gamma*F + alpha*L + beta*W.
//
// alpha = seconds per message (latency), beta = seconds per word moved
// (inverse bandwidth; a word is one double), gamma = seconds per flop.
#pragma once

#include <string>

namespace rcf::model {

struct MachineSpec {
  std::string name;
  double alpha = 0.0;  ///< s / message (hardware injection latency)
  double beta = 0.0;   ///< s / word (8-byte double)
  double gamma = 0.0;  ///< s / flop

  /// Additional per-message software overhead charged by the *simulation*
  /// on top of `alpha`: collective-call setup, synchronization skew /
  /// stragglers.  The paper's analytic bounds (Eq. 25-28) use the pure
  /// hardware `alpha`; measured collective times on real clusters are
  /// dominated by this term, and it is what the iteration-overlapping
  /// optimization actually amortizes at scale.
  double alpha_sync = 0.0;

  /// s / word streamed from DRAM when a working set spills the cache.
  /// Extension of the paper's three-parameter model used to reproduce the
  /// Fig. 4 behaviour where very large k degrades performance ("computation
  /// cost dominates", epsilon dataset): the k Hessian blocks of d^2 words
  /// stop fitting in cache and every reuse pays memory bandwidth.
  double beta_mem = 0.0;

  /// Cache capacity in doubles; the k*(d^2+d) block working set spills
  /// beyond this.
  double cache_doubles = 8.0e6;  ///< 64 MB of doubles

  /// Effective per-message latency used by the time simulation.
  [[nodiscard]] double alpha_effective() const { return alpha + alpha_sync; }

  /// Latency-to-bandwidth ratio alpha/beta; the paper's Eq. 25 bound for the
  /// overlap parameter is k <= (alpha/beta) / d^2.
  [[nodiscard]] double alpha_beta_ratio() const { return alpha / beta; }

  /// beta/gamma ratio used by the S bound (Eq. 28).
  [[nodiscard]] double beta_gamma_ratio() const { return beta / gamma; }
};

/// XSEDE Comet-like cluster, using the constants quoted in paper §5.3:
/// alpha = 1e-6 s, beta = 1.42e-10 s/word, gamma = 4e-10 s/flop.
[[nodiscard]] MachineSpec comet();

/// Spark-like execution: same interconnect as comet() but every
/// communication round pays the scheduler / task-dispatch overhead
/// (tens of milliseconds), which is what makes per-iteration communication
/// so expensive in MLlib (paper §5.4).
[[nodiscard]] MachineSpec spark_like();

/// Commodity 10GbE cluster: higher latency and lower bandwidth than Comet.
[[nodiscard]] MachineSpec ethernet_cluster();

/// Aggressive InfiniBand system: lower alpha, higher bandwidth.
[[nodiscard]] MachineSpec infiniband_cluster();

/// Looks up a preset by name ("comet", "spark", "ethernet", "infiniband").
/// Throws InvalidArgument for unknown names.
[[nodiscard]] MachineSpec machine_by_name(const std::string& name);

}  // namespace rcf::model
