#include "model/machine.hpp"

#include "common/error.hpp"

namespace rcf::model {

MachineSpec comet() {
  MachineSpec spec;
  spec.name = "comet";
  // Hardware constants quoted in paper §5.3.
  spec.alpha = 1.0e-6;
  spec.beta = 1.42e-10;
  spec.gamma = 4.0e-10;
  // Measured MPI_Allreduce calls at hundreds of ranks cost hundreds of
  // microseconds (software stack + skew); charged per message on top of
  // alpha (see MachineSpec::alpha_sync).
  spec.alpha_sync = 2.5e-4;
  spec.beta_mem = 4.0e-10;  // ~20 GB/s effective DRAM stream per core
  spec.cache_doubles = 8.0e6;
  return spec;
}

MachineSpec spark_like() {
  MachineSpec spec = comet();
  spec.name = "spark";
  // Each communication round in Spark goes through driver scheduling,
  // serialization and task launch; with log2(256)=8 "messages" per round
  // this charges ~100 ms of overhead per round, the commonly reported
  // floor for MLlib-style iterative jobs.
  spec.alpha_sync = 1.25e-2;
  spec.beta = 4.0e-10;  // serialization lowers effective bandwidth
  return spec;
}

MachineSpec ethernet_cluster() {
  MachineSpec spec;
  spec.name = "ethernet";
  spec.alpha = 5.0e-5;
  spec.alpha_sync = 1.0e-3;
  spec.beta = 8.0e-10;
  spec.gamma = 4.0e-10;
  spec.beta_mem = 4.0e-10;
  return spec;
}

MachineSpec infiniband_cluster() {
  MachineSpec spec;
  spec.name = "infiniband";
  spec.alpha = 6.0e-7;
  spec.alpha_sync = 5.0e-5;
  spec.beta = 8.0e-11;
  spec.gamma = 4.0e-10;
  spec.beta_mem = 4.0e-10;
  return spec;
}

MachineSpec machine_by_name(const std::string& name) {
  if (name == "comet") return comet();
  if (name == "spark") return spark_like();
  if (name == "ethernet") return ethernet_cluster();
  if (name == "infiniband") return infiniband_cluster();
  throw InvalidArgument("unknown machine spec: " + name);
}

}  // namespace rcf::model
