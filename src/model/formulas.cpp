#include "model/formulas.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rcf::model {

namespace {
double log2p(double p) {
  RCF_CHECK_MSG(p >= 1.0, "formulas: P must be >= 1");
  return p == 1.0 ? 0.0 : std::log2(p);
}
}  // namespace

CostTriple sfista_cost(const AlgorithmShape& shape) {
  const double lg = log2p(shape.p);
  CostTriple cost;
  cost.latency_msgs = shape.n_iters * lg;
  cost.flops = shape.n_iters * shape.d * shape.d * shape.m_bar * shape.fill /
               shape.p;
  cost.bandwidth_words = shape.n_iters * shape.d * shape.d * lg;
  return cost;
}

CostTriple rcsfista_cost(const AlgorithmShape& shape) {
  RCF_CHECK_MSG(shape.k >= 1.0, "formulas: k must be >= 1");
  const double lg = log2p(shape.p);
  CostTriple cost;
  cost.latency_msgs = shape.n_iters / shape.k * lg;
  // Gram term (distributed) plus the redundant Hessian-reuse updates, which
  // every processor performs on the full d x d blocks (paper Eq. 24 charges
  // S d^2 per communication group; over N iterations that is N*S*d^2 update
  // flops of which Table 1 keeps the dominant S d^2 term -- we charge the
  // full per-iteration count for fidelity).
  cost.flops = shape.n_iters * shape.d * shape.d * shape.m_bar * shape.fill /
                   shape.p +
               shape.s * shape.d * shape.d;
  cost.bandwidth_words = shape.n_iters * shape.d * shape.d * lg;
  return cost;
}

double runtime(const CostTriple& cost, const MachineSpec& spec) {
  return spec.gamma * cost.flops + spec.alpha * cost.latency_msgs +
         spec.beta * cost.bandwidth_words;
}

double rcsfista_runtime(const AlgorithmShape& shape, const MachineSpec& spec) {
  return runtime(rcsfista_cost(shape), spec);
}

double k_bound_latency_bandwidth(const MachineSpec& spec, double d) {
  RCF_CHECK_MSG(d > 0.0, "k bound: d must be positive");
  return spec.alpha / (spec.beta * d * d);
}

double k_bound_latency_flops(const AlgorithmShape& shape,
                             const MachineSpec& spec) {
  const double lg = log2p(shape.p);
  const double denominator =
      spec.gamma * (shape.n_iters * shape.d * shape.d * shape.m_bar *
                        shape.fill +
                    shape.s * shape.d * shape.d * shape.p);
  RCF_CHECK_MSG(denominator > 0.0, "k bound: degenerate shape");
  return spec.alpha * shape.n_iters * shape.p * lg / denominator;
}

double ks_bound_sparse(const AlgorithmShape& shape, const MachineSpec& spec) {
  const double lg = log2p(shape.p);
  return spec.alpha * shape.n_iters * lg / (spec.gamma * shape.d * shape.d);
}

double s_bound(const AlgorithmShape& shape, const MachineSpec& spec) {
  const double lg = log2p(shape.p);
  return spec.beta * shape.n_iters * lg / spec.gamma;
}

double pipelined_overlap_fraction(const AlgorithmShape& shape,
                                  const MachineSpec& spec, int staleness) {
  RCF_CHECK_MSG(shape.k >= 1.0, "overlap: k must be >= 1");
  RCF_CHECK_MSG(staleness >= 0, "overlap: staleness must be >= 0");
  const double lg = std::ceil(log2p(shape.p));
  // One chunk's reduction: a k-block [H|R] allreduce under the paper's
  // log P collective model.
  const double chunk_words =
      shape.k * (shape.d * shape.d + shape.d) * lg;
  const double t_reduce =
      spec.alpha_effective() * lg + spec.beta * chunk_words;
  if (t_reduce <= 0.0) {
    return 1.0;  // P = 1: the local reduction is free, nothing is exposed.
  }
  // Compute the main thread performs between post and first wait: the next
  // staleness + 1 chunk builds plus staleness chunks of update sweeps.
  const double build_flops =
      shape.k * shape.d * shape.d * shape.m_bar * shape.fill / shape.p;
  const double update_flops = shape.k * shape.s * shape.d * shape.d;
  const double t_hide =
      spec.gamma * ((staleness + 1) * build_flops + staleness * update_flops);
  const double fraction = t_hide / t_reduce;
  return fraction > 1.0 ? 1.0 : (fraction < 0.0 ? 0.0 : fraction);
}

}  // namespace rcf::model
