// Closed-form cost formulas and parameter bounds from the paper.
//
//  * Table 1   -- latency / flop / bandwidth costs of SFISTA and RC-SFISTA.
//  * Eq. (24)  -- total modeled runtime of RC-SFISTA.
//  * Eq. (25)  -- k upper bound from latency vs bandwidth:  k <= alpha/(beta d^2).
//  * Eq. (26)  -- k upper bound from latency vs flops.
//  * Eq. (27)  -- combined k*S bound for very sparse data.
//  * Eq. (28)  -- S upper bound when k is at the Eq. 25 bound.
#pragma once

#include <cstdint>

#include "model/machine.hpp"

namespace rcf::model {

/// Shape parameters of one solver configuration, in the paper's notation.
struct AlgorithmShape {
  double n_iters = 0;   ///< N, total inner iterations
  double d = 0;         ///< feature dimension (# rows of X)
  double m_bar = 0;     ///< sampled batch size per iteration
  double fill = 1.0;    ///< f, non-zero fill-in of X
  double p = 1;         ///< number of processors
  double k = 1;         ///< iteration-overlapping parameter
  double s = 1;         ///< Hessian-reuse inner iterations
};

/// One row of Table 1.
struct CostTriple {
  double latency_msgs = 0.0;  ///< L
  double flops = 0.0;         ///< F
  double bandwidth_words = 0.0;  ///< W
};

/// Table 1, SFISTA row: L = N log P, F = N d^2 mbar f / P, W = N d^2 log P.
[[nodiscard]] CostTriple sfista_cost(const AlgorithmShape& shape);

/// Table 1, RC-SFISTA row: L = (N/k) log P, F = N d^2 mbar f / P + S d^2,
/// W = N d^2 log P.  (S d^2 is charged per iteration group as in Eq. 24.)
[[nodiscard]] CostTriple rcsfista_cost(const AlgorithmShape& shape);

/// Eq. 24: modeled runtime of RC-SFISTA under `spec`.
[[nodiscard]] double rcsfista_runtime(const AlgorithmShape& shape,
                                      const MachineSpec& spec);

/// Modeled runtime for the cost triple under `spec` (Eq. 7).
[[nodiscard]] double runtime(const CostTriple& cost, const MachineSpec& spec);

/// Eq. 25: k <= alpha / (beta d^2).  Returns the (real-valued) bound.
[[nodiscard]] double k_bound_latency_bandwidth(const MachineSpec& spec,
                                               double d);

/// Eq. 26: k <= alpha N P log(P) / (gamma [N d^2 mbar f + S d^2 P]).
[[nodiscard]] double k_bound_latency_flops(const AlgorithmShape& shape,
                                           const MachineSpec& spec);

/// Eq. 27: k*S <= alpha N log(P) / (gamma d^2)  (f ~ 0 limit).
[[nodiscard]] double ks_bound_sparse(const AlgorithmShape& shape,
                                     const MachineSpec& spec);

/// Eq. 28: S <= beta N log(P) / gamma.
[[nodiscard]] double s_bound(const AlgorithmShape& shape,
                             const MachineSpec& spec);

/// Predicted fraction of one chunk-reduction's time hidden behind compute
/// by the nonblocking [H|R] pipeline (core/distributed.cpp, pipeline mode).
///
/// Between posting chunk t's iallreduce and first waiting on it, the main
/// thread builds the next staleness + 1 chunks' Gram blocks and runs
/// staleness chunks of update sweeps; the reduction itself costs the
/// alpha-beta time of one k-block allreduce.  The returned value is
/// clamp(T_hide / T_reduce, 0, 1): 1 means the model expects the wait to
/// always find the reduction complete (exposed comm ~ 0), 0 means no
/// overlap (the blocking schedule).  P = 1 reduces locally in negligible
/// time and reports 1.
[[nodiscard]] double pipelined_overlap_fraction(const AlgorithmShape& shape,
                                                const MachineSpec& spec,
                                                int staleness);

}  // namespace rcf::model
