// Intra-rank execution layer: a persistent, barrier-based thread pool with
// deterministic static partitioning.
//
// The paper's performance story leans on multithreaded MKL for the per-rank
// sampled-Gram and dense subproblem kernels; this subsystem is our
// substitute.  Design constraints (see DESIGN.md "Execution layer"):
//
//  * No work stealing, no dynamic scheduling: every dispatch runs one task
//    per pool thread and barriers before returning, so a kernel's work
//    assignment is a pure function of (problem size, pool width).
//  * Determinism contract: kernels built on the pool partition their
//    *output* ranges (H rows, y entries, C rows), never the reduction over
//    input terms.  Each output element therefore accumulates exactly the
//    same floating-point terms in exactly the sequential order regardless
//    of pool width -- results are bit-identical across 1/2/N threads, and
//    width 1 is literally the sequential code path.
//  * Oversubscription rule: `resolve_width(0, ranks)` divides the hardware
//    concurrency by the SPMD rank count, so ThreadComm ranks each running a
//    pool do not oversubscribe the node.
//  * Observability: a dispatch with a non-null label emits one obs span per
//    pool thread (worker threads inherit the submitting thread's SPMD
//    rank), so Chrome traces show intra-rank parallelism as parallel lanes
//    under one pid.
//
// The pool a kernel uses is ambient: solvers install one for the duration
// of a solve with PoolGuard, and kernels pick it up via current_pool().
// Pool worker threads themselves see no ambient pool, so accidental nested
// dispatch degrades to inline execution instead of deadlocking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace rcf::obs {
class Counter;
}

namespace rcf::exec {

/// Alignment (bytes) guaranteed by Pool::aligned_scratch -- one full SIMD
/// vector (la::simd::kLanes doubles).
inline constexpr std::size_t kScratchAlign = 32;

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
};

/// Static blocked partition of [0, n): part `part` of `parts` contiguous
/// ranges, sizes differing by at most one.  Depends only on (n, parts).
[[nodiscard]] Range block_range(std::size_t n, int parts, int part);

/// Partition of the row index [0, n) of an upper-triangular n x n loop nest
/// (row i carries n - i inner iterations) into `parts` contiguous ranges of
/// approximately equal triangle area.  Depends only on (n, parts).  Used by
/// the Gram and syrk kernels, whose per-row work shrinks with the row index.
[[nodiscard]] Range triangle_range(std::size_t n, int parts, int part);

/// Persistent barrier-based thread pool of `width` threads: the owning
/// thread plus `width - 1` workers parked on a condition variable.  Width 1
/// spawns nothing and dispatches inline.
class Pool {
 public:
  /// Spawns width - 1 workers (width >= 1; throws InvalidArgument
  /// otherwise).
  explicit Pool(int width);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] int width() const { return width_; }

  /// Runs task(t) once for every t in [0, width); the caller executes
  /// t = 0, workers the rest, and run() returns only after every thread
  /// has finished (barrier semantics).  When `label` is non-null and the
  /// global trace session is enabled, each thread's task is recorded as
  /// one span under that label.  If tasks throw, the exception of the
  /// lowest thread index is rethrown after the barrier; the pool remains
  /// usable.
  void run(const char* label, const std::function<void(int)>& task);

  /// Per-thread scratch arena: a double buffer that persists (and only
  /// grows) across dispatches.  Contents are unspecified on entry.  Must
  /// only be called with the caller's own task index.
  std::span<double> scratch(int thread, std::size_t n);

  /// scratch() with the returned pointer aligned to kScratchAlign bytes
  /// (the SIMD vector width), for packed panels in the vectorized kernel
  /// backend.  Same arena, same lifetime rules; alignment is a performance
  /// contract only -- SIMD loads are position-based (memcpy), so results
  /// never depend on it.
  std::span<double> aligned_scratch(int thread, std::size_t n);

  /// Resolves a requested width: > 0 is taken literally; 0 means the
  /// hardware concurrency divided by `ranks` (at least 1), so SPMD ranks
  /// running one pool each share the node without oversubscribing.
  [[nodiscard]] static int resolve_width(int requested, int ranks);

 private:
  void worker_main(int index);
  void run_slice(int index);

  int width_;
  obs::Counter& dispatches_;  ///< "exec.dispatches" (registry-owned)
  std::vector<std::vector<double>> scratch_;
  std::vector<std::exception_ptr> errors_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  const std::function<void(int)>* task_ = nullptr;
  const char* label_ = nullptr;
  int submitter_rank_ = 0;

  std::vector<std::thread> workers_;  // last member: joined before the rest
};

/// The ambient pool of the calling thread (nullptr when none installed).
[[nodiscard]] Pool* current_pool();

/// Installs `pool` as the calling thread's ambient pool for the guard's
/// lifetime (restores the previous pool on destruction).  Passing nullptr
/// explicitly disables pooling in the guarded scope.
class PoolGuard {
 public:
  explicit PoolGuard(Pool* pool);
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;
  ~PoolGuard();

 private:
  Pool* previous_;
};

/// Minimum per-dispatch work (in flop-ish units) below which kernels skip
/// the pool: a dispatch costs a few microseconds of rendezvous, so tiny
/// kernels run inline.  Skipping never changes results (see the
/// determinism contract), only where they are computed.
inline constexpr std::uint64_t kParallelWorkCutoff = 1u << 15;

/// The ambient pool if it is worth dispatching `work_estimate` units onto
/// it, else nullptr (no pool installed, width 1, or work under the
/// cutoff).  The kernel-side gate: `if (auto* p = usable_pool(est)) ...`.
[[nodiscard]] inline Pool* usable_pool(std::uint64_t work_estimate) {
  Pool* pool = current_pool();
  return pool != nullptr && pool->width() > 1 &&
                 work_estimate >= kParallelWorkCutoff
             ? pool
             : nullptr;
}

/// Runs fn(thread, range) over the static blocked partition of [0, n) on
/// the ambient pool (inline as one range when no pool is usable for
/// `n` units of work -- pass a larger estimate via dispatching on
/// usable_pool + Pool::run directly when n misrepresents the work).
void parallel_for(std::size_t n, const char* label,
                  const std::function<void(int, Range)>& fn);

/// Pool width requested by the RCF_THREADS environment variable, or
/// `fallback` when unset/unparseable.  (0 still means "auto": hardware
/// concurrency divided by the rank count at resolve time.)
[[nodiscard]] int threads_from_env(int fallback);

}  // namespace rcf::exec
