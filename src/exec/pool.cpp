#include "exec/pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "check/partition.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/perfctr.hpp"
#include "obs/trace.hpp"

namespace rcf::exec {

namespace {

thread_local Pool* tls_current_pool = nullptr;

}  // namespace

Range block_range(std::size_t n, int parts, int part) {
  RCF_DCHECK(parts >= 1 && part >= 0 && part < parts);
  const auto p = static_cast<std::size_t>(parts);
  const auto t = static_cast<std::size_t>(part);
  const std::size_t base = n / p;
  const std::size_t rem = n % p;
  const std::size_t begin = t * base + std::min(t, rem);
  const std::size_t size = base + (t < rem ? 1 : 0);
  return {begin, begin + size};
}

namespace {

/// Lower boundary of triangle part `part`: the b with area(0..b) closest to
/// part/parts of the full triangle, i.e. (n-b)(n-b+1)/2 = (1 - t/parts) *
/// n(n+1)/2.  Pure function of (n, parts, part).
std::size_t triangle_bound(std::size_t n, int parts, int part) {
  if (part <= 0) {
    return 0;
  }
  if (part >= parts) {
    return n;
  }
  const double total = 0.5 * static_cast<double>(n) *
                       (static_cast<double>(n) + 1.0);
  const double remaining =
      total * (1.0 - static_cast<double>(part) / static_cast<double>(parts));
  const double tail = std::floor(std::sqrt(2.0 * remaining));  // ~ n - b
  const double bound = static_cast<double>(n) - tail;
  if (bound <= 0.0) {
    return 0;
  }
  return std::min(n, static_cast<std::size_t>(bound));
}

}  // namespace

Range triangle_range(std::size_t n, int parts, int part) {
  RCF_DCHECK(parts >= 1 && part >= 0 && part < parts);
  // sqrt is monotone, so consecutive bounds are non-decreasing; a part can
  // come out empty for tiny n, which callers must tolerate.
  return {triangle_bound(n, parts, part), triangle_bound(n, parts, part + 1)};
}

Pool::Pool(int width)
    : width_(width),
      dispatches_(obs::MetricsRegistry::global().counter("exec.dispatches")) {
  RCF_CHECK_MSG(width >= 1, "exec::Pool: width must be >= 1");
  scratch_.resize(static_cast<std::size_t>(width));
  errors_.resize(static_cast<std::size_t>(width));
  obs::MetricsRegistry::global().gauge("exec.pool_width").set(width);
  workers_.reserve(static_cast<std::size_t>(width - 1));
  for (int i = 1; i < width; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void Pool::run_slice(int index) {
  try {
    if (label_ != nullptr) {
      obs::TraceScope span(label_);
      // Hardware-counter sampling for this kernel slice (gram.task,
      // sparse.spmv, ...); one relaxed load when RCF_PERFCTR is off.
      obs::PerfScope perf(label_);
      (*task_)(index);
    } else {
      (*task_)(index);
    }
  } catch (...) {
    errors_[static_cast<std::size_t>(index)] = std::current_exception();
  }
}

void Pool::run(const char* label, const std::function<void(int)>& task) {
  if (width_ == 1) {
    // Inline fast path: no rendezvous, but the same span + exception
    // surface as the threaded path.
    task_ = &task;
    label_ = label;
    errors_[0] = nullptr;
    run_slice(0);
    task_ = nullptr;
    if (errors_[0]) {
      std::exception_ptr err = errors_[0];
      errors_[0] = nullptr;
      std::rethrow_exception(err);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    label_ = label;
    submitter_rank_ = obs::thread_rank();
    std::fill(errors_.begin(), errors_.end(), nullptr);
    pending_ = width_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  run_slice(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    task_ = nullptr;
  }
  dispatches_.add(1);
  for (auto& err : errors_) {
    if (err) {
      std::exception_ptr first = err;
      std::fill(errors_.begin(), errors_.end(), nullptr);
      std::rethrow_exception(first);
    }
  }
}

void Pool::worker_main(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    int rank = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      rank = submitter_rank_;
    }
    // Attribute this worker's spans to the submitting thread's SPMD rank,
    // so intra-rank tasks nest under the right pid in the Chrome trace.
    obs::set_thread_rank(rank);
    run_slice(index);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --pending_ == 0;
    }
    if (last) {
      cv_done_.notify_one();
    }
  }
}

std::span<double> Pool::scratch(int thread, std::size_t n) {
  RCF_DCHECK(thread >= 0 && thread < width_);
  auto& arena = scratch_[static_cast<std::size_t>(thread)];
  if (arena.size() < n) {
    arena.resize(n);
  }
  return {arena.data(), n};
}

std::span<double> Pool::aligned_scratch(int thread, std::size_t n) {
  constexpr std::size_t kPad = kScratchAlign / sizeof(double);
  auto raw = scratch(thread, n + kPad - 1);
  const auto addr = reinterpret_cast<std::uintptr_t>(raw.data());
  const std::size_t skip =
      ((kScratchAlign - addr % kScratchAlign) % kScratchAlign) /
      sizeof(double);
  return raw.subspan(skip, n);
}

int Pool::resolve_width(int requested, int ranks) {
  RCF_CHECK_MSG(requested >= 0, "exec::Pool: threads must be >= 0");
  if (requested > 0) {
    return requested;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  const unsigned per_rank = hw / static_cast<unsigned>(std::max(1, ranks));
  return static_cast<int>(std::max(1u, per_rank));
}

Pool* current_pool() { return tls_current_pool; }

PoolGuard::PoolGuard(Pool* pool) : previous_(tls_current_pool) {
  tls_current_pool = pool;
}

PoolGuard::~PoolGuard() { tls_current_pool = previous_; }

void parallel_for(std::size_t n, const char* label,
                  const std::function<void(int, Range)>& fn) {
  Pool* pool = usable_pool(n);
  if (pool == nullptr) {
    fn(0, Range{0, n});
    return;
  }
  const int width = pool->width();
  if (check::partition_audit_due()) {
    check::audit_partition(
        label != nullptr ? label : "exec.parallel_for", n,
        static_cast<std::size_t>(width), [&](std::size_t part) {
          const Range r = block_range(n, width, static_cast<int>(part));
          return std::pair<std::size_t, std::size_t>{r.begin, r.end};
        });
  }
  pool->run(label, [&fn, n, width](int t) {
    const Range range = block_range(n, width, t);
    if (!range.empty()) {
      fn(t, range);
    }
  });
}

int threads_from_env(int fallback) {
  const char* env = std::getenv("RCF_THREADS");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 0 || value > 4096) {
    return fallback;
  }
  return static_cast<int>(value);
}

}  // namespace rcf::exec
