// Declarative fault plans for the chaos / resilience layer (rcf_fault).
//
// A FaultPlan is a list of FaultSpecs, each describing one deterministic
// fault to inject into the communication schedule: straggler delays,
// rendezvous skew, payload corruption (NaN poisoning / bit flips),
// transient collective failures (which the dist::RetryingComm decorator
// absorbs), hard rank aborts, and named iteration-point aborts (e.g. the
// proximal Newton outer loop, for checkpoint/restore testing).
//
// Plans come from two sources, in precedence order:
//
//  1. ScopedFaultPlan -- a test/tool-scoped override (nests).
//  2. The RCF_FAULT environment variable, parsed once per process.
//
// The grammar is `kind:key=value,key=value;kind:...` -- e.g.
//
//   RCF_FAULT="delay:rank=1,us=2000,every=3;transient:rank=2,call=4"
//
// Every fault is a pure function of (plan, rank, collective-call index) --
// randomized skew draws flow through the counter-based rcf::Rng keyed on
// (spec seed, call index, rank) -- so a faulted run replays exactly from
// its plan string, the same way solver runs replay from their seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace rcf::fault {

/// Thrown on a hard injected abort (fault kind `abort`): the faulted rank
/// dies mid-schedule, the surviving ranks observe a poisoned rendezvous,
/// and the solve surfaces a structured SolveResult::failure.
class FaultAbort : public Error {
 public:
  explicit FaultAbort(const std::string& what) : Error(what) {}
};

/// Thrown by the engine's payload guard when the reduced [H|R] blocks are
/// still corrupt after the recompute fallback (persistent poisoning).
class PoisonedPayload : public Error {
 public:
  explicit PoisonedPayload(const std::string& what) : Error(what) {}
};

/// Fault taxonomy (DESIGN.md "Fault injection & resilience").
enum class FaultKind {
  kDelay,      ///< straggler: sleep `us` before the collective on one rank.
  kSkew,       ///< rendezvous skew: every rank sleeps a seeded draw in [0,us).
  kTransient,  ///< throw dist::TransientCommFailure before the collective.
  kNanPoison,  ///< overwrite leading payload words with quiet NaN.
  kBitFlip,    ///< XOR one bit of one payload word (default: exponent bit 62).
  kAbort,      ///< throw FaultAbort before the collective (rank death).
  kIterAbort,  ///< throw FaultAbort at a named iteration_point().
};

/// When a spec fires relative to a nonblocking collective: kPost faults
/// (the default, and the only stage blocking collectives have) fire before
/// the inner post; kWait faults fire inside the handle's wait() -- i.e.
/// against the *in-flight* collective, after the schedule already posted
/// it.  Wait-stage delay/skew model a straggling completion; wait-stage
/// transient/abort model a reduction that fails after posting (the
/// dist::RetryingComm wait path absorbs transients).  Corruption kinds are
/// post-only: the payload snapshot has already been taken by wait time.
enum class FaultStage {
  kPost,
  kWait,
};

/// One declarative fault.  Matching: a spec fires on rank `rank` (or every
/// rank when rank < 0) at engine-collective call indices selected by
/// `call` (exact index, counted per rank from 0) or `every` (fires when
/// index % every == 0); with neither set it matches every call.  `count`
/// bounds the number of firings (corruption/failure/abort kinds default to
/// a single shot, delay/skew to unlimited).
struct FaultSpec {
  FaultKind kind = FaultKind::kDelay;
  FaultStage stage = FaultStage::kPost;  ///< see FaultStage.
  int rank = -1;                      ///< target rank; -1 = all ranks.
  std::optional<std::uint64_t> call;  ///< exact call index.
  std::uint64_t every = 0;            ///< fire every Nth call (0 = off).
  std::uint64_t count = 0;            ///< max firings (0 = kind default).
  std::uint64_t us = 0;               ///< delay/skew microseconds.
  std::uint64_t words = 1;            ///< NaN-poison span length.
  std::uint64_t word = 0;             ///< bit-flip word index.
  std::uint32_t bit = 62;             ///< bit-flip bit (62 = top exponent).
  std::uint64_t seed = 0;             ///< skew RNG seed.
  std::string at;                     ///< iteration point name (kIterAbort).
  std::uint64_t index = 0;            ///< iteration index (kIterAbort).
};

/// A parsed fault plan: the specs plus the original text (for diagnostics).
struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::string text;

  [[nodiscard]] bool empty() const { return specs.empty(); }
};

/// Parses the `kind:key=val,...;kind:...` grammar.  Throws
/// rcf::InvalidArgument naming the offending clause on any error.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view text);

/// Human-readable one-line summary ("delay(rank=1,us=2000,every=3); ...").
[[nodiscard]] std::string describe(const FaultPlan& plan);

/// The plan in effect: the innermost ScopedFaultPlan if any is alive, else
/// the RCF_FAULT environment plan, else nullptr (no injection).  The
/// returned pointer stays valid while the scope / process lives.  This is
/// the fast gate the engine guards test: nullptr means the whole fault
/// layer is inactive and costs one atomic load.
[[nodiscard]] const FaultPlan* active_plan();

/// Scoped programmatic plan override (nests; restores on destruction).
/// Install before spawning SPMD ranks; the plan must stay immutable while
/// threads run.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan);
  explicit ScopedFaultPlan(std::string_view text)
      : ScopedFaultPlan(parse_fault_plan(text)) {}
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
  ~ScopedFaultPlan();

 private:
  FaultPlan plan_;
  const FaultPlan* previous_;
};

/// Iteration-point hook for drivers (e.g. the PN outer loop calls
/// iteration_point("pn.outer", outer)).  Throws FaultAbort when the active
/// plan carries a matching `abort:at=<point>,index=<n>` spec; otherwise a
/// single pointer test.
void iteration_point(std::string_view point, std::uint64_t index);

}  // namespace rcf::fault
