// FaultyComm: deterministic fault-injecting decorator over any
// dist::Communicator.
//
// Every engine-space collective on this endpoint is numbered (per rank,
// from 0) and matched against the active FaultPlan before it reaches the
// inner communicator:
//
//  * delay / skew    -- sleep, then forward (straggler simulation).
//  * nan / bitflip   -- corrupt this rank's *input* payload, then forward.
//                       The reduction spreads the corruption identically to
//                       every rank, so the engine's poison guard fires
//                       symmetrically (no divergent control flow).
//  * transient       -- throw dist::TransientCommFailure *without touching
//                       the inner communicator*: the failed attempt never
//                       enters the rendezvous, so a retry re-issues the
//                       collective exactly once downstream and the PR 4
//                       contract checker sees a clean schedule.
//  * abort           -- throw fault::FaultAbort (hard rank death).
//
// Aux-mode traffic (obs::aggregate's end-of-solve reductions) is never
// faulted: chaos targets the solver schedule, not the telemetry.  With no
// active plan every collective forwards with one branch of overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/comm.hpp"
#include "fault/plan.hpp"

namespace rcf::fault {

class FaultyComm final : public dist::Communicator {
 public:
  /// Decorates `inner` (must outlive this object) with the faults of
  /// `plan` that target inner.rank().  `plan` may be nullptr (no faults);
  /// the typical call is FaultyComm(comm, fault::active_plan()).
  FaultyComm(dist::Communicator& inner, const FaultPlan* plan);

  [[nodiscard]] int rank() const override { return inner_.rank(); }
  [[nodiscard]] int size() const override { return inner_.size(); }
  void allreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void allreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void broadcast(
      std::span<double> buffer, int root,
      std::source_location site = std::source_location::current()) override;
  void allgather(
      std::span<const double> input, std::span<double> output,
      std::source_location site = std::source_location::current()) override;
  void barrier(
      std::source_location site = std::source_location::current()) override;
  // Nonblocking posts: stage=post faults (the default) fire before the
  // inner post exactly like the blocking path -- a transient thrown here
  // never reaches the inner communicator, so a retried post stays clean
  // downstream.  stage=wait faults fire inside the returned handle's
  // wait(), against the in-flight collective; the call index they match is
  // the one assigned at post.
  dist::CommHandle iallreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  dist::CommHandle iallreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  /// Inner stats with this decorator's injection count folded in.
  [[nodiscard]] const dist::CommStats& stats() const override;
  [[nodiscard]] std::string backend_name() const override {
    return inner_.backend_name() + "+fault";
  }

  /// Faults fired so far on this endpoint (delays, corruptions, throws).
  [[nodiscard]] std::uint64_t faults_injected() const { return injected_; }

 private:
  /// Counts an injected fault and announces it on the live telemetry bus
  /// (one relaxed load when the monitor is off).
  void note_fault(const char* kind, std::uint64_t call);

  /// Per-endpoint firing state for one matching spec.
  struct Armed {
    FaultSpec spec;
    std::uint64_t fired = 0;
    [[nodiscard]] bool matches(std::uint64_t call) const;
  };

  friend class FaultWaitOp;

  /// Applies the stage=post faults due at the current call index.
  /// `payload` is the mutable input buffer for corruption kinds (empty for
  /// collectives without an in-place payload).  Throws for transient/abort
  /// kinds; otherwise returns after any delays/corruption.
  void before_collective(std::span<double> payload);
  /// Applies the stage=wait faults matching `call` (re-evaluated on every
  /// wait attempt, so a retried wait counts down a spec's `count` budget
  /// the same way retried posts do).  Throws for transient/abort kinds.
  void before_wait(std::uint64_t call);
  /// Shared body of the iallreduce posts.
  dist::CommHandle post_iallreduce(std::span<double> inout, bool use_max,
                                   const std::source_location& site);

  dist::Communicator& inner_;
  std::vector<Armed> armed_;
  bool has_wait_specs_ = false;  ///< any armed spec with stage=wait.
  std::uint64_t calls_ = 0;     ///< completed engine-space collectives.
  std::uint64_t injected_ = 0;
  mutable dist::CommStats merged_;
};

}  // namespace rcf::fault
