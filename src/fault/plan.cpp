#include "fault/plan.hpp"

#include <atomic>
#include <charconv>
#include <cstdlib>

namespace rcf::fault {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void parse_error(std::string_view clause, const std::string& why) {
  throw InvalidArgument("fault plan: bad clause '" + std::string(clause) +
                        "': " + why);
}

std::uint64_t parse_u64(std::string_view clause, std::string_view value) {
  std::uint64_t out = 0;
  const auto* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    parse_error(clause, "'" + std::string(value) + "' is not an unsigned "
                        "integer");
  }
  return out;
}

FaultSpec parse_clause(std::string_view clause) {
  const auto colon = clause.find(':');
  const std::string_view kind_name =
      trim(colon == std::string_view::npos ? clause : clause.substr(0, colon));
  FaultSpec spec;
  bool has_at = false;
  bool is_abort = false;
  if (kind_name == "delay") {
    spec.kind = FaultKind::kDelay;
  } else if (kind_name == "skew") {
    spec.kind = FaultKind::kSkew;
  } else if (kind_name == "transient") {
    spec.kind = FaultKind::kTransient;
  } else if (kind_name == "nan") {
    spec.kind = FaultKind::kNanPoison;
  } else if (kind_name == "bitflip") {
    spec.kind = FaultKind::kBitFlip;
  } else if (kind_name == "abort") {
    is_abort = true;
    spec.kind = FaultKind::kAbort;  // kIterAbort if an `at=` key appears.
  } else {
    parse_error(clause, "unknown fault kind '" + std::string(kind_name) +
                        "' (expected delay|skew|transient|nan|bitflip|abort)");
  }

  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : clause.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view kv = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (kv.empty()) {
      continue;
    }
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos) {
      parse_error(clause, "key '" + std::string(kv) + "' lacks '='");
    }
    const std::string_view key = trim(kv.substr(0, eq));
    const std::string_view value = trim(kv.substr(eq + 1));
    if (key == "rank") {
      spec.rank = static_cast<int>(parse_u64(clause, value));
    } else if (key == "call") {
      spec.call = parse_u64(clause, value);
    } else if (key == "every") {
      spec.every = parse_u64(clause, value);
    } else if (key == "count") {
      spec.count = parse_u64(clause, value);
    } else if (key == "us") {
      spec.us = parse_u64(clause, value);
    } else if (key == "words") {
      spec.words = parse_u64(clause, value);
    } else if (key == "word") {
      spec.word = parse_u64(clause, value);
    } else if (key == "bit") {
      spec.bit = static_cast<std::uint32_t>(parse_u64(clause, value));
    } else if (key == "seed") {
      spec.seed = parse_u64(clause, value);
    } else if (key == "stage") {
      if (value == "post") {
        spec.stage = FaultStage::kPost;
      } else if (value == "wait") {
        spec.stage = FaultStage::kWait;
      } else {
        parse_error(clause, "stage must be 'post' or 'wait'");
      }
    } else if (key == "at") {
      has_at = true;
      spec.at = std::string(value);
    } else if (key == "index") {
      spec.index = parse_u64(clause, value);
    } else {
      parse_error(clause, "unknown key '" + std::string(key) + "'");
    }
  }

  if (is_abort && has_at) {
    spec.kind = FaultKind::kIterAbort;
    if (spec.at.empty()) {
      parse_error(clause, "abort:at= needs a point name");
    }
  }
  switch (spec.kind) {
    case FaultKind::kDelay:
    case FaultKind::kSkew:
      if (spec.us == 0) {
        parse_error(clause, "delay/skew need us=<microseconds> > 0");
      }
      break;
    case FaultKind::kNanPoison:
      if (spec.words == 0) {
        parse_error(clause, "nan needs words >= 1");
      }
      break;
    case FaultKind::kBitFlip:
      if (spec.bit > 63) {
        parse_error(clause, "bitflip bit must be in [0, 63]");
      }
      break;
    case FaultKind::kTransient:
    case FaultKind::kAbort:
    case FaultKind::kIterAbort:
      break;
  }
  if (spec.stage == FaultStage::kWait) {
    switch (spec.kind) {
      case FaultKind::kDelay:
      case FaultKind::kSkew:
      case FaultKind::kTransient:
      case FaultKind::kAbort:
        break;
      default:
        parse_error(clause,
                    "stage=wait applies only to delay/skew/transient/abort "
                    "(the payload snapshot is already taken by wait time)");
    }
  }
  // Single-shot default for the kinds that break something; a delay or a
  // skew left unbounded models a persistently slow rank.
  if (spec.count == 0 && spec.kind != FaultKind::kDelay &&
      spec.kind != FaultKind::kSkew) {
    spec.count = 1;
  }
  return spec;
}

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kSkew:
      return "skew";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kNanPoison:
      return "nan";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kAbort:
      return "abort";
    case FaultKind::kIterAbort:
      return "abort-at";
  }
  return "?";
}

/// The innermost ScopedFaultPlan (set before SPMD threads launch, read by
/// every rank; atomic so TSan sees the publication ordering).
std::atomic<const FaultPlan*> g_scoped{nullptr};

const FaultPlan* env_plan() {
  static const FaultPlan* plan = []() -> const FaultPlan* {
    const char* text = std::getenv("RCF_FAULT");
    if (text == nullptr || *text == '\0') {
      return nullptr;
    }
    static FaultPlan parsed = parse_fault_plan(text);
    return parsed.empty() ? nullptr : &parsed;
  }();
  return plan;
}

}  // namespace

FaultPlan parse_fault_plan(std::string_view text) {
  FaultPlan plan;
  plan.text = std::string(text);
  std::string_view rest = text;
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string_view clause = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) {
      continue;
    }
    plan.specs.push_back(parse_clause(clause));
  }
  return plan;
}

std::string describe(const FaultPlan& plan) {
  std::string out;
  for (const FaultSpec& s : plan.specs) {
    if (!out.empty()) {
      out += "; ";
    }
    out += kind_name(s.kind);
    out += "(";
    if (s.kind == FaultKind::kIterAbort) {
      out += "at=" + s.at + ",index=" + std::to_string(s.index);
    } else {
      out += "rank=" + std::to_string(s.rank);
      if (s.call.has_value()) {
        out += ",call=" + std::to_string(*s.call);
      }
      if (s.every != 0) {
        out += ",every=" + std::to_string(s.every);
      }
      if (s.count != 0) {
        out += ",count=" + std::to_string(s.count);
      }
      if (s.us != 0) {
        out += ",us=" + std::to_string(s.us);
      }
      if (s.kind == FaultKind::kNanPoison) {
        out += ",words=" + std::to_string(s.words);
      }
      if (s.kind == FaultKind::kBitFlip) {
        out += ",word=" + std::to_string(s.word) +
               ",bit=" + std::to_string(s.bit);
      }
      if (s.stage == FaultStage::kWait) {
        out += ",stage=wait";
      }
    }
    out += ")";
  }
  return out.empty() ? "(empty plan)" : out;
}

const FaultPlan* active_plan() {
  const FaultPlan* scoped = g_scoped.load(std::memory_order_acquire);
  return scoped != nullptr ? scoped : env_plan();
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan)
    : plan_(std::move(plan)),
      previous_(g_scoped.load(std::memory_order_relaxed)) {
  g_scoped.store(&plan_, std::memory_order_release);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  g_scoped.store(previous_, std::memory_order_release);
}

void iteration_point(std::string_view point, std::uint64_t index) {
  const FaultPlan* plan = active_plan();
  if (plan == nullptr) {
    return;
  }
  for (const FaultSpec& s : plan->specs) {
    if (s.kind == FaultKind::kIterAbort && s.at == point && s.index == index) {
      throw FaultAbort("injected abort at " + std::string(point) + "[" +
                       std::to_string(index) + "] (plan: " + plan->text + ")");
    }
  }
}

}  // namespace rcf::fault
