#include "fault/faulty_comm.hpp"

#include <bit>
#include <chrono>
#include <limits>
#include <optional>
#include <thread>

#include "common/rng.hpp"
#include "dist/retry.hpp"
#include "obs/telemetry.hpp"

namespace rcf::fault {

namespace {

void sleep_us(std::uint64_t us) {
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace

void FaultyComm::note_fault(const char* kind, std::uint64_t call) {
  ++injected_;
  obs::telemetry_publish(obs::TelemetryKind::kFault, kind,
                         static_cast<double>(call));
}

FaultyComm::FaultyComm(dist::Communicator& inner, const FaultPlan* plan)
    : inner_(inner) {
  if (plan == nullptr) {
    return;
  }
  for (const FaultSpec& spec : plan->specs) {
    if (spec.kind == FaultKind::kIterAbort) {
      continue;  // driver-level faults; see fault::iteration_point.
    }
    if (spec.rank >= 0 && spec.rank != inner_.rank()) {
      continue;
    }
    if (spec.stage == FaultStage::kWait) {
      has_wait_specs_ = true;
    }
    armed_.push_back(Armed{spec, 0});
  }
}

bool FaultyComm::Armed::matches(std::uint64_t call) const {
  if (spec.count != 0 && fired >= spec.count) {
    return false;
  }
  if (spec.call.has_value()) {
    return call == *spec.call;
  }
  if (spec.every != 0) {
    return call % spec.every == 0;
  }
  return true;
}

void FaultyComm::before_collective(std::span<double> payload) {
  const std::uint64_t call = calls_;
  for (Armed& a : armed_) {
    if (a.spec.stage != FaultStage::kPost || !a.matches(call)) {
      continue;
    }
    switch (a.spec.kind) {
      case FaultKind::kDelay:
        ++a.fired;
        note_fault("delay", call);
        sleep_us(a.spec.us);
        break;
      case FaultKind::kSkew: {
        ++a.fired;
        note_fault("skew", call);
        // Each rank draws its own offset from the shared counter-based
        // stream, keyed on (seed, call, rank): deterministic, replayable.
        Rng rng(a.spec.seed,
                (call << 16) ^ static_cast<std::uint64_t>(inner_.rank()));
        sleep_us(rng.uniform_index(a.spec.us));
        break;
      }
      case FaultKind::kNanPoison: {
        if (payload.empty()) {
          break;  // stays armed for the next payload-carrying collective.
        }
        ++a.fired;
        note_fault("nan_poison", call);
        const std::size_t n =
            std::min<std::size_t>(a.spec.words, payload.size());
        for (std::size_t i = 0; i < n; ++i) {
          payload[i] = std::numeric_limits<double>::quiet_NaN();
        }
        break;
      }
      case FaultKind::kBitFlip: {
        if (a.spec.word >= payload.size()) {
          break;
        }
        ++a.fired;
        note_fault("bit_flip", call);
        auto bits = std::bit_cast<std::uint64_t>(payload[a.spec.word]);
        bits ^= std::uint64_t{1} << a.spec.bit;
        payload[a.spec.word] = std::bit_cast<double>(bits);
        break;
      }
      case FaultKind::kTransient:
        // Thrown *before* the inner communicator is touched: the attempt
        // never enters the rendezvous, so a retry re-issues this call
        // index and downstream sees exactly one collective.
        ++a.fired;
        note_fault("transient", call);
        throw dist::TransientCommFailure(
            "injected transient failure on rank " +
            std::to_string(inner_.rank()) + " at collective call " +
            std::to_string(call));
      case FaultKind::kAbort:
        ++a.fired;
        note_fault("abort", call);
        throw FaultAbort("injected abort on rank " +
                         std::to_string(inner_.rank()) +
                         " at collective call " + std::to_string(call));
      case FaultKind::kIterAbort:
        break;  // filtered out in the constructor.
    }
  }
}

void FaultyComm::before_wait(std::uint64_t call) {
  for (Armed& a : armed_) {
    if (a.spec.stage != FaultStage::kWait || !a.matches(call)) {
      continue;
    }
    switch (a.spec.kind) {
      case FaultKind::kDelay:
        ++a.fired;
        note_fault("delay", call);
        sleep_us(a.spec.us);
        break;
      case FaultKind::kSkew: {
        ++a.fired;
        note_fault("skew", call);
        Rng rng(a.spec.seed,
                (call << 16) ^ static_cast<std::uint64_t>(inner_.rank()));
        sleep_us(rng.uniform_index(a.spec.us));
        break;
      }
      case FaultKind::kTransient:
        // Thrown *before* the inner wait: the completion attempt failed
        // but the in-flight reduction is untouched, so re-waiting (which
        // dist::RetryingComm's wait path does) is safe and idempotent.
        ++a.fired;
        note_fault("transient", call);
        throw dist::TransientCommFailure(
            "injected transient completion failure on rank " +
            std::to_string(inner_.rank()) + " at collective call " +
            std::to_string(call));
      case FaultKind::kAbort:
        ++a.fired;
        note_fault("abort", call);
        throw FaultAbort("injected abort on rank " +
                         std::to_string(inner_.rank()) +
                         " while waiting collective call " +
                         std::to_string(call));
      default:
        break;  // corruption kinds are post-only (rejected by the parser).
    }
  }
}

/// Handle wrapper firing wait-stage faults against the in-flight
/// collective: every wait attempt first runs the plan for this op's call
/// index, then enters the inner wait.
class FaultWaitOp final : public dist::detail::PendingOp {
 public:
  FaultWaitOp(FaultyComm* owner, std::shared_ptr<dist::detail::PendingOp> inner,
              std::uint64_t call)
      : owner_(owner), inner_(std::move(inner)), call_(call) {}

  void wait() override {
    owner_->before_wait(call_);
    inner_->wait();
  }
  [[nodiscard]] bool test() override { return inner_->test(); }
  [[nodiscard]] std::size_t words() const override { return inner_->words(); }

 private:
  FaultyComm* owner_;
  std::shared_ptr<dist::detail::PendingOp> inner_;
  std::uint64_t call_;
};

dist::CommHandle FaultyComm::post_iallreduce(std::span<double> inout,
                                             bool use_max,
                                             const std::source_location& site) {
  if (aux_mode()) {
    AuxScope fwd(inner_);
    return use_max ? inner_.iallreduce_max(inout, site)
                   : inner_.iallreduce_sum(inout, site);
  }
  before_collective(inout);
  dist::CommHandle handle = use_max ? inner_.iallreduce_max(inout, site)
                                    : inner_.iallreduce_sum(inout, site);
  const std::uint64_t call = calls_++;
  if (!has_wait_specs_ || !handle.valid()) {
    return handle;
  }
  return dist::CommHandle(
      std::make_shared<FaultWaitOp>(this, handle.op(), call));
}

dist::CommHandle FaultyComm::iallreduce_sum(std::span<double> inout,
                                            std::source_location site) {
  return post_iallreduce(inout, /*use_max=*/false, site);
}

dist::CommHandle FaultyComm::iallreduce_max(std::span<double> inout,
                                            std::source_location site) {
  return post_iallreduce(inout, /*use_max=*/true, site);
}

void FaultyComm::allreduce_sum(std::span<double> inout,
                               std::source_location site) {
  std::optional<AuxScope> fwd;
  if (aux_mode()) {
    fwd.emplace(inner_);
  } else {
    before_collective(inout);
  }
  inner_.allreduce_sum(inout, site);
  if (!aux_mode()) {
    ++calls_;
  }
}

void FaultyComm::allreduce_max(std::span<double> inout,
                               std::source_location site) {
  std::optional<AuxScope> fwd;
  if (aux_mode()) {
    fwd.emplace(inner_);
  } else {
    before_collective(inout);
  }
  inner_.allreduce_max(inout, site);
  if (!aux_mode()) {
    ++calls_;
  }
}

void FaultyComm::broadcast(std::span<double> buffer, int root,
                           std::source_location site) {
  std::optional<AuxScope> fwd;
  if (aux_mode()) {
    fwd.emplace(inner_);
  } else {
    // Only the root's buffer is input data; corrupting a non-root buffer
    // would be overwritten by the broadcast itself.
    before_collective(inner_.rank() == root ? buffer : std::span<double>{});
  }
  inner_.broadcast(buffer, root, site);
  if (!aux_mode()) {
    ++calls_;
  }
}

void FaultyComm::allgather(std::span<const double> input,
                           std::span<double> output,
                           std::source_location site) {
  std::optional<AuxScope> fwd;
  if (aux_mode()) {
    fwd.emplace(inner_);
  } else {
    // Input is immutable; only delay / transient / abort kinds can fire.
    before_collective({});
  }
  inner_.allgather(input, output, site);
  if (!aux_mode()) {
    ++calls_;
  }
}

void FaultyComm::barrier(std::source_location site) {
  std::optional<AuxScope> fwd;
  if (aux_mode()) {
    fwd.emplace(inner_);
  } else {
    before_collective({});
  }
  inner_.barrier(site);
  if (!aux_mode()) {
    ++calls_;
  }
}

const dist::CommStats& FaultyComm::stats() const {
  merged_ = inner_.stats();
  merged_.faults_injected += injected_;
  return merged_;
}

}  // namespace rcf::fault
