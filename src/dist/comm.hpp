// MPI-like communicator abstraction.
//
// The paper's implementation uses MPI 2.1 (MPI_Allreduce in stage C of
// Fig. 1).  MPI is not available in this build environment, so this module
// substitutes it with an interface plus two backends:
//
//  * SeqComm    -- a single-rank world; collectives are identities.
//  * ThreadComm -- P ranks as std::threads in one process with real
//                  rendezvous collectives (see thread_comm.hpp).  Exercises
//                  the genuine SPMD code path: partitioned data, partial
//                  Gram sums, allreduce agreement.
//
// Timing for large P comes from the alpha-beta-gamma cost model in
// src/model (see DESIGN.md "Substitutions"); the communicator interface
// reports operation statistics so the model can be validated against the
// actual number of collective calls.
#pragma once

#include <cstdint>
#include <memory>
#include <source_location>
#include <span>
#include <string>

namespace rcf::dist {

namespace detail {

/// Completion state of one nonblocking collective.  Backends and decorators
/// subclass this; user code only ever sees it through CommHandle.
///
/// Contract: wait() blocks until the collective completes, rethrows its
/// failure, and is idempotent (later waits return immediately, rethrowing
/// the same failure).  test() is a non-blocking completion probe; errors
/// surface only at wait().  The payload data is only guaranteed to be in
/// the caller's buffer after a successful wait().
class PendingOp {
 public:
  virtual ~PendingOp() = default;
  PendingOp() = default;
  PendingOp(const PendingOp&) = delete;
  PendingOp& operator=(const PendingOp&) = delete;

  virtual void wait() = 0;
  [[nodiscard]] virtual bool test() = 0;
  [[nodiscard]] virtual std::size_t words() const = 0;
};

/// An op that completed inside the post call (the blocking degradation and
/// every aux-mode post).  wait() is a no-op; the payload is already reduced
/// in place.
class CompletedOp final : public PendingOp {
 public:
  explicit CompletedOp(std::size_t words) : words_(words) {}
  void wait() override {}
  [[nodiscard]] bool test() override { return true; }
  [[nodiscard]] std::size_t words() const override { return words_; }

 private:
  std::size_t words_;
};

}  // namespace detail

/// Move-only handle to an in-flight nonblocking collective (the analogue of
/// MPI_Request).  Obtained from Communicator::iallreduce_*; completed by
/// wait() -- either on the handle or through Communicator::wait().  A
/// default-constructed or moved-from handle is inert: wait() is a no-op and
/// test() reports complete.  Dropping a handle without waiting abandons the
/// result (the collective still executes so the SPMD schedule stays
/// symmetric) -- the caller's buffer is only updated by a successful wait().
/// Handles must not outlive the communicator that issued them.
class CommHandle {
 public:
  CommHandle() = default;
  explicit CommHandle(std::shared_ptr<detail::PendingOp> op)
      : op_(std::move(op)) {}
  CommHandle(CommHandle&&) = default;
  CommHandle& operator=(CommHandle&&) = default;
  CommHandle(const CommHandle&) = delete;
  CommHandle& operator=(const CommHandle&) = delete;

  [[nodiscard]] bool valid() const { return op_ != nullptr; }
  [[nodiscard]] std::size_t words() const {
    return op_ != nullptr ? op_->words() : 0;
  }
  /// Blocks until complete; rethrows the collective's failure.  Idempotent.
  void wait() {
    if (op_ != nullptr) {
      op_->wait();
    }
  }
  /// Non-blocking completion probe (true for inert handles).  Failures are
  /// reported by wait(), never here.
  [[nodiscard]] bool test() { return op_ == nullptr || op_->test(); }

  /// Backend/decorator access to the underlying op (for handle wrapping --
  /// a decorator composes by returning a new handle whose op delegates to
  /// this one).  Not part of the user-facing API.
  [[nodiscard]] const std::shared_ptr<detail::PendingOp>& op() const {
    return op_;
  }

 private:
  std::shared_ptr<detail::PendingOp> op_;
};

/// Counts of collective operations performed through a communicator.
/// `allreduce_words` is the total payload (in doubles) summed over calls
/// (sum- and max-allreduce together); `allreduce_calls` counts only
/// sum-allreduces, with max-allreduces split into `allreduce_max_calls`
/// (the cost model charges the two identically, but the engine schedule
/// only predicts the sum-allreduce count, so validation needs them
/// separate).  `max_payload_words` is the high-water single-call payload.
struct CommStats {
  std::uint64_t allreduce_calls = 0;      ///< sum-allreduce count
  std::uint64_t allreduce_max_calls = 0;  ///< max-allreduce count
  std::uint64_t allreduce_words = 0;
  std::uint64_t broadcast_calls = 0;
  std::uint64_t broadcast_words = 0;
  std::uint64_t allgather_calls = 0;
  std::uint64_t allgather_words = 0;
  std::uint64_t barrier_calls = 0;
  /// Largest payload (doubles) of any single collective call.
  std::uint64_t max_payload_words = 0;
  /// Collective attempts repeated after a TransientCommFailure (counted by
  /// the dist::RetryingComm decorator; see dist/retry.hpp).
  std::uint64_t retries = 0;
  /// Faults fired into this endpoint by the chaos layer (counted by
  /// fault::FaultyComm; 0 outside injected runs).
  std::uint64_t faults_injected = 0;
  /// Payload words of nonblocking collectives that had already completed
  /// when first waited on -- i.e. reduction wall time fully hidden behind
  /// the caller's compute.  Always <= allreduce_words; the ratio is the
  /// measured overlap efficiency the cost ledger reports.
  std::uint64_t overlapped_words = 0;

  CommStats& operator+=(const CommStats& o) {
    allreduce_calls += o.allreduce_calls;
    allreduce_max_calls += o.allreduce_max_calls;
    allreduce_words += o.allreduce_words;
    broadcast_calls += o.broadcast_calls;
    broadcast_words += o.broadcast_words;
    allgather_calls += o.allgather_calls;
    allgather_words += o.allgather_words;
    barrier_calls += o.barrier_calls;
    retries += o.retries;
    faults_injected += o.faults_injected;
    overlapped_words += o.overlapped_words;
    max_payload_words = max_payload_words > o.max_payload_words
                            ? max_payload_words
                            : o.max_payload_words;
    return *this;
  }
};

/// Adds `stats` totals to the global obs::MetricsRegistry under
/// "comm.<backend>.*" counters/gauges (called by ThreadGroup::run after a
/// traced run; callable from benches for SeqComm too).
void publish_comm_stats(const CommStats& stats, const std::string& backend);

/// Abstract SPMD communicator (subset of MPI semantics used by the paper).
class Communicator {
 public:
  virtual ~Communicator() = default;

  /// While an AuxScope is alive, collectives through this communicator are
  /// *auxiliary*: they still synchronize and combine data, but skip the
  /// CommStats accounting, emit their spans under "aux_collective" /
  /// "aux_wait" instead of "allreduce" / "allreduce_wait", and do not feed
  /// the shared latency histograms.  Used by obs::aggregate so end-of-solve
  /// metric aggregation does not perturb the very counters and span counts
  /// it reports (the "allreduce" span count must keep matching the solver
  /// schedule; see tests/test_obs_trace.cpp).
  class AuxScope {
   public:
    explicit AuxScope(Communicator& comm) : comm_(comm), prev_(comm.aux_) {
      comm_.aux_ = true;
    }
    AuxScope(const AuxScope&) = delete;
    AuxScope& operator=(const AuxScope&) = delete;
    ~AuxScope() { comm_.aux_ = prev_; }

   private:
    Communicator& comm_;
    bool prev_;
  };

  /// True while an AuxScope on this communicator is alive.
  [[nodiscard]] bool aux_mode() const { return aux_; }

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  // Every collective takes a defaulted std::source_location so the
  // contract checker (src/check) can name the *solver* call site in its
  // diagnostics.  Overrides repeat the default: default arguments resolve
  // against the static type, so calls through a concrete backend reference
  // still capture the caller's location.  Backends ignore the site when
  // checking is disabled.

  /// In-place sum-allreduce over all ranks (MPI_Allreduce, MPI_SUM).
  virtual void allreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) = 0;

  /// In-place max-allreduce.
  virtual void allreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) = 0;

  /// Broadcast from `root` to all ranks.
  virtual void broadcast(
      std::span<double> buffer, int root,
      std::source_location site = std::source_location::current()) = 0;

  /// Gathers each rank's `input` into `output` ordered by rank;
  /// output.size() must equal size() * input.size().
  virtual void allgather(
      std::span<const double> input, std::span<double> output,
      std::source_location site = std::source_location::current()) = 0;

  /// Synchronization point for all ranks.
  virtual void barrier(
      std::source_location site = std::source_location::current()) = 0;

  // Nonblocking collectives (MPI_Iallreduce analogue).  The returned
  // handle completes the operation: `inout` must stay alive and untouched
  // until wait() returns (backends snapshot the payload at post, so the
  // *contents* at post time are what gets reduced; the result lands in
  // `inout` at the first successful wait()).  Posts are collective: every
  // rank must post the same sequence of operations, and every posted
  // operation must eventually complete on every rank (wait it, or issue a
  // later blocking collective, which quiesces the queue).  The default
  // implementation degrades to the blocking call and returns an
  // already-complete handle, so backends gain the API for free and
  // override it only to actually overlap.

  /// Nonblocking in-place sum-allreduce.
  virtual CommHandle iallreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current());

  /// Nonblocking in-place max-allreduce.
  virtual CommHandle iallreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current());

  /// Convenience forms of handle.wait() / handle.test().
  void wait(CommHandle& handle) { handle.wait(); }
  [[nodiscard]] bool test(CommHandle& handle) { return handle.test(); }

  /// Statistics accumulated by this rank's endpoint.
  [[nodiscard]] virtual const CommStats& stats() const = 0;

  [[nodiscard]] virtual std::string backend_name() const = 0;

  /// Scalar allreduce helpers.
  double allreduce_sum_scalar(
      double value, std::source_location site = std::source_location::current());
  double allreduce_max_scalar(
      double value, std::source_location site = std::source_location::current());

 private:
  bool aux_ = false;  ///< set by AuxScope; each rank endpoint has its own.
};

/// Single-rank communicator: all collectives are local no-ops (but still
/// counted, so sequential runs produce the same statistics a 1-rank
/// distributed run would).
class SeqComm final : public Communicator {
 public:
  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int size() const override { return 1; }
  void allreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void allreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void broadcast(
      std::span<double> buffer, int root,
      std::source_location site = std::source_location::current()) override;
  void allgather(
      std::span<const double> input, std::span<double> output,
      std::source_location site = std::source_location::current()) override;
  void barrier(
      std::source_location site = std::source_location::current()) override;
  CommHandle iallreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  CommHandle iallreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  [[nodiscard]] const CommStats& stats() const override { return stats_; }
  [[nodiscard]] std::string backend_name() const override { return "seq"; }

 private:
  CommStats stats_;
};

}  // namespace rcf::dist
