#include "dist/comm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcf::dist {

double Communicator::allreduce_sum_scalar(double value) {
  allreduce_sum({&value, 1});
  return value;
}

double Communicator::allreduce_max_scalar(double value) {
  allreduce_max({&value, 1});
  return value;
}

void SeqComm::allreduce_sum(std::span<double> inout) {
  ++stats_.allreduce_calls;
  stats_.allreduce_words += inout.size();
}

void SeqComm::allreduce_max(std::span<double> inout) {
  ++stats_.allreduce_calls;
  stats_.allreduce_words += inout.size();
}

void SeqComm::broadcast(std::span<double> buffer, int root) {
  RCF_CHECK_MSG(root == 0, "SeqComm: root must be 0");
  ++stats_.broadcast_calls;
  stats_.broadcast_words += buffer.size();
}

void SeqComm::allgather(std::span<const double> input,
                        std::span<double> output) {
  RCF_CHECK_MSG(output.size() == input.size(),
                "SeqComm::allgather: output must equal input for 1 rank");
  std::copy(input.begin(), input.end(), output.begin());
  ++stats_.allgather_calls;
  stats_.allgather_words += input.size();
}

void SeqComm::barrier() { ++stats_.barrier_calls; }

}  // namespace rcf::dist
