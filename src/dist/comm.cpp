#include "dist/comm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::dist {

namespace {

/// Latency histograms shared by all communicator endpoints (created on
/// first touch, live for the process lifetime -- MetricsRegistry::reset
/// zeroes them without invalidating these references).
obs::Histogram& allreduce_latency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("allreduce_latency_us");
  return h;
}

using detail::CompletedOp;

/// SeqComm's nonblocking op: a 1-rank reduction is an identity, so the op
/// is born complete.  The first wait() credits the payload as overlapped --
/// on one rank *all* reduction time is trivially hidden, which keeps the
/// seq/dist overlap accounting consistent (overlap efficiency 1.0).
class SeqOp final : public detail::PendingOp {
 public:
  SeqOp(CommStats* stats, std::size_t words) : stats_(stats), words_(words) {}
  void wait() override {
    if (stats_ != nullptr) {
      obs::TraceScope span("allreduce_wait");
      stats_->overlapped_words += words_;
      stats_ = nullptr;
    }
  }
  [[nodiscard]] bool test() override { return true; }
  [[nodiscard]] std::size_t words() const override { return words_; }

 private:
  CommStats* stats_;  ///< null once the first wait has credited overlap
  std::size_t words_;
};

}  // namespace

void publish_comm_stats(const CommStats& stats, const std::string& backend) {
  auto& registry = obs::MetricsRegistry::global();
  const std::string prefix = "comm." + backend + ".";
  registry.counter(prefix + "allreduce_calls").add(stats.allreduce_calls);
  registry.counter(prefix + "allreduce_max_calls")
      .add(stats.allreduce_max_calls);
  registry.counter(prefix + "allreduce_words").add(stats.allreduce_words);
  registry.counter(prefix + "broadcast_calls").add(stats.broadcast_calls);
  registry.counter(prefix + "broadcast_words").add(stats.broadcast_words);
  registry.counter(prefix + "allgather_calls").add(stats.allgather_calls);
  registry.counter(prefix + "allgather_words").add(stats.allgather_words);
  registry.counter(prefix + "barrier_calls").add(stats.barrier_calls);
  registry.counter(prefix + "retries").add(stats.retries);
  registry.counter(prefix + "faults_injected").add(stats.faults_injected);
  registry.counter(prefix + "overlapped_words").add(stats.overlapped_words);
  auto& high_water = registry.gauge(prefix + "max_payload_words");
  if (static_cast<double>(stats.max_payload_words) > high_water.value()) {
    high_water.set(static_cast<double>(stats.max_payload_words));
  }
}

CommHandle Communicator::iallreduce_sum(std::span<double> inout,
                                        std::source_location site) {
  allreduce_sum(inout, site);
  return CommHandle(std::make_shared<CompletedOp>(inout.size()));
}

CommHandle Communicator::iallreduce_max(std::span<double> inout,
                                        std::source_location site) {
  allreduce_max(inout, site);
  return CommHandle(std::make_shared<CompletedOp>(inout.size()));
}

double Communicator::allreduce_sum_scalar(double value,
                                           std::source_location site) {
  allreduce_sum({&value, 1}, site);
  return value;
}

double Communicator::allreduce_max_scalar(double value,
                                           std::source_location site) {
  allreduce_max({&value, 1}, site);
  return value;
}

void SeqComm::allreduce_sum(std::span<double> inout,
                            std::source_location) {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce",
                       static_cast<double>(inout.size()),
                       aux_mode() ? nullptr : &allreduce_latency());
  if (aux_mode()) {
    return;
  }
  ++stats_.allreduce_calls;
  stats_.allreduce_words += inout.size();
  stats_.max_payload_words = std::max<std::uint64_t>(stats_.max_payload_words,
                                                     inout.size());
}

void SeqComm::allreduce_max(std::span<double> inout,
                            std::source_location) {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce",
                       static_cast<double>(inout.size()),
                       aux_mode() ? nullptr : &allreduce_latency());
  if (aux_mode()) {
    return;
  }
  ++stats_.allreduce_max_calls;
  stats_.allreduce_words += inout.size();
  stats_.max_payload_words = std::max<std::uint64_t>(stats_.max_payload_words,
                                                     inout.size());
}

void SeqComm::broadcast(std::span<double> buffer, int root,
                        std::source_location) {
  RCF_CHECK_MSG(root == 0, "SeqComm: root must be 0");
  obs::TraceScope span(aux_mode() ? "aux_collective" : "broadcast",
                       static_cast<double>(buffer.size()));
  if (aux_mode()) {
    return;
  }
  ++stats_.broadcast_calls;
  stats_.broadcast_words += buffer.size();
  stats_.max_payload_words = std::max<std::uint64_t>(stats_.max_payload_words,
                                                     buffer.size());
}

void SeqComm::allgather(std::span<const double> input,
                        std::span<double> output, std::source_location) {
  RCF_CHECK_MSG(output.size() == input.size(),
                "SeqComm::allgather: output must equal input for 1 rank");
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allgather",
                       static_cast<double>(input.size()));
  std::copy(input.begin(), input.end(), output.begin());
  if (aux_mode()) {
    return;
  }
  ++stats_.allgather_calls;
  stats_.allgather_words += input.size();
  stats_.max_payload_words = std::max<std::uint64_t>(stats_.max_payload_words,
                                                     input.size());
}

CommHandle SeqComm::iallreduce_sum(std::span<double> inout,
                                   std::source_location) {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce_post",
                       static_cast<double>(inout.size()));
  if (aux_mode()) {
    return CommHandle(std::make_shared<CompletedOp>(inout.size()));
  }
  ++stats_.allreduce_calls;
  stats_.allreduce_words += inout.size();
  stats_.max_payload_words = std::max<std::uint64_t>(stats_.max_payload_words,
                                                     inout.size());
  return CommHandle(std::make_shared<SeqOp>(&stats_, inout.size()));
}

CommHandle SeqComm::iallreduce_max(std::span<double> inout,
                                   std::source_location) {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce_post",
                       static_cast<double>(inout.size()));
  if (aux_mode()) {
    return CommHandle(std::make_shared<CompletedOp>(inout.size()));
  }
  ++stats_.allreduce_max_calls;
  stats_.allreduce_words += inout.size();
  stats_.max_payload_words = std::max<std::uint64_t>(stats_.max_payload_words,
                                                     inout.size());
  return CommHandle(std::make_shared<SeqOp>(&stats_, inout.size()));
}

void SeqComm::barrier(std::source_location) {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "barrier_wait");
  if (!aux_mode()) {
    ++stats_.barrier_calls;
  }
}

}  // namespace rcf::dist
