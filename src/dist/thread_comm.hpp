// Threaded SPMD communicator: P ranks as std::threads in one process.
//
// Collectives are real rendezvous operations over shared memory with two
// selectable reduction schedules:
//
//  * kCentral           -- all ranks publish, rank 0 reduces in rank order,
//                          everyone copies the result.  Deterministic, works
//                          for any P.  (Default.)
//  * kRecursiveDoubling -- log2(P) pairwise exchange stages, the schedule of
//                          classic MPI_Allreduce; requires P a power of two.
//                          Deterministic because each pair computes
//                          lower + upper in the same order on both sides.
//
// Both schedules produce identical results for the same rank count, and are
// bitwise deterministic run-to-run, which the convergence experiments rely
// on.
//
// Failure semantics: every rendezvous is a check::TimedBarrier bounded by
// the stall timeout of check::CheckOptions (RCF_COMM_TIMEOUT_MS; 0 waits
// forever), so a rank that never shows up is diagnosed as CommTimeout
// naming the missing ranks instead of hanging the world, and a rank whose
// SPMD body throws poisons the rendezvous so the surviving ranks fail fast
// with CommPoisoned.  With checking enabled (RCF_CHECK=1 or an explicit
// CheckOptions), every collective additionally exchanges a
// check::Fingerprint across ranks *before data moves* and throws
// check::ContractViolation on any schedule divergence (see src/check).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "check/fingerprint.hpp"
#include "check/options.hpp"
#include "dist/comm.hpp"

namespace rcf::dist {

enum class AllreduceAlgo {
  kCentral,
  kRecursiveDoubling,
};

namespace detail {
struct GroupState;
struct AsyncQueue;
class ThreadPendingOp;
}  // namespace detail

/// One rank's endpoint into a thread group.  Created by ThreadGroup::run;
/// valid only inside the SPMD body.
class ThreadComm final : public Communicator {
 public:
  ThreadComm(int rank, int size, detail::GroupState* state);
  /// Joins this endpoint's async progress thread (if one was started),
  /// draining any still-pending nonblocking collectives first so the other
  /// ranks' schedules stay matched even when a handle was dropped.
  ~ThreadComm() override;

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }
  void allreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void allreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void broadcast(
      std::span<double> buffer, int root,
      std::source_location site = std::source_location::current()) override;
  void allgather(
      std::span<const double> input, std::span<double> output,
      std::source_location site = std::source_location::current()) override;
  void barrier(
      std::source_location site = std::source_location::current()) override;
  // Nonblocking allreduce: the post snapshots the payload, fingerprints and
  // counts it on the calling thread, then hands the reduction to this
  // endpoint's background progress thread (lazily started on first post;
  // it drives the same rendezvous schedule as the blocking path, so
  // in-flight ops of all ranks make progress without any rank waiting).
  // The result lands in `inout` at the first successful wait().  Blocking
  // collectives quiesce the queue first, so mixed programs keep every
  // rank's rendezvous generations aligned.
  CommHandle iallreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  CommHandle iallreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  [[nodiscard]] const CommStats& stats() const override { return stats_; }
  [[nodiscard]] std::string backend_name() const override { return "thread"; }

 private:
  friend class detail::ThreadPendingOp;

  void allreduce_central(std::span<double> inout, bool use_max,
                         std::int64_t seq, bool timed = true);
  void allreduce_recursive_doubling(std::span<double> inout, bool use_max,
                                    std::int64_t seq, bool timed = true);
  /// Shared body of the iallreduce posts.
  CommHandle post_iallreduce(std::span<double> inout, bool use_max,
                             const std::source_location& site);
  /// Blocks until this endpoint's async queue is empty.  Every blocking
  /// collective calls this first: the SPMD programs are identical across
  /// ranks, so each rank quiesces at the same point of the global
  /// collective order and the rendezvous barrier never sees two threads of
  /// one rank at different generations.
  void quiesce();
  /// Runs one queued op's reduction (progress-thread context; spans are
  /// emitted under this endpoint's rank).
  void execute_async(detail::ThreadPendingOp& op);
  /// Progress-thread main loop: pops ops FIFO and executes them; drains
  /// the queue before honoring shutdown.
  void async_worker();
  /// Data-movement rendezvous (stall-timeout bounded).
  void rendezvous(const char* what);
  /// Contract-checker hook: fingerprints + cross-checks the collective
  /// about to execute.  No-op (one null test) when checking is off.
  void contract_check(check::CollectiveKind kind, std::size_t words,
                      std::uint64_t extra, const std::source_location& site);
  /// Sequence number stamped on this collective's spans for the cross-rank
  /// timeline merge: the engine-space per-endpoint collective count (the
  /// same counting scheme check::SequenceTracker fingerprints), -1 in aux
  /// mode (aux spans are not aligned).
  [[nodiscard]] std::int64_t next_span_seq();

  int rank_;
  int size_;
  detail::GroupState* state_;
  CommStats stats_;
  check::SequenceTracker tracker_;
  std::int64_t collective_seq_ = 0;
  /// Async post queue + progress thread; null until the first post.
  /// shared_ptr because in-flight ops co-own the queue's synchronization
  /// primitives (a wait on a completed handle stays safe even mid-teardown).
  std::shared_ptr<detail::AsyncQueue> async_;
};

/// Owns the shared state of a thread world and launches SPMD bodies.
class ThreadGroup {
 public:
  /// `check` controls the rendezvous stall timeout and the per-collective
  /// contract checker; the default reflects RCF_CHECK / RCF_COMM_TIMEOUT_MS
  /// (see check::effective_options).
  explicit ThreadGroup(int size, AllreduceAlgo algo = AllreduceAlgo::kCentral,
                       check::CheckOptions check = check::effective_options());
  ~ThreadGroup();

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  [[nodiscard]] int size() const { return size_; }

  /// Runs `body(comm)` on `size` threads, one rank each, and joins them.
  /// If any rank throws, the first primary exception (by rank order,
  /// skipping secondary CommPoisoned failures) is rethrown after all ranks
  /// have been joined.  A throwing rank poisons the rendezvous, so the
  /// other ranks abort promptly instead of deadlocking.
  void run(const std::function<void(ThreadComm&)>& body);

  /// Stats summed over all ranks of the last run().
  [[nodiscard]] CommStats last_run_stats() const { return last_stats_; }

 private:
  int size_;
  AllreduceAlgo algo_;
  std::unique_ptr<detail::GroupState> state_;
  CommStats last_stats_;
};

}  // namespace rcf::dist
