// Threaded SPMD communicator: P ranks as std::threads in one process.
//
// Collectives are real rendezvous operations over shared memory with two
// selectable reduction schedules:
//
//  * kCentral           -- all ranks publish, rank 0 reduces in rank order,
//                          everyone copies the result.  Deterministic, works
//                          for any P.  (Default.)
//  * kRecursiveDoubling -- log2(P) pairwise exchange stages, the schedule of
//                          classic MPI_Allreduce; requires P a power of two.
//                          Deterministic because each pair computes
//                          lower + upper in the same order on both sides.
//
// Both schedules produce identical results for the same rank count, and are
// bitwise deterministic run-to-run, which the convergence experiments rely
// on.
#pragma once

#include <functional>
#include <memory>

#include "dist/comm.hpp"

namespace rcf::dist {

enum class AllreduceAlgo {
  kCentral,
  kRecursiveDoubling,
};

namespace detail {
struct GroupState;
}

/// One rank's endpoint into a thread group.  Created by ThreadGroup::run;
/// valid only inside the SPMD body.
class ThreadComm final : public Communicator {
 public:
  ThreadComm(int rank, int size, detail::GroupState* state);

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }
  void allreduce_sum(std::span<double> inout) override;
  void allreduce_max(std::span<double> inout) override;
  void broadcast(std::span<double> buffer, int root) override;
  void allgather(std::span<const double> input,
                 std::span<double> output) override;
  void barrier() override;
  [[nodiscard]] const CommStats& stats() const override { return stats_; }
  [[nodiscard]] std::string backend_name() const override { return "thread"; }

 private:
  void allreduce_central(std::span<double> inout, bool use_max);
  void allreduce_recursive_doubling(std::span<double> inout, bool use_max);

  int rank_;
  int size_;
  detail::GroupState* state_;
  CommStats stats_;
};

/// Owns the shared state of a thread world and launches SPMD bodies.
class ThreadGroup {
 public:
  explicit ThreadGroup(int size, AllreduceAlgo algo = AllreduceAlgo::kCentral);
  ~ThreadGroup();

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  [[nodiscard]] int size() const { return size_; }

  /// Runs `body(comm)` on `size` threads, one rank each, and joins them.
  /// If any rank throws, the first exception (by rank order) is rethrown
  /// after all ranks have been joined.
  void run(const std::function<void(ThreadComm&)>& body);

  /// Stats summed over all ranks of the last run().
  [[nodiscard]] CommStats last_run_stats() const { return last_stats_; }

 private:
  int size_;
  AllreduceAlgo algo_;
  std::unique_ptr<detail::GroupState> state_;
  CommStats last_stats_;
};

}  // namespace rcf::dist
