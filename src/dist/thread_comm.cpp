#include "dist/thread_comm.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::dist {

namespace {

// Shared latency histograms (same registry entries as SeqComm's; the
// references stay valid across MetricsRegistry::reset).
obs::Histogram& allreduce_latency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("allreduce_latency_us");
  return h;
}

// Per-rank rendezvous wait before the reduction proper: the direct
// measurement of barrier skew across ranks (a rank that arrives late shows
// up as short waits on itself and long waits on everyone else).
obs::Histogram& collective_wait() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("collective_wait_us");
  return h;
}

obs::Histogram& barrier_wait() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("barrier_wait_us");
  return h;
}

}  // namespace

namespace detail {

struct GroupState {
  explicit GroupState(int size, AllreduceAlgo algo_in)
      : world_size(size),
        algo(algo_in),
        rendezvous(size),
        publish(size, nullptr),
        publish_const(size, nullptr),
        publish_len(size, 0),
        work_a(size),
        work_b(size),
        exceptions(size) {}

  int world_size;
  AllreduceAlgo algo;
  std::barrier<> rendezvous;
  // Per-rank published buffer pointers for the collective in flight.
  std::vector<double*> publish;
  std::vector<const double*> publish_const;
  std::vector<std::size_t> publish_len;
  // Double-buffered per-rank workspaces for recursive doubling.
  std::vector<std::vector<double>> work_a;
  std::vector<std::vector<double>> work_b;
  // Central-reduce scratch (owned by rank 0 during the collective).
  std::vector<double> scratch;
  std::vector<std::exception_ptr> exceptions;
};

}  // namespace detail

using detail::GroupState;

ThreadComm::ThreadComm(int rank, int size, GroupState* state)
    : rank_(rank), size_(size), state_(state) {}

void ThreadComm::barrier() {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "barrier_wait", 0.0,
                       aux_mode() ? nullptr : &barrier_wait());
  if (!aux_mode()) {
    ++stats_.barrier_calls;
  }
  state_->rendezvous.arrive_and_wait();
}

void ThreadComm::allreduce_sum(std::span<double> inout) {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce",
                       static_cast<double>(inout.size()),
                       aux_mode() ? nullptr : &allreduce_latency());
  if (!aux_mode()) {
    ++stats_.allreduce_calls;
    stats_.allreduce_words += inout.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, inout.size());
  }
  if (state_->algo == AllreduceAlgo::kRecursiveDoubling &&
      (size_ & (size_ - 1)) == 0) {
    allreduce_recursive_doubling(inout, /*use_max=*/false);
  } else {
    allreduce_central(inout, /*use_max=*/false);
  }
}

void ThreadComm::allreduce_max(std::span<double> inout) {
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce",
                       static_cast<double>(inout.size()),
                       aux_mode() ? nullptr : &allreduce_latency());
  if (!aux_mode()) {
    ++stats_.allreduce_max_calls;
    stats_.allreduce_words += inout.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, inout.size());
  }
  if (state_->algo == AllreduceAlgo::kRecursiveDoubling &&
      (size_ & (size_ - 1)) == 0) {
    allreduce_recursive_doubling(inout, /*use_max=*/true);
  } else {
    allreduce_central(inout, /*use_max=*/true);
  }
}

void ThreadComm::allreduce_central(std::span<double> inout, bool use_max) {
  GroupState& st = *state_;
  st.publish[rank_] = inout.data();
  st.publish_len[rank_] = inout.size();
  {
    // Time waiting for the slowest rank to publish: the skew signal.
    obs::TraceScope wait(aux_mode() ? "aux_wait" : "allreduce_wait", 0.0,
                         aux_mode() ? nullptr : &collective_wait());
    st.rendezvous.arrive_and_wait();
  }
  if (rank_ == 0) {
    const std::size_t n = inout.size();
    for (int r = 1; r < size_; ++r) {
      RCF_CHECK_MSG(st.publish_len[r] == n,
                    "allreduce: ranks disagree on payload size");
    }
    st.scratch.assign(inout.begin(), inout.end());
    for (int r = 1; r < size_; ++r) {
      const double* src = st.publish[r];
      for (std::size_t i = 0; i < n; ++i) {
        if (use_max) {
          st.scratch[i] = std::max(st.scratch[i], src[i]);
        } else {
          st.scratch[i] += src[i];
        }
      }
    }
  }
  st.rendezvous.arrive_and_wait();
  std::copy(st.scratch.begin(), st.scratch.end(), inout.begin());
  st.rendezvous.arrive_and_wait();  // protect scratch until all have copied
}

void ThreadComm::allreduce_recursive_doubling(std::span<double> inout,
                                              bool use_max) {
  GroupState& st = *state_;
  const std::size_t n = inout.size();
  auto* cur = &st.work_a;
  auto* nxt = &st.work_b;
  (*cur)[rank_].assign(inout.begin(), inout.end());
  {
    obs::TraceScope wait(aux_mode() ? "aux_wait" : "allreduce_wait", 0.0,
                         aux_mode() ? nullptr : &collective_wait());
    st.rendezvous.arrive_and_wait();
  }
  for (int stride = 1; stride < size_; stride <<= 1) {
    const int partner = rank_ ^ stride;
    auto& mine = (*cur)[rank_];
    auto& theirs = (*cur)[partner];
    RCF_CHECK_MSG(theirs.size() == n, "recursive doubling: size mismatch");
    auto& out = (*nxt)[rank_];
    out.resize(n);
    // Combine in (lower, upper) order on both sides so the pair agrees
    // bitwise even for non-associative float addition.
    const auto& lo = rank_ < partner ? mine : theirs;
    const auto& hi = rank_ < partner ? theirs : mine;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = use_max ? std::max(lo[i], hi[i]) : lo[i] + hi[i];
    }
    st.rendezvous.arrive_and_wait();
    std::swap(cur, nxt);
  }
  std::copy((*cur)[rank_].begin(), (*cur)[rank_].end(), inout.begin());
  st.rendezvous.arrive_and_wait();
}

void ThreadComm::broadcast(std::span<double> buffer, int root) {
  RCF_CHECK_MSG(root >= 0 && root < size_, "broadcast: bad root");
  obs::TraceScope span(aux_mode() ? "aux_collective" : "broadcast",
                       static_cast<double>(buffer.size()));
  if (!aux_mode()) {
    ++stats_.broadcast_calls;
    stats_.broadcast_words += buffer.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, buffer.size());
  }
  GroupState& st = *state_;
  if (rank_ == root) {
    st.publish[root] = buffer.data();
    st.publish_len[root] = buffer.size();
  }
  st.rendezvous.arrive_and_wait();
  if (rank_ != root) {
    RCF_CHECK_MSG(st.publish_len[root] == buffer.size(),
                  "broadcast: payload size mismatch");
    std::copy(st.publish[root], st.publish[root] + buffer.size(),
              buffer.begin());
  }
  st.rendezvous.arrive_and_wait();
}

void ThreadComm::allgather(std::span<const double> input,
                           std::span<double> output) {
  RCF_CHECK_MSG(output.size() == input.size() * static_cast<std::size_t>(size_),
                "allgather: output size must be size() * input size");
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allgather",
                       static_cast<double>(input.size()));
  if (!aux_mode()) {
    ++stats_.allgather_calls;
    stats_.allgather_words += input.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, input.size());
  }
  GroupState& st = *state_;
  st.publish_const[rank_] = input.data();
  st.publish_len[rank_] = input.size();
  st.rendezvous.arrive_and_wait();
  const std::size_t n = input.size();
  for (int r = 0; r < size_; ++r) {
    RCF_CHECK_MSG(st.publish_len[r] == n, "allgather: ragged inputs");
    std::copy(st.publish_const[r], st.publish_const[r] + n,
              output.begin() + static_cast<std::ptrdiff_t>(r * n));
  }
  st.rendezvous.arrive_and_wait();
}

ThreadGroup::ThreadGroup(int size, AllreduceAlgo algo)
    : size_(size), algo_(algo) {
  RCF_CHECK_MSG(size >= 1, "ThreadGroup: size must be >= 1");
  state_ = std::make_unique<GroupState>(size, algo);
}

ThreadGroup::~ThreadGroup() = default;

void ThreadGroup::run(const std::function<void(ThreadComm&)>& body) {
  std::fill(state_->exceptions.begin(), state_->exceptions.end(), nullptr);
  last_stats_ = CommStats{};
  std::vector<CommStats> rank_stats(size_);
  std::vector<std::thread> threads;
  threads.reserve(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &rank_stats]() {
      // Attribute this thread's spans and log lines to its SPMD rank.
      obs::set_thread_rank(r);
      set_log_rank(r);
      ThreadComm comm(r, size_, state_.get());
      try {
        body(comm);
      } catch (...) {
        state_->exceptions[r] = std::current_exception();
        // Keep participating in barriers would deadlock anyway; the SPMD
        // contract is that a throwing body aborts the whole run.  We let
        // the other ranks deadlock-free by dropping this thread's barrier
        // participation only if the body throws outside a collective.
      }
      rank_stats[r] = comm.stats();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& s : rank_stats) {
    last_stats_ += s;
  }
  if (obs::TraceSession::global().enabled()) {
    publish_comm_stats(last_stats_, "thread");
  }
  for (int r = 0; r < size_; ++r) {
    if (state_->exceptions[r]) {
      std::rethrow_exception(state_->exceptions[r]);
    }
  }
}

}  // namespace rcf::dist
