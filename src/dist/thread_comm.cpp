#include "dist/thread_comm.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "check/contract.hpp"
#include "check/rendezvous.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::dist {

namespace {

// Shared latency histograms (same registry entries as SeqComm's; the
// references stay valid across MetricsRegistry::reset).
obs::Histogram& allreduce_latency() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("allreduce_latency_us");
  return h;
}

// Per-rank rendezvous wait before the reduction proper: the direct
// measurement of barrier skew across ranks (a rank that arrives late shows
// up as short waits on itself and long waits on everyone else).
obs::Histogram& collective_wait() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("collective_wait_us");
  return h;
}

obs::Histogram& barrier_wait() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("barrier_wait_us");
  return h;
}

// Post-publish wait for the reduction itself (rank 0's serial combine in
// the central schedule, the pairwise exchange stages in recursive
// doubling).  Splitting this from the publish wait separates "a rank
// arrived late" (collective_wait_us, straggler skew) from "the reduction
// serialized us" (reduce_wait_us, algorithm cost) -- the two components an
// async-collective backend would overlap differently.
obs::Histogram& reduce_wait() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("reduce_wait_us");
  return h;
}

std::size_t as_index(int value) { return static_cast<std::size_t>(value); }

}  // namespace

namespace detail {

struct GroupState {
  GroupState(int size, AllreduceAlgo algo_in, check::CheckOptions check_in)
      : world_size(size),
        algo(algo_in),
        check(check_in),
        rendezvous(size),
        publish(as_index(size), nullptr),
        publish_const(as_index(size), nullptr),
        publish_len(as_index(size), 0),
        work_a(as_index(size)),
        work_b(as_index(size)),
        exceptions(as_index(size)) {
    if (check.enabled) {
      board = std::make_unique<check::ContractBoard>(size, check);
    }
  }

  int world_size;
  AllreduceAlgo algo;
  check::CheckOptions check;
  /// Data-movement rendezvous, stall-timeout bounded and poisonable.
  check::TimedBarrier rendezvous;
  /// Pre-data fingerprint exchange; null when checking is disabled.
  std::unique_ptr<check::ContractBoard> board;
  // Per-rank published buffer pointers for the collective in flight.
  std::vector<double*> publish;
  std::vector<const double*> publish_const;
  std::vector<std::size_t> publish_len;
  // Double-buffered per-rank workspaces for recursive doubling.
  std::vector<std::vector<double>> work_a;
  std::vector<std::vector<double>> work_b;
  // Central-reduce scratch (owned by rank 0 during the collective).
  std::vector<double> scratch;
  std::vector<std::exception_ptr> exceptions;
};

/// One posted-but-not-yet-waited nonblocking collective of a ThreadComm
/// endpoint.  The op OWNS its payload: `buf` is a snapshot of the user span
/// taken at post time, the progress thread reduces into `buf`, and the
/// result is copied back to the user span only at the first successful
/// wait().  An exception unwinding the SPMD body therefore never races the
/// progress thread over engine-owned memory -- dropped handles only ever
/// touch op-owned storage.
class ThreadPendingOp final : public PendingOp {
 public:
  ThreadPendingOp(std::shared_ptr<AsyncQueue> queue, CommStats* stats,
                  std::span<double> user, bool max_op, std::int64_t seq_in)
      : queue_(std::move(queue)),
        stats_(stats),
        buf(user.begin(), user.end()),
        dst_(user.data()),
        use_max(max_op),
        seq(seq_in) {}

  void wait() override;
  [[nodiscard]] bool test() override;
  [[nodiscard]] std::size_t words() const override { return buf.size(); }

  std::shared_ptr<AsyncQueue> queue_;
  CommStats* stats_;  ///< overlap credit target; main-thread use only
  std::vector<double> buf;  ///< op-owned payload (reduced in place)
  double* dst_;             ///< user span, written at first wait
  bool use_max;
  std::int64_t seq;
  // Completion state, guarded by queue_->mu.
  bool done = false;
  bool consumed = false;  ///< first wait already copied back / credited
  std::exception_ptr error;
};

/// Per-endpoint async machinery: a FIFO of posted ops and the progress
/// thread that drains it.  The front op is popped only after it completes,
/// so `pending.empty()` means fully quiesced.
struct AsyncQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<ThreadPendingOp>> pending;
  bool stop = false;
  std::thread worker;
};

void ThreadPendingOp::wait() {
  std::unique_lock<std::mutex> lk(queue_->mu);
  const bool overlapped = done;
  if (!done) {
    // The pipeline's exposed communication time: the reduction was not
    // finished when the consumer asked for it.
    obs::TraceScope span("allreduce_wait", 0.0, &collective_wait(), seq);
    queue_->cv.wait(lk, [this] { return done; });
  }
  if (!consumed) {
    consumed = true;
    if (error == nullptr) {
      std::copy(buf.begin(), buf.end(), dst_);
      if (overlapped) {
        stats_->overlapped_words += buf.size();
      }
    }
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

bool ThreadPendingOp::test() {
  std::lock_guard<std::mutex> lk(queue_->mu);
  return done;
}

}  // namespace detail

using detail::AsyncQueue;
using detail::GroupState;
using detail::ThreadPendingOp;

ThreadComm::ThreadComm(int rank, int size, GroupState* state)
    : rank_(rank), size_(size), state_(state) {}

ThreadComm::~ThreadComm() {
  if (async_ == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(async_->mu);
    async_->stop = true;
  }
  async_->cv.notify_all();
  async_->worker.join();
}

void ThreadComm::rendezvous(const char* what) {
  state_->rendezvous.arrive_and_wait(rank_, state_->check.timeout_ms, what);
}

void ThreadComm::quiesce() {
  if (async_ == nullptr) {
    return;
  }
  std::unique_lock<std::mutex> lk(async_->mu);
  if (async_->pending.empty()) {
    return;
  }
  // Drain time shows up as plain wait: the caller issued a blocking
  // collective with reductions still in flight.
  obs::TraceScope span(aux_mode() ? "aux_wait" : "allreduce_wait");
  async_->cv.wait(lk, [this] { return async_->pending.empty(); });
}

void ThreadComm::async_worker() {
  // Attribute the progress thread's spans and log lines to its rank.
  obs::set_thread_rank(rank_);
  set_log_rank(rank_);
  std::unique_lock<std::mutex> lk(async_->mu);
  for (;;) {
    async_->cv.wait(lk,
                    [this] { return async_->stop || !async_->pending.empty(); });
    if (async_->pending.empty()) {
      if (async_->stop) {
        return;  // drained and told to stop
      }
      continue;
    }
    // Keep the op at the front while it runs: pending.empty() must mean
    // "no reduction in flight" for quiesce().
    std::shared_ptr<ThreadPendingOp> op = async_->pending.front();
    lk.unlock();
    std::exception_ptr err = nullptr;
    try {
      execute_async(*op);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    op->error = err;
    op->done = true;
    async_->pending.pop_front();
    async_->cv.notify_all();
  }
}

void ThreadComm::execute_async(ThreadPendingOp& op) {
  // The reduction span keeps the blocking path's name so the
  // "allreduce spans == allreduce calls" invariant holds for async runs
  // too; the inner publish/reduce waits are untimed (timed=false) because
  // progress-thread idle time is overlap, not caller blocking.
  obs::TraceScope span("allreduce", static_cast<double>(op.buf.size()),
                       &allreduce_latency(), op.seq);
  const std::span<double> payload(op.buf.data(), op.buf.size());
  if (state_->algo == AllreduceAlgo::kRecursiveDoubling &&
      (size_ & (size_ - 1)) == 0) {
    allreduce_recursive_doubling(payload, op.use_max, op.seq, /*timed=*/false);
  } else {
    allreduce_central(payload, op.use_max, op.seq, /*timed=*/false);
  }
}

CommHandle ThreadComm::post_iallreduce(std::span<double> inout, bool use_max,
                                       const std::source_location& site) {
  if (aux_mode()) {
    // Aux traffic never overlaps: degrade to the blocking path (which
    // emits the aux span names and skips stats).
    if (use_max) {
      allreduce_max(inout, site);
    } else {
      allreduce_sum(inout, site);
    }
    return CommHandle(std::make_shared<detail::CompletedOp>(inout.size()));
  }
  const std::int64_t seq = next_span_seq();
  obs::TraceScope span("allreduce_post", static_cast<double>(inout.size()),
                       nullptr, seq);
  contract_check(use_max ? check::CollectiveKind::kIallreduceMax
                         : check::CollectiveKind::kIallreduceSum,
                 inout.size(), 0, site);
  if (use_max) {
    ++stats_.allreduce_max_calls;
  } else {
    ++stats_.allreduce_calls;
  }
  stats_.allreduce_words += inout.size();
  stats_.max_payload_words =
      std::max<std::uint64_t>(stats_.max_payload_words, inout.size());
  if (async_ == nullptr) {
    async_ = std::make_shared<AsyncQueue>();
    async_->worker = std::thread([this] { async_worker(); });
  }
  auto op = std::make_shared<ThreadPendingOp>(async_, &stats_, inout, use_max,
                                              seq);
  {
    std::lock_guard<std::mutex> lk(async_->mu);
    async_->pending.push_back(op);
  }
  async_->cv.notify_all();
  return CommHandle(std::move(op));
}

CommHandle ThreadComm::iallreduce_sum(std::span<double> inout,
                                      std::source_location site) {
  return post_iallreduce(inout, /*use_max=*/false, site);
}

CommHandle ThreadComm::iallreduce_max(std::span<double> inout,
                                      std::source_location site) {
  return post_iallreduce(inout, /*use_max=*/true, site);
}

void ThreadComm::contract_check(check::CollectiveKind kind, std::size_t words,
                                std::uint64_t extra,
                                const std::source_location& site) {
  if (state_->board == nullptr) {
    return;
  }
  const check::Fingerprint fp =
      tracker_.next(kind, words, extra, aux_mode(), site);
  state_->board->verify(rank_, fp);
}

std::int64_t ThreadComm::next_span_seq() {
  return aux_mode() ? -1 : collective_seq_++;
}

void ThreadComm::barrier(std::source_location site) {
  quiesce();
  const std::int64_t seq = next_span_seq();
  obs::TraceScope span(aux_mode() ? "aux_collective" : "barrier_wait", 0.0,
                       aux_mode() ? nullptr : &barrier_wait(), seq);
  contract_check(check::CollectiveKind::kBarrier, 0, 0, site);
  if (!aux_mode()) {
    ++stats_.barrier_calls;
  }
  rendezvous("barrier");
}

void ThreadComm::allreduce_sum(std::span<double> inout,
                               std::source_location site) {
  quiesce();
  const std::int64_t seq = next_span_seq();
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce",
                       static_cast<double>(inout.size()),
                       aux_mode() ? nullptr : &allreduce_latency(), seq);
  contract_check(check::CollectiveKind::kAllreduceSum, inout.size(), 0, site);
  if (!aux_mode()) {
    ++stats_.allreduce_calls;
    stats_.allreduce_words += inout.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, inout.size());
  }
  if (state_->algo == AllreduceAlgo::kRecursiveDoubling &&
      (size_ & (size_ - 1)) == 0) {
    allreduce_recursive_doubling(inout, /*use_max=*/false, seq);
  } else {
    allreduce_central(inout, /*use_max=*/false, seq);
  }
}

void ThreadComm::allreduce_max(std::span<double> inout,
                               std::source_location site) {
  quiesce();
  const std::int64_t seq = next_span_seq();
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allreduce",
                       static_cast<double>(inout.size()),
                       aux_mode() ? nullptr : &allreduce_latency(), seq);
  contract_check(check::CollectiveKind::kAllreduceMax, inout.size(), 0, site);
  if (!aux_mode()) {
    ++stats_.allreduce_max_calls;
    stats_.allreduce_words += inout.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, inout.size());
  }
  if (state_->algo == AllreduceAlgo::kRecursiveDoubling &&
      (size_ & (size_ - 1)) == 0) {
    allreduce_recursive_doubling(inout, /*use_max=*/true, seq);
  } else {
    allreduce_central(inout, /*use_max=*/true, seq);
  }
}

void ThreadComm::allreduce_central(std::span<double> inout, bool use_max,
                                   std::int64_t seq, bool timed) {
  GroupState& st = *state_;
  st.publish[as_index(rank_)] = inout.data();
  st.publish_len[as_index(rank_)] = inout.size();
  {
    // Time waiting for the slowest rank to publish: the skew signal.
    // Untimed on the async progress thread -- its idle time is overlap,
    // not caller blocking, and must not pollute the skew histograms.
    std::optional<obs::TraceScope> wait;
    if (timed) {
      wait.emplace(aux_mode() ? "aux_wait" : "allreduce_wait", 0.0,
                   aux_mode() ? nullptr : &collective_wait(), seq);
    }
    rendezvous("allreduce:publish");
  }
  if (rank_ == 0) {
    const std::size_t n = inout.size();
    for (int r = 1; r < size_; ++r) {
      RCF_CHECK_MSG(st.publish_len[as_index(r)] == n,
                    "allreduce: ranks disagree on payload size");
    }
    st.scratch.assign(inout.begin(), inout.end());
    for (int r = 1; r < size_; ++r) {
      const double* src = st.publish[as_index(r)];
      for (std::size_t i = 0; i < n; ++i) {
        if (use_max) {
          st.scratch[i] = std::max(st.scratch[i], src[i]);
        } else {
          st.scratch[i] += src[i];
        }
      }
    }
  }
  {
    // Time blocked on the reduction itself (rank 0's serial combine).
    std::optional<obs::TraceScope> wait;
    if (timed) {
      wait.emplace(aux_mode() ? "aux_wait" : "reduce_wait", 0.0,
                   aux_mode() ? nullptr : &reduce_wait(), seq);
    }
    rendezvous("allreduce:reduce");
  }
  std::copy(st.scratch.begin(), st.scratch.end(), inout.begin());
  rendezvous("allreduce:release");  // protect scratch until all have copied
}

void ThreadComm::allreduce_recursive_doubling(std::span<double> inout,
                                              bool use_max, std::int64_t seq,
                                              bool timed) {
  GroupState& st = *state_;
  const std::size_t n = inout.size();
  auto* cur = &st.work_a;
  auto* nxt = &st.work_b;
  (*cur)[as_index(rank_)].assign(inout.begin(), inout.end());
  {
    std::optional<obs::TraceScope> wait;
    if (timed) {
      wait.emplace(aux_mode() ? "aux_wait" : "allreduce_wait", 0.0,
                   aux_mode() ? nullptr : &collective_wait(), seq);
    }
    rendezvous("allreduce:publish");
  }
  for (int stride = 1; stride < size_; stride <<= 1) {
    const int partner = rank_ ^ stride;
    auto& mine = (*cur)[as_index(rank_)];
    auto& theirs = (*cur)[as_index(partner)];
    RCF_CHECK_MSG(theirs.size() == n, "recursive doubling: size mismatch");
    auto& out = (*nxt)[as_index(rank_)];
    out.resize(n);
    // Combine in (lower, upper) order on both sides so the pair agrees
    // bitwise even for non-associative float addition.
    const auto& lo = rank_ < partner ? mine : theirs;
    const auto& hi = rank_ < partner ? theirs : mine;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = use_max ? std::max(lo[i], hi[i]) : lo[i] + hi[i];
    }
    {
      // Time blocked on the partner's pairwise stage.
      std::optional<obs::TraceScope> wait;
      if (timed) {
        wait.emplace(aux_mode() ? "aux_wait" : "reduce_wait", 0.0,
                     aux_mode() ? nullptr : &reduce_wait(), seq);
      }
      rendezvous("allreduce:exchange");
    }
    std::swap(cur, nxt);
  }
  std::copy((*cur)[as_index(rank_)].begin(), (*cur)[as_index(rank_)].end(),
            inout.begin());
  rendezvous("allreduce:release");
}

void ThreadComm::broadcast(std::span<double> buffer, int root,
                           std::source_location site) {
  quiesce();
  RCF_CHECK_MSG(root >= 0 && root < size_, "broadcast: bad root");
  const std::int64_t seq = next_span_seq();
  obs::TraceScope span(aux_mode() ? "aux_collective" : "broadcast",
                       static_cast<double>(buffer.size()), nullptr, seq);
  contract_check(check::CollectiveKind::kBroadcast, buffer.size(),
                 static_cast<std::uint64_t>(root), site);
  if (!aux_mode()) {
    ++stats_.broadcast_calls;
    stats_.broadcast_words += buffer.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, buffer.size());
  }
  GroupState& st = *state_;
  if (rank_ == root) {
    st.publish[as_index(root)] = buffer.data();
    st.publish_len[as_index(root)] = buffer.size();
  }
  rendezvous("broadcast:publish");
  if (rank_ != root) {
    RCF_CHECK_MSG(st.publish_len[as_index(root)] == buffer.size(),
                  "broadcast: payload size mismatch");
    std::copy(st.publish[as_index(root)],
              st.publish[as_index(root)] + buffer.size(), buffer.begin());
  }
  rendezvous("broadcast:release");
}

void ThreadComm::allgather(std::span<const double> input,
                           std::span<double> output,
                           std::source_location site) {
  quiesce();
  RCF_CHECK_MSG(output.size() == input.size() * as_index(size_),
                "allgather: output size must be size() * input size");
  const std::int64_t seq = next_span_seq();
  obs::TraceScope span(aux_mode() ? "aux_collective" : "allgather",
                       static_cast<double>(input.size()), nullptr, seq);
  contract_check(check::CollectiveKind::kAllgather, input.size(), 0, site);
  if (!aux_mode()) {
    ++stats_.allgather_calls;
    stats_.allgather_words += input.size();
    stats_.max_payload_words = std::max<std::uint64_t>(
        stats_.max_payload_words, input.size());
  }
  GroupState& st = *state_;
  st.publish_const[as_index(rank_)] = input.data();
  st.publish_len[as_index(rank_)] = input.size();
  rendezvous("allgather:publish");
  const std::size_t n = input.size();
  for (int r = 0; r < size_; ++r) {
    RCF_CHECK_MSG(st.publish_len[as_index(r)] == n, "allgather: ragged inputs");
    std::copy(st.publish_const[as_index(r)], st.publish_const[as_index(r)] + n,
              output.begin() + static_cast<std::ptrdiff_t>(as_index(r) * n));
  }
  rendezvous("allgather:release");
}

ThreadGroup::ThreadGroup(int size, AllreduceAlgo algo,
                         check::CheckOptions check)
    : size_(size), algo_(algo) {
  RCF_CHECK_MSG(size >= 1, "ThreadGroup: size must be >= 1");
  state_ = std::make_unique<GroupState>(size, algo, check);
}

ThreadGroup::~ThreadGroup() = default;

void ThreadGroup::run(const std::function<void(ThreadComm&)>& body) {
  std::fill(state_->exceptions.begin(), state_->exceptions.end(), nullptr);
  state_->rendezvous.reset();
  if (state_->board != nullptr) {
    state_->board->reset();
  }
  last_stats_ = CommStats{};
  std::vector<CommStats> rank_stats(as_index(size_));
  std::vector<std::thread> threads;
  threads.reserve(as_index(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &rank_stats]() {
      // Attribute this thread's spans and log lines to its SPMD rank.
      obs::set_thread_rank(r);
      set_log_rank(r);
      ThreadComm comm(r, size_, state_.get());
      try {
        body(comm);
      } catch (const std::exception& e) {
        state_->exceptions[as_index(r)] = std::current_exception();
        // Wake every rank blocked in a rendezvous: the SPMD contract is
        // that a throwing body aborts the whole run, and poisoning turns
        // what used to be a deadlock into prompt CommPoisoned failures on
        // the surviving ranks.
        state_->rendezvous.poison("rank " + std::to_string(r) +
                                  " aborted: " + e.what());
        if (state_->board != nullptr) {
          state_->board->poison("rank " + std::to_string(r) +
                                " aborted: " + e.what());
        }
      } catch (...) {
        state_->exceptions[as_index(r)] = std::current_exception();
        state_->rendezvous.poison("rank " + std::to_string(r) +
                                  " aborted with a non-standard exception");
        if (state_->board != nullptr) {
          state_->board->poison("rank " + std::to_string(r) + " aborted");
        }
      }
      rank_stats[as_index(r)] = comm.stats();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& s : rank_stats) {
    last_stats_ += s;
  }
  if (obs::TraceSession::global().enabled()) {
    publish_comm_stats(last_stats_, "thread");
  }
  // Rethrow the first *primary* failure by rank order: CommPoisoned is a
  // secondary symptom (the rank was woken because another rank failed), so
  // it is reported only when no rank holds a primary exception.
  std::exception_ptr fallback = nullptr;
  for (int r = 0; r < size_; ++r) {
    const std::exception_ptr err = state_->exceptions[as_index(r)];
    if (err == nullptr) {
      continue;
    }
    try {
      std::rethrow_exception(err);
    } catch (const check::CommPoisoned&) {
      if (fallback == nullptr) {
        fallback = err;
      }
    } catch (...) {
      std::rethrow_exception(err);
    }
  }
  if (fallback != nullptr) {
    std::rethrow_exception(fallback);
  }
}

}  // namespace rcf::dist
