#include "dist/retry.hpp"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"

namespace rcf::dist {

RetryingComm::RetryingComm(Communicator& inner, RetryPolicy policy)
    : inner_(inner),
      policy_(policy),
      backoff_counter_(
          obs::MetricsRegistry::global().counter("comm.backoff_us")) {
  RCF_CHECK_MSG(policy_.max_retries >= 0, "retry: max_retries must be >= 0");
  RCF_CHECK_MSG(policy_.backoff_us >= 0, "retry: backoff_us must be >= 0");
  RCF_CHECK_MSG(policy_.multiplier >= 1.0, "retry: multiplier must be >= 1");
}

template <typename Fn>
void RetryingComm::with_retries(Fn&& attempt) {
  std::optional<AuxScope> fwd;
  if (aux_mode()) {
    fwd.emplace(inner_);
  }
  double backoff = static_cast<double>(policy_.backoff_us);
  for (int tries = 0;; ++tries) {
    try {
      attempt();
      return;
    } catch (const TransientCommFailure&) {
      if (tries >= policy_.max_retries) {
        throw;
      }
      ++retries_;
      const auto sleep_us = static_cast<std::uint64_t>(backoff);
      if (sleep_us > 0) {
        backoff_counter_.add(sleep_us);
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
      backoff *= policy_.multiplier;
    }
  }
}

void RetryingComm::allreduce_sum(std::span<double> inout,
                                 std::source_location site) {
  with_retries([&] { inner_.allreduce_sum(inout, site); });
}

void RetryingComm::allreduce_max(std::span<double> inout,
                                 std::source_location site) {
  with_retries([&] { inner_.allreduce_max(inout, site); });
}

void RetryingComm::broadcast(std::span<double> buffer, int root,
                             std::source_location site) {
  with_retries([&] { inner_.broadcast(buffer, root, site); });
}

void RetryingComm::allgather(std::span<const double> input,
                             std::span<double> output,
                             std::source_location site) {
  with_retries([&] { inner_.allgather(input, output, site); });
}

void RetryingComm::barrier(std::source_location site) {
  with_retries([&] { inner_.barrier(site); });
}

const CommStats& RetryingComm::stats() const {
  merged_ = inner_.stats();
  merged_.retries += retries_;
  return merged_;
}

}  // namespace rcf::dist
