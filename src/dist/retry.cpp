#include "dist/retry.hpp"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace rcf::dist {

RetryingComm::RetryingComm(Communicator& inner, RetryPolicy policy)
    : inner_(inner),
      policy_(policy),
      backoff_counter_(
          obs::MetricsRegistry::global().counter("comm.backoff_us")) {
  RCF_CHECK_MSG(policy_.max_retries >= 0, "retry: max_retries must be >= 0");
  RCF_CHECK_MSG(policy_.backoff_us >= 0, "retry: backoff_us must be >= 0");
  RCF_CHECK_MSG(policy_.multiplier >= 1.0, "retry: multiplier must be >= 1");
}

void RetryingComm::note_retry(double& backoff) {
  ++retries_;
  obs::telemetry_publish(obs::TelemetryKind::kRetry, "retry",
                         static_cast<double>(retries_), backoff);
  const auto sleep_us = static_cast<std::uint64_t>(backoff);
  if (sleep_us > 0) {
    backoff_counter_.add(sleep_us);
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  backoff *= policy_.multiplier;
}

template <typename Fn>
decltype(auto) RetryingComm::with_retries(Fn&& attempt) {
  std::optional<AuxScope> fwd;
  if (aux_mode()) {
    fwd.emplace(inner_);
  }
  double backoff = static_cast<double>(policy_.backoff_us);
  for (int tries = 0;; ++tries) {
    try {
      return attempt();
    } catch (const TransientCommFailure&) {
      if (tries >= policy_.max_retries) {
        throw;
      }
      note_retry(backoff);
    }
  }
}

/// Handle wrapper that absorbs TransientCommFailure thrown at completion
/// time (wait-stage fault injection): each retry re-enters the inner wait,
/// which is idempotent on success and re-evaluates the fault plan on
/// failure.  Other failures pass through untouched.
class RetryWaitOp final : public detail::PendingOp {
 public:
  RetryWaitOp(RetryingComm* owner, std::shared_ptr<detail::PendingOp> inner)
      : owner_(owner), inner_(std::move(inner)) {}

  void wait() override {
    double backoff = static_cast<double>(owner_->policy_.backoff_us);
    for (int tries = 0;; ++tries) {
      try {
        inner_->wait();
        return;
      } catch (const TransientCommFailure&) {
        if (tries >= owner_->policy_.max_retries) {
          throw;
        }
        owner_->note_retry(backoff);
      }
    }
  }
  [[nodiscard]] bool test() override { return inner_->test(); }
  [[nodiscard]] std::size_t words() const override { return inner_->words(); }

 private:
  RetryingComm* owner_;
  std::shared_ptr<detail::PendingOp> inner_;
};

CommHandle RetryingComm::iallreduce_sum(std::span<double> inout,
                                        std::source_location site) {
  CommHandle inner =
      with_retries([&] { return inner_.iallreduce_sum(inout, site); });
  if (!inner.valid()) {
    return inner;
  }
  return CommHandle(std::make_shared<RetryWaitOp>(this, inner.op()));
}

CommHandle RetryingComm::iallreduce_max(std::span<double> inout,
                                        std::source_location site) {
  CommHandle inner =
      with_retries([&] { return inner_.iallreduce_max(inout, site); });
  if (!inner.valid()) {
    return inner;
  }
  return CommHandle(std::make_shared<RetryWaitOp>(this, inner.op()));
}

void RetryingComm::allreduce_sum(std::span<double> inout,
                                 std::source_location site) {
  with_retries([&] { inner_.allreduce_sum(inout, site); });
}

void RetryingComm::allreduce_max(std::span<double> inout,
                                 std::source_location site) {
  with_retries([&] { inner_.allreduce_max(inout, site); });
}

void RetryingComm::broadcast(std::span<double> buffer, int root,
                             std::source_location site) {
  with_retries([&] { inner_.broadcast(buffer, root, site); });
}

void RetryingComm::allgather(std::span<const double> input,
                             std::span<double> output,
                             std::source_location site) {
  with_retries([&] { inner_.allgather(input, output, site); });
}

void RetryingComm::barrier(std::source_location site) {
  with_retries([&] { inner_.barrier(site); });
}

const CommStats& RetryingComm::stats() const {
  merged_ = inner_.stats();
  merged_.retries += retries_;
  return merged_;
}

}  // namespace rcf::dist
