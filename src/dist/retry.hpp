// Transient-failure retry decorator for dist::Communicator.
//
// A TransientCommFailure models a collective attempt that failed before
// any data moved (flaky transport, injected chaos fault): the attempt is
// safe to repeat because no rendezvous was entered.  RetryingComm absorbs
// such failures with bounded exponential backoff; the attempt that finally
// reaches the inner communicator is the only one the rendezvous (and the
// PR 4 contract checker) ever observes, so a retried collective is
// indistinguishable from a clean one downstream -- no fingerprint or epoch
// divergence, no double-counted CommStats.
//
// Retry accounting surfaces as CommStats::retries per rank and the global
// "comm.backoff_us" obs counter (total microseconds slept in backoff).
#pragma once

#include "common/error.hpp"
#include "dist/comm.hpp"

namespace rcf::obs {
class Counter;
}

namespace rcf::dist {

/// A collective attempt failed before entering the rendezvous; retrying
/// the call is safe and side-effect free.
class TransientCommFailure : public Error {
 public:
  explicit TransientCommFailure(const std::string& what) : Error(what) {}
};

/// Bounded exponential backoff for TransientCommFailure.
struct RetryPolicy {
  int max_retries = 3;      ///< additional attempts after the first.
  int backoff_us = 100;     ///< sleep before the first retry.
  double multiplier = 2.0;  ///< backoff growth per retry.
};

/// Decorator that retries collectives on TransientCommFailure.  The inner
/// communicator must outlive this object.  Exhausting the policy rethrows
/// the last failure to the caller (the engine turns it into a structured
/// SolveResult::failure).
class RetryingComm final : public Communicator {
 public:
  explicit RetryingComm(Communicator& inner, RetryPolicy policy = {});

  [[nodiscard]] int rank() const override { return inner_.rank(); }
  [[nodiscard]] int size() const override { return inner_.size(); }
  void allreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void allreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void broadcast(
      std::span<double> buffer, int root,
      std::source_location site = std::source_location::current()) override;
  void allgather(
      std::span<const double> input, std::span<double> output,
      std::source_location site = std::source_location::current()) override;
  void barrier(
      std::source_location site = std::source_location::current()) override;
  // Nonblocking posts are retried like any collective (a transient at post
  // fires before the inner post, so repeating it is safe); the returned
  // handle additionally retries *at wait*, absorbing transients injected
  // on completion (fault::FaultStage::kWait) with the same backoff policy.
  CommHandle iallreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  CommHandle iallreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  /// Inner stats with this decorator's retry count folded in.
  [[nodiscard]] const CommStats& stats() const override;
  [[nodiscard]] std::string backend_name() const override {
    return inner_.backend_name() + "+retry";
  }

  /// Collectives that needed at least one retry resolve here; total
  /// attempts beyond the first across all calls.
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

 private:
  friend class RetryWaitOp;

  /// Runs `attempt` under the policy and returns its result; forwards aux
  /// mode to the inner communicator for the duration.
  template <typename Fn>
  decltype(auto) with_retries(Fn&& attempt);
  /// One retry bookkeeping step: counts it, sleeps the current backoff,
  /// and grows it.  Shared by the call path and the wait path.
  void note_retry(double& backoff);

  Communicator& inner_;
  RetryPolicy policy_;
  std::uint64_t retries_ = 0;
  mutable CommStats merged_;
  obs::Counter& backoff_counter_;  ///< "comm.backoff_us"
};

}  // namespace rcf::dist
