#include <algorithm>
#include <cmath>

#include "la/backend.hpp"
#include "la/blas.hpp"
#include "la/simd.hpp"

namespace rcf::la {

namespace {
inline void check_same_size(std::span<const double> a,
                            std::span<const double> b, const char* op) {
  if (a.size() != b.size()) {
    throw DimensionMismatch(std::string(op) + ": size mismatch");
  }
}
}  // namespace

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_same_size(x, y, "axpy");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void waxpby(double alpha, std::span<const double> x, double beta,
            std::span<const double> y, std::span<double> w) {
  check_same_size(x, y, "waxpby");
  check_same_size(x, w, "waxpby");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = alpha * x[i] + beta * y[i];
  }
}

void scal(double alpha, std::span<double> x) {
  for (auto& v : x) {
    v *= alpha;
  }
}

void copy(std::span<const double> src, std::span<double> dst) {
  check_same_size(src, dst, "copy");
  std::copy(src.begin(), src.end(), dst.begin());
}

double dot(std::span<const double> x, std::span<const double> y) {
  check_same_size(x, y, "dot");
  // SIMD backend: fixed-order lane grouping, a pure function of the length
  // (see la/simd.hpp) -- dot is sequential (never pool-dispatched), so the
  // backends differ only by that regrouping.
  if (active_backend() == Backend::kSimd) {
    return simd::dot4(x.data(), y.data(), x.size());
  }
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i] * y[i];
  }
  return acc;
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double asum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) {
    acc += std::abs(v);
  }
  return acc;
}

double amax(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  check_same_size(x, y, "max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, std::abs(x[i] - y[i]));
  }
  return m;
}

void set_zero(std::span<double> x) { std::fill(x.begin(), x.end(), 0.0); }

}  // namespace rcf::la
