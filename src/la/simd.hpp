// Portable SIMD primitives for the vectorized kernel backend.
//
// Built on the GCC/Clang vector-extension type (`vector_size`), which
// compiles to the widest available vector ISA at -O2/-O3 without
// intrinsics headers or target-specific code; a scalar struct fallback
// keeps other compilers building (bit-for-bit it IS the fixed-order
// contract, just slower).
//
// Determinism rules every user of this header must follow (DESIGN.md
// "Kernel backends"):
//
//  * Loads are position-based (memcpy), never alignment-steered: which
//    elements land in which lane depends only on the loop index, so the
//    lane assignment -- and therefore the rounding -- of one output
//    element is a pure function of the reduction length.
//  * Lane partials are combined ONLY through hsum(), whose association
//    ((l0+l1) + (l2+l3)) is fixed.  Combining lanes in any other order, or
//    summing per-thread partials, reassociates with runtime state and
//    breaks the bitwise width-invariance contract (rcf-analyze's
//    nondeterministic-reduction check flags width-dependent combines).
//  * Tail elements (n % kLanes) are folded sequentially after the lane
//    combine, again a pure function of n.
#pragma once

#include <cstddef>
#include <cstring>

namespace rcf::la::simd {

/// Lane count of the double vector.  Fixed at 4 (256-bit) independent of
/// the target ISA: the *numerical grouping* must not change across
/// machines, or replay files and golden fixtures would be host-dependent.
/// On 128-bit targets the compiler splits each op in two; on AVX-512 it
/// simply does not use the upper half.
inline constexpr std::size_t kLanes = 4;

#if defined(__GNUC__) || defined(__clang__)

using V4 = double __attribute__((vector_size(kLanes * sizeof(double))));

/// Unaligned position-based load of v[0..3].
inline V4 load4(const double* p) {
  V4 v;
  std::memcpy(&v, p, sizeof(V4));
  return v;
}

inline void store4(double* p, V4 v) { std::memcpy(p, &v, sizeof(V4)); }

inline V4 broadcast(double x) { return V4{x, x, x, x}; }

inline V4 zero4() { return V4{0.0, 0.0, 0.0, 0.0}; }

/// THE fixed-order lane combine: (l0 + l1) + (l2 + l3).
inline double hsum(V4 v) { return (v[0] + v[1]) + (v[2] + v[3]); }

#else  // scalar fallback: same grouping, same hsum association

struct V4 {
  double lane[kLanes];

  double operator[](std::size_t i) const { return lane[i]; }

  friend V4 operator+(V4 a, V4 b) {
    return {{a.lane[0] + b.lane[0], a.lane[1] + b.lane[1],
             a.lane[2] + b.lane[2], a.lane[3] + b.lane[3]}};
  }
  friend V4 operator*(V4 a, V4 b) {
    return {{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1],
             a.lane[2] * b.lane[2], a.lane[3] * b.lane[3]}};
  }
  V4& operator+=(V4 o) {
    for (std::size_t i = 0; i < kLanes; ++i) {
      lane[i] += o.lane[i];
    }
    return *this;
  }
};

inline V4 load4(const double* p) {
  V4 v;
  std::memcpy(v.lane, p, sizeof v.lane);
  return v;
}

inline void store4(double* p, V4 v) { std::memcpy(p, v.lane, sizeof v.lane); }

inline V4 broadcast(double x) { return {{x, x, x, x}}; }

inline V4 zero4() { return {{0.0, 0.0, 0.0, 0.0}}; }

inline double hsum(V4 v) {
  return (v.lane[0] + v.lane[1]) + (v.lane[2] + v.lane[3]);
}

#endif

/// Fixed-order dot product of x[0..n) and y[0..n): one 4-lane accumulator
/// over the n/4 main body, hsum, then the sequential tail.  The grouping is
/// a pure function of n.  This is the reduction primitive for the SIMD
/// gemv / spmv / dot paths; syrk and gemm use wider register tiles built
/// from the same pattern.
inline double dot4(const double* x, const double* y, std::size_t n) {
  V4 acc = zero4();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc += load4(x + i) * load4(y + i);
  }
  double sum = hsum(acc);
  for (; i < n; ++i) {
    sum += x[i] * y[i];
  }
  return sum;
}

/// y[0..n) += a * x[0..n), vectorized elementwise (no reduction: the
/// per-element operation order is exactly the scalar loop's).
inline void axpy4(double a, const double* x, double* y, std::size_t n) {
  const V4 va = broadcast(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    store4(y + i, load4(y + i) + va * load4(x + i));
  }
  for (; i < n; ++i) {
    y[i] += a * x[i];
  }
}

}  // namespace rcf::la::simd
