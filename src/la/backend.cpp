#include "la/backend.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace rcf::la {

namespace {

// kUnset sentinel keeps the env read lazy: the first active_backend() call
// resolves RCF_BACKEND exactly once, after which the atomic holds a real
// Backend value.  Kernels pay one relaxed load per call.
constexpr int kUnset = -1;
std::atomic<int> g_backend{kUnset};

}  // namespace

const char* backend_name(Backend b) {
  return b == Backend::kSimd ? "simd" : "scalar";
}

Backend parse_backend(std::string_view name) {
  if (name == "scalar") {
    return Backend::kScalar;
  }
  if (name == "simd") {
    return Backend::kSimd;
  }
  throw InvalidArgument("unknown kernel backend '" + std::string(name) +
                        "' (expected scalar or simd)");
}

Backend backend_from_env(Backend fallback) {
  const char* env = std::getenv("RCF_BACKEND");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  return parse_backend(env);
}

Backend install_backend_from(std::string_view cli_value) {
  const Backend b = cli_value.empty() ? backend_from_env(Backend::kScalar)
                                      : parse_backend(cli_value);
  set_backend(b);
  return b;
}

Backend active_backend() {
  int cur = g_backend.load(std::memory_order_relaxed);
  if (cur == kUnset) {
    const Backend resolved = backend_from_env(Backend::kScalar);
    // First resolver wins; a concurrent set_backend() is kept instead.
    int expected = kUnset;
    g_backend.compare_exchange_strong(expected, static_cast<int>(resolved),
                                      std::memory_order_relaxed);
    cur = g_backend.load(std::memory_order_relaxed);
  }
  return static_cast<Backend>(cur);
}

void set_backend(Backend b) {
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

ScopedBackend::ScopedBackend(Backend b) : previous_(active_backend()) {
  set_backend(b);
}

ScopedBackend::~ScopedBackend() { set_backend(previous_); }

}  // namespace rcf::la
