#include <algorithm>

#include "check/partition.hpp"
#include "exec/pool.hpp"
#include "la/blas.hpp"

namespace rcf::la {

// Parallelization note: like blas2.cpp, every kernel partitions its
// *output* rows (C rows for gemm/syrk, lower-triangle rows for the
// symmetrize) and computes each element with the sequential loop body, so
// results are bit-identical at any pool width.

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw DimensionMismatch("gemm: shape mismatch");
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: streams B and C rows with unit stride.  The beta
  // scaling is applied per C-row block by the owning task.
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      auto crow = c.row(i);
      if (beta == 0.0) {
        std::fill(crow.begin(), crow.end(), 0.0);
      } else if (beta != 1.0) {
        scal(beta, crow);
      }
      const auto arow = a.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = alpha * arow[p];
        if (aip == 0.0) {
          continue;
        }
        const auto brow = b.row(p);
        for (std::size_t j = 0; j < brow.size(); ++j) {
          crow[j] += aip * brow[j];
        }
      }
    }
  };
  exec::Pool* pool = exec::usable_pool(2 * static_cast<std::uint64_t>(m) * n * k);
  if (pool == nullptr) {
    row_block(0, {0, m});
    return;
  }
  const int width = pool->width();
  pool->run("la.gemm", [&](int t) {
    const exec::Range range = exec::block_range(m, width, t);
    if (!range.empty()) {
      row_block(t, range);
    }
  });
}

void syrk(double alpha, const Matrix& a, double beta, Matrix& c) {
  if (c.rows() != c.cols() || c.rows() != a.rows()) {
    throw DimensionMismatch("syrk: shape mismatch");
  }
  const std::size_t n = a.rows(), k = a.cols();
  // Upper triangle only, then mirror: halves the flops, matching the cost
  // model's d^2*mbar count for the Gram update.  Row i carries n - i inner
  // products, so tasks take triangle-balanced row ranges.  The beta
  // scaling covers the full rows (the mirror rewrites the lower triangle).
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      auto ci = c.row(i);
      if (beta == 0.0) {
        std::fill(ci.begin(), ci.end(), 0.0);
      } else if (beta != 1.0) {
        scal(beta, ci);
      }
      const auto ai = a.row(i);
      for (std::size_t j = i; j < n; ++j) {
        const auto aj = a.row(j);
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          acc += ai[p] * aj[p];
        }
        ci[j] += alpha * acc;
      }
    }
  };
  exec::Pool* pool = exec::usable_pool(static_cast<std::uint64_t>(n) * n * k);
  if (pool == nullptr) {
    row_block(0, {0, n});
  } else {
    const int width = pool->width();
    if (check::partition_audit_due()) {
      check::audit_partition(
          "la.syrk", n, static_cast<std::size_t>(width),
          [&](std::size_t part) {
            const exec::Range r =
                exec::triangle_range(n, width, static_cast<int>(part));
            return std::pair<std::size_t, std::size_t>{r.begin, r.end};
          });
    }
    pool->run("la.syrk", [&](int t) {
      const exec::Range range = exec::triangle_range(n, width, t);
      if (!range.empty()) {
        row_block(t, range);
      }
    });
  }
  symmetrize_from_upper(c);
}

void symmetrize_from_upper(Matrix& c) {
  if (c.rows() != c.cols()) {
    throw DimensionMismatch("symmetrize_from_upper: matrix must be square");
  }
  const std::size_t n = c.rows();
  // Task t owns the lower-triangle rows in its range: writes to row j only,
  // reads from the (already final) upper triangle.
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t j = range.begin; j < range.end; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        c(j, i) = c(i, j);
      }
    }
  };
  exec::Pool* pool = exec::usable_pool(static_cast<std::uint64_t>(n) * n / 2);
  if (pool == nullptr) {
    row_block(0, {0, n});
    return;
  }
  const int width = pool->width();
  if (check::partition_audit_due()) {
    // Audit parts in reverse so claimed ranges match the dispatch below;
    // the auditor only cares that the union of [n-rev.end, n-rev.begin)
    // tiles [0, n) exactly.
    check::audit_partition(
        "la.symmetrize", n, static_cast<std::size_t>(width),
        [&](std::size_t part) {
          const exec::Range rev = exec::triangle_range(
              n, width, width - 1 - static_cast<int>(part));
          return std::pair<std::size_t, std::size_t>{n - rev.end,
                                                     n - rev.begin};
        });
  }
  pool->run("la.symmetrize", [&](int t) {
    // Lower-triangle row j carries j copies: mirror-image triangle balance
    // (row 0 is empty), so reuse triangle_range on the reversed index.
    const exec::Range rev = exec::triangle_range(n, width, width - 1 - t);
    const exec::Range range{n - rev.end, n - rev.begin};
    if (!range.empty()) {
      row_block(t, range);
    }
  });
}

}  // namespace rcf::la
