#include <algorithm>
#include <cstring>
#include <vector>

#include "check/partition.hpp"
#include "exec/pool.hpp"
#include "la/backend.hpp"
#include "la/blas.hpp"
#include "la/simd.hpp"

namespace rcf::la {

// Parallelization note: like blas2.cpp, every kernel partitions its
// *output* rows (C rows for gemm/syrk, lower-triangle rows for the
// symmetrize) and computes each element with the sequential loop body, so
// results are bit-identical at any pool width.
//
// Backend note: the SIMD bodies keep the same output-row partitioning and
// give every C element a term grouping that is a pure function of its own
// (i, j, k) position -- never of the pool width -- so each backend is
// bitwise width-invariant on its own (DESIGN.md "Kernel backends").

namespace {

/// Column width of the gemm register tile: two V4 accumulators per C row.
constexpr std::size_t kGemmTileCols = 2 * simd::kLanes;

}  // namespace

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw DimensionMismatch("gemm: shape mismatch");
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: streams B and C rows with unit stride.  The beta
  // scaling is applied per C-row block by the owning task.
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      auto crow = c.row(i);
      if (beta == 0.0) {
        std::fill(crow.begin(), crow.end(), 0.0);
      } else if (beta != 1.0) {
        scal(beta, crow);
      }
      const auto arow = a.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = alpha * arow[p];
        if (aip == 0.0) {
          continue;
        }
        const auto brow = b.row(p);
        for (std::size_t j = 0; j < brow.size(); ++j) {
          crow[j] += aip * brow[j];
        }
      }
    }
  };
  // SIMD body: register/cache-blocked micro-kernel.  The owning task packs
  // each k x 8 panel of B contiguously (aligned pool scratch), then walks
  // its C rows four at a time holding a 4x8 accumulator tile in registers
  // -- the pack amortizes B traffic over the whole row range and the tile
  // breaks the update's dependency chains.  Every C element still
  // accumulates its k terms in ascending p order (one multiply-add per p),
  // so the grouping is a pure function of the element position; widths only
  // change which rows a task owns.  alpha is applied once per element at
  // store time; unlike the scalar body there is no aip == 0 short-circuit,
  // so non-finite payloads can propagate differently (0 * inf), which the
  // differential suite documents and excludes from cross-backend gates.
  const auto simd_block = [&](int t, exec::Range range, exec::Pool* pool) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      auto crow = c.row(i);
      if (beta == 0.0) {
        std::fill(crow.begin(), crow.end(), 0.0);
      } else if (beta != 1.0) {
        scal(beta, crow);
      }
    }
    std::vector<double> local;
    std::span<double> panel;
    if (pool != nullptr) {
      panel = pool->aligned_scratch(t, k * kGemmTileCols);
    } else {
      local.resize(k * kGemmTileCols);
      panel = {local.data(), local.size()};
    }
    const simd::V4 valpha = simd::broadcast(alpha);
    const auto flush8 = [&](double* cp, simd::V4 lo, simd::V4 hi) {
      simd::store4(cp, simd::load4(cp) + valpha * lo);
      simd::store4(cp + simd::kLanes,
                   simd::load4(cp + simd::kLanes) + valpha * hi);
    };
    std::size_t j0 = 0;
    for (; j0 + kGemmTileCols <= n; j0 += kGemmTileCols) {
      for (std::size_t p = 0; p < k; ++p) {
        std::memcpy(panel.data() + p * kGemmTileCols, b.row(p).data() + j0,
                    kGemmTileCols * sizeof(double));
      }
      std::size_t i = range.begin;
      for (; i + 4 <= range.end; i += 4) {
        const double* a0 = a.row(i).data();
        const double* a1 = a.row(i + 1).data();
        const double* a2 = a.row(i + 2).data();
        const double* a3 = a.row(i + 3).data();
        simd::V4 t00 = simd::zero4(), t01 = simd::zero4();
        simd::V4 t10 = simd::zero4(), t11 = simd::zero4();
        simd::V4 t20 = simd::zero4(), t21 = simd::zero4();
        simd::V4 t30 = simd::zero4(), t31 = simd::zero4();
        for (std::size_t p = 0; p < k; ++p) {
          const simd::V4 b0 = simd::load4(panel.data() + p * kGemmTileCols);
          const simd::V4 b1 =
              simd::load4(panel.data() + p * kGemmTileCols + simd::kLanes);
          const simd::V4 va0 = simd::broadcast(a0[p]);
          t00 += va0 * b0;
          t01 += va0 * b1;
          const simd::V4 va1 = simd::broadcast(a1[p]);
          t10 += va1 * b0;
          t11 += va1 * b1;
          const simd::V4 va2 = simd::broadcast(a2[p]);
          t20 += va2 * b0;
          t21 += va2 * b1;
          const simd::V4 va3 = simd::broadcast(a3[p]);
          t30 += va3 * b0;
          t31 += va3 * b1;
        }
        flush8(c.row(i).data() + j0, t00, t01);
        flush8(c.row(i + 1).data() + j0, t10, t11);
        flush8(c.row(i + 2).data() + j0, t20, t21);
        flush8(c.row(i + 3).data() + j0, t30, t31);
      }
      for (; i < range.end; ++i) {  // row tail: 1x8 tile, same element order
        const double* a0 = a.row(i).data();
        simd::V4 t00 = simd::zero4(), t01 = simd::zero4();
        for (std::size_t p = 0; p < k; ++p) {
          const simd::V4 va0 = simd::broadcast(a0[p]);
          t00 += va0 * simd::load4(panel.data() + p * kGemmTileCols);
          t01 += va0 * simd::load4(panel.data() + p * kGemmTileCols +
                                   simd::kLanes);
        }
        flush8(c.row(i).data() + j0, t00, t01);
      }
    }
    // Column tail (n % 8): per-element ascending-p chain, the same grouping
    // as one tile lane, so an element's rounding does not depend on whether
    // n put it in a full panel.
    for (std::size_t i = range.begin; i < range.end && j0 < n; ++i) {
      const auto arow = a.row(i);
      auto crow = c.row(i);
      for (std::size_t j = j0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          acc += arow[p] * b(p, j);
        }
        crow[j] += alpha * acc;
      }
    }
  };
  const bool use_simd = active_backend() == Backend::kSimd;
  exec::Pool* pool = exec::usable_pool(2 * static_cast<std::uint64_t>(m) * n * k);
  if (pool == nullptr) {
    if (use_simd) {
      simd_block(0, {0, m}, nullptr);
    } else {
      row_block(0, {0, m});
    }
    return;
  }
  const int width = pool->width();
  pool->run("la.gemm", [&](int t) {
    const exec::Range range = exec::block_range(m, width, t);
    if (!range.empty()) {
      if (use_simd) {
        simd_block(t, range, pool);
      } else {
        row_block(t, range);
      }
    }
  });
}

void syrk(double alpha, const Matrix& a, double beta, Matrix& c) {
  if (c.rows() != c.cols() || c.rows() != a.rows()) {
    throw DimensionMismatch("syrk: shape mismatch");
  }
  const std::size_t n = a.rows(), k = a.cols();
  // Upper triangle only, then mirror: halves the flops, matching the cost
  // model's d^2*mbar count for the Gram update.  Row i carries n - i inner
  // products, so tasks take triangle-balanced row ranges.  The beta
  // scaling covers the full rows (the mirror rewrites the lower triangle).
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      auto ci = c.row(i);
      if (beta == 0.0) {
        std::fill(ci.begin(), ci.end(), 0.0);
      } else if (beta != 1.0) {
        scal(beta, ci);
      }
      const auto ai = a.row(i);
      for (std::size_t j = i; j < n; ++j) {
        const auto aj = a.row(j);
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          acc += ai[p] * aj[p];
        }
        ci[j] += alpha * acc;
      }
    }
  };
  // SIMD body: j-blocked by 4 so four inner products share each load of
  // a.row(i) and run as independent V4 chains (breaking the scalar loop's
  // single dependency chain is where the speedup comes from).  Each element
  // (i, j) keeps the dot4 grouping -- one V4 accumulator stepped in
  // ascending p, hsum, sequential tail -- whether it sits in a 4-block or
  // the j tail, so its rounding depends only on k.
  const auto simd_row_block = [&](int, exec::Range range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      auto ci = c.row(i);
      if (beta == 0.0) {
        std::fill(ci.begin(), ci.end(), 0.0);
      } else if (beta != 1.0) {
        scal(beta, ci);
      }
      const double* ap = a.row(i).data();
      std::size_t j = i;
      for (; j + 4 <= n; j += 4) {
        const double* r0 = a.row(j).data();
        const double* r1 = a.row(j + 1).data();
        const double* r2 = a.row(j + 2).data();
        const double* r3 = a.row(j + 3).data();
        simd::V4 acc0 = simd::zero4(), acc1 = simd::zero4();
        simd::V4 acc2 = simd::zero4(), acc3 = simd::zero4();
        std::size_t p = 0;
        for (; p + simd::kLanes <= k; p += simd::kLanes) {
          const simd::V4 va = simd::load4(ap + p);
          acc0 += va * simd::load4(r0 + p);
          acc1 += va * simd::load4(r1 + p);
          acc2 += va * simd::load4(r2 + p);
          acc3 += va * simd::load4(r3 + p);
        }
        double s0 = simd::hsum(acc0);
        double s1 = simd::hsum(acc1);
        double s2 = simd::hsum(acc2);
        double s3 = simd::hsum(acc3);
        for (; p < k; ++p) {
          s0 += ap[p] * r0[p];
          s1 += ap[p] * r1[p];
          s2 += ap[p] * r2[p];
          s3 += ap[p] * r3[p];
        }
        ci[j] += alpha * s0;
        ci[j + 1] += alpha * s1;
        ci[j + 2] += alpha * s2;
        ci[j + 3] += alpha * s3;
      }
      for (; j < n; ++j) {
        ci[j] += alpha * simd::dot4(ap, a.row(j).data(), k);
      }
    }
  };
  const bool use_simd = active_backend() == Backend::kSimd;
  const auto dispatch_block = [&](int t, exec::Range range) {
    if (use_simd) {
      simd_row_block(t, range);
    } else {
      row_block(t, range);
    }
  };
  exec::Pool* pool = exec::usable_pool(static_cast<std::uint64_t>(n) * n * k);
  if (pool == nullptr) {
    dispatch_block(0, {0, n});
  } else {
    const int width = pool->width();
    if (check::partition_audit_due()) {
      check::audit_partition(
          "la.syrk", n, static_cast<std::size_t>(width),
          [&](std::size_t part) {
            const exec::Range r =
                exec::triangle_range(n, width, static_cast<int>(part));
            return std::pair<std::size_t, std::size_t>{r.begin, r.end};
          });
    }
    pool->run("la.syrk", [&](int t) {
      const exec::Range range = exec::triangle_range(n, width, t);
      if (!range.empty()) {
        dispatch_block(t, range);
      }
    });
  }
  symmetrize_from_upper(c);
}

void symmetrize_from_upper(Matrix& c) {
  if (c.rows() != c.cols()) {
    throw DimensionMismatch("symmetrize_from_upper: matrix must be square");
  }
  const std::size_t n = c.rows();
  // Task t owns the lower-triangle rows in its range: writes to row j only,
  // reads from the (already final) upper triangle.  Pure copies: no SIMD
  // variant needed (no arithmetic to regroup).
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t j = range.begin; j < range.end; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        c(j, i) = c(i, j);
      }
    }
  };
  exec::Pool* pool = exec::usable_pool(static_cast<std::uint64_t>(n) * n / 2);
  if (pool == nullptr) {
    row_block(0, {0, n});
    return;
  }
  const int width = pool->width();
  if (check::partition_audit_due()) {
    // Audit parts in reverse so claimed ranges match the dispatch below;
    // the auditor only cares that the union of [n-rev.end, n-rev.begin)
    // tiles [0, n) exactly.
    check::audit_partition(
        "la.symmetrize", n, static_cast<std::size_t>(width),
        [&](std::size_t part) {
          const exec::Range rev = exec::triangle_range(
              n, width, width - 1 - static_cast<int>(part));
          return std::pair<std::size_t, std::size_t>{n - rev.end,
                                                     n - rev.begin};
        });
  }
  pool->run("la.symmetrize", [&](int t) {
    // Lower-triangle row j carries j copies: mirror-image triangle balance
    // (row 0 is empty), so reuse triangle_range on the reversed index.
    const exec::Range rev = exec::triangle_range(n, width, width - 1 - t);
    const exec::Range range{n - rev.end, n - rev.begin};
    if (!range.empty()) {
      row_block(t, range);
    }
  });
}

}  // namespace rcf::la
