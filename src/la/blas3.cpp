#include <algorithm>

#include "la/blas.hpp"

namespace rcf::la {

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw DimensionMismatch("gemm: shape mismatch");
  }
  if (beta == 0.0) {
    c.fill(0.0);
  } else if (beta != 1.0) {
    scal(beta, c.flat());
  }
  // i-k-j loop order: streams B and C rows with unit stride.
  const std::size_t m = a.rows(), k = a.cols();
  for (std::size_t i = 0; i < m; ++i) {
    auto crow = c.row(i);
    const auto arow = a.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * arow[p];
      if (aip == 0.0) {
        continue;
      }
      const auto brow = b.row(p);
      for (std::size_t j = 0; j < brow.size(); ++j) {
        crow[j] += aip * brow[j];
      }
    }
  }
}

void syrk(double alpha, const Matrix& a, double beta, Matrix& c) {
  if (c.rows() != c.cols() || c.rows() != a.rows()) {
    throw DimensionMismatch("syrk: shape mismatch");
  }
  const std::size_t n = a.rows(), k = a.cols();
  if (beta == 0.0) {
    c.fill(0.0);
  } else if (beta != 1.0) {
    scal(beta, c.flat());
  }
  // Upper triangle only, then mirror: halves the flops, matching the cost
  // model's d^2*mbar count for the Gram update.
  for (std::size_t i = 0; i < n; ++i) {
    const auto ai = a.row(i);
    auto ci = c.row(i);
    for (std::size_t j = i; j < n; ++j) {
      const auto aj = a.row(j);
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += ai[p] * aj[p];
      }
      ci[j] += alpha * acc;
    }
  }
  symmetrize_from_upper(c);
}

void symmetrize_from_upper(Matrix& c) {
  if (c.rows() != c.cols()) {
    throw DimensionMismatch("symmetrize_from_upper: matrix must be square");
  }
  const std::size_t n = c.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      c(j, i) = c(i, j);
    }
  }
}

}  // namespace rcf::la
