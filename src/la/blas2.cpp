#include "la/blas.hpp"

namespace rcf::la {

void gemv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y) {
  if (a.cols() != x.size() || a.rows() != y.size()) {
    throw DimensionMismatch("gemv: shape mismatch");
  }
  const std::size_t rows = a.rows();
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = a.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c) {
      acc += row[c] * x[c];
    }
    y[r] = alpha * acc + beta * y[r];
  }
}

void gemv_t(double alpha, const Matrix& a, std::span<const double> x,
            double beta, std::span<double> y) {
  if (a.rows() != x.size() || a.cols() != y.size()) {
    throw DimensionMismatch("gemv_t: shape mismatch");
  }
  if (beta == 0.0) {
    set_zero(y);
  } else if (beta != 1.0) {
    scal(beta, y);
  }
  // Accumulate row-wise (unit stride on both A and y).
  const std::size_t rows = a.rows();
  for (std::size_t r = 0; r < rows; ++r) {
    const double xr = alpha * x[r];
    if (xr == 0.0) {
      continue;
    }
    const auto row = a.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      y[c] += xr * row[c];
    }
  }
}

void symv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y) {
  if (a.rows() != a.cols()) {
    throw DimensionMismatch("symv: matrix must be square");
  }
  gemv(alpha, a, x, beta, y);  // full storage: plain gemv is correct
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a) {
  if (a.rows() != x.size() || a.cols() != y.size()) {
    throw DimensionMismatch("ger: shape mismatch");
  }
  const std::size_t rows = a.rows();
  for (std::size_t r = 0; r < rows; ++r) {
    const double xr = alpha * x[r];
    if (xr == 0.0) {
      continue;
    }
    auto row = a.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] += xr * y[c];
    }
  }
}

}  // namespace rcf::la
