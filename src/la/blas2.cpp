#include "exec/pool.hpp"
#include "la/backend.hpp"
#include "la/blas.hpp"
#include "la/simd.hpp"

namespace rcf::la {

// Parallelization note (applies to every kernel in this file): work is
// partitioned over *output* ranges -- rows of y for gemv/symv/ger, entries
// of y for gemv_t -- and each output element is computed with exactly the
// sequential loop body and term order.  Results are therefore bit-identical
// at any pool width (DESIGN.md "Execution layer").
//
// Backend note: each kernel carries two interchangeable per-range bodies.
// The scalar body is the reference loop (unchanged from the seed); the SIMD
// body (la::Backend::kSimd) vectorizes with the la/simd.hpp primitives.
// Reduction kernels (gemv's row dot) regroup the sum into fixed-order lane
// accumulators, so SIMD results differ from scalar within rounding but stay
// bit-identical across pool widths -- the grouping depends only on the
// reduction length, never on the partition (DESIGN.md "Kernel backends").
// Elementwise kernels (gemv_t, ger) keep the scalar per-element operation
// order exactly.

void gemv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y) {
  if (a.cols() != x.size() || a.rows() != y.size()) {
    throw DimensionMismatch("gemv: shape mismatch");
  }
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  const bool use_simd = active_backend() == Backend::kSimd;
  const auto row_block = [&](int, exec::Range range) {
    if (use_simd) {
      for (std::size_t r = range.begin; r < range.end; ++r) {
        const auto row = a.row(r);
        const double acc = simd::dot4(row.data(), x.data(), row.size());
        y[r] = alpha * acc + beta * y[r];
      }
      return;
    }
    for (std::size_t r = range.begin; r < range.end; ++r) {
      const auto row = a.row(r);
      double acc = 0.0;
      for (std::size_t c = 0; c < row.size(); ++c) {
        acc += row[c] * x[c];
      }
      y[r] = alpha * acc + beta * y[r];
    }
  };
  exec::Pool* pool =
      exec::usable_pool(2 * static_cast<std::uint64_t>(rows) * cols);
  if (pool == nullptr) {
    row_block(0, {0, rows});
    return;
  }
  const int width = pool->width();
  pool->run("la.gemv", [&](int t) {
    const exec::Range range = exec::block_range(rows, width, t);
    if (!range.empty()) {
      row_block(t, range);
    }
  });
}

void gemv_t(double alpha, const Matrix& a, std::span<const double> x,
            double beta, std::span<double> y) {
  if (a.rows() != x.size() || a.cols() != y.size()) {
    throw DimensionMismatch("gemv_t: shape mismatch");
  }
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  const bool use_simd = active_backend() == Backend::kSimd;
  // Each task owns the y entries in [lo, hi): it applies the beta scaling
  // to its slice, then accumulates the rows of A in row order restricted
  // to its columns (unit stride on both A and y within the slice).  The
  // SIMD body is the same saxpy sweep vectorized elementwise -- identical
  // per-element operation order, including the xr == 0 row skip.
  const auto col_block = [&](int, exec::Range range) {
    auto y_slice = y.subspan(range.begin, range.size());
    if (beta == 0.0) {
      set_zero(y_slice);
    } else if (beta != 1.0) {
      scal(beta, y_slice);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double xr = alpha * x[r];
      if (xr == 0.0) {
        continue;
      }
      const auto row = a.row(r);
      if (use_simd) {
        simd::axpy4(xr, row.data() + range.begin, y.data() + range.begin,
                    range.size());
        continue;
      }
      for (std::size_t c = range.begin; c < range.end; ++c) {
        y[c] += xr * row[c];
      }
    }
  };
  exec::Pool* pool =
      exec::usable_pool(2 * static_cast<std::uint64_t>(rows) * cols);
  if (pool == nullptr) {
    col_block(0, {0, cols});
    return;
  }
  const int width = pool->width();
  pool->run("la.gemv_t", [&](int t) {
    const exec::Range range = exec::block_range(cols, width, t);
    if (!range.empty()) {
      col_block(t, range);
    }
  });
}

void symv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y) {
  if (a.rows() != a.cols()) {
    throw DimensionMismatch("symv: matrix must be square");
  }
  gemv(alpha, a, x, beta, y);  // full storage: plain gemv is correct
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a) {
  if (a.rows() != x.size() || a.cols() != y.size()) {
    throw DimensionMismatch("ger: shape mismatch");
  }
  const std::size_t rows = a.rows();
  const bool use_simd = active_backend() == Backend::kSimd;
  const auto row_block = [&](int, exec::Range range) {
    for (std::size_t r = range.begin; r < range.end; ++r) {
      const double xr = alpha * x[r];
      if (xr == 0.0) {
        continue;
      }
      auto row = a.row(r);
      if (use_simd) {
        simd::axpy4(xr, y.data(), row.data(), row.size());
        continue;
      }
      for (std::size_t c = 0; c < row.size(); ++c) {
        row[c] += xr * y[c];
      }
    }
  };
  exec::Pool* pool =
      exec::usable_pool(2 * static_cast<std::uint64_t>(rows) * a.cols());
  if (pool == nullptr) {
    row_block(0, {0, rows});
    return;
  }
  const int width = pool->width();
  pool->run("la.ger", [&](int t) {
    const exec::Range range = exec::block_range(rows, width, t);
    if (!range.empty()) {
      row_block(t, range);
    }
  });
}

}  // namespace rcf::la
