// Spectral helpers: power iteration for the largest eigenvalue of a
// symmetric positive semi-definite operator.  Used to estimate the Lipschitz
// constant L = lambda_max(H) of the least-squares gradient, which fixes the
// FISTA step size gamma = 1/L (paper Theorem 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

namespace rcf::la {

class Matrix;

/// Result of a power-iteration run.
struct PowerIterationResult {
  double eigenvalue = 0.0;  ///< Rayleigh-quotient estimate of lambda_max.
  int iterations = 0;       ///< Iterations actually performed.
  bool converged = false;   ///< Relative change fell below tolerance.
};

/// Largest eigenvalue of the SPSD operator `apply` (y = A x) of dimension n.
/// `seed` fixes the random start vector for reproducibility.
PowerIterationResult power_iteration(
    const std::function<void(std::span<const double>, std::span<double>)>& apply,
    std::size_t n, int max_iters = 200, double tol = 1e-7,
    std::uint64_t seed = 12345);

/// Convenience overload for an explicit symmetric matrix.
PowerIterationResult power_iteration(const Matrix& a, int max_iters = 200,
                                     double tol = 1e-7,
                                     std::uint64_t seed = 12345);

}  // namespace rcf::la
