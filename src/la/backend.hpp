// Runtime-selected kernel backend: scalar reference vs. explicitly
// vectorized (SIMD + register/cache-blocked) implementations of the hot
// dense/sparse kernels.
//
// The scalar bodies are the reference semantics -- they are the loops the
// determinism contract, the cost model, and the golden fixtures were
// written against, and they never change.  The SIMD backend re-implements
// the same kernels with portable vector extensions (see la/simd.hpp) under
// two rules (DESIGN.md "Kernel backends"):
//
//  * Pool-width bitwise invariance is preserved: SIMD kernels partition the
//    same *output* ranges as the scalar ones, and within one output element
//    the lane accumulators are combined in a fixed order that depends only
//    on the reduction length -- never on the pool width or data alignment.
//    A kernel therefore produces bit-identical results at widths 1/2/N on
//    either backend.
//  * Scalar vs. SIMD results may legitimately differ: multi-lane
//    accumulators reassociate long reductions (gemv/syrk/spmv row dots), so
//    cross-backend agreement is a tolerance contract, enforced by the
//    differential suite (tests/test_backend_diff.cpp).  Solver trajectories
//    are pinned per backend by their own golden fixtures.
//
// Selection is process-global: the RCF_BACKEND environment variable
// (scalar | simd) at first use, --backend on the benches, or set_backend()
// programmatically.  ScopedBackend gives tests a restoring override.
#pragma once

#include <atomic>
#include <string_view>

namespace rcf::la {

enum class Backend {
  kScalar = 0,  ///< reference loops (the seed implementation)
  kSimd = 1,    ///< vector-extension micro-kernels (la/simd.hpp)
};

/// Human-readable backend name ("scalar" / "simd").
[[nodiscard]] const char* backend_name(Backend b);

/// Parses a backend name; throws InvalidArgument on anything else.
[[nodiscard]] Backend parse_backend(std::string_view name);

/// The active backend.  Initialized once from RCF_BACKEND (unset or empty
/// means scalar; an unknown value throws on first query, so a typo cannot
/// silently fall back to the slow path).
[[nodiscard]] Backend active_backend();

/// Installs `b` as the process-global backend.
void set_backend(Backend b);

/// Backend requested by RCF_BACKEND, or `fallback` when unset/empty.
/// Throws InvalidArgument on an unknown value.
[[nodiscard]] Backend backend_from_env(Backend fallback);

/// Resolves and installs the process backend from an optional CLI value: a
/// non-empty `cli_value` wins, else RCF_BACKEND, else scalar.  Returns the
/// installed backend; throws InvalidArgument on an unknown name from either
/// source.  Shared by the bench mains' --backend flag.
Backend install_backend_from(std::string_view cli_value);

/// Scoped override: installs `b` for the guard's lifetime, restores the
/// previous backend on destruction.  Not for concurrent use across threads
/// (the backend is process-global); tests and benches switch it between
/// runs, never during one.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b);
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;
  ~ScopedBackend();

 private:
  Backend previous_;
};

}  // namespace rcf::la
