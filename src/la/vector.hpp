// Dense vector type.
//
// A thin, contiguous owning vector of doubles; all numeric kernels operate on
// std::span views so they compose with Matrix rows and raw buffers alike.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace rcf::la {

/// Owning dense vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    RCF_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    RCF_DCHECK(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] std::span<double> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> span() const {
    return {data_.data(), data_.size()};
  }
  operator std::span<double>() { return span(); }            // NOLINT
  operator std::span<const double>() const { return span(); }  // NOLINT

  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

  /// Sets every entry to `value`.
  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Resizes, zero-filling new entries.
  void resize(std::size_t n) { data_.resize(n, 0.0); }

  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<double> data_;
};

}  // namespace rcf::la
