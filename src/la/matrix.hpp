// Dense row-major matrix type.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace rcf::la {

/// Owning dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) {
    RCF_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    RCF_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> row(std::size_t r) {
    RCF_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    RCF_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Flat view of the whole storage (row-major).
  [[nodiscard]] std::span<double> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> flat() const {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes to rows x cols, zero-filled (discards contents).
  void reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Returns the transposed matrix (new storage).
  [[nodiscard]] Matrix transposed() const;

  /// Max |a_ij - b_ij|; throws DimensionMismatch on shape mismatch.
  [[nodiscard]] static double max_abs_diff(const Matrix& a, const Matrix& b);

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rcf::la
