#include "la/eigen.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace rcf::la {

PowerIterationResult power_iteration(
    const std::function<void(std::span<const double>, std::span<double>)>& apply,
    std::size_t n, int max_iters, double tol, std::uint64_t seed) {
  RCF_CHECK_MSG(n > 0, "power_iteration: dimension must be positive");
  std::vector<double> v(n), av(n);
  Rng rng(seed, /*stream=*/0xE16E);
  for (auto& x : v) {
    x = rng.normal();
  }
  double norm = nrm2(v);
  if (norm == 0.0) {
    v[0] = 1.0;
    norm = 1.0;
  }
  scal(1.0 / norm, v);

  PowerIterationResult result;
  double prev = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    apply(v, av);
    const double lambda = dot(v, av);  // Rayleigh quotient
    const double av_norm = nrm2(av);
    result.iterations = it + 1;
    result.eigenvalue = lambda;
    if (av_norm == 0.0) {
      // Operator annihilated the iterate: eigenvalue 0 along this direction.
      result.eigenvalue = 0.0;
      result.converged = true;
      return result;
    }
    copy(av, v);
    scal(1.0 / av_norm, v);
    if (it > 0 && std::abs(lambda - prev) <= tol * std::abs(lambda)) {
      result.converged = true;
      return result;
    }
    prev = lambda;
  }
  return result;
}

PowerIterationResult power_iteration(const Matrix& a, int max_iters, double tol,
                                     std::uint64_t seed) {
  RCF_CHECK_MSG(a.rows() == a.cols(), "power_iteration: matrix must be square");
  return power_iteration(
      [&a](std::span<const double> x, std::span<double> y) {
        gemv(1.0, a, x, 0.0, y);
      },
      a.rows(), max_iters, tol, seed);
}

}  // namespace rcf::la
