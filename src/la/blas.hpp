// BLAS-style dense kernels (levels 1-3) over std::span.
//
// These substitute the Intel MKL routines the paper links against.  All
// kernels are written for predictable vectorization (contiguous unit-stride
// loops) and carry documented flop counts so the cost model can account for
// them exactly.
#pragma once

#include <cstddef>
#include <span>

#include "la/matrix.hpp"
#include "la/vector.hpp"

namespace rcf::la {

// ---------------------------------------------------------------------------
// Level 1 -- vector-vector.  Flop counts: axpy/waxpby 2n, dot 2n, nrm2 2n.
// ---------------------------------------------------------------------------

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// w = alpha * x + beta * y
void waxpby(double alpha, std::span<const double> x, double beta,
            std::span<const double> y, std::span<double> w);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// dst = src
void copy(std::span<const double> src, std::span<double> dst);

/// <x, y>
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// ||x||_2
[[nodiscard]] double nrm2(std::span<const double> x);

/// ||x||_1
[[nodiscard]] double asum(std::span<const double> x);

/// max_i |x_i|
[[nodiscard]] double amax(std::span<const double> x);

/// ||x - y||_inf
[[nodiscard]] double max_abs_diff(std::span<const double> x,
                                  std::span<const double> y);

/// Sets all entries to zero.
void set_zero(std::span<double> x);

// ---------------------------------------------------------------------------
// Level 2 -- matrix-vector.  Flop counts: gemv 2*rows*cols, symv 2*n^2,
// ger 2*rows*cols.
// ---------------------------------------------------------------------------

/// y = alpha * A x + beta * y  (A row-major rows x cols)
void gemv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y);

/// y = alpha * A^T x + beta * y
void gemv_t(double alpha, const Matrix& a, std::span<const double> x,
            double beta, std::span<double> y);

/// y = alpha * A x + beta * y for symmetric A (full storage; uses both
/// triangles as stored -- caller guarantees symmetry).
void symv(double alpha, const Matrix& a, std::span<const double> x, double beta,
          std::span<double> y);

/// A += alpha * x y^T  (rank-1 update)
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a);

// ---------------------------------------------------------------------------
// Level 3 -- matrix-matrix.  Flop counts: gemm 2*m*n*k, syrk n^2*k.
// ---------------------------------------------------------------------------

/// C = alpha * A B + beta * C
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c);

/// C = alpha * A A^T + beta * C, C symmetric (full storage written).
/// This is the dense Gram kernel H = (1/mbar) X_S X_S^T for dense datasets.
void syrk(double alpha, const Matrix& a, double beta, Matrix& c);

/// Copies the upper triangle of C onto the lower triangle.
void symmetrize_from_upper(Matrix& c);

}  // namespace rcf::la
