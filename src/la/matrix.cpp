#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace rcf::la {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Block the loops so both source and destination stay cache-resident.
  constexpr std::size_t kBlock = 64;
  for (std::size_t rb = 0; rb < rows_; rb += kBlock) {
    const std::size_t rend = std::min(rows_, rb + kBlock);
    for (std::size_t cb = 0; cb < cols_; cb += kBlock) {
      const std::size_t cend = std::min(cols_, cb + kBlock);
      for (std::size_t r = rb; r < rend; ++r) {
        for (std::size_t c = cb; c < cend; ++c) {
          t(c, r) = (*this)(r, c);
        }
      }
    }
  }
  return t;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw DimensionMismatch("Matrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

}  // namespace rcf::la
