#include "prox/operators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace rcf::prox {

double soft_threshold(double value, double threshold) {
  if (value > threshold) {
    return value - threshold;
  }
  if (value < -threshold) {
    return value + threshold;
  }
  return 0.0;
}

void soft_threshold(std::span<const double> in, double threshold,
                    std::span<double> out) {
  RCF_DCHECK(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = soft_threshold(in[i], threshold);
  }
}

L1Regularizer::L1Regularizer(double lambda) : lambda_(lambda) {
  RCF_CHECK_MSG(lambda >= 0.0, "L1Regularizer: lambda must be >= 0");
}

double L1Regularizer::value(std::span<const double> w) const {
  double acc = 0.0;
  for (double v : w) {
    acc += std::abs(v);
  }
  return lambda_ * acc;
}

void L1Regularizer::apply(std::span<double> w, double t) const {
  const double threshold = lambda_ * t;
  for (auto& v : w) {
    v = soft_threshold(v, threshold);
  }
}

L2Regularizer::L2Regularizer(double lambda) : lambda_(lambda) {
  RCF_CHECK_MSG(lambda >= 0.0, "L2Regularizer: lambda must be >= 0");
}

double L2Regularizer::value(std::span<const double> w) const {
  double acc = 0.0;
  for (double v : w) {
    acc += v * v;
  }
  return 0.5 * lambda_ * acc;
}

void L2Regularizer::apply(std::span<double> w, double t) const {
  const double shrink = 1.0 / (1.0 + lambda_ * t);
  for (auto& v : w) {
    v *= shrink;
  }
}

ElasticNetRegularizer::ElasticNetRegularizer(double lambda1, double lambda2)
    : lambda1_(lambda1), lambda2_(lambda2) {
  RCF_CHECK_MSG(lambda1 >= 0.0 && lambda2 >= 0.0,
                "ElasticNetRegularizer: lambdas must be >= 0");
}

double ElasticNetRegularizer::value(std::span<const double> w) const {
  double l1 = 0.0, l2 = 0.0;
  for (double v : w) {
    l1 += std::abs(v);
    l2 += v * v;
  }
  return lambda1_ * l1 + 0.5 * lambda2_ * l2;
}

void ElasticNetRegularizer::apply(std::span<double> w, double t) const {
  // prox of sum: soft-threshold then shrink.
  const double threshold = lambda1_ * t;
  const double shrink = 1.0 / (1.0 + lambda2_ * t);
  for (auto& v : w) {
    v = soft_threshold(v, threshold) * shrink;
  }
}

BoxRegularizer::BoxRegularizer(double lo, double hi) : lo_(lo), hi_(hi) {
  RCF_CHECK_MSG(lo <= hi, "BoxRegularizer: lo must be <= hi");
}

double BoxRegularizer::value(std::span<const double> w) const {
  for (double v : w) {
    if (v < lo_ || v > hi_) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return 0.0;
}

void BoxRegularizer::apply(std::span<double> w, double /*t*/) const {
  for (auto& v : w) {
    v = std::clamp(v, lo_, hi_);
  }
}

double ZeroRegularizer::value(std::span<const double>) const { return 0.0; }

void ZeroRegularizer::apply(std::span<double>, double) const {}

}  // namespace rcf::prox
