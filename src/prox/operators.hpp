// Proximal operators (paper Eq. 6):
//   Prox_g^gamma(w) = argmin_x { (1/2 gamma) ||x - w||^2 + g(x) }.
//
// The paper's target is g(w) = lambda ||w||_1 whose prox is soft
// thresholding (Eq. 14); the other standard regularizers are provided so the
// solvers remain usable as general proximal methods.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace rcf::prox {

/// A proximable regularizer g: evaluates g(w) and applies Prox_{t*g}.
class Regularizer {
 public:
  virtual ~Regularizer() = default;

  /// g(w).
  [[nodiscard]] virtual double value(std::span<const double> w) const = 0;

  /// In place: w <- Prox_{t*g}(w).
  virtual void apply(std::span<double> w, double t) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// g(w) = lambda * ||w||_1 ; prox is the soft-thresholding operator
/// S_{lambda t}(w)_i = sign(w_i) max(|w_i| - lambda t, 0)  (paper Eq. 14).
class L1Regularizer final : public Regularizer {
 public:
  explicit L1Regularizer(double lambda);
  [[nodiscard]] double value(std::span<const double> w) const override;
  void apply(std::span<double> w, double t) const override;
  [[nodiscard]] std::string name() const override { return "l1"; }
  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// g(w) = (lambda/2) * ||w||_2^2 ; prox is the shrinkage w / (1 + lambda t).
class L2Regularizer final : public Regularizer {
 public:
  explicit L2Regularizer(double lambda);
  [[nodiscard]] double value(std::span<const double> w) const override;
  void apply(std::span<double> w, double t) const override;
  [[nodiscard]] std::string name() const override { return "l2"; }

 private:
  double lambda_;
};

/// g(w) = lambda1 ||w||_1 + (lambda2/2) ||w||_2^2 (elastic net).
class ElasticNetRegularizer final : public Regularizer {
 public:
  ElasticNetRegularizer(double lambda1, double lambda2);
  [[nodiscard]] double value(std::span<const double> w) const override;
  void apply(std::span<double> w, double t) const override;
  [[nodiscard]] std::string name() const override { return "elastic-net"; }

 private:
  double lambda1_;
  double lambda2_;
};

/// Indicator of the box [lo, hi]^d ; prox is clamping.
class BoxRegularizer final : public Regularizer {
 public:
  BoxRegularizer(double lo, double hi);
  [[nodiscard]] double value(std::span<const double> w) const override;
  void apply(std::span<double> w, double t) const override;
  [[nodiscard]] std::string name() const override { return "box"; }

 private:
  double lo_;
  double hi_;
};

/// g = 0 (no regularization); prox is the identity.
class ZeroRegularizer final : public Regularizer {
 public:
  [[nodiscard]] double value(std::span<const double> w) const override;
  void apply(std::span<double> w, double t) const override;
  [[nodiscard]] std::string name() const override { return "zero"; }
};

/// Scalar soft threshold S_a(b) = sign(b) max(|b| - a, 0).
[[nodiscard]] double soft_threshold(double value, double threshold);

/// Vector soft threshold, out-of-place: out_i = S_t(in_i).
void soft_threshold(std::span<const double> in, double threshold,
                    std::span<double> out);

}  // namespace rcf::prox
