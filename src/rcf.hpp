// Umbrella header: the full public API of the RC-SFISTA library.
//
//   #include "rcf.hpp"
//
// See README.md for a quickstart and DESIGN.md for the architecture map.
#pragma once

#include "common/cli.hpp"        // IWYU pragma: export
#include "common/error.hpp"      // IWYU pragma: export
#include "common/json.hpp"       // IWYU pragma: export
#include "common/log.hpp"        // IWYU pragma: export
#include "common/rng.hpp"        // IWYU pragma: export
#include "common/table.hpp"      // IWYU pragma: export
#include "common/timer.hpp"      // IWYU pragma: export
#include "core/distributed.hpp"  // IWYU pragma: export
#include "core/engine.hpp"       // IWYU pragma: export
#include "core/logistic.hpp"     // IWYU pragma: export
#include "core/momentum.hpp"     // IWYU pragma: export
#include "core/options.hpp"      // IWYU pragma: export
#include "core/problem.hpp"      // IWYU pragma: export
#include "core/prox_cocoa.hpp"   // IWYU pragma: export
#include "core/prox_newton.hpp"  // IWYU pragma: export
#include "core/result.hpp"       // IWYU pragma: export
#include "core/solvers.hpp"      // IWYU pragma: export
#include "data/dataset.hpp"      // IWYU pragma: export
#include "data/partition.hpp"    // IWYU pragma: export
#include "data/synthetic.hpp"    // IWYU pragma: export
#include "dist/comm.hpp"         // IWYU pragma: export
#include "dist/thread_comm.hpp"  // IWYU pragma: export
#include "exec/pool.hpp"         // IWYU pragma: export
#include "la/backend.hpp"        // IWYU pragma: export
#include "la/blas.hpp"           // IWYU pragma: export
#include "la/eigen.hpp"          // IWYU pragma: export
#include "la/matrix.hpp"         // IWYU pragma: export
#include "la/vector.hpp"         // IWYU pragma: export
#include "model/cost.hpp"        // IWYU pragma: export
#include "model/formulas.hpp"    // IWYU pragma: export
#include "model/machine.hpp"     // IWYU pragma: export
#include "obs/aggregate.hpp"     // IWYU pragma: export
#include "obs/convergence.hpp"   // IWYU pragma: export
#include "obs/cost_ledger.hpp"   // IWYU pragma: export
#include "obs/critpath.hpp"      // IWYU pragma: export
#include "obs/live.hpp"          // IWYU pragma: export
#include "obs/metrics.hpp"       // IWYU pragma: export
#include "obs/perfctr.hpp"       // IWYU pragma: export
#include "obs/telemetry.hpp"     // IWYU pragma: export
#include "obs/timeline.hpp"      // IWYU pragma: export
#include "obs/trace.hpp"         // IWYU pragma: export
#include "obs/watchdog.hpp"      // IWYU pragma: export
#include "prox/operators.hpp"    // IWYU pragma: export
#include "sparse/csr.hpp"        // IWYU pragma: export
#include "sparse/generate.hpp"   // IWYU pragma: export
#include "sparse/gram.hpp"       // IWYU pragma: export
#include "sparse/io.hpp"         // IWYU pragma: export
