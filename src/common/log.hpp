// Minimal leveled logger (stderr).  Controlled globally or via the
// RCF_LOG_LEVEL environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace rcf {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "debug", "INFO", ... ; returns kInfo for unknown strings.
[[nodiscard]] LogLevel parse_log_level(const std::string& text);

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace rcf

#define RCF_LOG(level)                                  \
  if (static_cast<int>(level) <                         \
      static_cast<int>(::rcf::log_level())) {           \
  } else                                                \
    ::rcf::detail::LogLine(level)

#define RCF_LOG_TRACE RCF_LOG(::rcf::LogLevel::kTrace)
#define RCF_LOG_DEBUG RCF_LOG(::rcf::LogLevel::kDebug)
#define RCF_LOG_INFO RCF_LOG(::rcf::LogLevel::kInfo)
#define RCF_LOG_WARN RCF_LOG(::rcf::LogLevel::kWarn)
#define RCF_LOG_ERROR RCF_LOG(::rcf::LogLevel::kError)
