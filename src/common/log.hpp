// Minimal leveled logger (stderr).  Controlled globally or via the
// RCF_LOG_LEVEL environment variable (trace|debug|info|warn|error|off).
//
// Each line is emitted with a single thread-safe write, prefixed with an
// ISO-8601 UTC timestamp and the calling thread's SPMD rank (set per
// thread by set_log_rank; ThreadGroup assigns ranks automatically), so
// concurrent ranks never interleave within a line:
//
//   [2026-08-05T12:34:56.789Z r2 WARN ] message
//
// RCF_LOG_JSON=1 switches to one JSON object per line instead:
//
//   {"ts":"2026-08-05T12:34:56.789Z","level":"warn","rank":2,"msg":"..."}
#pragma once

#include <sstream>
#include <string>

namespace rcf {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "debug", "INFO", "off", ... ; returns kInfo for unknown strings
/// (emitting a one-time warning to stderr).
[[nodiscard]] LogLevel parse_log_level(const std::string& text);

/// Canonical lower-case name; round-trips through parse_log_level.
[[nodiscard]] const char* log_level_name(LogLevel level);

/// SPMD rank prefixed to this thread's log lines (default 0).
void set_log_rank(int rank);
[[nodiscard]] int log_rank();

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace rcf

#define RCF_LOG(level)                                  \
  if (static_cast<int>(level) <                         \
      static_cast<int>(::rcf::log_level())) {           \
  } else                                                \
    ::rcf::detail::LogLine(level)

#define RCF_LOG_TRACE RCF_LOG(::rcf::LogLevel::kTrace)
#define RCF_LOG_DEBUG RCF_LOG(::rcf::LogLevel::kDebug)
#define RCF_LOG_INFO RCF_LOG(::rcf::LogLevel::kInfo)
#define RCF_LOG_WARN RCF_LOG(::rcf::LogLevel::kWarn)
#define RCF_LOG_ERROR RCF_LOG(::rcf::LogLevel::kError)
