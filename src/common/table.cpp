#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace rcf {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RCF_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  RCF_CHECK_MSG(row.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string AsciiTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string AsciiTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

void AsciiTable::print(std::ostream& os) const { os << str(); }

std::string fmt_g(double value, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_f(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_e(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_count(std::uint64_t value) {
  std::string raw = std::to_string(value);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  const std::size_t first = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) {
      out.push_back(',');
    }
    out.push_back(raw[i]);
  }
  return out;
}

std::string fmt_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(u == 0 ? 0 : (v < 10 ? 2 : 1)) << v
     << units[u];
  return os.str();
}

}  // namespace rcf
