// Minimal JSON support shared across the observability stack.
//
// Two halves:
//
//  * json_escape / json_escape_to -- the one string-escaping routine used by
//    every JSON emitter in the repo (trace export, metrics export, the
//    convergence writer, rcf-report).  Escapes quotes, backslashes, and
//    control characters so arbitrary span/metric names always produce valid
//    JSON.
//  * JsonValue / parse_json -- a small recursive-descent parser (objects,
//    arrays, strings, numbers, literals) for the offline analyzers that
//    ingest the emitted files (tools/rcf_report).  No external dependency;
//    numbers are doubles, object member order is preserved.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rcf {

/// Appends `text` to `out` with JSON string escaping applied (quotes,
/// backslashes, \n, \t, and all other control characters as \uXXXX).
void json_escape_to(std::string_view text, std::string& out);

/// Returns the escaped copy.
[[nodiscard]] std::string json_escape(std::string_view text);

/// One parsed JSON value.  Exactly one of the payload members is meaningful,
/// selected by `type`; the accessors below are the convenient way in.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Object members in document order (duplicate keys are kept as-is).
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  /// First member with `key`, or nullptr (also for non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// The member's number if present and numeric, else `fallback`.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;

  /// The member's string if present and a string, else `fallback`.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
};

/// Parses one JSON document (trailing whitespace allowed).  Returns nullopt
/// on any syntax error.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace rcf
