// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace rcf {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rcf
