#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rcf {

void json_escape_to(std::string_view text, std::string& out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  json_escape_to(text, out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member)) {
        return false;
      }
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue element;
      if (!value(element)) {
        return false;
      }
      out.array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_];
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        return false;
      }
      switch (text_[pos_]) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 >= text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          pos_ += 4;
          // UTF-8 encode the basic-plane code point (surrogate pairs are
          // passed through as two 3-byte sequences -- the emitters in this
          // repo only produce \u00xx control escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool number(JsonValue& out) {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    // strtod may read past the logical end of a substring view; clamp.
    const auto consumed = static_cast<std::size_t>(end - start);
    if (pos_ + consumed > text_.size()) {
      return false;
    }
    out.type = JsonValue::Type::kNumber;
    pos_ += consumed;
    return true;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, member] : members) {
    if (name == key) {
      return &member;
    }
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_string() ? member->string
                                                  : std::string(fallback);
}

std::optional<JsonValue> parse_json(std::string_view text) {
  JsonValue out;
  if (!Parser(text).parse(out)) {
    return std::nullopt;
  }
  return out;
}

}  // namespace rcf
