// ASCII table / CSV emitters used by the paper-reproduction benches to print
// the same rows and series the paper reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcf {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers format
/// with sensible precision.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends one row; its size must match the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string str() const;

  /// Renders as CSV (no alignment padding).
  [[nodiscard]] std::string csv() const;

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (trailing zeros kept).
[[nodiscard]] std::string fmt_g(double value, int digits = 4);

/// Formats a double in fixed notation with `digits` decimals.
[[nodiscard]] std::string fmt_f(double value, int digits = 3);

/// Formats a double in scientific notation with `digits` decimals.
[[nodiscard]] std::string fmt_e(double value, int digits = 3);

/// Formats an integer with thousands separators (1,234,567).
[[nodiscard]] std::string fmt_count(std::uint64_t value);

/// Formats a byte count in human units (KB / MB / GB; paper Table 2 style).
[[nodiscard]] std::string fmt_bytes(std::uint64_t bytes);

}  // namespace rcf
