// Tiny command-line flag parser used by the benches and examples.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms; typed
// accessors with defaults; and generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rcf {

class CliParser {
 public:
  /// `description` is printed at the top of --help output.
  CliParser(std::string program, std::string description);

  /// Declares a flag (for --help); declaration is optional but undeclared
  /// flags trigger a warning when strict mode is on.
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value = "");

  /// Parses argv.  Returns false (after printing help) if --help was given.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Parses a comma-separated list of integers, e.g. "1,2,4,8".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  /// Parses a comma-separated list of doubles.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, const std::vector<double>& fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_help() const;

 private:
  struct FlagInfo {
    std::string help;
    std::string default_value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, FlagInfo> declared_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rcf
