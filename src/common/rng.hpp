// Counter-based pseudo-random number generation (Philox 4x32-10).
//
// Why counter-based: the RC-SFISTA iteration-overlapping proof (paper §3.2)
// and the Fig. 2(b) experiment both require that the random index set drawn
// at iteration n be a pure function of (seed, n) -- independent of the
// overlap parameter k, the Hessian-reuse parameter S, the number of ranks,
// and any previous draws.  A stateful generator (e.g. std::mt19937) cannot
// provide that without replaying; Philox gives O(1) random access to any
// point of the stream, which is also how all ranks of the distributed
// implementation agree on the sample set without communicating it.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace rcf {

/// Philox 4x32-10 block cipher (Salmon et al., SC'11).  Stateless: maps a
/// 128-bit counter and 64-bit key to 128 bits of output.
struct Philox4x32 {
  /// One 10-round Philox block.
  static std::array<std::uint32_t, 4> block(std::array<std::uint32_t, 4> ctr,
                                            std::array<std::uint32_t, 2> key);
};

/// A random stream addressed by (seed, stream).  `seed` is the experiment
/// seed; `stream` identifies the consumer (canonically the solver iteration
/// index) so that draws for iteration n never depend on draws for other
/// iterations.
class Rng {
 public:
  using result_type = std::uint32_t;

  Rng(std::uint64_t seed, std::uint64_t stream);

  /// UniformRandomBitGenerator interface (usable with <random> and
  /// std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u32(); }

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Unbiased (rejection sampling).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box-Muller, cached pair).
  double normal();

  /// Normal deviate with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Sample `count` distinct indices uniformly from [0, n), sorted ascending.
  /// This is the paper's sampling matrix I_n (Alg. 4 line 4).  Uses Floyd's
  /// algorithm for count << n and a partial Fisher-Yates otherwise.
  std::vector<std::uint32_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t count);

  /// Sample `count` indices uniformly from [0, n) with replacement (unsorted).
  std::vector<std::uint32_t> sample_with_replacement(std::uint64_t n,
                                                     std::uint64_t count);

 private:
  void refill();

  std::array<std::uint32_t, 2> key_;
  std::array<std::uint32_t, 4> counter_;
  std::array<std::uint32_t, 4> buffer_;
  int buffered_ = 0;  // how many uint32 remain in buffer_
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Derives a child seed for a named subsystem from an experiment seed, so
/// that e.g. data generation and solver sampling use decorrelated streams.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt);

}  // namespace rcf
