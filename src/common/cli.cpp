#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace rcf {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  declared_[name] = FlagInfo{help, default_value};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!declared_.empty() && declared_.find(key) == declared_.end()) {
      RCF_LOG_WARN << program_ << ": unknown flag --" << key;
    }
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string CliParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + " expects an integer, got '" +
                          it->second + "'");
  }
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + " expects a number, got '" +
                          it->second + "'");
  }
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> CliParser::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(std::stoll(item));
    }
  }
  return out;
}

std::vector<double> CliParser::get_double_list(
    const std::string& name, const std::vector<double>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(std::stod(item));
    }
  }
  return out;
}

void CliParser::print_help() const {
  std::printf("%s - %s\n\nFlags:\n", program_.c_str(), description_.c_str());
  for (const auto& [name, info] : declared_) {
    std::printf("  --%-24s %s", name.c_str(), info.help.c_str());
    if (!info.default_value.empty()) {
      std::printf(" (default: %s)", info.default_value.c_str());
    }
    std::printf("\n");
  }
  std::printf("  --%-24s %s\n", "help", "print this message");
}

}  // namespace rcf
