#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "common/error.hpp"

namespace rcf {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void philox_round(std::array<std::uint32_t, 4>& ctr,
                         const std::array<std::uint32_t, 2>& key) {
  const std::uint64_t p0 = std::uint64_t{kPhiloxM0} * ctr[0];
  const std::uint64_t p1 = std::uint64_t{kPhiloxM1} * ctr[2];
  const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
  const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
  ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

std::array<std::uint32_t, 4> Philox4x32::block(
    std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) {
  for (int round = 0; round < 10; ++round) {
    philox_round(ctr, key);
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return ctr;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  key_ = {static_cast<std::uint32_t>(seed),
          static_cast<std::uint32_t>(seed >> 32)};
  counter_ = {static_cast<std::uint32_t>(stream),
              static_cast<std::uint32_t>(stream >> 32), 0u, 0u};
  buffered_ = 0;
}

void Rng::refill() {
  buffer_ = Philox4x32::block(counter_, key_);
  buffered_ = 4;
  // Increment the 64-bit block index held in counter_[2..3].
  if (++counter_[2] == 0) {
    ++counter_[3];
  }
}

std::uint32_t Rng::next_u32() {
  if (buffered_ == 0) {
    refill();
  }
  return buffer_[static_cast<std::size_t>(--buffered_)];
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  return (hi << 32) | lo;
}

double Rng::uniform() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RCF_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  RCF_CHECK_MSG(n > 0, "uniform_index: n must be positive");
  // Lemire-style rejection over uint64 to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: two uniforms -> two normals.
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<std::uint32_t> Rng::sample_without_replacement(
    std::uint64_t n, std::uint64_t count) {
  RCF_CHECK_MSG(count <= n, "sample_without_replacement: count > n");
  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (count == 0) {
    return out;
  }
  if (count * 3 >= n) {
    // Dense regime: partial Fisher-Yates over the full index range.
    std::vector<std::uint32_t> pool(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      pool[i] = static_cast<std::uint32_t>(i);
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t j = i + uniform_index(n - i);
      std::swap(pool[i], pool[j]);
    }
    out.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(count));
  } else {
    // Sparse regime: Floyd's algorithm, O(count) expected draws.
    std::unordered_set<std::uint32_t> chosen;
    chosen.reserve(count * 2);
    for (std::uint64_t j = n - count; j < n; ++j) {
      const auto t = static_cast<std::uint32_t>(uniform_index(j + 1));
      if (!chosen.insert(t).second) {
        chosen.insert(static_cast<std::uint32_t>(j));
      }
    }
    out.assign(chosen.begin(), chosen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> Rng::sample_with_replacement(std::uint64_t n,
                                                        std::uint64_t count) {
  RCF_CHECK_MSG(n > 0, "sample_with_replacement: n must be positive");
  std::vector<std::uint32_t> out(count);
  for (auto& v : out) {
    v = static_cast<std::uint32_t>(uniform_index(n));
  }
  return out;
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  // SplitMix64 finalizer over seed ^ rotated salt.
  std::uint64_t z = seed ^ (salt * 0x9E3779B97F4A7C15ull);
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace rcf
