#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace rcf {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
std::mutex g_emit_mutex;
thread_local int t_log_rank = 0;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("RCF_LOG_LEVEL")) {
    g_level.store(static_cast<int>(parse_log_level(env)),
                  std::memory_order_relaxed);
  }
}

bool json_mode() {
  // Cached once; -1 = unknown.
  static std::atomic<int> cached{-1};
  int mode = cached.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("RCF_LOG_JSON");
    mode = (env != nullptr && env[0] == '1') ? 1 : 0;
    cached.store(mode, std::memory_order_relaxed);
  }
  return mode == 1;
}

/// ISO-8601 UTC timestamp with millisecond precision.
void format_timestamp(char* buf, std::size_t len) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf, len, "%s.%03dZ", date, static_cast<int>(millis));
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  // Plain fprintf: this can run from inside log_level()'s call_once (env
  // parsing), where re-entering the log macros would deadlock.
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "[rcf] warning: unknown log level \"%s\", defaulting to "
                 "\"info\" (valid: trace|debug|info|warn|error|off)\n",
                 text.c_str());
  }
  return LogLevel::kInfo;
}

void set_log_rank(int rank) { t_log_rank = rank; }

int log_rank() { return t_log_rank; }

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  char ts[48];
  format_timestamp(ts, sizeof(ts));
  // Format the complete line first, then emit it with one write under the
  // mutex so concurrent ranks never interleave mid-line.
  std::string line;
  line.reserve(message.size() + 64);
  if (json_mode()) {
    line += "{\"ts\":\"";
    line += ts;
    line += "\",\"level\":\"";
    line += log_level_name(level);
    line += "\",\"rank\":";
    line += std::to_string(t_log_rank);
    line += ",\"msg\":\"";
    append_json_escaped(line, message);
    line += "\"}\n";
  } else {
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix), "[%s r%d %-5s] ", ts, t_log_rank,
                  level_tag(level));
    line += prefix;
    line += message;
    line += '\n';
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fputs(line.c_str(), stderr);
}

}  // namespace detail

}  // namespace rcf
