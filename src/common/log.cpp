#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace rcf {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("RCF_LOG_LEVEL")) {
    g_level.store(static_cast<int>(parse_log_level(env)),
                  std::memory_order_relaxed);
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogLevel parse_log_level(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[rcf %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail

}  // namespace rcf
