// Error types and runtime checking macros.
//
// The library reports contract violations and environmental failures via
// exceptions (C++ Core Guidelines E.2); hot kernels use RCF_DCHECK which
// compiles away in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace rcf {

/// Base class for all errors thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated precondition / invalid argument.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Shape mismatch between linear-algebra operands.
class DimensionMismatch : public Error {
 public:
  explicit DimensionMismatch(const std::string& what) : Error(what) {}
};

/// I/O failure (file missing, parse error, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw InvalidArgument(std::string("check failed: ") + expr + " at " + file +
                        ":" + std::to_string(line) +
                        (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace rcf

/// Always-on precondition check; throws rcf::InvalidArgument on failure.
#define RCF_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::rcf::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                  \
  } while (false)

/// Always-on precondition check with a context message.
#define RCF_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rcf::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

/// Debug-only check for hot paths; disappears when NDEBUG is defined.
#ifndef NDEBUG
#define RCF_DCHECK(expr) RCF_CHECK(expr)
#else
#define RCF_DCHECK(expr) \
  do {                   \
  } while (false)
#endif
