// Timed, poisonable rendezvous: the barrier primitive under the threaded
// communicator backend and the contract checker.
//
// std::barrier cannot time out and cannot be torn down while a party is
// blocked, which turns every rank-divergence bug into a silent hang: one
// rank throws (or simply never issues the collective) and everyone else
// waits forever.  TimedBarrier converts both failure modes into immediate
// diagnostics:
//
//  * A party that waits longer than the configured stall timeout
//    (RCF_COMM_TIMEOUT_MS; 0 = wait forever) throws CommTimeout naming
//    itself, what it was waiting in, and exactly which ranks are missing.
//    It also poisons the barrier so the other arrived parties fail fast
//    instead of each burning its own full timeout.
//  * poison() (called by ThreadGroup when a rank's SPMD body throws, and
//    by the contract checker on a violation) wakes every current and
//    future waiter with CommPoisoned carrying the originating reason.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rcf::check {

/// A rendezvous stalled past the configured timeout (deadlock diagnosis).
class CommTimeout : public Error {
 public:
  explicit CommTimeout(const std::string& what) : Error(what) {}
};

/// The rendezvous was poisoned by another party (secondary failure; the
/// carried reason names the original error).
class CommPoisoned : public Error {
 public:
  explicit CommPoisoned(const std::string& what) : Error(what) {}
};

class TimedBarrier {
 public:
  explicit TimedBarrier(int parties);

  /// Blocks until all parties have arrived in this generation.
  /// `timeout_ms` <= 0 waits forever.  `what` is a static description of
  /// the rendezvous for diagnostics ("allreduce:publish", ...).  Throws
  /// CommTimeout on stall (and poisons the barrier) or CommPoisoned if a
  /// another party failed.
  void arrive_and_wait(int rank, int timeout_ms, const char* what);

  /// Wakes all waiters with CommPoisoned(reason); future arrivals throw
  /// immediately until reset().  The first reason is kept.
  void poison(const std::string& reason);

  [[nodiscard]] bool poisoned() const;

  /// Clears poison and arrival state.  Only valid while no party is
  /// blocked in arrive_and_wait (ThreadGroup calls it between runs, after
  /// joining all ranks).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int arrived_count_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::uint8_t> arrived_;
  bool poisoned_ = false;
  std::string reason_;
};

}  // namespace rcf::check
