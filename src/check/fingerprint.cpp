#include "check/fingerprint.hpp"

#include <cstring>

namespace rcf::check {

namespace {

/// Last two path components of a compiler-provided file name, so
/// diagnostics read "core/distributed.cpp" instead of an absolute path.
const char* trim_path(const char* file) {
  const char* last = nullptr;
  const char* prev = nullptr;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      prev = last;
      last = p + 1;
    }
  }
  if (prev != nullptr) {
    return prev;
  }
  return last != nullptr ? last : file;
}

}  // namespace

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllreduceSum:
      return "allreduce_sum";
    case CollectiveKind::kAllreduceMax:
      return "allreduce_max";
    case CollectiveKind::kBroadcast:
      return "broadcast";
    case CollectiveKind::kAllgather:
      return "allgather";
    case CollectiveKind::kBarrier:
      return "barrier";
    case CollectiveKind::kIallreduceSum:
      return "iallreduce_sum";
    case CollectiveKind::kIallreduceMax:
      return "iallreduce_max";
  }
  return "unknown";
}

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string Fingerprint::describe() const {
  std::string out = to_string(kind);
  out += space == 0 ? "[engine #" : "[aux #";
  out += std::to_string(seq);
  out += "] words=";
  out += std::to_string(words);
  if (kind == CollectiveKind::kBroadcast) {
    out += " root=";
    out += std::to_string(extra);
  }
  out += " site=";
  out += trim_path(file);
  out += ":";
  out += std::to_string(line);
  return out;
}

Fingerprint SequenceTracker::next(CollectiveKind kind, std::uint64_t words,
                                  std::uint64_t extra, bool aux,
                                  const std::source_location& site) {
  const int sp = aux ? 1 : 0;
  Fingerprint fp;
  fp.kind = kind;
  fp.space = static_cast<std::uint8_t>(sp);
  fp.seq = seq_[sp]++;
  fp.words = words;
  fp.extra = extra;
  fp.file = site.file_name();
  fp.line = site.line();
  fp.site_hash = fnv1a(site.file_name(), std::strlen(site.file_name()));
  const std::uint32_t line = site.line();
  fp.site_hash = fnv1a(&line, sizeof(line), fp.site_hash);

  std::uint64_t h = rolling_[sp];
  const std::uint8_t kind_byte = static_cast<std::uint8_t>(kind);
  h = fnv1a(&kind_byte, sizeof(kind_byte), h);
  h = fnv1a(&fp.words, sizeof(fp.words), h);
  h = fnv1a(&fp.extra, sizeof(fp.extra), h);
  h = fnv1a(&fp.site_hash, sizeof(fp.site_hash), h);
  rolling_[sp] = h;
  fp.rolling = h;
  return fp;
}

}  // namespace rcf::check
