// Backend-agnostic collective-contract decorator.
//
// CheckedComm wraps any dist::Communicator and maintains the same
// fingerprint stream the threaded backend's contract board checks per
// call -- but because a generic backend has no shared memory to compare
// fingerprints through, divergence is detected by *epoch exchange*: every
// `CheckOptions::epoch` engine-space collectives, the decorator allreduces
// the rolling sequence hash (as {h, -h}, so one max-allreduce yields both
// the fleet max and min) under AuxScope and throws ContractViolation on
// the first epoch where any rank's hash differs.  AuxScope traffic --
// including the exchange itself -- lives in its own sequence space, so
// PR 3's metric aggregation can never alias engine collectives.
//
// On the threaded SPMD path this is belt and braces on top of the
// per-call board; on a future network backend (MPI) it is the only
// cross-rank check, which is why it piggybacks exclusively on collectives
// the schedule already performs plus one tiny aux allreduce per epoch.
#pragma once

#include "check/contract.hpp"
#include "check/fingerprint.hpp"
#include "check/options.hpp"
#include "dist/comm.hpp"

namespace rcf::obs {
class Counter;
}

namespace rcf::check {

class CheckedComm final : public dist::Communicator {
 public:
  /// Decorates `inner` (which must outlive this object).  When
  /// opts.enabled is false every collective forwards with zero added work.
  explicit CheckedComm(dist::Communicator& inner,
                       CheckOptions opts = effective_options());

  [[nodiscard]] bool enabled() const { return opts_.enabled; }

  [[nodiscard]] int rank() const override { return inner_.rank(); }
  [[nodiscard]] int size() const override { return inner_.size(); }
  void allreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void allreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  void broadcast(
      std::span<double> buffer, int root,
      std::source_location site = std::source_location::current()) override;
  void allgather(
      std::span<const double> input, std::span<double> output,
      std::source_location site = std::source_location::current()) override;
  void barrier(
      std::source_location site = std::source_location::current()) override;
  // Nonblocking posts are fingerprinted *at post time* (the post is the
  // schedule event: kIallreduceSum/Max enter the engine sequence space the
  // moment they are issued, so a rank posting while another blocks is
  // caught as divergence).  When a post lands on an epoch boundary, the
  // hash exchange is deferred to the handle's first wait -- an aux
  // collective cannot run while the payload is still in flight -- and the
  // rolling hash compared is the one *through the due post*, so later
  // pipelined posts never blur the epoch.
  dist::CommHandle iallreduce_sum(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  dist::CommHandle iallreduce_max(
      std::span<double> inout,
      std::source_location site = std::source_location::current()) override;
  [[nodiscard]] const dist::CommStats& stats() const override {
    return inner_.stats();
  }
  [[nodiscard]] std::string backend_name() const override {
    return inner_.backend_name() + "+check";
  }

 private:
  friend class EpochOp;

  /// Records the call in the tracker and returns whether an epoch
  /// exchange is due after it completes.
  bool track(CollectiveKind kind, std::uint64_t words, std::uint64_t extra,
             const std::source_location& site, Fingerprint* fp);
  /// Cross-checks the engine-space rolling hash (through `last`) across
  /// ranks; throws ContractViolation naming this rank, the fleet hashes,
  /// and the last collective's call site on divergence.
  void epoch_exchange(const Fingerprint& last);
  /// Shared body of the iallreduce posts.
  dist::CommHandle post_iallreduce(std::span<double> inout, bool use_max,
                                   const std::source_location& site);

  dist::Communicator& inner_;
  CheckOptions opts_;
  SequenceTracker tracker_;
  std::uint64_t engine_calls_ = 0;
  obs::Counter& exchanges_;  ///< "check.epoch_exchanges"
};

}  // namespace rcf::check
