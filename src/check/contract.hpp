// Cross-rank collective-contract board.
//
// The threaded communicator backend piggybacks a fingerprint exchange on
// every collective when checking is enabled: each rank publishes the
// Fingerprint of the call it is about to make into its board slot, all
// ranks rendezvous (with the shared stall timeout, so a rank that never
// issues the collective is reported as a deadlock instead of hanging the
// world), and every rank then compares its fingerprint against every
// slot *before any payload moves*.  Because all ranks see the identical
// slot array, a mismatch is detected symmetrically -- every rank throws
// the same ContractViolation naming the first disagreeing rank pair and
// both call sites -- and the corrupted collective never executes.
#pragma once

#include <string>
#include <vector>

#include "check/fingerprint.hpp"
#include "check/options.hpp"
#include "check/rendezvous.hpp"
#include "common/error.hpp"

namespace rcf::obs {
class Counter;
}

namespace rcf::check {

/// Ranks disagreed about the collective being issued (kind, payload,
/// sequence position, or call site).
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

class ContractBoard {
 public:
  ContractBoard(int ranks, const CheckOptions& opts);

  /// Publishes `fp` for `rank`, rendezvouses with the other ranks, and
  /// cross-checks all published fingerprints.  Throws ContractViolation on
  /// mismatch (all ranks throw), CommTimeout if some rank never arrives
  /// within the stall timeout, or CommPoisoned after another rank failed.
  void verify(int rank, const Fingerprint& fp);

  /// Propagates an external failure (rank body exception) to all waiters.
  void poison(const std::string& reason) { barrier_.poison(reason); }

  /// Clears poison/arrival state between SPMD runs.
  void reset() { barrier_.reset(); }

  [[nodiscard]] int ranks() const { return ranks_; }

 private:
  int ranks_;
  CheckOptions opts_;
  std::vector<Fingerprint> slots_;
  TimedBarrier barrier_;
  obs::Counter& checked_;     ///< "check.collectives_checked"
  obs::Counter& violations_;  ///< "check.contract_violations"
};

}  // namespace rcf::check
