#include "check/options.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace rcf::check {

namespace {

/// -1 = no override, 0 = forced off, 1 = forced on (ScopedCheckEnable).
std::atomic<int> g_enable_override{-1};

bool parse_bool(const char* value, bool fallback) {
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const std::string v(value);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  return fallback;
}

int parse_int(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < -1 || parsed > 86400000) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

CheckOptions parse_env() {
  CheckOptions opts;
#ifdef RCF_CHECK_DEFAULT
  opts.enabled = true;
#endif
  opts.enabled = parse_bool(std::getenv("RCF_CHECK"), opts.enabled);
  opts.timeout_ms = parse_int(std::getenv("RCF_COMM_TIMEOUT_MS"), 0);
  opts.partition_sample =
      parse_int(std::getenv("RCF_CHECK_SAMPLE"), opts.partition_sample);
  opts.epoch = parse_int(std::getenv("RCF_CHECK_EPOCH"), opts.epoch);
  return opts;
}

}  // namespace

const CheckOptions& options_from_env() {
  static const CheckOptions opts = parse_env();
  return opts;
}

CheckOptions effective_options() {
  CheckOptions opts = options_from_env();
  const int override = g_enable_override.load(std::memory_order_relaxed);
  if (override >= 0) {
    opts.enabled = override != 0;
  }
  if (opts.enabled && opts.timeout_ms <= 0) {
    opts.timeout_ms = kDefaultCheckedTimeoutMs;
  }
  return opts;
}

bool globally_enabled() {
  const int override = g_enable_override.load(std::memory_order_relaxed);
  if (override >= 0) {
    return override != 0;
  }
  return options_from_env().enabled;
}

int timeout_ms_from_env(int fallback) {
  return parse_int(std::getenv("RCF_COMM_TIMEOUT_MS"), fallback);
}

ScopedCheckEnable::ScopedCheckEnable(bool enabled)
    : previous_(g_enable_override.exchange(enabled ? 1 : 0,
                                           std::memory_order_relaxed)) {}

ScopedCheckEnable::~ScopedCheckEnable() {
  g_enable_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace rcf::check
