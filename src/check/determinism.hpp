// Determinism auditor: replay harness for the reproducibility contract.
//
// The engine promises (DESIGN.md "Determinism") that a solve is bitwise
// reproducible run-to-run and across thread-pool widths: kernels partition
// output ranges, so the FP summation order never depends on how many
// workers execute the partition.  Changing the *rank count* is different:
// rank blocks regroup the stage-C partial sums, so cross-rank-count
// agreement is an analytic tolerance, not bitwise identity.
//
// verify_replay executes a list of named runs -- closures returning the
// final iterate as std::vector<double> (the closure owns pool/rank/RNG
// configuration, so this module needs nothing from src/core) -- and
// compares every run against the first:
//
//  * tol == 0: bitwise comparison via the 64-bit pattern, so -0.0 vs 0.0
//    and differing NaN payloads are mismatches too.  Use for width replay
//    ({1, W} workers) and run-to-run replay.
//  * tol > 0: |a - b| <= tol * max(1, |ref|) per element.  Use for rank
//    replay ({1, P} ranks).
//
// The first mismatching element is reported with its index, both values,
// and both bit patterns, which localizes nondeterminism to a coordinate
// instead of a norm.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rcf::check {

/// Two replay runs that must agree did not.
class DeterminismViolation : public Error {
 public:
  explicit DeterminismViolation(const std::string& what) : Error(what) {}
};

/// One run of the replay harness: a name for diagnostics and a closure
/// producing the final iterate.
struct ReplayRun {
  std::string name;
  std::function<std::vector<double>()> run;
};

/// Outcome of a replay comparison; `detail` is empty when ok.
struct ReplayReport {
  bool ok = true;
  std::string detail;
};

/// Executes every run and compares each against the first (see file
/// comment for tol semantics).  Never throws on mismatch; returns the
/// first divergence in `detail`.  Bumps "check.replay_runs" and
/// "check.replay_violations".
[[nodiscard]] ReplayReport verify_replay(const std::vector<ReplayRun>& runs,
                                         double tol = 0.0);

/// verify_replay, but throws DeterminismViolation on mismatch.
void enforce_replay(const std::vector<ReplayRun>& runs, double tol = 0.0);

}  // namespace rcf::check
