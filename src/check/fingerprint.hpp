// Collective-call fingerprints: the unit of comparison of the contract
// checker.
//
// Every collective a checked endpoint issues is summarized as a
// Fingerprint -- operation kind, payload word count, an op-specific extra
// (broadcast root), the call site, a per-space sequence number, and a
// rolling FNV-1a hash chaining all of the above over the endpoint's
// history.  Two ranks executing the same SPMD schedule produce identical
// fingerprint streams; the first divergence (wrong op, wrong payload,
// reordered call, skipped call) differs in at least the rolling hash, so
// comparing fingerprints at a rendezvous pins the *first* bad collective,
// not a later symptom.
//
// Sequence spaces: engine collectives (space 0) and AuxScope collectives
// (space 1, the obs::aggregate traffic layered on top of solves in PR 3)
// are tracked with independent sequence counters and rolling hashes, so
// auxiliary aggregation can never alias or perturb the engine schedule
// it is reporting on -- a rank issuing an aux collective while another
// issues an engine collective is itself a contract violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <source_location>
#include <string>

namespace rcf::check {

enum class CollectiveKind : std::uint8_t {
  kAllreduceSum,
  kAllreduceMax,
  kBroadcast,
  kAllgather,
  kBarrier,
  // Nonblocking posts fingerprint as distinct kinds: a rank posting an
  // iallreduce while another issues the blocking form is a schedule
  // divergence (the overlap structure differs), not an equivalence.
  kIallreduceSum,
  kIallreduceMax,
};

[[nodiscard]] const char* to_string(CollectiveKind kind);

/// FNV-1a over `n` bytes, chained from `h`.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t n,
                                  std::uint64_t h = kFnvOffset);

/// One collective call as seen by a single rank endpoint.
struct Fingerprint {
  CollectiveKind kind = CollectiveKind::kBarrier;
  std::uint8_t space = 0;      ///< 0 = engine, 1 = AuxScope
  std::uint64_t seq = 0;       ///< per-space call index (0-based)
  std::uint64_t words = 0;     ///< payload in doubles
  std::uint64_t extra = 0;     ///< op-specific (broadcast root), else 0
  std::uint64_t site_hash = 0; ///< hash of file:line
  std::uint64_t rolling = 0;   ///< chained hash including this call
  // Diagnostics only (not compared): the call site.
  const char* file = "";
  std::uint32_t line = 0;

  /// Field-wise agreement (everything except the diagnostic site text;
  /// site_hash covers the call site, rolling covers the full history).
  [[nodiscard]] bool matches(const Fingerprint& other) const {
    return kind == other.kind && space == other.space && seq == other.seq &&
           words == other.words && extra == other.extra &&
           site_hash == other.site_hash && rolling == other.rolling;
  }

  /// Human-readable one-liner for diagnostics, e.g.
  /// "allreduce_sum[engine #12] words=132 site=core/distributed.cpp:136".
  [[nodiscard]] std::string describe() const;
};

/// Per-endpoint fingerprint generator: owns the two sequence spaces.
class SequenceTracker {
 public:
  /// Builds the fingerprint of the next collective in the given space and
  /// advances that space's sequence counter and rolling hash.
  Fingerprint next(CollectiveKind kind, std::uint64_t words,
                   std::uint64_t extra, bool aux,
                   const std::source_location& site);

  /// Rolling hash of the given space after the last next() call.
  [[nodiscard]] std::uint64_t rolling(bool aux) const {
    return rolling_[aux ? 1 : 0];
  }

 private:
  std::uint64_t seq_[2] = {0, 0};
  std::uint64_t rolling_[2] = {kFnvOffset, kFnvOffset};
};

}  // namespace rcf::check
