#include "check/contract.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::check {

ContractBoard::ContractBoard(int ranks, const CheckOptions& opts)
    : ranks_(ranks),
      opts_(opts),
      slots_(static_cast<std::size_t>(ranks)),
      barrier_(ranks),
      checked_(obs::MetricsRegistry::global().counter(
          "check.collectives_checked")),
      violations_(obs::MetricsRegistry::global().counter(
          "check.contract_violations")) {
  RCF_CHECK_MSG(ranks >= 1, "ContractBoard: ranks must be >= 1");
}

void ContractBoard::verify(int rank, const Fingerprint& fp) {
  obs::TraceScope span("check.contract");
  slots_[static_cast<std::size_t>(rank)] = fp;
  // Publish rendezvous: a rank that never issues this collective is the
  // deadlock case; the stall timeout turns it into a CommTimeout naming
  // the missing ranks.
  barrier_.arrive_and_wait(rank, opts_.timeout_ms, to_string(fp.kind));
  checked_.add(1);
  for (int r = 0; r < ranks_; ++r) {
    const Fingerprint& theirs = slots_[static_cast<std::size_t>(r)];
    if (!theirs.matches(fp)) {
      violations_.add(1);
      std::string msg =
          "collective contract violation: rank " + std::to_string(rank) +
          " issued " + fp.describe() + " but rank " + std::to_string(r) +
          " issued " + theirs.describe();
      if (fp.rolling != theirs.rolling && fp.seq == theirs.seq &&
          fp.kind == theirs.kind && fp.words == theirs.words &&
          fp.extra == theirs.extra && fp.site_hash == theirs.site_hash) {
        msg += " (current calls agree; the schedules diverged earlier)";
      }
      // Every rank sees the same slots, so every rank throws; no rank
      // proceeds to move data, and no second rendezvous is needed.
      throw ContractViolation(msg);
    }
  }
  // Release rendezvous: slots may be overwritten only after every rank
  // has finished comparing.
  barrier_.arrive_and_wait(rank, opts_.timeout_ms, "contract-release");
}

}  // namespace rcf::check
