#include "check/checked_comm.hpp"

#include <cstdio>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::check {
namespace {

std::string to_hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Rolling hashes travel through a double-payload allreduce, so only the
/// low 52 bits are exchanged (exactly representable in a double).
constexpr std::uint64_t kHashMask = (std::uint64_t{1} << 52) - 1;

}  // namespace

CheckedComm::CheckedComm(dist::Communicator& inner, CheckOptions opts)
    : inner_(inner),
      opts_(opts),
      exchanges_(
          obs::MetricsRegistry::global().counter("check.epoch_exchanges")) {}

bool CheckedComm::track(CollectiveKind kind, std::uint64_t words,
                        std::uint64_t extra, const std::source_location& site,
                        Fingerprint* fp) {
  const bool aux = aux_mode();
  *fp = tracker_.next(kind, words, extra, aux, site);
  if (aux || opts_.epoch <= 0) return false;
  ++engine_calls_;
  return engine_calls_ % static_cast<std::uint64_t>(opts_.epoch) == 0;
}

void CheckedComm::epoch_exchange(const Fingerprint& last) {
  obs::TraceScope span("check.epoch");
  const std::uint64_t h = tracker_.rolling(false) & kHashMask;
  // One max-allreduce of {h, -h} yields both the fleet max and (negated)
  // the fleet min; they agree iff every rank's rolling hash agrees.
  double buf[2] = {static_cast<double>(h), -static_cast<double>(h)};
  {
    dist::Communicator::AuxScope aux(inner_);
    inner_.allreduce_max(std::span<double>(buf, 2));
  }
  exchanges_.add(1);
  const auto fleet_max = static_cast<std::uint64_t>(buf[0]);
  const auto fleet_min = static_cast<std::uint64_t>(-buf[1]);
  if (fleet_max != fleet_min) {
    obs::MetricsRegistry::global().counter("check.contract_violations").add(1);
    throw ContractViolation(
        "collective contract violation: rolling hash diverged across ranks "
        "by engine collective #" +
        std::to_string(engine_calls_) + " (rank " +
        std::to_string(inner_.rank()) + " has " + to_hex(h) +
        ", fleet min " + to_hex(fleet_min) + ", fleet max " +
        to_hex(fleet_max) + "); last collective on this rank was " +
        last.describe());
  }
}

void CheckedComm::allreduce_sum(std::span<double> inout,
                                std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_sum(inout, site);
    return;
  }
  Fingerprint fp;
  const bool due =
      track(CollectiveKind::kAllreduceSum, inout.size(), 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_sum(inout, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::allreduce_max(std::span<double> inout,
                                std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_max(inout, site);
    return;
  }
  Fingerprint fp;
  const bool due =
      track(CollectiveKind::kAllreduceMax, inout.size(), 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_max(inout, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::broadcast(std::span<double> buffer, int root,
                            std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.broadcast(buffer, root, site);
    return;
  }
  Fingerprint fp;
  const bool due = track(CollectiveKind::kBroadcast, buffer.size(),
                         static_cast<std::uint64_t>(root), site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.broadcast(buffer, root, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::allgather(std::span<const double> input,
                            std::span<double> output,
                            std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allgather(input, output, site);
    return;
  }
  Fingerprint fp;
  const bool due =
      track(CollectiveKind::kAllgather, input.size(), 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allgather(input, output, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::barrier(std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.barrier(site);
    return;
  }
  Fingerprint fp;
  const bool due = track(CollectiveKind::kBarrier, 0, 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.barrier(site);
  }
  if (due) epoch_exchange(fp);
}

}  // namespace rcf::check
