#include "check/checked_comm.hpp"

#include <cstdio>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::check {
namespace {

std::string to_hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Rolling hashes travel through a double-payload allreduce, so only the
/// low 52 bits are exchanged (exactly representable in a double).
constexpr std::uint64_t kHashMask = (std::uint64_t{1} << 52) - 1;

}  // namespace

CheckedComm::CheckedComm(dist::Communicator& inner, CheckOptions opts)
    : inner_(inner),
      opts_(opts),
      exchanges_(
          obs::MetricsRegistry::global().counter("check.epoch_exchanges")) {}

bool CheckedComm::track(CollectiveKind kind, std::uint64_t words,
                        std::uint64_t extra, const std::source_location& site,
                        Fingerprint* fp) {
  const bool aux = aux_mode();
  *fp = tracker_.next(kind, words, extra, aux, site);
  if (aux || opts_.epoch <= 0) return false;
  ++engine_calls_;
  return engine_calls_ % static_cast<std::uint64_t>(opts_.epoch) == 0;
}

void CheckedComm::epoch_exchange(const Fingerprint& last) {
  obs::TraceScope span("check.epoch");
  // Hash *through the due collective* (last.rolling), not the tracker's
  // current head: on the pipelined path later posts may already have
  // advanced the rolling hash by the time the epoch handle is waited, and
  // every rank must compare the same prefix.
  const std::uint64_t h = last.rolling & kHashMask;
  // One max-allreduce of {h, -h} yields both the fleet max and (negated)
  // the fleet min; they agree iff every rank's rolling hash agrees.
  double buf[2] = {static_cast<double>(h), -static_cast<double>(h)};
  {
    dist::Communicator::AuxScope aux(inner_);
    inner_.allreduce_max(std::span<double>(buf, 2));
  }
  exchanges_.add(1);
  const auto fleet_max = static_cast<std::uint64_t>(buf[0]);
  const auto fleet_min = static_cast<std::uint64_t>(-buf[1]);
  if (fleet_max != fleet_min) {
    obs::MetricsRegistry::global().counter("check.contract_violations").add(1);
    throw ContractViolation(
        "collective contract violation: rolling hash diverged across ranks "
        "by engine collective #" +
        std::to_string(engine_calls_) + " (rank " +
        std::to_string(inner_.rank()) + " has " + to_hex(h) +
        ", fleet min " + to_hex(fleet_min) + ", fleet max " +
        to_hex(fleet_max) + "); last collective on this rank was " +
        last.describe());
  }
}

/// Handle wrapper for a post that landed on an epoch boundary: the first
/// successful wait additionally runs the deferred hash exchange.  One-shot
/// -- a repeated wait must not re-exchange (the aux schedule would diverge
/// from ranks that waited once).
class EpochOp final : public dist::detail::PendingOp {
 public:
  EpochOp(CheckedComm* owner, std::shared_ptr<dist::detail::PendingOp> inner,
          const Fingerprint& fp)
      : owner_(owner), inner_(std::move(inner)), fp_(fp) {}

  void wait() override {
    inner_->wait();
    if (!exchanged_) {
      exchanged_ = true;
      owner_->epoch_exchange(fp_);
    }
  }
  [[nodiscard]] bool test() override { return inner_->test(); }
  [[nodiscard]] std::size_t words() const override { return inner_->words(); }

 private:
  CheckedComm* owner_;
  std::shared_ptr<dist::detail::PendingOp> inner_;
  Fingerprint fp_;
  bool exchanged_ = false;
};

dist::CommHandle CheckedComm::post_iallreduce(std::span<double> inout,
                                              bool use_max,
                                              const std::source_location& site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    return use_max ? inner_.iallreduce_max(inout, site)
                   : inner_.iallreduce_sum(inout, site);
  }
  Fingerprint fp;
  const bool due = track(use_max ? CollectiveKind::kIallreduceMax
                                 : CollectiveKind::kIallreduceSum,
                         inout.size(), 0, site, &fp);
  dist::CommHandle handle;
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    handle = use_max ? inner_.iallreduce_max(inout, site)
                     : inner_.iallreduce_sum(inout, site);
  }
  if (!due || !handle.valid()) {
    return handle;
  }
  return dist::CommHandle(std::make_shared<EpochOp>(this, handle.op(), fp));
}

dist::CommHandle CheckedComm::iallreduce_sum(std::span<double> inout,
                                             std::source_location site) {
  return post_iallreduce(inout, /*use_max=*/false, site);
}

dist::CommHandle CheckedComm::iallreduce_max(std::span<double> inout,
                                             std::source_location site) {
  return post_iallreduce(inout, /*use_max=*/true, site);
}

void CheckedComm::allreduce_sum(std::span<double> inout,
                                std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_sum(inout, site);
    return;
  }
  Fingerprint fp;
  const bool due =
      track(CollectiveKind::kAllreduceSum, inout.size(), 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_sum(inout, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::allreduce_max(std::span<double> inout,
                                std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_max(inout, site);
    return;
  }
  Fingerprint fp;
  const bool due =
      track(CollectiveKind::kAllreduceMax, inout.size(), 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allreduce_max(inout, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::broadcast(std::span<double> buffer, int root,
                            std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.broadcast(buffer, root, site);
    return;
  }
  Fingerprint fp;
  const bool due = track(CollectiveKind::kBroadcast, buffer.size(),
                         static_cast<std::uint64_t>(root), site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.broadcast(buffer, root, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::allgather(std::span<const double> input,
                            std::span<double> output,
                            std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allgather(input, output, site);
    return;
  }
  Fingerprint fp;
  const bool due =
      track(CollectiveKind::kAllgather, input.size(), 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.allgather(input, output, site);
  }
  if (due) epoch_exchange(fp);
}

void CheckedComm::barrier(std::source_location site) {
  if (!opts_.enabled) {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.barrier(site);
    return;
  }
  Fingerprint fp;
  const bool due = track(CollectiveKind::kBarrier, 0, 0, site, &fp);
  {
    std::optional<dist::Communicator::AuxScope> fwd;
    if (aux_mode()) fwd.emplace(inner_);
    inner_.barrier(site);
  }
  if (due) epoch_exchange(fp);
}

}  // namespace rcf::check
