// Partition auditor: shadow ownership maps for parallel output ranges.
//
// The determinism contract (DESIGN.md "Determinism") requires every
// parallel kernel to write a disjoint, exhaustive partition of its output
// range -- overlap is a data race, a gap is silent garbage.  PartitionAudit
// replays a dispatch's range computation into a shadow owner array and
// reports the first index claimed twice (naming both claimants) or never
// claimed.  The audit is O(n) in the partitioned range, so dispatch sites
// gate it behind partition_audit_due(): with checking enabled, every Nth
// eligible dispatch per process (CheckOptions::partition_sample, env
// RCF_CHECK_SAMPLE) pays for a full audit; the rest pay one relaxed
// atomic increment.  Disabled, the cost is one relaxed atomic load.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace rcf::check {

/// A parallel dispatch's output ranges overlap or leave a gap.
class PartitionViolation : public Error {
 public:
  explicit PartitionViolation(const std::string& what) : Error(what) {}
};

/// Shadow write-bitmap over an output range of `n` indices.
class PartitionAudit {
 public:
  /// `label` names the dispatch in diagnostics (e.g. "dist.apply_grad").
  PartitionAudit(std::string label, std::size_t n);

  /// Claims [begin, end) for `part`.  Throws PartitionViolation on the
  /// first index already claimed, naming both parts and the index, or on
  /// an out-of-bounds range.
  void mark(std::size_t part, std::size_t begin, std::size_t end);

  /// Verifies every index was claimed; throws PartitionViolation naming
  /// the first gap otherwise.
  void finish() const;

 private:
  std::string label_;
  std::vector<std::ptrdiff_t> owner_;  ///< -1 = unclaimed, else part index
};

/// Sampled gate for dispatch-site audits: true when checking is enabled
/// and this call is the Nth eligible dispatch (N = partition_sample from
/// effective options; <= 0 never).  Shared process-wide counter, so the
/// sample spreads across all dispatch sites.
[[nodiscard]] bool partition_audit_due();

/// Audits a `parts`-way partition of [0, n): replays `range(part)` ->
/// [begin, end) for every part into a PartitionAudit and checks
/// disjointness and coverage.  Bumps "check.partition_audits" /
/// "check.partition_violations" and traces under "check.partition".
/// Throws PartitionViolation on the first defect.
void audit_partition(
    const std::string& label, std::size_t n, std::size_t parts,
    const std::function<std::pair<std::size_t, std::size_t>(std::size_t)>&
        range);

}  // namespace rcf::check
