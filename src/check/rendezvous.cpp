#include "check/rendezvous.hpp"

#include <algorithm>
#include <chrono>

namespace rcf::check {

TimedBarrier::TimedBarrier(int parties)
    : parties_(parties),
      arrived_(static_cast<std::size_t>(std::max(parties, 1)), 0) {
  RCF_CHECK_MSG(parties >= 1, "TimedBarrier: parties must be >= 1");
}

void TimedBarrier::arrive_and_wait(int rank, int timeout_ms,
                                   const char* what) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) {
    throw CommPoisoned(reason_);
  }
  if (rank >= 0 && rank < parties_) {
    arrived_[static_cast<std::size_t>(rank)] = 1;
  }
  if (++arrived_count_ == parties_) {
    arrived_count_ = 0;
    std::fill(arrived_.begin(), arrived_.end(), std::uint8_t{0});
    ++generation_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t gen = generation_;
  const auto released = [this, gen] {
    return poisoned_ || generation_ != gen;
  };
  if (timeout_ms <= 0) {
    cv_.wait(lock, released);
  } else if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           released)) {
    std::string missing;
    for (int r = 0; r < parties_; ++r) {
      if (arrived_[static_cast<std::size_t>(r)] == 0) {
        if (!missing.empty()) {
          missing += ", ";
        }
        missing += std::to_string(r);
      }
    }
    std::string msg = "collective stall: rank " + std::to_string(rank) +
                      " waited " + std::to_string(timeout_ms) + " ms in " +
                      (what != nullptr ? what : "rendezvous") +
                      "; missing ranks: [" + missing +
                      "] never arrived (deadlock or divergent schedule)";
    poisoned_ = true;
    reason_ = msg;
    cv_.notify_all();
    throw CommTimeout(msg);
  }
  // Released: completion wins over a poison that arrived afterwards.
  if (generation_ == gen && poisoned_) {
    throw CommPoisoned(reason_);
  }
}

void TimedBarrier::poison(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_) {
      poisoned_ = true;
      reason_ = "collective rendezvous poisoned: " + reason;
    }
  }
  cv_.notify_all();
}

bool TimedBarrier::poisoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

void TimedBarrier::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  poisoned_ = false;
  reason_.clear();
  arrived_count_ = 0;
  std::fill(arrived_.begin(), arrived_.end(), std::uint8_t{0});
}

}  // namespace rcf::check
