#include "check/partition.hpp"

#include <atomic>

#include "check/options.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::check {

PartitionAudit::PartitionAudit(std::string label, std::size_t n)
    : label_(std::move(label)), owner_(n, -1) {}

void PartitionAudit::mark(std::size_t part, std::size_t begin,
                          std::size_t end) {
  if (begin > end || end > owner_.size()) {
    throw PartitionViolation(
        "partition violation in " + label_ + ": part " +
        std::to_string(part) + " claims out-of-bounds range [" +
        std::to_string(begin) + ", " + std::to_string(end) + ") of " +
        std::to_string(owner_.size()) + " indices");
  }
  for (std::size_t i = begin; i < end; ++i) {
    if (owner_[i] != -1) {
      throw PartitionViolation(
          "partition violation in " + label_ + ": index " +
          std::to_string(i) + " claimed by both part " +
          std::to_string(owner_[i]) + " and part " + std::to_string(part));
    }
    owner_[i] = static_cast<std::ptrdiff_t>(part);
  }
}

void PartitionAudit::finish() const {
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == -1) {
      throw PartitionViolation("partition violation in " + label_ +
                               ": index " + std::to_string(i) +
                               " is claimed by no part (coverage gap)");
    }
  }
}

bool partition_audit_due() {
  // One shared counter across all dispatch sites; relaxed is fine, the
  // sample only has to be roughly every Nth dispatch, not exact.
  static std::atomic<std::uint64_t> dispatches{0};
  if (!globally_enabled()) return false;
  const int sample = effective_options().partition_sample;
  if (sample <= 0) return false;
  const std::uint64_t tick =
      dispatches.fetch_add(1, std::memory_order_relaxed);
  return tick % static_cast<std::uint64_t>(sample) == 0;
}

void audit_partition(
    const std::string& label, std::size_t n, std::size_t parts,
    const std::function<std::pair<std::size_t, std::size_t>(std::size_t)>&
        range) {
  obs::TraceScope span("check.partition");
  obs::MetricsRegistry::global().counter("check.partition_audits").add(1);
  try {
    PartitionAudit audit(label, n);
    for (std::size_t part = 0; part < parts; ++part) {
      const auto [begin, end] = range(part);
      audit.mark(part, begin, end);
    }
    audit.finish();
  } catch (const PartitionViolation&) {
    obs::MetricsRegistry::global()
        .counter("check.partition_violations")
        .add(1);
    throw;
  }
}

}  // namespace rcf::check
