// Runtime configuration of the verification layer (rcf_check).
//
// The checkers are a debug-build tool: everything in src/check is a no-op
// unless checking is enabled, and the only cost on the disabled path is a
// relaxed atomic load (partition gate) or a null-pointer test (contract
// board).  Enablement sources, in precedence order:
//
//  1. ScopedCheckEnable -- a test-scoped override (forces on or off).
//  2. RCF_CHECK environment variable ("1"/"true"/"on" / "0"/"false"/"off").
//  3. The RCF_CHECK_DEFAULT compile definition (set by the CMake option of
//     the same name, intended for Debug builds).
//
// The rendezvous stall timeout is shared with the threaded communicator
// backend: RCF_COMM_TIMEOUT_MS bounds every collective rendezvous whether
// or not the contract checker is on (0 = wait forever, the historical
// behaviour), and the checker reuses the same value for its fingerprint
// exchange so a deadlocked collective is reported instead of hanging.
#pragma once

namespace rcf::check {

/// Tuning knobs of the verification layer.  Default-constructed values
/// reflect the environment (see options_from_env / effective_options).
struct CheckOptions {
  /// Master switch for the collective-contract checker and the partition
  /// auditor.  Off = all checkers are no-ops.
  bool enabled = false;

  /// Rendezvous stall timeout in milliseconds (RCF_COMM_TIMEOUT_MS).
  /// <= 0 waits forever.  When checking is enabled and the environment
  /// does not override it, effective_options() substitutes
  /// kDefaultCheckedTimeoutMs so deadlocks are always diagnosed.
  int timeout_ms = 0;

  /// Audit every Nth eligible exec partition dispatch (RCF_CHECK_SAMPLE);
  /// 1 audits every dispatch, <= 0 disables the partition auditor.
  int partition_sample = 16;

  /// CheckedComm cross-checks the rolling sequence hash across ranks every
  /// `epoch` engine-space collectives (RCF_CHECK_EPOCH); <= 0 disables the
  /// epoch exchange (the threaded backend's per-call fingerprint exchange
  /// is unaffected).
  int epoch = 8;
};

/// Timeout substituted when checking is on but RCF_COMM_TIMEOUT_MS is
/// unset: long enough for any Debug-build collective, short enough that a
/// wedged CI job fails with a diagnostic instead of a runner timeout.
inline constexpr int kDefaultCheckedTimeoutMs = 30000;

/// Options parsed from the environment once per process (no overrides
/// applied).  `timeout_ms` is 0 when RCF_COMM_TIMEOUT_MS is unset.
[[nodiscard]] const CheckOptions& options_from_env();

/// options_from_env() with the ScopedCheckEnable override applied to
/// `enabled` and the checked-default timeout substituted when enabled.
[[nodiscard]] CheckOptions effective_options();

/// Fast gate equivalent to effective_options().enabled.
[[nodiscard]] bool globally_enabled();

/// RCF_COMM_TIMEOUT_MS, or `fallback` when unset/unparseable.
[[nodiscard]] int timeout_ms_from_env(int fallback);

/// Test-scoped enable/disable override for the whole verification layer
/// (nests; restores the previous override on destruction).  Lets the test
/// suite exercise the RCF_CHECK=1 configuration without mutating the
/// process environment.
class ScopedCheckEnable {
 public:
  explicit ScopedCheckEnable(bool enabled);
  ScopedCheckEnable(const ScopedCheckEnable&) = delete;
  ScopedCheckEnable& operator=(const ScopedCheckEnable&) = delete;
  ~ScopedCheckEnable();

 private:
  int previous_;
};

}  // namespace rcf::check
