#include "check/determinism.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcf::check {
namespace {

std::string describe_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g (bits 0x%016llx)", v,
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

/// First mismatching index between `ref` and `got`, or npos.
std::size_t first_mismatch(const std::vector<double>& ref,
                           const std::vector<double>& got, double tol) {
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (tol == 0.0) {
      if (std::bit_cast<std::uint64_t>(ref[i]) !=
          std::bit_cast<std::uint64_t>(got[i])) {
        return i;
      }
    } else if (!(std::abs(ref[i] - got[i]) <=
                 tol * std::max(1.0, std::abs(ref[i])))) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

ReplayReport verify_replay(const std::vector<ReplayRun>& runs, double tol) {
  obs::TraceScope span("check.replay");
  auto& run_counter = obs::MetricsRegistry::global().counter("check.replay_runs");
  ReplayReport report;
  if (runs.empty()) return report;

  std::vector<double> ref = runs.front().run();
  run_counter.add(1);
  for (std::size_t r = 1; r < runs.size(); ++r) {
    std::vector<double> got = runs[r].run();
    run_counter.add(1);
    std::string detail;
    if (got.size() != ref.size()) {
      detail = "replay size mismatch: run '" + runs.front().name +
               "' produced " + std::to_string(ref.size()) +
               " elements but run '" + runs[r].name + "' produced " +
               std::to_string(got.size());
    } else if (const std::size_t i = first_mismatch(ref, got, tol);
               i != static_cast<std::size_t>(-1)) {
      detail = "replay divergence at element " + std::to_string(i) +
               ": run '" + runs.front().name + "' has " +
               describe_value(ref[i]) + " but run '" + runs[r].name +
               "' has " + describe_value(got[i]) +
               (tol == 0.0 ? " (bitwise comparison)"
                           : " (tolerance " + std::to_string(tol) + ")");
    }
    if (!detail.empty()) {
      obs::MetricsRegistry::global()
          .counter("check.replay_violations")
          .add(1);
      report.ok = false;
      report.detail = std::move(detail);
      return report;
    }
  }
  return report;
}

void enforce_replay(const std::vector<ReplayRun>& runs, double tol) {
  const ReplayReport report = verify_replay(runs, tol);
  if (!report.ok) throw DeterminismViolation(report.detail);
}

}  // namespace rcf::check
