// Public solver entry points.
//
// All solvers run sequentially while charging the alpha-beta-gamma cost
// model for `opts.procs` logical processors; see core/distributed.hpp for
// the genuinely multi-threaded SPMD execution used in validation.
#pragma once

#include "core/engine.hpp"
#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/result.hpp"

namespace rcf::core {

/// ISTA: proximal gradient without momentum.  Ignores opts.momentum / k / s.
SolveResult solve_ista(const LassoProblem& problem, SolverOptions opts);

/// FISTA (Alg. 2), run distributed-style with full batches (b = 1).
/// Ignores opts.sampling_rate / k / s.
SolveResult solve_fista(const LassoProblem& problem, SolverOptions opts);

/// SFISTA (Alg. 3/4): stochastic FISTA with sampling rate opts.sampling_rate
/// and one communication round per iteration (k = 1, S = 1).
SolveResult solve_sfista(const LassoProblem& problem, SolverOptions opts);

/// RC-SFISTA (Alg. 5): iteration-overlapping (opts.k) + Hessian-reuse
/// (opts.s) on top of SFISTA.  The paper's main contribution.
SolveResult solve_rc_sfista(const LassoProblem& problem,
                            const SolverOptions& opts);

/// Options for the high-accuracy reference solve (the paper's TFOCS role).
struct ReferenceOptions {
  int max_iters = 100000;
  /// Stop when the relative objective decrease over a 10-iteration window
  /// falls below this.
  double rel_change_tol = 1e-14;
};

/// Computes a high-accuracy optimum w* / F(w*) with deterministic FISTA on
/// the precomputed full Gram matrix.  Used to evaluate the relative
/// objective error e_n = |F(w_n) - F(w*)| / F(w*) of every experiment.
SolveResult solve_reference(const LassoProblem& problem,
                            const ReferenceOptions& opts = {});

}  // namespace rcf::core
