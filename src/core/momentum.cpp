#include "core/momentum.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rcf::core {

MomentumSchedule::MomentumSchedule(MomentumRule rule) : rule_(rule) {
  t_.push_back(1.0);  // t_0 = 1 (Alg. 2 line 1)
}

void MomentumSchedule::extend(int n) const {
  while (static_cast<int>(t_.size()) <= n) {
    const double prev = t_.back();
    double next = 1.0;
    switch (rule_) {
      case MomentumRule::kFista:
        next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * prev * prev));
        break;
      case MomentumRule::kPaperTypo:
        next = 0.5 * (1.0 + std::sqrt(1.0 + prev * prev));
        break;
      case MomentumRule::kNone:
        next = 1.0;  // keeps mu == 0 forever
        break;
    }
    t_.push_back(next);
  }
}

double MomentumSchedule::t(int n) const {
  RCF_CHECK_MSG(n >= 0, "MomentumSchedule::t: n must be >= 0");
  extend(n);
  return t_[static_cast<std::size_t>(n)];
}

double MomentumSchedule::mu(int n) const {
  RCF_CHECK_MSG(n >= 1, "MomentumSchedule::mu: n must be >= 1");
  extend(n);
  return (t_[static_cast<std::size_t>(n) - 1] - 1.0) /
         t_[static_cast<std::size_t>(n)];
}

}  // namespace rcf::core
