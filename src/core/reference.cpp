// High-accuracy reference solver (the TFOCS substitute; see DESIGN.md).
//
// Deterministic FISTA on the quadratic form with the exact precomputed Gram
// matrix H = (1/m) X X^T -- the cheapest path to machine-precision optima
// for d up to a few thousand, independent of m.

#include <cmath>

#include "common/timer.hpp"
#include "core/momentum.hpp"
#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "prox/operators.hpp"

namespace rcf::core {

SolveResult solve_reference(const LassoProblem& problem,
                            const ReferenceOptions& opts) {
  WallTimer wall;
  const std::size_t d = problem.dim();
  const la::Matrix& h = problem.full_hessian();
  const la::Vector& r = problem.full_rhs();
  const double gamma = 1.0 / problem.lipschitz();
  const double lambda_gamma = problem.lambda() * gamma;
  const MomentumSchedule mu(MomentumRule::kFista);

  la::Vector w(d), w_prev(d), v(d), grad(d), theta(d);
  double prev_window_obj = problem.objective(w.span());

  SolveResult result;
  result.solver = "reference";

  // FISTA with O'Donoghue-Candes gradient-based adaptive restart: reset the
  // momentum counter whenever the momentum direction opposes the latest
  // step.  Gives effectively linear convergence on sparse solutions, which
  // is what a 1e-14 reference tolerance needs.
  constexpr int kWindow = 10;
  int momentum_n = 0;
  int n = 0;
  for (n = 1; n <= opts.max_iters; ++n) {
    ++momentum_n;
    const double m_n = mu.mu(momentum_n);
    // v_n = w_{n-1} + mu_n (w_{n-1} - w_{n-2})
    la::waxpby(1.0 + m_n, w.span(), -m_n, w_prev.span(), v.span());
    la::gemv(1.0, h, v.span(), 0.0, grad.span());
    la::axpy(-1.0, r.span(), grad.span());
    la::waxpby(1.0, v.span(), -gamma, grad.span(), theta.span());
    std::swap(w, w_prev);
    prox::soft_threshold(theta.span(), lambda_gamma, w.span());

    // Restart test: <v - w_new, w_new - w_old> > 0.
    double dot_restart = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      dot_restart += (v[i] - w[i]) * (w[i] - w_prev[i]);
    }
    if (dot_restart > 0.0) {
      momentum_n = 0;
      la::copy(w.span(), w_prev.span());
    }

    if (n % kWindow == 0) {
      const double obj = problem.objective(w.span());
      const double denom = std::max(std::abs(obj), 1e-300);
      if (std::abs(prev_window_obj - obj) <= opts.rel_change_tol * denom) {
        result.converged = true;
        break;
      }
      prev_window_obj = obj;
    }
  }

  result.w = w;
  result.iterations = std::min(n, opts.max_iters);
  result.objective = problem.objective(w.span());
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace rcf::core
