#include "core/problem.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "sparse/gram.hpp"

namespace rcf::core {

LassoProblem::LassoProblem(const data::Dataset& dataset, double lambda)
    : dataset_(&dataset), lambda_(lambda) {
  RCF_CHECK_MSG(lambda >= 0.0, "LassoProblem: lambda must be >= 0");
  dataset.validate();
}

double LassoProblem::smooth_value(std::span<const double> w) const {
  RCF_CHECK_MSG(w.size() == dim(), "objective: wrong dimension");
  const std::size_t m = num_samples();
  std::vector<double> residual(m);
  xt().spmv(w, residual);  // X^T w
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double r = residual[i] - y()[i];
    acc += r * r;
  }
  return acc / (2.0 * static_cast<double>(m));
}

double LassoProblem::objective(std::span<const double> w) const {
  return smooth_value(w) + lambda_ * la::asum(w);
}

void LassoProblem::full_gradient(std::span<const double> w,
                                 std::span<double> out) const {
  RCF_CHECK_MSG(w.size() == dim() && out.size() == dim(),
                "full_gradient: wrong dimension");
  const std::size_t m = num_samples();
  std::vector<double> residual(m);
  xt().spmv(w, residual);  // X^T w
  for (std::size_t i = 0; i < m; ++i) {
    residual[i] -= y()[i];
  }
  xt().spmv_t(residual, out);  // X (X^T w - y)
  la::scal(1.0 / static_cast<double>(m), out);
}

double LassoProblem::lipschitz() const {
  if (!lipschitz_) {
    const std::size_t m = num_samples();
    std::vector<double> tmp(m);
    const auto result = la::power_iteration(
        [this, &tmp](std::span<const double> v, std::span<double> hv) {
          xt().spmv(v, tmp);
          xt().spmv_t(tmp, hv);
          la::scal(1.0 / static_cast<double>(num_samples()), hv);
        },
        dim(), /*max_iters=*/300, /*tol=*/1e-9);
    lipschitz_ = std::max(result.eigenvalue, 1e-300);
  }
  return *lipschitz_;
}

const la::Matrix& LassoProblem::full_hessian() const {
  if (!hessian_) {
    la::Matrix h(dim(), dim());
    la::Vector r(dim());
    sparse::full_gram(xt(), y().span(), h, r.span());
    hessian_ = std::move(h);
    rhs_ = std::move(r);
  }
  return *hessian_;
}

const la::Vector& LassoProblem::full_rhs() const {
  if (!rhs_) {
    (void)full_hessian();  // builds both
  }
  return *rhs_;
}

double LassoProblem::lambda_max() const {
  std::vector<double> xy(dim());
  xt().spmv_t(y().span(), xy);
  return la::amax(xy) / static_cast<double>(num_samples());
}

double LassoProblem::theorem1_step_bound(std::size_t mbar) const {
  const auto m = static_cast<double>(num_samples());
  const auto mb = static_cast<double>(mbar);
  RCF_CHECK_MSG(mbar >= 1 && mb <= m, "theorem1_step_bound: bad mbar");
  const double l = lipschitz();
  if (m <= 1.0) {
    return 1.0 / l;
  }
  const double variance_term =
      std::sqrt(0.25 + 4.0 * l * l * (m - mb) / (mb * (m - 1.0)));
  const double inv_gamma = std::max(0.5 * l + variance_term, l);
  return 1.0 / inv_gamma;
}

}  // namespace rcf::core
