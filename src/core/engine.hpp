// The unified RC-SFISTA execution engine (paper Alg. 5).
//
// One engine implements the whole solver family because the communication-
// avoiding reformulations are *schedules*, not different arithmetic:
//
//   * k = 1, S = 1, b = 1      -> distributed FISTA (Alg. 2)
//   * k = 1, S = 1, b < 1      -> SFISTA (Alg. 4)
//   * k > 1                    -> iteration-overlapping RC-SFISTA
//   * S > 1                    -> Hessian-reuse RC-SFISTA
//   * variance_reduction       -> the Eq. 9 gradient estimator (Alg. 3)
//
// Because the per-iteration update code and the (seed, iteration)-keyed
// sampling are shared, runs with different k produce bitwise identical
// iterates -- the exact-arithmetic identity behind Fig. 2(b), testable at
// EXPECT_EQ level.
#pragma once

#include <string>

#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/result.hpp"

namespace rcf::core {

/// Runs the engine on `problem` under `opts`; `solver_name` labels the
/// result.  Throws InvalidArgument for inconsistent options.
SolveResult run_sfista_engine(const LassoProblem& problem,
                              const SolverOptions& opts,
                              const std::string& solver_name);

/// Validates engine options against a problem (exposed for the wrappers).
void validate_options(const LassoProblem& problem, const SolverOptions& opts);

/// The engine's automatic step size: opts.step_size if set, otherwise
/// step_scale over the larger of the full-Gram Lipschitz constant and a
/// probed spectral norm of sampled Gram draws (individual H_S can exceed L
/// substantially when mbar is small relative to d).  Shared by the
/// sequential engine and the distributed SPMD path so both run the exact
/// same trajectory.
double auto_step_size(const LassoProblem& problem, const SolverOptions& opts,
                      std::size_t mbar);

}  // namespace rcf::core
