// l1-regularized logistic regression and its proximal Newton solver.
//
// The paper's framework (§2.1) covers general empirical risk minimization;
// this module is the natural extension beyond least squares:
//
//   min_w F(w) = (1/m) sum_i log(1 + exp(-y_i x_i^T w)) + lambda ||w||_1
//
// with y_i in {-1, +1}.  Gradient and Hessian:
//
//   grad f(w) = -(1/m) X diag(y) s,   s_i = sigma(-y_i x_i^T w)
//   H(w)      =  (1/m) X D X^T,       D_ii = sigma_i (1 - sigma_i)
//
// The proximal Newton driver mirrors Alg. 1: per outer iteration the exact
// gradient is computed distributed (two SpMVs + a d-word allreduce), the
// weighted Hessian is estimated by uniform sampling (one d^2 allreduce, or
// k-overlapped blocks with the RC-SFISTA inner solver), and the quadratic
// subproblem is solved with FISTA.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/options.hpp"
#include "core/result.hpp"
#include "data/dataset.hpp"
#include "la/matrix.hpp"
#include "la/vector.hpp"

namespace rcf::core {

class LogisticProblem {
 public:
  /// Keeps a reference to `dataset`; labels must be in {-1, +1}.
  LogisticProblem(const data::Dataset& dataset, double lambda);

  [[nodiscard]] std::size_t dim() const { return dataset_->num_features(); }
  [[nodiscard]] std::size_t num_samples() const {
    return dataset_->num_samples();
  }
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] const data::Dataset& dataset() const { return *dataset_; }

  /// F(w) = f(w) + lambda ||w||_1.
  [[nodiscard]] double objective(std::span<const double> w) const;

  /// f(w), the mean logistic loss.
  [[nodiscard]] double smooth_value(std::span<const double> w) const;

  /// out = grad f(w); also fills `hessian_weights` (length m) with the
  /// diagonal D_ii = sigma_i (1 - sigma_i) at w when non-null.
  void gradient(std::span<const double> w, std::span<double> out,
                std::span<double> hessian_weights = {}) const;

  /// Global Lipschitz bound of grad f: lambda_max((1/4m) X X^T).
  [[nodiscard]] double lipschitz() const;

 private:
  const data::Dataset* dataset_;
  double lambda_;
  mutable std::optional<double> lipschitz_;
};

/// Proximal Newton (Alg. 1) on the logistic problem.  Honors the same
/// PnOptions as the least-squares driver, including the choice of inner
/// solver and the k / S communication parameters.
SolveResult solve_logistic_prox_newton(const LogisticProblem& problem,
                                       const PnOptions& opts);

/// Accelerated proximal gradient baseline / reference for the logistic
/// problem (FISTA with adaptive restart on the exact gradient).
SolveResult solve_logistic_fista(const LogisticProblem& problem,
                                 int max_iters = 20000,
                                 double rel_change_tol = 1e-13);

}  // namespace rcf::core
