// ProxCoCoA baseline (Smith et al. 2015, the paper's §5.4 comparison).
//
// Primal block-separable CoCoA for the lasso: the d coordinates of w are
// partitioned across P workers; each round every worker runs local
// coordinate descent on its block against a round-stale shared residual,
// and the residual updates are combined with one allreduce of an m-vector.
//
// Communication shape per round: L = O(log P) messages, W = O(m log P)
// words -- note m (sample count) words rather than RC-SFISTA's d^2, which is
// the structural reason the two methods trade differently with the data
// shape.  The "adding" aggregation (sigma' = P) scales each worker's local
// quadratic term by P, which is what makes CoCoA's per-round progress
// conservative at large P (the slow convergence visible in Fig. 6).
#pragma once

#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/result.hpp"

namespace rcf::core {

SolveResult solve_prox_cocoa(const LassoProblem& problem,
                             const CocoaOptions& opts);

}  // namespace rcf::core
