#include "core/logistic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/momentum.hpp"
#include "data/partition.hpp"
#include "exec/pool.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "prox/operators.hpp"
#include "sparse/gram.hpp"

namespace rcf::core {

namespace {

using model::Phase;

/// Numerically stable log(1 + exp(z)).
inline double log1p_exp(double z) {
  if (z > 0.0) {
    return z + std::log1p(std::exp(-z));
  }
  return std::log1p(std::exp(z));
}

/// Numerically stable logistic sigmoid.
inline double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticProblem::LogisticProblem(const data::Dataset& dataset, double lambda)
    : dataset_(&dataset), lambda_(lambda) {
  RCF_CHECK_MSG(lambda >= 0.0, "LogisticProblem: lambda must be >= 0");
  dataset.validate();
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    RCF_CHECK_MSG(dataset.y[i] == 1.0 || dataset.y[i] == -1.0,
                  "LogisticProblem: labels must be +-1");
  }
}

double LogisticProblem::smooth_value(std::span<const double> w) const {
  RCF_CHECK_MSG(w.size() == dim(), "logistic: wrong dimension");
  const std::size_t m = num_samples();
  std::vector<double> z(m);
  dataset_->xt.spmv(w, z);
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    acc += log1p_exp(-dataset_->y[i] * z[i]);
  }
  return acc / static_cast<double>(m);
}

double LogisticProblem::objective(std::span<const double> w) const {
  return smooth_value(w) + lambda_ * la::asum(w);
}

void LogisticProblem::gradient(std::span<const double> w,
                               std::span<double> out,
                               std::span<double> hessian_weights) const {
  RCF_CHECK_MSG(w.size() == dim() && out.size() == dim(),
                "logistic gradient: wrong dimension");
  const std::size_t m = num_samples();
  std::vector<double> z(m);
  dataset_->xt.spmv(w, z);
  // residual_i = -y_i sigma(-y_i z_i); grad = (1/m) X^T' residual.
  for (std::size_t i = 0; i < m; ++i) {
    const double s = sigmoid(-dataset_->y[i] * z[i]);
    if (!hessian_weights.empty()) {
      hessian_weights[i] = s * (1.0 - s);
    }
    z[i] = -dataset_->y[i] * s;
  }
  dataset_->xt.spmv_t(z, out);
  la::scal(1.0 / static_cast<double>(m), out);
}

double LogisticProblem::lipschitz() const {
  if (!lipschitz_) {
    const std::size_t m = num_samples();
    std::vector<double> tmp(m);
    const auto result = la::power_iteration(
        [this, &tmp](std::span<const double> v, std::span<double> hv) {
          dataset_->xt.spmv(v, tmp);
          dataset_->xt.spmv_t(tmp, hv);
          la::scal(0.25 / static_cast<double>(num_samples()), hv);
        },
        dim(), /*max_iters=*/300, /*tol=*/1e-9);
    lipschitz_ = std::max(result.eigenvalue, 1e-300);
  }
  return *lipschitz_;
}

SolveResult solve_logistic_fista(const LogisticProblem& problem,
                                 int max_iters, double rel_change_tol) {
  WallTimer wall;
  const std::size_t d = problem.dim();
  const double gamma = 1.0 / problem.lipschitz();
  const double lambda_gamma = problem.lambda() * gamma;
  const MomentumSchedule mu(MomentumRule::kFista);

  la::Vector w(d), w_prev(d), v(d), grad(d), theta(d);
  double prev_window_obj = problem.objective(w.span());

  SolveResult result;
  result.solver = "logistic-fista";
  constexpr int kWindow = 10;
  int momentum_n = 0;
  int n = 0;
  for (n = 1; n <= max_iters; ++n) {
    ++momentum_n;
    const double m_n = mu.mu(momentum_n);
    la::waxpby(1.0 + m_n, w.span(), -m_n, w_prev.span(), v.span());
    problem.gradient(v.span(), grad.span());
    la::waxpby(1.0, v.span(), -gamma, grad.span(), theta.span());
    std::swap(w, w_prev);
    prox::soft_threshold(theta.span(), lambda_gamma, w.span());

    double dot_restart = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      dot_restart += (v[i] - w[i]) * (w[i] - w_prev[i]);
    }
    if (dot_restart > 0.0) {
      momentum_n = 0;
      la::copy(w.span(), w_prev.span());
    }
    if (n % kWindow == 0) {
      const double obj = problem.objective(w.span());
      const double denom = std::max(std::abs(obj), 1e-300);
      if (std::abs(prev_window_obj - obj) <= rel_change_tol * denom) {
        result.converged = true;
        break;
      }
      prev_window_obj = obj;
    }
  }
  result.w = w;
  result.iterations = std::min(n, max_iters);
  result.objective = problem.objective(w.span());
  result.wall_seconds = wall.seconds();
  return result;
}

SolveResult solve_logistic_prox_newton(const LogisticProblem& problem,
                                       const PnOptions& opts) {
  RCF_CHECK_MSG(opts.max_outer >= 1, "logistic pn: max_outer must be >= 1");
  RCF_CHECK_MSG(opts.inner_iters >= 1,
                "logistic pn: inner_iters must be >= 1");
  RCF_CHECK_MSG(opts.k >= 1 && opts.s >= 1, "logistic pn: k, s must be >= 1");
  RCF_CHECK_MSG(opts.hessian_sampling_rate > 0.0 &&
                    opts.hessian_sampling_rate <= 1.0,
                "logistic pn: hessian_sampling_rate in (0, 1]");
  if (opts.tol > 0.0) {
    RCF_CHECK_MSG(!std::isnan(opts.f_star), "logistic pn: tol requires f_star");
  }
  RCF_CHECK_MSG(opts.threads >= 0, "logistic pn: threads must be >= 0");

  exec::Pool pool(exec::Pool::resolve_width(opts.threads, 1));
  exec::PoolGuard pool_guard(&pool);

  WallTimer wall;
  const std::size_t d = problem.dim();
  const std::size_t m = problem.num_samples();
  const sparse::CsrMatrix& xt = problem.dataset().xt;
  const auto mbar = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(opts.hessian_sampling_rate * static_cast<double>(m))));
  const data::Partition partition(m, opts.procs);
  const double lambda = problem.lambda();

  SolveResult result;
  result.solver = opts.inner == PnInnerSolver::kFista ? "logistic-pn-fista"
                                                      : "logistic-pn-rc";
  result.cost = model::CostTracker(opts.collective);
  model::CostTracker& cost = result.cost;
  std::uint64_t comm_rounds = 0;

  la::Vector w(d), grad(d), z(d);
  la::Vector weights(m);
  la::Matrix h(d, d);
  std::vector<la::Matrix> h_blocks;
  if (opts.inner == PnInnerSolver::kRcSfista) {
    for (int j = 0; j < opts.k; ++j) {
      h_blocks.emplace_back(d, d);
    }
  }
  const MomentumSchedule mu(MomentumRule::kFista);

  double objective = problem.objective(w.span());

  auto charge_weighted_gram = [&](std::span<const std::uint32_t> idx) {
    if (opts.procs == 1) {
      cost.add_flops(Phase::kGram,
                     static_cast<double>(sparse::sampled_gram_flops(xt, idx)));
      return;
    }
    const auto splits = partition.split_sorted(idx);
    std::uint64_t max_rank = 0;
    for (const auto& span : splits) {
      max_rank = std::max(max_rank, sparse::sampled_gram_flops(xt, span));
    }
    cost.add_flops(Phase::kGram, static_cast<double>(max_rank));
  };

  bool done = false;
  int outer = 0;
  for (outer = 1; outer <= opts.max_outer && !done; ++outer) {
    // Exact gradient + curvature weights at w (two SpMVs + d-word
    // allreduce).
    problem.gradient(w.span(), grad.span(), weights.span());
    cost.add_flops(Phase::kGram, 4.0 * static_cast<double>(xt.nnz()) /
                                     static_cast<double>(opts.procs));
    cost.add_allreduce(opts.procs, d);
    ++comm_rounds;

    // Step size for the subproblem: lambda_max of the sampled weighted
    // Hessian, via power iteration on the explicit block.
    Rng hrng(opts.seed, (static_cast<std::uint64_t>(outer) << 24) + 1);
    const auto probe_idx = hrng.sample_without_replacement(m, mbar);
    sparse::weighted_sampled_gram(xt, weights.raw(), probe_idx, h);
    charge_weighted_gram(probe_idx);
    cost.add_allreduce(opts.procs, d * d);
    ++comm_rounds;
    const auto power = la::power_iteration(h, 80, 1e-4, opts.seed);
    const double l_hat = std::max(power.eigenvalue, 1e-300);
    const double gamma = opts.inner == PnInnerSolver::kRcSfista
                             ? 1.0 / (1.5 * l_hat)
                             : 1.0 / l_hat;
    const double lambda_gamma = lambda * gamma;

    // Inner solve of the quadratic model
    //   min_z 1/2 (z-w)^T H (z-w) + grad^T (z-w) + lambda |z|_1.
    la::Vector u(d), u_prev(d), vv(d), g(d), theta(d), tmp(d);
    la::copy(w.span(), u.span());
    la::copy(w.span(), u_prev.span());
    if (opts.inner == PnInnerSolver::kFista) {
      for (int n = 1; n <= opts.inner_iters; ++n) {
        const double m_n = mu.mu(n);
        la::waxpby(1.0 + m_n, u.span(), -m_n, u_prev.span(), vv.span());
        la::waxpby(1.0, vv.span(), -1.0, w.span(), tmp.span());
        la::gemv(1.0, h, tmp.span(), 0.0, g.span());
        la::axpy(1.0, grad.span(), g.span());
        la::waxpby(1.0, vv.span(), -gamma, g.span(), theta.span());
        std::swap(u, u_prev);
        prox::soft_threshold(theta.span(), lambda_gamma, u.span());
        const double dd = static_cast<double>(d);
        cost.add_flops(Phase::kUpdate, 2.0 * dd * dd + 12.0 * dd);
      }
    } else {
      // RC inner: fresh sampled weighted Hessians, k-overlapped.
      la::Vector dw_prev(d), su(d);
      la::copy(w.span(), vv.span());
      int inner_done = 0;
      int update_counter = 0;
      while (inner_done < opts.inner_iters) {
        const int kk = std::min(opts.k, opts.inner_iters - inner_done);
        for (int j = 0; j < kk; ++j) {
          Rng rng(opts.seed, (static_cast<std::uint64_t>(outer) << 24) +
                                 static_cast<std::uint64_t>(inner_done + j) +
                                 2);
          const auto idx = rng.sample_without_replacement(m, mbar);
          sparse::weighted_sampled_gram(xt, weights.raw(), idx,
                                        h_blocks[static_cast<std::size_t>(j)]);
          charge_weighted_gram(idx);
        }
        cost.add_allreduce(opts.procs,
                           static_cast<std::uint64_t>(kk) * d * d);
        ++comm_rounds;
        for (int j = 0; j < kk; ++j) {
          const la::Matrix& hj = h_blocks[static_cast<std::size_t>(j)];
          for (int s2 = 1; s2 <= opts.s; ++s2) {
            la::waxpby(1.0, vv.span(), -1.0, w.span(), tmp.span());
            la::gemv(1.0, hj, tmp.span(), 0.0, g.span());
            la::axpy(1.0, grad.span(), g.span());
            la::waxpby(1.0, vv.span(), -gamma, g.span(), theta.span());
            prox::soft_threshold(theta.span(), lambda_gamma, su.span());
            ++update_counter;
            const double mu_next = mu.mu(update_counter + 1);
            const double mu_cur = mu.mu(update_counter);
            for (std::size_t i = 0; i < d; ++i) {
              const double dw = su[i] - u[i];
              vv[i] += (1.0 + mu_next) * dw - mu_cur * dw_prev[i];
              dw_prev[i] = dw;
              u[i] = su[i];
            }
            const double dd = static_cast<double>(d);
            cost.add_flops(Phase::kUpdate, 2.0 * dd * dd + 12.0 * dd);
          }
        }
        inner_done += kk;
      }
    }

    // Damped update with monotone safeguard (the logistic objective is not
    // quadratic, so the full Newton step can overshoot).
    double step = opts.damping;
    la::Vector trial(d);
    double trial_obj = objective;
    for (int attempt = 0; attempt < 30; ++attempt) {
      for (std::size_t i = 0; i < d; ++i) {
        trial[i] = w[i] + step * (u[i] - w[i]);
      }
      trial_obj = problem.objective(trial.span());
      if (trial_obj <= objective) {
        break;
      }
      step *= 0.5;
    }
    if (trial_obj <= objective) {
      std::swap(w, trial);
      objective = trial_obj;
    }

    double rel_error = std::numeric_limits<double>::quiet_NaN();
    if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
      rel_error = std::abs((objective - opts.f_star) / opts.f_star);
    }
    if (opts.track_history) {
      result.history.push_back(IterationRecord{
          outer, objective, rel_error, cost.seconds(opts.machine),
          comm_rounds});
    }
    if (opts.tol > 0.0 && !std::isnan(rel_error) && rel_error <= opts.tol) {
      result.converged = true;
      done = true;
    }
  }

  result.w = w;
  result.iterations = std::min(outer, opts.max_outer);
  result.objective = objective;
  if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
    result.rel_error = std::abs((result.objective - opts.f_star) / opts.f_star);
  }
  result.sim_seconds = cost.seconds(opts.machine);
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace rcf::core
