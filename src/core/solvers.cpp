#include "core/solvers.hpp"

namespace rcf::core {

SolveResult solve_ista(const LassoProblem& problem, SolverOptions opts) {
  opts.momentum = MomentumRule::kNone;
  opts.sampling_rate = 1.0;
  opts.k = 1;
  opts.s = 1;
  opts.variance_reduction = false;
  return run_sfista_engine(problem, opts, "ista");
}

SolveResult solve_fista(const LassoProblem& problem, SolverOptions opts) {
  opts.sampling_rate = 1.0;
  opts.k = 1;
  opts.s = 1;
  opts.variance_reduction = false;
  return run_sfista_engine(problem, opts, "fista");
}

SolveResult solve_sfista(const LassoProblem& problem, SolverOptions opts) {
  opts.k = 1;
  opts.s = 1;
  return run_sfista_engine(problem, opts, "sfista");
}

SolveResult solve_rc_sfista(const LassoProblem& problem,
                            const SolverOptions& opts) {
  return run_sfista_engine(problem, opts, "rc-sfista");
}

}  // namespace rcf::core
