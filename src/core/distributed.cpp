#include "core/distributed.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "check/checked_comm.hpp"
#include "check/options.hpp"
#include "check/partition.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "core/health.hpp"
#include "core/momentum.hpp"
#include "data/partition.hpp"
#include "dist/retry.hpp"
#include "exec/pool.hpp"
#include "fault/faulty_comm.hpp"
#include "fault/plan.hpp"
#include "la/blas.hpp"
#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prox/operators.hpp"
#include "sparse/gram.hpp"

namespace rcf::core {

namespace {

/// Corruption bound for the reduced [H|R] payload guard.  A poisoned
/// contribution is either non-finite (NaN injection, exponent-bit flips
/// that produce Inf/NaN) or astronomically large (a flipped high exponent
/// bit scales a value by ~2^512); legitimate Gram blocks of normalized
/// datasets live many orders of magnitude below this.
constexpr double kPayloadBound = 1e100;

bool payload_sane(std::span<const double> payload) {
  for (const double v : payload) {
    if (!std::isfinite(v) || std::abs(v) > kPayloadBound) {
      return false;
    }
  }
  return true;
}

}  // namespace

SolveResult solve_rc_sfista_distributed(const LassoProblem& problem,
                                        const SolverOptions& opts,
                                        dist::ThreadGroup& group) {
  RCF_CHECK_MSG(opts.k >= 1 && opts.s >= 1, "distributed: k, s must be >= 1");
  RCF_CHECK_MSG(opts.sampling_rate > 0.0 && opts.sampling_rate <= 1.0,
                "distributed: sampling_rate in (0, 1]");
  RCF_CHECK_MSG(!opts.variance_reduction,
                "distributed: variance reduction is not supported here");
  RCF_CHECK_MSG(opts.threads >= 0, "distributed: threads must be >= 0");
  RCF_CHECK_MSG(opts.staleness >= 0, "distributed: staleness must be >= 0");
  RCF_CHECK_MSG(opts.staleness == 0 || opts.pipeline,
                "distributed: staleness > 0 requires pipeline");

  WallTimer wall;
  const std::uint64_t health_base = health_mark();
  const std::size_t d = problem.dim();
  const std::size_t m = problem.num_samples();
  const auto mbar = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(
             opts.sampling_rate * static_cast<double>(m))));
  // Same automatic step size as the sequential engine (bit-identical
  // trajectories require the identical gamma).  In a real deployment each
  // rank would run the probe redundantly from the shared seed.
  const double gamma = auto_step_size(problem, opts, mbar);
  const double lambda_gamma = problem.lambda() * gamma;
  const int k = opts.k;
  const int s_iters = opts.s;
  const data::Partition partition(m, group.size());

  la::Vector final_w(d);

  // Rank-0 phase aggregates (all ranks execute the identical schedule, so
  // one rank's counts describe every rank); written before the join in
  // group.run, read after it.  The "allreduce" wall time is measured here
  // but the *span* is emitted by ThreadComm itself, keeping the trace's
  // allreduce span count equal to CommStats::allreduce_calls per rank.
  const bool tracing = opts.trace && obs::TraceSession::global().enabled();
  obs::PhaseAgg ph_sampling, ph_gram, ph_allreduce, ph_update;
  obs::PhaseAgg ph_post, ph_wait;  // pipelined path: allreduce split in two.
  obs::FleetMetrics fleet;
  obs::ConvergenceRing conv;

  // Resilience bookkeeping.  The fault/retry decorators live on each rank's
  // stack, so their counters are folded into the run totals through shared
  // atomics (ThreadGroup::last_run_stats only sums the backend endpoints).
  // The payload guard is armed only when it could matter -- a chaos plan is
  // installed or the verification layer is on -- so fault-free production
  // solves never pay the O(payload) scan.
  const fault::FaultPlan* plan = fault::active_plan();
  const bool guard_payload = plan != nullptr || check::globally_enabled();
  std::atomic<std::uint64_t> total_retries{0};
  std::atomic<std::uint64_t> total_faults{0};

  const auto body = [&](dist::ThreadComm& comm) {
    const int rank = comm.rank();
    // Collective decorator stack, innermost first:
    //   ThreadComm <- FaultyComm <- RetryingComm <- CheckedComm.
    // The chaos layer throws transient failures *before* the backend call,
    // so a retried collective enters the rendezvous exactly once and the
    // contract checker above it records exactly one schedule entry -- no
    // false positives from legitimate retries.
    fault::FaultyComm faulty(comm, plan);
    dist::RetryingComm retrying(faulty, opts.retry);
    // Fold the decorator counters into the shared totals on scope exit --
    // including when this rank dies mid-schedule (injected aborts and
    // exhausted retries throw through this frame), so failure results
    // still report how many faults actually fired.
    struct CounterFold {
      fault::FaultyComm& faulty;
      dist::RetryingComm& retrying;
      std::atomic<std::uint64_t>& retries;
      std::atomic<std::uint64_t>& faults;
      ~CounterFold() {
        retries.fetch_add(retrying.retries(), std::memory_order_relaxed);
        faults.fetch_add(faulty.faults_injected(),
                         std::memory_order_relaxed);
      }
    } fold{faulty, retrying, total_retries, total_faults};
    // Contract decorator: with RCF_CHECK on, every collective below is
    // fingerprinted and the rolling schedule hash is epoch-checked across
    // ranks (on top of the threaded backend's per-call board); with
    // checking off it forwards untouched.
    check::CheckedComm checked(retrying);
    // Per-rank pool: width 0 divides the hardware among the SPMD ranks so
    // P ranks x W pool threads never oversubscribes the machine.
    exec::Pool pool(exec::Pool::resolve_width(opts.threads, group.size()));
    exec::PoolGuard pool_guard(&pool);
    // Rank-local data block (stage-0 of Fig. 1: X column-partitioned, y
    // row-partitioned).
    const std::size_t lo = partition.begin(rank);
    const std::size_t hi = partition.end(rank);
    const sparse::CsrMatrix local_xt = problem.xt().slice_rows(lo, hi);
    const la::Vector local_y(std::vector<double>(
        problem.y().raw().begin() + static_cast<std::ptrdiff_t>(lo),
        problem.y().raw().begin() + static_cast<std::ptrdiff_t>(hi)));

    const MomentumSchedule outer_mu(opts.momentum);

    la::Matrix h_local(d, d);
    la::Vector r_local(d);

    la::Vector w(d), dw_prev(d), v(d);
    la::Vector grad(d), theta(d), u(d);
    la::Vector w_iter_prev(d);
    obs::ConvergenceRing local_conv;
    std::vector<std::uint32_t> idx;
    std::vector<std::uint32_t> local_idx;
    int update_counter = 0;
    int momentum_base = 0;

    // Per-rank aggregates; rank 0 publishes its copy after the loop.  The
    // blocking path fills lp_allreduce; the pipelined path splits the
    // collective into lp_post (issue) and lp_wait (completion) instead.
    obs::PhaseAgg lp_sampling, lp_gram, lp_allreduce, lp_post, lp_wait,
        lp_update;
    auto& session = obs::TraceSession::global();

    const std::size_t stride = d * d + d;

    // Stages A + B for one k-chunk: every rank draws the *global* index set
    // from the shared (seed, n) stream -- no communication needed to agree
    // on it -- and accumulates the outer products of its own samples into
    // `chunk` (kk packed [H_j | R_j] blocks).  A pure function of
    // (seed, block_start): the poison-recovery paths re-run it to rebuild a
    // corrupted rank-local contribution from scratch, and the pipelined
    // path runs it for chunk t+1 while chunk t's reduction is in flight.
    const auto build_chunk = [&](int block_start, int kk, double* chunk) {
      for (int j = 0; j < kk; ++j) {
        const int n = block_start + j;
        obs::timed_phase(tracing, lp_sampling, "sampling", 0.0, [&] {
          Rng rng(opts.seed, static_cast<std::uint64_t>(n));
          idx = rng.sample_without_replacement(m, mbar);
          local_idx.clear();
          for (const auto i : idx) {
            if (i >= lo && i < hi) {
              local_idx.push_back(static_cast<std::uint32_t>(i - lo));
            }
          }
        });
        obs::timed_phase(tracing, lp_gram, "gram", 0.0, [&] {
          h_local.fill(0.0);
          la::set_zero(r_local.span());
          sparse::accumulate_sampled_gram(
              local_xt, local_y.span(), local_idx,
              1.0 / static_cast<double>(idx.size()), h_local,
              r_local.span());
          la::symmetrize_from_upper(h_local);
          double* dst = chunk + static_cast<std::size_t>(j) * stride;
          std::copy(h_local.data(), h_local.data() + d * d, dst);
          std::copy(r_local.data(), r_local.data() + d, dst + d * d);
        });
      }
    };

    // Stage D for one chunk: redundant update sweeps on every rank -- the
    // identical S-reuse recurrence the sequential engine performs.
    // `blocks` holds the reduced [H|R] data the sweeps consume; in the
    // bounded-staleness mode it belongs to an *earlier* chunk (which has at
    // least kk blocks -- only the final chunk is short) while block_start
    // still labels this chunk's iterations.
    const auto update_chunk = [&](int block_start, int kk,
                                  const double* blocks) {
      for (int j = 0; j < kk; ++j) {
        const double* hj = blocks + static_cast<std::size_t>(j) * stride;
        const double* rj = hj + d * d;
        la::copy(w.span(), w_iter_prev.span());
        auto apply_grad = [&](std::span<const double> at,
                              std::span<double> out) {
          // out = H_j at - R_j (rows of H_j are contiguous in the pack).
          // Each task owns a block of output rows, so the dot products are
          // computed exactly as in the sequential loop at any pool width.
          const auto rows = [&](exec::Range range) {
            for (std::size_t row = range.begin; row < range.end; ++row) {
              const double* hrow = hj + row * d;
              double acc = 0.0;
              for (std::size_t c = 0; c < d; ++c) {
                acc += hrow[c] * at[c];
              }
              out[row] = acc - rj[row];
            }
          };
          exec::Pool* p =
              exec::usable_pool(2 * static_cast<std::uint64_t>(d) * d);
          if (p == nullptr) {
            rows({0, d});
            return;
          }
          const int width = p->width();
          if (check::partition_audit_due()) {
            check::audit_partition(
                "dist.apply_grad", d, static_cast<std::size_t>(width),
                [&](std::size_t part) {
                  const exec::Range r =
                      exec::block_range(d, width, static_cast<int>(part));
                  return std::pair<std::size_t, std::size_t>{r.begin, r.end};
                });
          }
          p->run("dist.apply_grad", [&](int t) {
            const exec::Range range = exec::block_range(d, width, t);
            if (!range.empty()) {
              rows(range);
            }
          });
        };

        obs::timed_phase(tracing, lp_update, "update",
                         static_cast<double>(s_iters), [&] {
          for (int s2 = 1; s2 <= s_iters; ++s2) {
            apply_grad(v.span(), grad.span());
            la::waxpby(1.0, v.span(), -gamma, grad.span(), theta.span());
            prox::soft_threshold(theta.span(), lambda_gamma, u.span());
            ++update_counter;
            bool restarted = false;
            if (opts.adaptive_restart) {
              double dot_restart = 0.0;
              for (std::size_t i = 0; i < d; ++i) {
                dot_restart += (v[i] - u[i]) * (u[i] - w[i]);
              }
              if (dot_restart > 0.0) {
                momentum_base = update_counter;
                la::copy(u.span(), v.span());
                la::copy(u.span(), w.span());
                dw_prev.fill(0.0);
                restarted = true;
              }
            }
            if (!restarted) {
              const int nn = update_counter - momentum_base;
              const double mu_next =
                  std::min(outer_mu.mu(nn + 1), opts.momentum_cap);
              const double mu_cur =
                  std::min(outer_mu.mu(nn), opts.momentum_cap);
              for (std::size_t i = 0; i < d; ++i) {
                const double dw = u[i] - w[i];
                v[i] += (1.0 + mu_next) * dw - mu_cur * dw_prev[i];
                dw_prev[i] = dw;
                w[i] = u[i];
              }
            }
          }
        });

        // Convergence telemetry: every rank computes the identical O(d)
        // summary (iterates agree bitwise), rank 0's ring is kept.  The
        // objective is never evaluated on this path, so it stays NaN.
        {
          obs::ConvergenceRecord rec;
          rec.iteration = static_cast<std::uint64_t>(block_start + j);
          rec.grad_norm = std::sqrt(la::dot(grad.span(), grad.span()));
          double support = 0.0;
          double step_sq = 0.0;
          for (std::size_t i = 0; i < d; ++i) {
            support += w[i] != 0.0 ? 1.0 : 0.0;
            const double dw = w[i] - w_iter_prev[i];
            step_sq += dw * dw;
          }
          rec.support = support;
          rec.step = std::sqrt(step_sq);
          local_conv.push(rec);
          // Progress epoch for the live monitor's per-rank skew view (every
          // rank publishes; the objective is NaN on this path by contract).
          obs::telemetry_publish(obs::TelemetryKind::kProgress, "iter",
                                 static_cast<double>(rec.iteration),
                                 rec.objective, rec.step);
        }
      }
    };

    if (!opts.pipeline) {
      // Packed allreduce buffer: kk * stride doubles ([H_j | R_j] blocks).
      std::vector<double> pack(static_cast<std::size_t>(k) * stride);
      for (int block_start = 1; block_start <= opts.max_iters;
           block_start += k) {
        const int kk = std::min(k, opts.max_iters - block_start + 1);

        // Stage C: one allreduce combines all ranks' partial blocks.
        // Counted and timed as the "allreduce" phase, but the span itself is
        // emitted inside ThreadComm (one per collective call, matching
        // CommStats).
        const std::size_t payload = static_cast<std::size_t>(kk) * stride;
        const auto reduce_blocks = [&] {
          ++lp_allreduce.count;
          lp_allreduce.words += static_cast<double>(payload);
          const std::int64_t t0 = tracing ? session.now_us() : 0;
          checked.allreduce_sum({pack.data(), payload});
          if (tracing) {
            lp_allreduce.us += session.now_us() - t0;
          }
        };

        build_chunk(block_start, kk, pack.data());
        reduce_blocks();

        // Poison detection + recovery.  Corruption is injected into the
        // rank-local contribution *before* the reduce, so after the
        // allreduce every rank holds the identical poisoned sums and takes
        // this branch symmetrically: all ranks rebuild their (deterministic)
        // local blocks and re-reduce once, which yields the bitwise
        // fault-free payload when the corruption was transient.  Persistent
        // corruption is rejected as a structured failure rather than
        // propagated into the iterate.
        if (guard_payload && !payload_sane({pack.data(), payload})) {
          build_chunk(block_start, kk, pack.data());
          reduce_blocks();
          if (!payload_sane({pack.data(), payload})) {
            throw fault::PoisonedPayload(
                "distributed: reduced [H|R] payload still corrupt after "
                "recompute fallback (block_start=" +
                std::to_string(block_start) + ")");
          }
        }

        update_chunk(block_start, kk, pack.data());
      }
    } else {
      // Chunk pipeline over nonblocking posts (stage C via iallreduce_sum).
      // Chunk t's reduction is posted right after its Gram build; the next
      // chunk's sampling + Gram -- and, with staleness, up to S further
      // chunks' update sweeps -- execute while it is in flight.  A chunk's
      // slot must stay untouched from post (the backend snapshots the
      // payload there) until its first wait (the result lands there) plus,
      // in staleness mode, until its last stale consumer; lag + 2 slots
      // cover the deepest schedule.
      const int num_chunks = (opts.max_iters + k - 1) / k;
      const int lag = opts.staleness;
      const int nslots = lag + 2;
      std::vector<std::vector<double>> slots(
          static_cast<std::size_t>(nslots),
          std::vector<double>(static_cast<std::size_t>(k) * stride));
      std::vector<dist::CommHandle> handles(static_cast<std::size_t>(nslots));
      std::vector<char> waited(static_cast<std::size_t>(nslots), 1);

      const auto chunk_start = [&](int t) { return 1 + t * k; };
      const auto chunk_len = [&](int t) {
        return std::min(k, opts.max_iters - chunk_start(t) + 1);
      };

      const auto post_chunk = [&](int t) {
        const auto slot = static_cast<std::size_t>(t % nslots);
        double* data = slots[slot].data();
        build_chunk(chunk_start(t), chunk_len(t), data);
        const std::size_t payload =
            static_cast<std::size_t>(chunk_len(t)) * stride;
        ++lp_post.count;
        lp_post.words += static_cast<double>(payload);
        const std::int64_t t0 = tracing ? session.now_us() : 0;
        handles[slot] = checked.iallreduce_sum({data, payload});
        if (tracing) {
          lp_post.us += session.now_us() - t0;
        }
        waited[slot] = 0;
      };

      // First wait on chunk t's reduction; idempotent, because the
      // staleness schedule consumes chunk 0 up to S + 1 times.
      // lp_wait.words counts the payload of waits that found the reduction
      // *already complete* -- the overlap the cost ledger credits
      // (CommStats::overlapped_words is the same quantity measured inside
      // the backend).
      const auto wait_chunk = [&](int t) {
        const auto slot = static_cast<std::size_t>(t % nslots);
        if (waited[slot] != 0) {
          return;
        }
        waited[slot] = 1;
        const std::size_t payload =
            static_cast<std::size_t>(chunk_len(t)) * stride;
        ++lp_wait.count;
        if (handles[slot].test()) {
          lp_wait.words += static_cast<double>(payload);
        }
        const std::int64_t t0 = tracing ? session.now_us() : 0;
        handles[slot].wait();
        if (tracing) {
          lp_wait.us += session.now_us() - t0;
        }
        handles[slot] = dist::CommHandle();

        // Poison detection + recovery, as on the blocking path.  The
        // fallback re-reduce is a *blocking* collective, which first
        // quiesces any still-in-flight posts; the reduced sums are
        // identical on every rank, so all ranks enter (or skip) the
        // recovery at the same schedule point and the quiesce stays
        // symmetric.
        double* data = slots[slot].data();
        if (guard_payload && !payload_sane({data, payload})) {
          build_chunk(chunk_start(t), chunk_len(t), data);
          checked.allreduce_sum({data, payload});
          if (!payload_sane({data, payload})) {
            throw fault::PoisonedPayload(
                "distributed: reduced [H|R] payload still corrupt after "
                "recompute fallback (block_start=" +
                std::to_string(chunk_start(t)) + ")");
          }
        }
      };

      if (num_chunks > 0) {
        post_chunk(0);
        for (int t = 0; t < num_chunks; ++t) {
          if (t + 1 < num_chunks) {
            post_chunk(t + 1);
          }
          const int src = std::max(t - lag, 0);
          wait_chunk(src);
          update_chunk(chunk_start(t), chunk_len(t),
                       slots[static_cast<std::size_t>(src % nslots)].data());
        }
        // The last `lag` chunks were posted but never consumed by an
        // update; wait them anyway so every rank completes the identical
        // set of collectives and injected completion failures surface.
        for (int t = std::max(num_chunks - lag, 0); t < num_chunks; ++t) {
          wait_chunk(t);
        }
      }
    }

    if (tracing) {
      // Cross-rank aggregation: each rank records its own phase totals and
      // comm endpoint stats into a rank-local registry, then all ranks
      // reduce them (collective -- every rank participates).  The
      // collectives inside aggregate() run in aux mode, so the comm.*
      // counters just recorded stay exact.
      obs::PhaseSummary local_phases;
      obs::append_phase(local_phases, "sampling", lp_sampling);
      obs::append_phase(local_phases, "gram", lp_gram);
      if (opts.pipeline) {
        obs::append_phase(local_phases, "allreduce_post", lp_post);
        obs::append_phase(local_phases, "allreduce_wait", lp_wait);
      } else {
        obs::append_phase(local_phases, "allreduce", lp_allreduce);
      }
      obs::append_phase(local_phases, "update", lp_update);
      const dist::CommStats rank_stats = checked.stats();
      obs::MetricsRegistry local;
      obs::record_solve_metrics(local, local_phases, &rank_stats);
      obs::FleetMetrics rank_fleet = obs::aggregate(local, checked);
      if (rank == 0) {
        fleet = std::move(rank_fleet);
      }
    }

    if (rank == 0) {
      la::copy(w.span(), final_w.span());
      ph_sampling = lp_sampling;
      ph_gram = lp_gram;
      ph_allreduce = lp_allreduce;
      ph_post = lp_post;
      ph_wait = lp_wait;
      ph_update = lp_update;
      conv = std::move(local_conv);
    }
  };

  // ThreadGroup publishes the raw endpoint counters to the registry, but
  // retries/faults live in the decorators wrapped around each endpoint;
  // mirror them so the metrics file (and rcf-report's resilience view)
  // agrees with SolveResult::comm_stats.
  const auto publish_resilience = [&] {
    if (!obs::TraceSession::global().enabled()) {
      return;
    }
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("comm.thread.retries")
        .add(total_retries.load(std::memory_order_relaxed));
    registry.counter("comm.thread.faults_injected")
        .add(total_faults.load(std::memory_order_relaxed));
  };

  const auto structured_failure = [&](const char* reason) {
    SolveResult failed =
        SolveResult::failure("rc-sfista-distributed", reason);
    failed.wall_seconds = wall.seconds();
    // Partial stats: ThreadGroup sums the per-rank endpoint counters even
    // when the run throws; decorator counters from ranks that threw before
    // reaching the fold are lost, so retries/faults are a lower bound here.
    failed.comm_stats = group.last_run_stats();
    failed.comm_stats.retries +=
        total_retries.load(std::memory_order_relaxed);
    failed.comm_stats.faults_injected +=
        total_faults.load(std::memory_order_relaxed);
    publish_resilience();
    // A failed solve carries its health alerts too -- the retry storm /
    // straggler trail leading up to the failure is exactly what a
    // post-mortem wants.
    annotate_health(failed, health_base);
    return failed;
  };

  try {
    group.run(body);
  } catch (const fault::FaultAbort& e) {
    return structured_failure(e.what());
  } catch (const fault::PoisonedPayload& e) {
    return structured_failure(e.what());
  } catch (const dist::TransientCommFailure& e) {
    return structured_failure(e.what());
  }

  SolveResult result;
  result.solver = "rc-sfista-distributed";
  result.w = final_w;
  result.iterations = opts.max_iters;
  result.objective = problem.objective(result.w.span());
  if (!std::isfinite(result.objective)) {
    SolveResult failed = structured_failure(
        "distributed: non-finite objective at the final iterate");
    failed.w = std::move(result.w);
    failed.iterations = result.iterations;
    return failed;
  }
  if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
    result.rel_error = std::abs((result.objective - opts.f_star) / opts.f_star);
  }
  result.wall_seconds = wall.seconds();
  result.comm_stats = group.last_run_stats();
  result.comm_stats.retries += total_retries.load(std::memory_order_relaxed);
  result.comm_stats.faults_injected +=
      total_faults.load(std::memory_order_relaxed);
  publish_resilience();
  obs::append_phase(result.phases, "sampling", ph_sampling);
  obs::append_phase(result.phases, "gram", ph_gram);
  if (opts.pipeline) {
    obs::append_phase(result.phases, "allreduce_post", ph_post);
    obs::append_phase(result.phases, "allreduce_wait", ph_wait);
  } else {
    obs::append_phase(result.phases, "allreduce", ph_allreduce);
  }
  obs::append_phase(result.phases, "update", ph_update);
  result.fleet = std::move(fleet);
  result.conv = std::move(conv);
  if (tracing && !result.fleet.empty()) {
    obs::publish(result.fleet, obs::MetricsRegistry::global());
  }
  annotate_health(result, health_base);
  return result;
}

}  // namespace rcf::core
