#include "core/prox_cocoa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "data/partition.hpp"
#include "exec/pool.hpp"
#include "la/blas.hpp"
#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prox/operators.hpp"

namespace rcf::core {

namespace {
using model::Phase;
}

SolveResult solve_prox_cocoa(const LassoProblem& problem,
                             const CocoaOptions& opts) {
  RCF_CHECK_MSG(opts.max_rounds >= 1, "cocoa: max_rounds must be >= 1");
  RCF_CHECK_MSG(opts.local_epochs >= 1, "cocoa: local_epochs must be >= 1");
  RCF_CHECK_MSG(opts.procs >= 1, "cocoa: procs must be >= 1");
  if (opts.tol > 0.0) {
    RCF_CHECK_MSG(!std::isnan(opts.f_star), "cocoa: tol requires f_star");
  }
  RCF_CHECK_MSG(opts.threads >= 0, "cocoa: threads must be >= 0");

  exec::Pool pool(exec::Pool::resolve_width(opts.threads, 1));
  exec::PoolGuard pool_guard(&pool);

  WallTimer wall;
  const std::size_t d = problem.dim();
  const std::size_t m = problem.num_samples();
  const auto md = static_cast<double>(m);
  const double lambda = problem.lambda();

  // Feature-major view: row j of `features` is column x_j of X^T.
  const sparse::CsrMatrix features = problem.xt().transposed();
  std::vector<double> col_sq_norm(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const auto row = features.row(j);
    col_sq_norm[j] = la::dot(row.vals, row.vals);
  }

  const data::Partition fpart(d, opts.procs);
  const double sigma_prime =
      opts.aggregation == CocoaAggregation::kAdding
          ? static_cast<double>(opts.procs)
          : 1.0;
  const double apply_scale =
      opts.aggregation == CocoaAggregation::kAdding
          ? 1.0
          : 1.0 / static_cast<double>(opts.procs);

  SolveResult result;
  result.solver = "prox-cocoa";
  result.cost = model::CostTracker(opts.collective);
  model::CostTracker& cost = result.cost;
  std::uint64_t comm_rounds = 0;

  // Round phases: the local coordinate-descent sweeps and the m-word
  // residual aggregation.
  const bool tracing = opts.trace && obs::TraceSession::global().enabled();
  obs::PhaseAgg ph_local, ph_allreduce;

  // Global state: w and the shared residual res = X^T w - y.
  la::Vector w(d);
  la::Vector res(m);
  for (std::size_t i = 0; i < m; ++i) {
    res[i] = -problem.y()[i];
  }

  // Per-worker scratch.
  la::Vector res_local(m);
  la::Vector res_accum(m);  // sum over workers of scaled local updates
  std::vector<double> w_stage(d);

  bool done = false;
  int round = 0;
  for (round = 1; round <= opts.max_rounds && !done; ++round) {
    la::set_zero(res_accum.span());
    std::copy(w.begin(), w.end(), w_stage.begin());
    double max_rank_flops = 0.0;

    // All P workers' sweeps, timed as one "local_solve" span per round
    // (manual timing; the worker loop is too large to read inside a
    // lambda).
    ++ph_local.count;
    const std::int64_t local_t0 =
        tracing ? obs::TraceSession::global().now_us() : 0;

    for (int p = 0; p < opts.procs; ++p) {
      // Worker p starts from the round-stale shared residual.
      la::copy(res.span(), res_local.span());
      double rank_flops = 0.0;

      // Local coordinate order reshuffled per (round, worker).
      std::vector<std::uint32_t> order;
      order.reserve(fpart.size(p));
      for (std::size_t j = fpart.begin(p); j < fpart.end(p); ++j) {
        order.push_back(static_cast<std::uint32_t>(j));
      }
      Rng rng(opts.seed,
              (static_cast<std::uint64_t>(round) << 16) +
                  static_cast<std::uint64_t>(p));
      std::shuffle(order.begin(), order.end(), rng);

      for (int epoch = 0; epoch < opts.local_epochs; ++epoch) {
        for (const std::uint32_t j : order) {
          const double q = col_sq_norm[j];
          if (q == 0.0) {
            continue;
          }
          const auto col = features.row(j);
          // Local subproblem coordinate step with the sigma'-scaled
          // quadratic term:
          //   min_u (sigma' q / 2m)(u - w_j)^2 + (1/m) x_j^T res (u - w_j)
          //         + lambda |u|
          double b = 0.0;
          for (std::size_t i = 0; i < col.nnz(); ++i) {
            b += col.vals[i] * res_local[col.cols[i]];
          }
          b /= md;
          const double a = sigma_prime * q / md;
          const double u =
              prox::soft_threshold(w_stage[j] - b / a, lambda / a);
          const double delta = u - w_stage[j];
          if (delta != 0.0) {
            w_stage[j] = u;
            for (std::size_t i = 0; i < col.nnz(); ++i) {
              res_local[col.cols[i]] += delta * col.vals[i];
            }
          }
          rank_flops += 4.0 * static_cast<double>(col.nnz()) + 6.0;
        }
      }

      // Worker p's staged residual delta, scaled by the aggregation rule.
      for (std::size_t i = 0; i < m; ++i) {
        res_accum[i] += apply_scale * (res_local[i] - res[i]);
      }
      max_rank_flops = std::max(max_rank_flops, rank_flops);
    }

    if (tracing) {
      auto& session = obs::TraceSession::global();
      const std::int64_t local_t1 = session.now_us();
      ph_local.us += local_t1 - local_t0;
      session.record("local_solve", local_t0, local_t1 - local_t0);
    }

    // One allreduce of the m-word residual update per round.
    double round_step_sq = 0.0;
    obs::timed_phase(tracing, ph_allreduce, "allreduce",
                     static_cast<double>(m), [&] {
      la::axpy(1.0, res_accum.span(), res.span());
      for (std::size_t j = 0; j < d; ++j) {
        // Averaging scales the coordinate moves; adding applies the staged
        // values whole (exact assignment, not w += delta, so the adding
        // path stays bitwise identical to a plain copy).
        if (apply_scale != 1.0) {
          const double delta = apply_scale * (w_stage[j] - w[j]);
          w[j] += delta;
          round_step_sq += delta * delta;
        } else {
          const double delta = w_stage[j] - w[j];
          w[j] = w_stage[j];
          round_step_sq += delta * delta;
        }
      }
      cost.add_flops(Phase::kUpdate, max_rank_flops);
      cost.add_allreduce(opts.procs, m);
    });
    ++comm_rounds;
    const double round_step = std::sqrt(round_step_sq);

    // Objective from the maintained residual (exact by construction).
    const double objective =
        0.5 * la::dot(res.span(), res.span()) / md + lambda * la::asum(w.span());

    // Convergence telemetry: one record per communication round (no
    // gradient on this path -- grad_norm stays NaN; step is the movement
    // of w over the round).
    {
      obs::ConvergenceRecord rec;
      rec.iteration = static_cast<std::uint64_t>(round);
      rec.objective = objective;
      double support = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        support += w[j] != 0.0 ? 1.0 : 0.0;
      }
      rec.support = support;
      rec.step = round_step;
      result.conv.push(rec);
    }

    double rel_error = std::numeric_limits<double>::quiet_NaN();
    if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
      rel_error = std::abs((objective - opts.f_star) / opts.f_star);
    }
    if (opts.track_history) {
      result.history.push_back(IterationRecord{
          round, objective, rel_error, cost.seconds(opts.machine),
          comm_rounds});
    }
    if (opts.tol > 0.0 && !std::isnan(rel_error) && rel_error <= opts.tol) {
      result.converged = true;
      done = true;
    }
  }

  result.w = w;
  result.iterations = std::min(round, opts.max_rounds);
  result.objective = problem.objective(result.w.span());
  if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
    result.rel_error = std::abs((result.objective - opts.f_star) / opts.f_star);
  }
  result.sim_seconds = cost.seconds(opts.machine);
  result.wall_seconds = wall.seconds();
  obs::append_phase(result.phases, "local_solve", ph_local);
  obs::append_phase(result.phases, "allreduce", ph_allreduce);
  if (tracing) {
    obs::MetricsRegistry local;
    obs::record_solve_metrics(local, result.phases, nullptr);
    dist::SeqComm seq;
    result.fleet = obs::aggregate(local, seq);
    obs::publish(result.fleet, obs::MetricsRegistry::global());
  }
  return result;
}

}  // namespace rcf::core
