// Solver configuration types.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "core/checkpoint.hpp"
#include "dist/retry.hpp"
#include "model/cost.hpp"
#include "model/machine.hpp"

namespace rcf::prox {
class Regularizer;
}

namespace rcf::core {

/// Momentum (acceleration) rule for the t_n / mu_n sequence.
enum class MomentumRule {
  /// Standard FISTA (Beck & Teboulle): t_n = (1 + sqrt(1 + 4 t_{n-1}^2)) / 2.
  kFista,
  /// The rule as literally printed in the paper's Alg. 2-4:
  /// t_n = (1 + sqrt(1 + t_{n-1}^2)) / 2.  Converges to t = 4/3 and loses
  /// acceleration; kept for the ablation study (see DESIGN.md).
  kPaperTypo,
  /// No momentum (mu = 0): plain proximal gradient / ISTA.
  kNone,
};

/// Options shared by the FISTA-family solvers (FISTA / SFISTA / RC-SFISTA).
///
/// The defaults run RC-SFISTA with k = S = 1 and full sampling, which is
/// exactly distributed FISTA.  Parameter names follow the paper: b is the
/// sampling rate, k the iteration-overlapping depth, s the Hessian-reuse
/// inner iterations.
struct SolverOptions {
  // -- iteration control ----------------------------------------------------
  int max_iters = 500;  ///< N, total inner iterations.
  /// Stop when the relative objective error |F(w)-F*|/|F*| <= tol; requires
  /// f_star.  The paper uses tol = 0.01 for the speedup experiments.
  double tol = 0.0;
  /// Reference optimum F(w*) from the reference solver (the paper computes
  /// it with TFOCS).  NaN disables the relative-error stopping criterion.
  double f_star = std::numeric_limits<double>::quiet_NaN();

  // -- step size ------------------------------------------------------------
  /// Explicit step size gamma; 0 selects 1/L (L from power iteration)
  /// scaled by step_scale.
  double step_size = 0.0;
  double step_scale = 1.0;
  MomentumRule momentum = MomentumRule::kFista;
  /// Upper bound on the extrapolation weight mu_n (1 = the unmodified
  /// schedule).  FISTA's mu -> 1 amplifies sampled-gradient noise without
  /// bound; with small batches relative to d (rank-deficient sampled
  /// Hessians) a cap restores stability at a modest cost in acceleration.
  double momentum_cap = 1.0;
  /// O'Donoghue-Candes gradient-based adaptive restart: reset the momentum
  /// counter whenever the momentum direction opposes the latest step.  A
  /// trajectory-determined decision, so the k-invariance of RC-SFISTA is
  /// preserved.
  bool adaptive_restart = false;

  // -- stochastic sampling (SFISTA, §3.1) ------------------------------------
  double sampling_rate = 1.0;  ///< b in (0, 1]; mbar = max(1, floor(b*m)).
  /// Variance reduction (Eq. 9): anchor the sampled gradient at a snapshot
  /// refreshed every epoch_length iterations (Alg. 3's outer loop).
  bool variance_reduction = false;
  int epoch_length = 50;  ///< N of Alg. 3 when variance_reduction is on.
  /// Alg. 3 as printed restarts the momentum sequence at every snapshot
  /// (w_0 = w_hat, t_0 = 1).  On ill-conditioned problems the restart
  /// forfeits the accumulated acceleration, so the default refreshes the
  /// anchor while keeping the momentum recurrence running; set true for the
  /// literal Alg. 3 behaviour.
  bool vr_restart_momentum = false;

  // -- communication-avoiding parameters (§3.2) ------------------------------
  int k = 1;  ///< iteration-overlapping depth (k >= 1).
  int s = 1;  ///< Hessian-reuse inner iterations (S >= 1).

  // -- nonblocking pipeline (distributed backend) -----------------------------
  /// Post the [H|R] chunk reduction with iallreduce_sum and overlap it with
  /// the next chunk's sampling + Gram build (and, through the handle, with
  /// the update sweeps).  At staleness 0 the pipelined schedule consumes
  /// every chunk's own reduced blocks in order, so the iterate trajectory is
  /// bitwise-identical to the blocking path; only the overlap differs.
  /// Ignored by the single-process solver (nothing to overlap).
  bool pipeline = false;
  /// Bounded staleness S >= 0 (requires pipeline).  With S > 0 the update
  /// sweeps of chunk t reuse the reduced [H|R] blocks of chunk max(t - S, 0)
  /// while chunk t's own reduction is still in flight, hiding up to S chunk
  /// reductions behind compute.  Sound because the sampled Gram blocks are
  /// iterate-independent estimates of the same expected operator; the
  /// trajectory changes (stale curvature) but stays deterministic for a
  /// fixed S -- convergence is golden-fixture-checked.
  int staleness = 0;

  // -- regularizer override ----------------------------------------------------
  /// When non-null, replaces the problem's l1 term: the prox step applies
  /// this operator and the reported objective is smooth_value + g(w).
  /// Must outlive the solve.  Null keeps the paper's lambda ||w||_1.
  const prox::Regularizer* regularizer = nullptr;

  // -- reproducibility --------------------------------------------------------
  std::uint64_t seed = 42;

  // -- history ----------------------------------------------------------------
  bool track_history = true;
  int history_stride = 1;  ///< record every n-th iteration.

  // -- observability ----------------------------------------------------------
  /// When false, this solve skips span emission and per-phase wall-time
  /// measurement even if the global obs::TraceSession is enabled (the
  /// phase *counts* in SolveResult::phases are maintained regardless).
  bool trace = true;

  // -- intra-rank execution ----------------------------------------------------
  /// Pool threads per rank for the shared-memory kernels (Gram, SpMV,
  /// BLAS-2/3).  1 = sequential (today's path), 0 = hardware concurrency
  /// divided by the number of SPMD ranks so ThreadComm ranks don't
  /// oversubscribe.  Results are bit-identical at every width.
  int threads = 1;

  // -- resilience -------------------------------------------------------------
  /// Retry/backoff policy for transient collective failures on the real
  /// SPMD backend (see dist/retry.hpp).  The defaults absorb up to three
  /// transient faults per collective; retries surface as
  /// CommStats::retries and the "comm.backoff_us" obs counter.
  dist::RetryPolicy retry;

  // -- cost model (simulated distributed execution) ---------------------------
  int procs = 1;  ///< P, logical processor count for cost accounting.
  model::CollectiveModel collective = model::CollectiveModel::kPaperLogP;
  model::MachineSpec machine = model::comet();
};

/// Inner solver choice for the proximal Newton driver (Alg. 1).
enum class PnInnerSolver {
  /// Deterministic FISTA on the exact subproblem: one d^2 Hessian allreduce
  /// per outer iteration, then local inner iterations (the Fig. 7 baseline).
  kFista,
  /// RC-SFISTA: resamples the Hessian every inner iteration with k-deep
  /// iteration overlapping (the paper's proposal).
  kRcSfista,
};

/// Options for the proximal Newton driver.
struct PnOptions {
  int max_outer = 30;             ///< outer Newton iterations.
  int inner_iters = 40;           ///< inner-solver iterations per subproblem.
  double hessian_sampling_rate = 0.1;  ///< b for the outer Hessian estimate.
  double damping = 1.0;           ///< gamma_n of Alg. 1 line 6.
  PnInnerSolver inner = PnInnerSolver::kFista;
  int k = 1;                      ///< overlap depth for the RC-SFISTA inner.
  int s = 1;                      ///< Hessian-reuse for the RC-SFISTA inner.
  double tol = 0.0;
  double f_star = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t seed = 42;
  bool track_history = true;
  bool trace = true;   ///< see SolverOptions::trace
  int threads = 1;     ///< see SolverOptions::threads
  int procs = 1;
  model::CollectiveModel collective = model::CollectiveModel::kPaperLogP;
  model::MachineSpec machine = model::comet();

  // -- checkpoint / restore ---------------------------------------------------
  /// Called after every completed outer iteration with the state needed to
  /// resume (see core/checkpoint.hpp).  Null disables checkpointing.
  std::function<void(const PnCheckpoint&)> checkpoint_sink;
  /// Resume from this checkpoint instead of w = 0: the solve replays outer
  /// iterations resume_from->outer + 1 .. max_outer bitwise identically to
  /// the uninterrupted run (per-outer state is re-derived from
  /// (seed, outer)).  The pointee must outlive the solve.
  const PnCheckpoint* resume_from = nullptr;
};

/// Aggregation mode for the ProxCoCoA baseline.
enum class CocoaAggregation {
  kAverage,  ///< conservative averaging (sigma' = 1, scaled by 1/P)
  kAdding,   ///< adding updates (sigma' = P subproblem scaling)
};

/// Options for the ProxCoCoA baseline (Smith et al. 2015).
struct CocoaOptions {
  int max_rounds = 200;     ///< communication rounds.
  int local_epochs = 1;     ///< local coordinate-descent passes per round.
  CocoaAggregation aggregation = CocoaAggregation::kAdding;
  double tol = 0.0;
  double f_star = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t seed = 42;
  bool track_history = true;
  bool trace = true;   ///< see SolverOptions::trace
  int threads = 1;     ///< see SolverOptions::threads
  int procs = 1;
  model::CollectiveModel collective = model::CollectiveModel::kPaperLogP;
  model::MachineSpec machine = model::comet();
};

}  // namespace rcf::core
