// Shared end-of-solve health annotation for the engines (engine.cpp /
// distributed.cpp): fills SolveResult::alerts from two sources that never
// overlap in kind --
//
//  * a deterministic offline scan of the solve's convergence ring for the
//    numeric rules (stall, divergence, non-finite), so the annotation is
//    reproducible and does not depend on the live monitor's sampling
//    cadence;
//  * the runtime-only alerts (straggler, retry storm, ring overflow) the
//    live monitor raised while this solve ran, which cannot be
//    reconstructed offline.
#pragma once

#include <utility>

#include "core/result.hpp"
#include "obs/live.hpp"
#include "obs/watchdog.hpp"

namespace rcf::core {

/// Snapshot the monitor's alert cursor at solve start and pass it here at
/// solve end (alerts raised before the solve began are not attributed).
[[nodiscard]] inline std::uint64_t health_mark() {
  return obs::LiveMonitor::global().alert_count();
}

inline void annotate_health(SolveResult& result, std::uint64_t mark) {
  obs::LiveMonitor& monitor = obs::LiveMonitor::global();
  const bool live = monitor.running();
  const obs::WatchdogConfig config =
      live ? monitor.watchdog_config() : obs::watchdog_config_from_env();
  for (obs::Alert& alert : obs::scan_convergence(result.conv.ordered(),
                                                 config)) {
    result.alerts.push_back(std::move(alert));
  }
  if (!live) {
    return;
  }
  monitor.sample_now();  // fold the tail of the run before reading alerts
  for (obs::Alert& alert : monitor.alerts_since(mark)) {
    // Convergence-rule kinds come from the deterministic scan above; take
    // only the runtime-only kinds from the monitor so nothing doubles up.
    if (alert.kind == obs::AlertKind::kStraggler ||
        alert.kind == obs::AlertKind::kRetryStorm ||
        alert.kind == obs::AlertKind::kRingOverflow) {
      result.alerts.push_back(std::move(alert));
    }
  }
}

}  // namespace rcf::core
