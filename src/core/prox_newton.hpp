// Proximal Newton driver (paper Alg. 1).
//
// Each outer iteration approximates the Hessian by uniform sampling (line 3),
// solves the quadratic subproblem
//
//   z_n = argmin_y  1/2 (y-w_n)^T H_n (y-w_n) + grad f(w_n)^T (y-w_n) + g(y)
//
// with a first-order inner solver (line 4), and takes a damped step.  Two
// inner solvers are provided (paper §3.3 / Fig. 7):
//
//  * PnInnerSolver::kFista    -- one sampled-Hessian allreduce (d^2 words)
//    per outer iteration, then purely local FISTA inner iterations.
//  * PnInnerSolver::kRcSfista -- the inner solver re-estimates the Hessian
//    by sampling at every inner iteration, overlapped k at a time: one
//    allreduce of k*d^2 words per k inner iterations, plus Hessian-reuse S.
#pragma once

#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/result.hpp"

namespace rcf::core {

SolveResult solve_proximal_newton(const LassoProblem& problem,
                                  const PnOptions& opts);

}  // namespace rcf::core
