// Genuinely distributed (threaded SPMD) RC-SFISTA.
//
// This is the validation twin of the sequential engine: the dataset is
// block-partitioned by sample across the ranks of a dist::ThreadGroup
// exactly as in the paper's Fig. 1, each rank accumulates the Gram
// contribution of its own samples (stages A-B), one allreduce combines the
// k blocks (stage C), and every rank performs the redundant update sweeps
// (stage D).  The returned iterate must agree with the sequential engine up
// to floating-point reduction-order effects -- the integration tests assert
// this at ~1e-10.
#pragma once

#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/result.hpp"
#include "dist/thread_comm.hpp"

namespace rcf::core {

/// Runs RC-SFISTA SPMD over the given thread group.  Supported options:
/// max_iters, sampling_rate, k, s, step_size/step_scale, momentum, seed.
/// (tol-stopping, history and variance reduction are sequential-engine
/// features; this path runs a fixed iteration count.)
SolveResult solve_rc_sfista_distributed(const LassoProblem& problem,
                                        const SolverOptions& opts,
                                        dist::ThreadGroup& group);

}  // namespace rcf::core
