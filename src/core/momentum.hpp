// The FISTA momentum schedule t_n / mu_n.
//
// RC-SFISTA's unrolled recurrence (paper Eq. 17/20) needs mu at arbitrary
// future indices (mu_{nk+j+1} is consumed one iteration ahead), so the
// schedule is exposed as a random-access pure function of n rather than a
// stateful generator.
#pragma once

#include <vector>

#include "core/options.hpp"

namespace rcf::core {

class MomentumSchedule {
 public:
  explicit MomentumSchedule(MomentumRule rule);

  /// t_n for n >= 0 (t_0 = 1).
  [[nodiscard]] double t(int n) const;

  /// mu_n = (t_{n-1} - 1) / t_n for n >= 1; the extrapolation weight of
  /// iteration n (Alg. 4 line 6).  mu_1 == 0 for every rule.
  [[nodiscard]] double mu(int n) const;

  [[nodiscard]] MomentumRule rule() const { return rule_; }

 private:
  void extend(int n) const;

  MomentumRule rule_;
  mutable std::vector<double> t_;  // lazily grown table
};

}  // namespace rcf::core
