// The l1-regularized least squares problem (paper Eq. 3):
//
//   min_w F(w) = (1/2m) ||X^T w - y||^2 + lambda ||w||_1
//
// with X in R^{d x m} (stored as X^T, one CSR row per sample).  Gradient and
// Hessian of the smooth part (Eq. 4-5):
//
//   H = (1/m) X X^T,  R = (1/m) X y,  grad f(w) = H w - R.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "data/dataset.hpp"
#include "la/matrix.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace rcf::core {

class LassoProblem {
 public:
  /// Keeps a reference to `dataset`; the dataset must outlive the problem.
  LassoProblem(const data::Dataset& dataset, double lambda);

  [[nodiscard]] std::size_t dim() const { return dataset_->num_features(); }
  [[nodiscard]] std::size_t num_samples() const {
    return dataset_->num_samples();
  }
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] const data::Dataset& dataset() const { return *dataset_; }
  [[nodiscard]] const sparse::CsrMatrix& xt() const { return dataset_->xt; }
  [[nodiscard]] const la::Vector& y() const { return dataset_->y; }

  /// F(w) = f(w) + lambda ||w||_1.
  [[nodiscard]] double objective(std::span<const double> w) const;

  /// f(w) = (1/2m) ||X^T w - y||^2.
  [[nodiscard]] double smooth_value(std::span<const double> w) const;

  /// out = grad f(w) = (1/m)(X X^T w - X y), computed with two SpMVs.
  void full_gradient(std::span<const double> w, std::span<double> out) const;

  /// Lipschitz constant L = lambda_max((1/m) X X^T); computed once by power
  /// iteration on the implicit operator and cached.
  [[nodiscard]] double lipschitz() const;

  /// Dense H = (1/m) X X^T (lazily built and cached; d x d).
  [[nodiscard]] const la::Matrix& full_hessian() const;

  /// Dense R = (1/m) X y (lazily built and cached).
  [[nodiscard]] const la::Vector& full_rhs() const;

  /// Smallest lambda for which the lasso solution is identically zero:
  /// lambda_max = ||grad f(0)||_inf = ||(1/m) X y||_inf.  Computed with one
  /// SpMV (does not build the Gram matrix).
  [[nodiscard]] double lambda_max() const;

  /// The step size upper bound of Theorem 1 (Eq. 10) for batch size mbar:
  /// gamma <= 1 / max(L/2 + sqrt(1/4 + 4 L^2 (m-mbar)/(mbar (m-1))), L).
  [[nodiscard]] double theorem1_step_bound(std::size_t mbar) const;

 private:
  const data::Dataset* dataset_;
  double lambda_;
  mutable std::optional<double> lipschitz_;
  mutable std::optional<la::Matrix> hessian_;
  mutable std::optional<la::Vector> rhs_;
};

}  // namespace rcf::core
