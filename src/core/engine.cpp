#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/health.hpp"
#include "core/momentum.hpp"
#include "exec/pool.hpp"
#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "data/partition.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "prox/operators.hpp"
#include "sparse/gram.hpp"

namespace rcf::core {

namespace {

using model::Phase;

/// Mutable iteration state of the recurrence (paper Eq. 16-17): the engine
/// carries w_{n-1}, dw_{n-1} = w_{n-1} - w_{n-2}, and the extrapolated point
/// v_n, updated incrementally via dv_n = (1+mu_{n+1}) dw_n - mu_n dw_{n-1}.
struct IterState {
  la::Vector w;        // w_{n-1}
  la::Vector dw_prev;  // w_{n-1} - w_{n-2}
  la::Vector v;        // v_n (the point the next gradient is taken at)
};

/// Scratch buffers reused across iterations (no allocation in the loop).
struct Scratch {
  la::Vector grad;
  la::Vector theta;
  la::Vector u;
  la::Vector tmp;
};

/// grad <- H z - R  (plain Alg. 4 line 8) or, with variance reduction,
/// grad <- H (z - anchor) + anchor_grad  (Eq. 9 specialized to least
/// squares, where the sampled terms collapse to H_S (z - w_hat)).
void estimate_gradient(const la::Matrix& h, const la::Vector& r,
                       std::span<const double> z, bool variance_reduction,
                       std::span<const double> anchor,
                       std::span<const double> anchor_grad, Scratch& s) {
  if (variance_reduction) {
    la::waxpby(1.0, z, -1.0, anchor, s.tmp.span());
    la::gemv(1.0, h, s.tmp.span(), 0.0, s.grad.span());
    la::axpy(1.0, anchor_grad, s.grad.span());
  } else {
    la::gemv(1.0, h, z, 0.0, s.grad.span());
    la::axpy(-1.0, r.span(), s.grad.span());
  }
}

}  // namespace

double auto_step_size(const LassoProblem& problem, const SolverOptions& opts,
                      std::size_t mbar) {
  if (opts.step_size > 0.0) {
    return opts.step_size;
  }
  const std::size_t m = problem.num_samples();
  const std::size_t d = problem.dim();
  double l_est = problem.lipschitz();
  if (mbar < m && mbar < d) {
    // Rank-deficient regime: a single draw can realize a spectral norm up
    // to the hard bound max_i ||x_i||^2 (attained at mbar = 1), and the
    // momentum recurrence amplifies any transient gamma*||H_S|| > 1
    // excursion without recovery.  Step against the hard bound: safe for
    // every possible draw, at the price of conservatism.
    double row_norm_sq_max = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = problem.xt().row(i);
      row_norm_sq_max =
          std::max(row_norm_sq_max, la::dot(row.vals, row.vals));
    }
    l_est = std::max(l_est, row_norm_sq_max);
  } else if (mbar < m) {
    // Overdetermined draws (mbar >= d): spectral norms concentrate; probe a
    // few draws on the dedicated stream 0 (the per-iteration streams 1..N
    // stay untouched, preserving the k / S / P trajectory invariance).
    la::Matrix h_probe(d, d);
    la::Vector r_probe(d);
    Rng rng(opts.seed, /*stream=*/0);
    for (int probe = 0; probe < 6; ++probe) {
      const auto idx = rng.sample_without_replacement(m, mbar);
      sparse::sampled_gram(problem.xt(), problem.y().span(), idx, h_probe,
                           r_probe.span());
      const auto power = la::power_iteration(h_probe, /*max_iters=*/100,
                                             /*tol=*/1e-4, opts.seed);
      l_est = std::max(l_est, 1.35 * power.eigenvalue);
    }
  }
  return opts.step_scale / l_est;
}

void validate_options(const LassoProblem& problem, const SolverOptions& opts) {
  RCF_CHECK_MSG(opts.max_iters >= 1, "options: max_iters must be >= 1");
  RCF_CHECK_MSG(opts.k >= 1, "options: k must be >= 1");
  RCF_CHECK_MSG(opts.s >= 1, "options: s must be >= 1");
  RCF_CHECK_MSG(opts.sampling_rate > 0.0 && opts.sampling_rate <= 1.0,
                "options: sampling_rate must be in (0, 1]");
  RCF_CHECK_MSG(opts.procs >= 1, "options: procs must be >= 1");
  RCF_CHECK_MSG(opts.threads >= 0, "options: threads must be >= 0");
  RCF_CHECK_MSG(opts.history_stride >= 1,
                "options: history_stride must be >= 1");
  RCF_CHECK_MSG(opts.step_size >= 0.0, "options: step_size must be >= 0");
  RCF_CHECK_MSG(opts.step_scale > 0.0, "options: step_scale must be > 0");
  if (opts.variance_reduction) {
    RCF_CHECK_MSG(opts.epoch_length >= 1,
                  "options: epoch_length must be >= 1 with VR");
  }
  RCF_CHECK_MSG(problem.dim() > 0, "options: empty problem");
  if (opts.tol > 0.0) {
    RCF_CHECK_MSG(!std::isnan(opts.f_star),
                  "options: tol-based stopping requires f_star (run the "
                  "reference solver first)");
  }
}

SolveResult run_sfista_engine(const LassoProblem& problem,
                              const SolverOptions& opts,
                              const std::string& solver_name) {
  validate_options(problem, opts);

  // Intra-rank pool for the Gram / BLAS kernels below; a single logical
  // rank here, so 0 resolves to the full hardware concurrency.
  exec::Pool pool(exec::Pool::resolve_width(opts.threads, 1));
  exec::PoolGuard pool_guard(&pool);

  const std::size_t d = problem.dim();
  const std::size_t m = problem.num_samples();
  const auto mbar = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(
             opts.sampling_rate * static_cast<double>(m))));

  const double gamma = auto_step_size(problem, opts, mbar);
  const double lambda_gamma = problem.lambda() * gamma;

  // Default regularizer: the problem's lambda ||w||_1 (paper Eq. 14);
  // opts.regularizer swaps in any proximable g (elastic net, box, ...).
  const auto apply_prox = [&](std::span<const double> in,
                              std::span<double> out) {
    if (opts.regularizer != nullptr) {
      la::copy(in, out);
      opts.regularizer->apply(out, gamma);
    } else {
      prox::soft_threshold(in, lambda_gamma, out);
    }
  };
  const auto eval_objective = [&](std::span<const double> w) {
    return opts.regularizer != nullptr
               ? problem.smooth_value(w) + opts.regularizer->value(w)
               : problem.objective(w);
  };
  const int k = opts.k;
  const int s_iters = opts.s;

  const MomentumSchedule outer_mu(opts.momentum);

  const data::Partition partition(m, opts.procs);

  WallTimer wall;
  const std::uint64_t health_base = health_mark();
  SolveResult result;
  result.solver = solver_name;
  result.cost = model::CostTracker(opts.collective);
  model::CostTracker& cost = result.cost;

  // Phase observation (counts always, spans + wall time when the global
  // trace session is on).  The "allreduce" phase mirrors the stage-C
  // rounds the SPMD path would execute, so its count validates against
  // CommStats on the real threaded backend.
  const bool tracing = opts.trace && obs::TraceSession::global().enabled();
  obs::PhaseAgg ph_sampling, ph_gram, ph_allreduce, ph_update;

  // Per-block Hessian / RHS storage: G = [H_1 | ... | H_k], R likewise
  // (Alg. 5 line 6).  Allocated once.
  std::vector<la::Matrix> h_blocks;
  std::vector<la::Vector> r_blocks;
  h_blocks.reserve(static_cast<std::size_t>(k));
  r_blocks.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    h_blocks.emplace_back(d, d);
    r_blocks.emplace_back(d);
  }

  IterState st{la::Vector(d), la::Vector(d), la::Vector(d)};
  Scratch scratch{la::Vector(d), la::Vector(d), la::Vector(d), la::Vector(d)};
  // Previous iterate for the per-iteration step norm of the convergence
  // ring (scratch.tmp is owned by the VR gradient path, so a dedicated
  // buffer).
  la::Vector w_iter_prev(d);

  // Variance-reduction anchor (Alg. 3's w_hat) and its exact gradient.
  la::Vector anchor(d), anchor_grad(d);
  int last_anchor_iter = 0;
  int momentum_base = 0;
  // Counts recurrence updates (S per sampled block); drives the momentum
  // schedule.
  int update_counter = 0;
  auto refresh_anchor = [&](int iter_base) {
    la::copy(st.w.span(), anchor.span());
    obs::timed_phase(tracing, ph_gram, "gram", 0.0, [&] {
      problem.full_gradient(anchor.span(), anchor_grad.span());
    });
    // Exact gradient: two SpMVs over the distributed data + an allreduce of
    // the d-vector of partial sums.
    cost.add_flops(Phase::kGram,
                   4.0 * static_cast<double>(problem.xt().nnz()) /
                       static_cast<double>(opts.procs));
    obs::timed_phase(tracing, ph_allreduce, "allreduce",
                     static_cast<double>(d),
                     [&] { cost.add_allreduce(opts.procs, d); });
    last_anchor_iter = iter_base;
    if (opts.vr_restart_momentum) {
      // Literal Alg. 3: restart the inner loop from the snapshot (w_0 =
      // w_hat, fresh momentum, v = w).
      la::copy(st.w.span(), st.v.span());
      st.dw_prev.fill(0.0);
      momentum_base = update_counter;
    }
  };

  // The k*(d^2+d) block working set spills the cache for large k; every use
  // then streams from DRAM (see MachineSpec::beta_mem and DESIGN.md).
  const double block_words = static_cast<double>(k) * (static_cast<double>(d) * d + d);
  const bool spills = block_words > opts.machine.cache_doubles;

  const bool need_objective_every_iter = opts.tol > 0.0;
  std::uint64_t comm_rounds = 0;
  int iterations_done = 0;
  bool done = false;
  // Machine-independent cumulative counters mirrored into the history so
  // benches can re-cost one trajectory for any (P, machine, collective).
  double raw_gram_flops = 0.0;
  double raw_update_flops = 0.0;
  double comm_payload_words = 0.0;

  // mu index relative to the last VR momentum restart (plain runs and the
  // default momentum-continuous VR never restart).
  const auto mu_index = [&](int update_n) { return update_n - momentum_base; };

  if (opts.variance_reduction) {
    refresh_anchor(0);
  }

  for (int block_start = 1; block_start <= opts.max_iters && !done;
       block_start += k) {
    const int kk = std::min(k, opts.max_iters - block_start + 1);

    if (opts.variance_reduction &&
        block_start - 1 - last_anchor_iter >= opts.epoch_length) {
      refresh_anchor(block_start - 1);
    }

    // -- stages A + B: sample and locally accumulate k Hessian blocks ------
    for (int j = 0; j < kk; ++j) {
      const int n = block_start + j;
      // Sampling is keyed on (seed, n) only: identical index sets for every
      // k, every S, every P (paper §5.2, "random sampling is fixed by using
      // the same random generator seed").
      Rng rng(opts.seed, static_cast<std::uint64_t>(n));
      std::vector<std::uint32_t> idx;
      obs::timed_phase(tracing, ph_sampling, "sampling", 0.0, [&] {
        idx = rng.sample_without_replacement(m, mbar);
      });
      obs::timed_phase(tracing, ph_gram, "gram", 0.0, [&] {
        if (mbar == m) {
          // Full batch: the "sampled" Gram is the constant (H, R) pair, so
          // we compute it once and reuse the values (bitwise identical to
          // recomputation).  Costs are still charged per iteration exactly
          // as the oblivious algorithm of Table 1 would incur them.
          if (j == 0 && block_start == 1) {
            sparse::sampled_gram(problem.xt(), problem.y().span(), idx,
                                 h_blocks[0], r_blocks[0]);
          } else if (j > 0) {
            h_blocks[static_cast<std::size_t>(j)] = h_blocks[0];
            r_blocks[static_cast<std::size_t>(j)] = r_blocks[0];
          }
        } else {
          sparse::sampled_gram(problem.xt(), problem.y().span(), idx,
                               h_blocks[static_cast<std::size_t>(j)],
                               r_blocks[static_cast<std::size_t>(j)]);
        }
      });
      raw_gram_flops +=
          static_cast<double>(sparse::sampled_gram_flops(problem.xt(), idx));
      // Cost: each rank accumulates only its own samples; the critical path
      // is the most loaded rank.
      if (opts.procs == 1) {
        cost.add_flops(Phase::kGram,
                       static_cast<double>(
                           sparse::sampled_gram_flops(problem.xt(), idx)));
      } else {
        const auto splits = partition.split_sorted(idx);
        std::uint64_t max_rank_flops = 0;
        for (const auto& span : splits) {
          max_rank_flops = std::max(
              max_rank_flops, sparse::sampled_gram_flops(problem.xt(), span));
        }
        cost.add_flops(Phase::kGram, static_cast<double>(max_rank_flops));
      }
    }

    // -- stage C: one allreduce of [H_1|..|H_kk | R_1|..|R_kk] --------------
    // Modeled (zero wall time here; the SPMD path in distributed.cpp
    // performs the real collective), but counted as one "allreduce" span
    // so the schedule shape is observable from SolveResult::phases.
    obs::timed_phase(
        tracing, ph_allreduce, "allreduce",
        static_cast<double>(kk) * (static_cast<double>(d) * d + d), [&] {
          cost.add_allreduce(opts.procs,
                             static_cast<std::uint64_t>(kk) * (d * d + d));
        });
    ++comm_rounds;
    comm_payload_words += static_cast<double>(kk) *
                          (static_cast<double>(d) * d + d);
    if (spills) {
      cost.add_mem_words(Phase::kUpdate,
                         (1.0 + s_iters) * static_cast<double>(kk) *
                             (static_cast<double>(d) * d + d));
    }

    // -- stage D: kk local update sweeps, S Hessian-reuse steps each --------
    //
    // Hessian-reuse (paper Eq. 20-23): each communicated (H, R) block is
    // reused for S recurrence steps.  Every reuse step is a *standard*
    // SFISTA update -- prox step at the extrapolated point, then the
    // dv = (1+mu)dw - mu dw_prev recurrence -- advancing one shared update
    // counter, so S = 1 reduces bit-exactly to the base algorithm and the
    // per-step stability condition (gamma * ||H_n|| <= 1) is unchanged.
    // Over-solving against a stale sampled block is what degrades large S
    // (the paper's S = 10 observation).
    for (int j = 0; j < kk && !done; ++j) {
      const int n = block_start + j;
      const la::Matrix& h = h_blocks[static_cast<std::size_t>(j)];
      const la::Vector& r = r_blocks[static_cast<std::size_t>(j)];
      la::copy(st.w.span(), w_iter_prev.span());

      obs::timed_phase(tracing, ph_update, "update",
                       static_cast<double>(s_iters), [&] {
        for (int s2 = 1; s2 <= s_iters; ++s2) {
          estimate_gradient(h, r, st.v.span(), opts.variance_reduction,
                            anchor.span(), anchor_grad.span(), scratch);
          la::waxpby(1.0, st.v.span(), -gamma, scratch.grad.span(),
                     scratch.theta.span());
          apply_prox(scratch.theta.span(), scratch.u.span());

          // Recurrence: dw = w_new - w; dv = (1+mu_{u+1}) dw - mu_u dw_prev.
          ++update_counter;
          bool restarted = false;
          if (opts.adaptive_restart) {
            // Restart test: <v - w_new, w_new - w_old> > 0.
            double dot_restart = 0.0;
            for (std::size_t i = 0; i < d; ++i) {
              dot_restart +=
                  (st.v[i] - scratch.u[i]) * (scratch.u[i] - st.w[i]);
            }
            if (dot_restart > 0.0) {
              momentum_base = update_counter;
              la::copy(scratch.u.span(), st.v.span());
              la::copy(scratch.u.span(), st.w.span());
              st.dw_prev.fill(0.0);
              restarted = true;
            }
          }
          if (!restarted) {
            const int nn = mu_index(update_counter);
            const double mu_next =
                std::min(outer_mu.mu(nn + 1), opts.momentum_cap);
            const double mu_cur =
                std::min(outer_mu.mu(nn), opts.momentum_cap);
            for (std::size_t i = 0; i < d; ++i) {
              const double dw = scratch.u[i] - st.w[i];
              st.v[i] += (1.0 + mu_next) * dw - mu_cur * st.dw_prev[i];
              st.dw_prev[i] = dw;
              st.w[i] = scratch.u[i];
            }
          }
        }
      });

      // Update-phase flops: S gradient gemvs (2 d^2 each) plus O(d) vector
      // work, performed redundantly on every rank (so not divided by P).
      const double dd = static_cast<double>(d);
      const double update_flops =
          static_cast<double>(s_iters) * (2.0 * dd * dd + 8.0 * dd) + 6.0 * dd;
      cost.add_flops(Phase::kUpdate, update_flops);
      raw_update_flops += update_flops;

      iterations_done = n;

      const bool record =
          opts.track_history && (n % opts.history_stride == 0);
      double objective_n = std::numeric_limits<double>::quiet_NaN();
      if (record || need_objective_every_iter) {
        objective_n = eval_objective(st.w.span());
        double rel_error = std::numeric_limits<double>::quiet_NaN();
        if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
          rel_error = std::abs((objective_n - opts.f_star) / opts.f_star);
        }
        if (record) {
          result.history.push_back(IterationRecord{
              n, objective_n, rel_error, cost.seconds(opts.machine),
              comm_rounds, raw_gram_flops, raw_update_flops,
              comm_payload_words});
        }
        if (opts.tol > 0.0 && !std::isnan(rel_error) &&
            rel_error <= opts.tol) {
          result.converged = true;
          done = true;
        }
      }

      // Convergence telemetry: O(d) per-iteration summary, recorded into
      // the bounded ring regardless of track_history (objective stays NaN
      // on iterations where it was not evaluated).
      {
        obs::ConvergenceRecord rec;
        rec.iteration = static_cast<std::uint64_t>(n);
        rec.objective = objective_n;
        rec.grad_norm =
            std::sqrt(la::dot(scratch.grad.span(), scratch.grad.span()));
        double support = 0.0;
        double step_sq = 0.0;
        for (std::size_t i = 0; i < d; ++i) {
          support += st.w[i] != 0.0 ? 1.0 : 0.0;
          const double dw = st.w[i] - w_iter_prev[i];
          step_sq += dw * dw;
        }
        rec.support = support;
        rec.step = std::sqrt(step_sq);
        result.conv.push(rec);
        obs::telemetry_publish(obs::TelemetryKind::kProgress, "iter",
                               static_cast<double>(n), rec.objective,
                               rec.step);
      }
    }
  }

  result.w = st.w;
  result.iterations = iterations_done;
  result.objective = eval_objective(result.w.span());
  if (!std::isfinite(result.objective)) {
    // Divergence (or corrupted inputs) is reported as a structured failure
    // rather than handing the caller a NaN/Inf objective to misinterpret.
    result.failed = true;
    result.failure_reason =
        "engine: non-finite objective at the final iterate";
  }
  if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
    result.rel_error = std::abs((result.objective - opts.f_star) / opts.f_star);
  }
  result.sim_seconds = cost.seconds(opts.machine);
  result.wall_seconds = wall.seconds();
  obs::append_phase(result.phases, "sampling", ph_sampling);
  obs::append_phase(result.phases, "gram", ph_gram);
  obs::append_phase(result.phases, "allreduce", ph_allreduce);
  obs::append_phase(result.phases, "update", ph_update);
  if (tracing) {
    // Aggregate over a 1-rank world so traced sequential runs export the
    // same agg.* layout as the SPMD backend (no real comm stats here; the
    // collectives are modeled).
    obs::MetricsRegistry local;
    obs::record_solve_metrics(local, result.phases, nullptr);
    dist::SeqComm seq;
    result.fleet = obs::aggregate(local, seq);
    obs::publish(result.fleet, obs::MetricsRegistry::global());
  }
  annotate_health(result, health_base);
  return result;
}

}  // namespace rcf::core
