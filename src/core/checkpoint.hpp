// Proximal-Newton outer-iteration checkpointing.
//
// The PN driver's cross-iteration state is exactly (outer index, iterate w,
// objective at w): every other quantity -- the sampled-Hessian index set,
// the power-iteration start vector, the inner momentum sequence -- is
// re-derived per outer iteration from (seed, outer) via the counter-based
// RNG.  A solve resumed from a checkpoint therefore replays the remaining
// outer iterations *bitwise* identically to the uninterrupted run, which
// is what makes checkpoint/restore a testable resilience primitive (see
// tools/rcf-chaos and tests/test_fault.cpp) rather than a best-effort one.
//
// Serialization is JSON with %.17g doubles (exact round-trip).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rcf::core {

/// State captured after a completed PN outer iteration.
struct PnCheckpoint {
  int outer = 0;           ///< last completed outer iteration (1-based).
  double objective = 0.0;  ///< F(w) at the checkpointed iterate.
  std::vector<double> w;   ///< iterate, length d.
};

/// Serializes to a single-line JSON object.
[[nodiscard]] std::string to_json(const PnCheckpoint& ck);

/// Parses to_json output.  Throws rcf::IoError on malformed input
/// (syntax error, missing field, non-numeric entries).
[[nodiscard]] PnCheckpoint checkpoint_from_json(std::string_view text);

/// File convenience wrappers (throw rcf::IoError on I/O failure).
void save_checkpoint(const std::string& path, const PnCheckpoint& ck);
[[nodiscard]] PnCheckpoint load_checkpoint(const std::string& path);

}  // namespace rcf::core
