#include "core/prox_newton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "core/momentum.hpp"
#include "data/partition.hpp"
#include "fault/plan.hpp"
#include "exec/pool.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prox/operators.hpp"
#include "sparse/gram.hpp"

namespace rcf::core {

namespace {

using model::Phase;

/// Charges the per-rank critical-path flops of one sampled Gram
/// accumulation.
void charge_gram(model::CostTracker& cost, const sparse::CsrMatrix& xt,
                 std::span<const std::uint32_t> idx,
                 const data::Partition& partition, int procs) {
  if (procs == 1) {
    cost.add_flops(Phase::kGram,
                   static_cast<double>(sparse::sampled_gram_flops(xt, idx)));
    return;
  }
  const auto splits = partition.split_sorted(idx);
  std::uint64_t max_rank = 0;
  for (const auto& span : splits) {
    max_rank = std::max(max_rank, sparse::sampled_gram_flops(xt, span));
  }
  cost.add_flops(Phase::kGram, static_cast<double>(max_rank));
}

/// Applies the sampled-Hessian operator z -> (1/mbar) X_S (X_S^T z) using
/// the row-sampled matrix (no d x d materialization).  This is the
/// distributed baseline's gradient kernel: each rank applies its slice and
/// the length-d partial sums are allreduced.
struct SampledHessianOp {
  const sparse::CsrMatrix* xs = nullptr;  // mbar x d
  mutable std::vector<double> tmp;        // length mbar

  void apply(std::span<const double> z, std::span<double> out) const {
    tmp.resize(xs->rows());
    xs->spmv(z, tmp);
    xs->spmv_t(tmp, out);
    la::scal(1.0 / static_cast<double>(xs->rows()), out);
  }

  /// Cost of one apply: two SpMVs.
  [[nodiscard]] double flops() const {
    return 4.0 * static_cast<double>(xs->nnz());
  }
};

}  // namespace

SolveResult solve_proximal_newton(const LassoProblem& problem,
                                  const PnOptions& opts) {
  RCF_CHECK_MSG(opts.max_outer >= 1, "pn: max_outer must be >= 1");
  RCF_CHECK_MSG(opts.inner_iters >= 1, "pn: inner_iters must be >= 1");
  RCF_CHECK_MSG(opts.k >= 1 && opts.s >= 1, "pn: k and s must be >= 1");
  RCF_CHECK_MSG(opts.hessian_sampling_rate > 0.0 &&
                    opts.hessian_sampling_rate <= 1.0,
                "pn: hessian_sampling_rate must be in (0, 1]");
  RCF_CHECK_MSG(opts.damping > 0.0 && opts.damping <= 1.0,
                "pn: damping must be in (0, 1]");
  if (opts.tol > 0.0) {
    RCF_CHECK_MSG(!std::isnan(opts.f_star), "pn: tol requires f_star");
  }
  RCF_CHECK_MSG(opts.threads >= 0, "pn: threads must be >= 0");

  exec::Pool pool(exec::Pool::resolve_width(opts.threads, 1));
  exec::PoolGuard pool_guard(&pool);

  WallTimer wall;
  const std::size_t d = problem.dim();
  const std::size_t m = problem.num_samples();
  const auto mbar = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(opts.hessian_sampling_rate * static_cast<double>(m))));
  const data::Partition partition(m, opts.procs);
  const double lambda = problem.lambda();

  SolveResult result;
  result.solver = opts.inner == PnInnerSolver::kFista ? "pn-fista"
                                                      : "pn-rc-sfista";
  result.cost = model::CostTracker(opts.collective);
  model::CostTracker& cost = result.cost;
  std::uint64_t comm_rounds = 0;

  // Outer-loop phase observation (Alg. 1 lines: gradient, step-size power
  // iteration, inner subproblem solve, damped line search).
  const bool tracing = opts.trace && obs::TraceSession::global().enabled();
  obs::PhaseAgg ph_gradient, ph_power, ph_inner, ph_linesearch;

  la::Vector w(d), grad(d), z(d);
  la::Vector w_prev_outer(d);  // for the convergence ring's step norm

  // RC-SFISTA inner blocks.
  const int k = opts.k;
  std::vector<la::Matrix> h_blocks;
  std::vector<la::Vector> r_blocks;
  if (opts.inner == PnInnerSolver::kRcSfista) {
    for (int j = 0; j < k; ++j) {
      h_blocks.emplace_back(d, d);
      r_blocks.emplace_back(d);
    }
  }
  const MomentumSchedule outer_mu(MomentumRule::kFista);
  const MomentumSchedule inner_mu(MomentumRule::kFista);

  double objective = problem.objective(w.span());

  // Checkpoint resume: restore (outer, w, F(w)) and replay the remaining
  // outer iterations.  All other per-iteration state -- Hessian index
  // sets, power-iteration start vectors, inner momentum streams -- is
  // derived from (seed, outer), so the resumed trajectory is bitwise
  // identical to the uninterrupted one (asserted by tests/test_fault.cpp
  // and the rcf-chaos pn-resume suite).
  int first_outer = 1;
  if (opts.resume_from != nullptr) {
    const PnCheckpoint& ck = *opts.resume_from;
    RCF_CHECK_MSG(ck.w.size() == d,
                  "pn: resume checkpoint dimension mismatch");
    RCF_CHECK_MSG(ck.outer >= 0 && ck.outer <= opts.max_outer,
                  "pn: resume checkpoint outer out of range");
    std::copy(ck.w.begin(), ck.w.end(), w.data());
    objective = ck.objective;
    first_outer = ck.outer + 1;
  }

  bool done = false;
  int outer = first_outer - 1;
  try {
  for (outer = first_outer; outer <= opts.max_outer && !done; ++outer) {
    // Chaos hook: an `abort:at=pn.outer,index=N` plan kills the solve here,
    // before iteration N runs (see fault/plan.hpp).
    fault::iteration_point("pn.outer", static_cast<std::uint64_t>(outer));
    la::copy(w.span(), w_prev_outer.span());
    // Exact gradient of f at w_n: two SpMVs over distributed data plus one
    // allreduce of the length-d partial sums.
    obs::timed_phase(tracing, ph_gradient, "gradient",
                     static_cast<double>(d), [&] {
      problem.full_gradient(w.span(), grad.span());
      cost.add_flops(Phase::kGram,
                     4.0 * static_cast<double>(problem.xt().nnz()) /
                         static_cast<double>(opts.procs));
      cost.add_allreduce(opts.procs, d);
    });
    ++comm_rounds;

    // Line 3 of Alg. 1: the sampled-Hessian index set for this outer
    // iteration (same stream on all ranks; paper §5.5 seeds all processors
    // identically).
    Rng hrng(opts.seed, static_cast<std::uint64_t>(outer) << 20);
    const auto hidx = hrng.sample_without_replacement(m, mbar);
    const sparse::CsrMatrix xs = problem.xt().select_rows(hidx);
    SampledHessianOp hop{&xs, {}};

    // Step size for the quadratic subproblem: the largest eigenvalue of the
    // sampled Hessian, via distributed power iteration (each apply costs two
    // SpMVs per rank and one d-word allreduce).
    la::PowerIterationResult power;
    obs::timed_phase(tracing, ph_power, "power_iter", 0.0, [&] {
      power = la::power_iteration(
          [&hop](std::span<const double> v, std::span<double> out) {
            hop.apply(v, out);
          },
          d, /*max_iters=*/60, /*tol=*/1e-4,
          derive_seed(opts.seed, static_cast<std::uint64_t>(outer)));
      cost.add_flops(Phase::kGram, power.iterations * hop.flops() /
                                       static_cast<double>(opts.procs));
      cost.add_comm(
          power.iterations *
              model::allreduce_cost(opts.collective, opts.procs, d).messages,
          power.iterations *
              model::allreduce_cost(opts.collective, opts.procs, d).words);
    });
    // One d-word allreduce per performed power iteration.
    ph_power.words += static_cast<double>(power.iterations) *
                      static_cast<double>(d);
    comm_rounds += static_cast<std::uint64_t>(power.iterations);
    // Safety margin: RC-SFISTA resamples the Hessian every inner iteration,
    // so individual draws can exceed this estimate.
    const double l_hat = std::max(power.eigenvalue, 1e-300);
    const double gamma =
        (opts.inner == PnInnerSolver::kRcSfista ? 1.0 / (1.5 * l_hat)
                                                : 1.0 / l_hat);
    const double lambda_gamma = lambda * gamma;

    // Inner subproblem solve, timed as one "inner" span (manual timing --
    // wrapping the two ~40-line branches in a lambda would bury them).
    // Payload: per inner iteration the baseline allreduces a d-vector,
    // RC-SFISTA a d x d Hessian block.
    ++ph_inner.count;
    ph_inner.words += static_cast<double>(opts.inner_iters) *
                      (opts.inner == PnInnerSolver::kFista
                           ? static_cast<double>(d)
                           : static_cast<double>(d) * static_cast<double>(d));
    const std::int64_t inner_t0 =
        tracing ? obs::TraceSession::global().now_us() : 0;

    if (opts.inner == PnInnerSolver::kFista) {
      // Baseline (Fig. 7 denominator): deterministic FISTA on the fixed
      // sampled Hessian, with the subproblem gradient H~ (y - w) + grad
      // computed distributed *every inner iteration*: two local SpMVs and
      // one allreduce of a d-vector per iteration.
      la::Vector u(d), u_prev(d), v(d), g(d), theta(d), tmp(d);
      la::copy(w.span(), u.span());
      la::copy(w.span(), u_prev.span());
      for (int n = 1; n <= opts.inner_iters; ++n) {
        const double m_n = outer_mu.mu(n);
        la::waxpby(1.0 + m_n, u.span(), -m_n, u_prev.span(), v.span());
        la::waxpby(1.0, v.span(), -1.0, w.span(), tmp.span());
        hop.apply(tmp.span(), g.span());
        la::axpy(1.0, grad.span(), g.span());
        la::waxpby(1.0, v.span(), -gamma, g.span(), theta.span());
        std::swap(u, u_prev);
        prox::soft_threshold(theta.span(), lambda_gamma, u.span());
        cost.add_flops(Phase::kUpdate,
                       hop.flops() / static_cast<double>(opts.procs) +
                           12.0 * static_cast<double>(d));
        cost.add_allreduce(opts.procs, d);
        ++comm_rounds;
      }
      la::copy(u.span(), z.span());
    } else {
      // RC-SFISTA inner solver: fresh sampled Hessian every inner iteration,
      // k-overlapped allreduces of [H|R] blocks, S-deep Hessian reuse.
      la::Vector u(d), dw_prev(d), v(d), g(d), theta(d), tmp(d), su(d);
      la::copy(w.span(), u.span());
      la::copy(w.span(), v.span());
      int inner_done = 0;
      int update_counter = 0;
      while (inner_done < opts.inner_iters) {
        const int kk = std::min(k, opts.inner_iters - inner_done);
        for (int j = 0; j < kk; ++j) {
          const auto stream =
              (static_cast<std::uint64_t>(outer) << 20) +
              static_cast<std::uint64_t>(inner_done + j + 1);
          Rng rng(opts.seed, stream);
          const auto idx = rng.sample_without_replacement(m, mbar);
          sparse::sampled_gram(problem.xt(), problem.y().span(), idx,
                               h_blocks[static_cast<std::size_t>(j)],
                               r_blocks[static_cast<std::size_t>(j)]);
          charge_gram(cost, problem.xt(), idx, partition, opts.procs);
        }
        cost.add_allreduce(opts.procs,
                           static_cast<std::uint64_t>(kk) * d * d);
        ++comm_rounds;
        for (int j = 0; j < kk; ++j) {
          const la::Matrix& hj = h_blocks[static_cast<std::size_t>(j)];
          // Subproblem gradient at a point: hj (point - w) + grad.
          auto subgrad = [&](std::span<const double> at,
                             std::span<double> out) {
            la::waxpby(1.0, at, -1.0, w.span(), tmp.span());
            la::gemv(1.0, hj, tmp.span(), 0.0, out);
            la::axpy(1.0, grad.span(), out);
          };
          // S reuse steps per block, each a standard recurrence update on
          // the shared momentum counter (same semantics as the engine).
          for (int s2 = 1; s2 <= opts.s; ++s2) {
            subgrad(v.span(), g.span());
            la::waxpby(1.0, v.span(), -gamma, g.span(), theta.span());
            prox::soft_threshold(theta.span(), lambda_gamma, su.span());
            ++update_counter;
            const double mu_next = inner_mu.mu(update_counter + 1);
            const double mu_cur = inner_mu.mu(update_counter);
            for (std::size_t i = 0; i < d; ++i) {
              const double dw = su[i] - u[i];
              v[i] += (1.0 + mu_next) * dw - mu_cur * dw_prev[i];
              dw_prev[i] = dw;
              u[i] = su[i];
            }
          }
          const double dd = static_cast<double>(d);
          cost.add_flops(Phase::kUpdate,
                         static_cast<double>(opts.s) *
                                 (2.0 * dd * dd + 10.0 * dd) +
                             6.0 * dd);
        }
        inner_done += kk;
      }
      la::copy(u.span(), z.span());
    }

    if (tracing) {
      auto& session = obs::TraceSession::global();
      const std::int64_t inner_t1 = session.now_us();
      ph_inner.us += inner_t1 - inner_t0;
      session.record("inner", inner_t0, inner_t1 - inner_t0);
    }

    // Lines 5-6 of Alg. 1 with a monotonicity safeguard: halve the damping
    // until the objective does not increase (the subproblem Hessian is a
    // random estimate, so an occasional bad direction is expected).
    obs::timed_phase(tracing, ph_linesearch, "linesearch", 0.0, [&] {
      double step = opts.damping;
      la::Vector trial(d);
      double trial_obj = objective;
      for (int attempt = 0; attempt < 30; ++attempt) {
        for (std::size_t i = 0; i < d; ++i) {
          trial[i] = w[i] + step * (z[i] - w[i]);
        }
        trial_obj = problem.objective(trial.span());
        if (trial_obj <= objective) {
          break;
        }
        step *= 0.5;
      }
      if (trial_obj <= objective) {
        std::swap(w, trial);
        objective = trial_obj;
      }
      cost.add_flops(Phase::kUpdate, 3.0 * static_cast<double>(d));
    });

    // Convergence telemetry: one record per outer iteration (objective and
    // exact gradient are both maintained on this path).
    {
      obs::ConvergenceRecord rec;
      rec.iteration = static_cast<std::uint64_t>(outer);
      rec.objective = objective;
      rec.grad_norm = std::sqrt(la::dot(grad.span(), grad.span()));
      double support = 0.0;
      double step_sq = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        support += w[i] != 0.0 ? 1.0 : 0.0;
        const double dw = w[i] - w_prev_outer[i];
        step_sq += dw * dw;
      }
      rec.support = support;
      rec.step = std::sqrt(step_sq);
      result.conv.push(rec);
    }

    double rel_error = std::numeric_limits<double>::quiet_NaN();
    if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
      rel_error = std::abs((objective - opts.f_star) / opts.f_star);
    }
    if (opts.track_history) {
      result.history.push_back(IterationRecord{
          outer, objective, rel_error, cost.seconds(opts.machine),
          comm_rounds});
    }
    if (opts.tol > 0.0 && !std::isnan(rel_error) && rel_error <= opts.tol) {
      result.converged = true;
      done = true;
    }
    if (opts.checkpoint_sink) {
      PnCheckpoint ck;
      ck.outer = outer;
      ck.objective = objective;
      ck.w.assign(w.data(), w.data() + d);
      opts.checkpoint_sink(ck);
    }
  }
  } catch (const fault::FaultAbort& e) {
    // Structured failure: report the partial iterate and how far the solve
    // got; a checkpoint_sink caller can resume from the last completed
    // outer iteration.
    result.failed = true;
    result.failure_reason = e.what();
  }

  result.w = w;
  result.iterations = result.failed ? outer - 1
                                    : std::min(outer, opts.max_outer);
  result.objective = objective;
  if (!result.failed && !std::isfinite(objective)) {
    result.failed = true;
    result.failure_reason = "pn: non-finite objective at the final iterate";
  }
  if (!std::isnan(opts.f_star) && opts.f_star != 0.0) {
    result.rel_error = std::abs((result.objective - opts.f_star) / opts.f_star);
  }
  result.sim_seconds = cost.seconds(opts.machine);
  result.wall_seconds = wall.seconds();
  obs::append_phase(result.phases, "gradient", ph_gradient);
  obs::append_phase(result.phases, "power_iter", ph_power);
  obs::append_phase(result.phases, "inner", ph_inner);
  obs::append_phase(result.phases, "linesearch", ph_linesearch);
  if (tracing) {
    obs::MetricsRegistry local;
    obs::record_solve_metrics(local, result.phases, nullptr);
    dist::SeqComm seq;
    result.fleet = obs::aggregate(local, seq);
    obs::publish(result.fleet, obs::MetricsRegistry::global());
  }
  return result;
}

}  // namespace rcf::core
