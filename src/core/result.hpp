// Solver result types.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "dist/comm.hpp"
#include "la/backend.hpp"
#include "la/vector.hpp"
#include "model/cost.hpp"
#include "obs/aggregate.hpp"
#include "obs/convergence.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace rcf::core {

/// One point of the convergence history.
struct IterationRecord {
  int iteration = 0;        ///< global iteration index n (1-based).
  double objective = 0.0;   ///< F(w_n).
  /// Relative objective error e_n = |F(w_n) - F*| / |F*| (paper §5.1);
  /// NaN if no reference optimum was supplied.
  double rel_error = std::numeric_limits<double>::quiet_NaN();
  /// Modeled wall-clock up to and including this iteration (seconds under
  /// the options' MachineSpec).
  double sim_seconds = 0.0;
  /// Communication rounds performed so far.
  std::uint64_t comm_rounds = 0;

  // Raw machine-independent counters (cumulative), recorded so a single
  // trajectory can be re-costed for any (P, machine, collective) without
  // re-running -- the per-iteration numerics are P-independent (the
  // allreduce always reconstructs the full Gram blocks).
  double raw_gram_flops = 0.0;    ///< total Gram flops across all ranks.
  double raw_update_flops = 0.0;  ///< per-rank redundant update flops.
  double comm_payload_words = 0.0;  ///< allreduce payload (pre-collective).
};

/// Outcome of a solve.
struct SolveResult {
  la::Vector w;              ///< final iterate.
  std::string solver;        ///< solver name ("rc-sfista", ...).
  /// Kernel backend ("scalar" / "simd") active when the solver constructed
  /// this result -- solvers build their SolveResult at solve start, so this
  /// records the backend the trajectory was computed with (trajectories are
  /// backend-dependent; see la/backend.hpp and the per-backend golden
  /// fixtures).  Stamped here once rather than at each solver site.
  std::string backend = la::backend_name(la::active_backend());
  int iterations = 0;        ///< iterations actually executed.
  bool converged = false;    ///< tol-based stop triggered.
  /// Structured failure flag: the solve was rejected (poisoned payload
  /// surviving the recompute fallback, injected rank abort, exhausted
  /// collective retries, non-finite objective) instead of diverging
  /// silently.  `w` may hold a partial iterate; `failure_reason` names the
  /// cause.  Callers should test ok() before consuming numeric fields.
  bool failed = false;
  std::string failure_reason;
  double objective = 0.0;    ///< F at the final iterate.
  double rel_error = std::numeric_limits<double>::quiet_NaN();
  std::vector<IterationRecord> history;

  [[nodiscard]] bool ok() const { return !failed; }

  /// Factory for a structured failure outcome.
  [[nodiscard]] static SolveResult failure(std::string solver_name,
                                           std::string reason) {
    SolveResult r;
    r.solver = std::move(solver_name);
    r.failed = true;
    r.failure_reason = std::move(reason);
    r.objective = std::numeric_limits<double>::quiet_NaN();
    return r;
  }

  /// alpha-beta-gamma counters accumulated by the run.
  model::CostTracker cost;
  /// Modeled runtime under the options' machine spec.
  double sim_seconds = 0.0;
  /// Real wall time of the (sequential or threaded) execution.
  double wall_seconds = 0.0;
  /// Collective-operation statistics (real backends only).
  dist::CommStats comm_stats;
  /// Per-phase span counts (always) and wall times / payloads (when the
  /// global obs::TraceSession is enabled).  The "allreduce" entry counts
  /// the communication rounds the schedule performed, so it must agree
  /// with comm_stats on real backends and shrink ~k-fold with overlap
  /// depth k (see obs::find_phase and tests/test_obs_trace.cpp).
  obs::PhaseSummary phases;
  /// Cross-rank aggregated metrics (empty unless tracing was enabled; see
  /// obs::aggregate).  On ThreadComm runs every rank contributes its local
  /// registry; on SeqComm runs this is the 1-rank view.
  obs::FleetMetrics fleet;
  /// Per-iteration convergence telemetry (bounded ring; always recorded,
  /// unlike `history` which honours track_history/history_stride).
  obs::ConvergenceRing conv;
  /// Health annotation: watchdog alerts attributable to this solve -- the
  /// deterministic end-of-solve convergence scan (stall / divergence /
  /// non-finite; obs::scan_convergence over `conv`) plus any runtime
  /// alerts (straggler, retry storm, ring overflow) the live monitor
  /// raised while the solve ran.  Empty on healthy runs; does not imply
  /// failed (a stalled solve still returns its iterate).
  std::vector<obs::Alert> alerts;
};

}  // namespace rcf::core
