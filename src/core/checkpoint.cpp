#include "core/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace rcf::core {

std::string to_json(const PnCheckpoint& ck) {
  std::string out = "{\"outer\": " + std::to_string(ck.outer);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", ck.objective);
  out += ", \"objective\": ";
  out += buf;
  out += ", \"w\": [";
  for (std::size_t i = 0; i < ck.w.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.17g", ck.w[i]);
    if (i != 0) {
      out += ", ";
    }
    out += buf;
  }
  out += "]}";
  return out;
}

PnCheckpoint checkpoint_from_json(std::string_view text) {
  const auto doc = parse_json(text);
  if (!doc.has_value() || !doc->is_object()) {
    throw IoError("checkpoint: not a JSON object");
  }
  const JsonValue* outer = doc->find("outer");
  const JsonValue* objective = doc->find("objective");
  const JsonValue* w = doc->find("w");
  if (outer == nullptr || !outer->is_number() || objective == nullptr ||
      !objective->is_number() || w == nullptr || !w->is_array()) {
    throw IoError(
        "checkpoint: missing or mistyped field (need outer, objective, w)");
  }
  PnCheckpoint ck;
  ck.outer = static_cast<int>(outer->number);
  if (ck.outer < 0) {
    throw IoError("checkpoint: outer must be >= 0");
  }
  ck.objective = objective->number;
  ck.w.reserve(w->array.size());
  for (const JsonValue& v : w->array) {
    if (!v.is_number()) {
      throw IoError("checkpoint: non-numeric entry in w");
    }
    ck.w.push_back(v.number);
  }
  return ck;
}

void save_checkpoint(const std::string& path, const PnCheckpoint& ck) {
  std::ofstream out(path);
  if (!out) {
    throw IoError("checkpoint: cannot open for writing: " + path);
  }
  out << to_json(ck) << '\n';
  if (!out) {
    throw IoError("checkpoint: write failed: " + path);
  }
}

PnCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("checkpoint: cannot open: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return checkpoint_from_json(buf.str());
}

}  // namespace rcf::core
