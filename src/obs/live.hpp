// LiveMonitor: the background sampler of the live telemetry bus
// (telemetry.hpp).  At a configurable period it drains every per-thread
// telemetry ring, folds the events into per-rank occupancy / progress
// state and a MetricsRegistry delta snapshot, runs the health watchdog
// (watchdog.hpp) over the resulting sample, and streams length-prefixed
// JSONL records to a file or local socket for tools/rcf-top to tail.
//
// Stream framing: every record is `<decimal byte length>\t<json>\n` so a
// tailer can frame records without re-scanning for newlines inside
// strings.  Record types (the "type" member): "header" (once, stream
// metadata), "snapshot" (one per sample period), "alert" (one per
// watchdog alert).
//
// Activation: programmatic (start/stop or ScopedLive), `--live[=path]` on
// the benches/examples, or RCF_LIVE=1|<path> in the environment
// (live_autoconfigure_from_env, hooked into TraceSession's env autostart
// so every solver entry point picks it up).  A path starting with "unix:"
// connects to an AF_UNIX stream socket instead of writing a file.
//
// Overhead contract: when the monitor is off, producers pay one relaxed
// load per publish (see telemetry.hpp); when on, the sampler thread does
// all folding/serialization off the solver's critical path, and its own
// busy time is published as live.sampler.busy_us so the overhead is
// itself observable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/watchdog.hpp"

namespace rcf::obs {

/// Configuration of one live-monitoring session.
struct LiveConfig {
  /// Output stream: a file path, or "unix:<path>" for an AF_UNIX stream
  /// socket.  Empty disables the stream (the monitor still samples and
  /// keeps alerts/metrics, which is what the in-process annotation path
  /// uses).
  std::string out = "rcf_live.jsonl";
  /// Sampling period.  RCF_LIVE_PERIOD_MS overrides via the env path.
  int period_ms = 250;
  /// Watchdog thresholds (watchdog_config_from_env() on the env path).
  WatchdogConfig watchdog;
};

/// The process-wide live monitor.  start() spawns the sampler thread and
/// opens the gate bit that makes telemetry_publish() record; stop() closes
/// it, takes one final sample, and joins the thread.  All entry points are
/// thread-safe.
class LiveMonitor {
 public:
  static LiveMonitor& global();

  LiveMonitor(const LiveMonitor&) = delete;
  LiveMonitor& operator=(const LiveMonitor&) = delete;

  /// Starts a session; false if one is already running (the running
  /// session is left undisturbed).  Resets telemetry rings, alert history,
  /// and per-rank state from any previous session.
  bool start(LiveConfig config = {});

  /// Takes a final sample, stops the sampler thread, and closes the
  /// stream.  No-op when not running.
  void stop();

  [[nodiscard]] bool running() const;

  /// Forces one sampling pass right now (synchronous with the sampler
  /// thread).  Used at solve end so the annotation path sees the freshest
  /// state, and by tests to avoid timing dependence.  No-op when not
  /// running.
  void sample_now();

  /// Alerts raised so far this session (monotonic while running; reset by
  /// start()).
  [[nodiscard]] std::uint64_t alert_count() const;

  /// Alerts with session index >= `mark` (mark = alert_count() taken
  /// earlier).  Alerts beyond the retention bound (kMaxAlerts) are
  /// dropped oldest-first; callers get what is retained.
  [[nodiscard]] std::vector<Alert> alerts_since(std::uint64_t mark) const;

  /// The active session's watchdog thresholds (defaults when not running).
  [[nodiscard]] WatchdogConfig watchdog_config() const;

  /// Retained-alert bound (alerts beyond this are dropped oldest-first).
  static constexpr std::size_t kMaxAlerts = 1024;

  struct Impl;  ///< opaque; defined in live.cpp

 private:
  LiveMonitor();
  ~LiveMonitor() = delete;  // process-lifetime singleton

  Impl* impl_;
};

/// RAII session for CLI wiring (--live[=path]): starts the global monitor
/// when `out` is non-empty, stops it on destruction.  Inert when `out` is
/// empty, so callers can construct it unconditionally from flag values.
/// `period_ms` <= 0 means "use the env override or default".
class ScopedLive {
 public:
  explicit ScopedLive(std::string out, int period_ms = 0);
  ScopedLive(const ScopedLive&) = delete;
  ScopedLive& operator=(const ScopedLive&) = delete;
  ~ScopedLive();

  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_ = false;
};

/// Env activation: RCF_LIVE=1 streams to "rcf_live.jsonl" in the working
/// directory, RCF_LIVE=<path> streams there ("unix:<path>" for a socket);
/// unset/empty/0 does nothing.  RCF_LIVE_PERIOD_MS overrides the sampling
/// period.  Called once from TraceSession's construction (every solver
/// entry point touches it); the session is stopped at process exit.
void live_autoconfigure_from_env();

}  // namespace rcf::obs
