#include "obs/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "common/table.hpp"
#include "dist/comm.hpp"
#include "obs/trace.hpp"

namespace rcf::obs {

namespace {

// Upper edge of Histogram bin i (mirrors metrics.cpp; bin 0 is [0, 1)).
double bin_upper_edge(int i) {
  return i == 0 ? 1.0 : std::ldexp(1.0, i);
}

// FNV-1a 64-bit over the registry's instrument-name layout.  Ranks must
// agree on this hash before any value buffer is exchanged -- otherwise
// the fixed-order packing would silently misalign values across ranks.
std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t layout_hash(const std::vector<std::string>& counters,
                          const std::vector<std::string>& gauges,
                          const std::vector<std::string>& histograms) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& n : counters) {
    h = fnv1a(h, n);
    h = fnv1a(h, "\x01");
  }
  h = fnv1a(h, "\x02");
  for (const auto& n : gauges) {
    h = fnv1a(h, n);
    h = fnv1a(h, "\x01");
  }
  h = fnv1a(h, "\x02");
  for (const auto& n : histograms) {
    h = fnv1a(h, n);
    h = fnv1a(h, "\x01");
  }
  return h;
}

// All ranks must hold the same value; checked via max of the value and its
// negation (max == -max(-x) iff every rank agrees).  Values are uint32
// halves, exactly representable as doubles.
void check_agreement(dist::Communicator& comm, std::uint64_t hash) {
  const auto lo = static_cast<double>(hash & 0xffffffffULL);
  const auto hi = static_cast<double>(hash >> 32);
  double probe[4] = {lo, hi, -lo, -hi};
  comm.allreduce_max({probe, 4});
  RCF_CHECK_MSG(probe[0] == -probe[2] && probe[1] == -probe[3],
                "obs::aggregate: ranks disagree on registry instrument "
                "names; every rank must record the same metric set");
}

std::vector<AggregatedMetric> reduce_values(
    dist::Communicator& comm, const std::vector<std::string>& names,
    const std::vector<double>& values, int ranks) {
  const std::size_t n = names.size();
  std::vector<double> sums(values);
  if (!sums.empty()) {
    comm.allreduce_sum({sums.data(), sums.size()});
  }
  // One max-allreduce finds both max (first half) and min (negated second
  // half).
  std::vector<double> extremes(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    extremes[i] = values[i];
    extremes[n + i] = -values[i];
  }
  if (!extremes.empty()) {
    comm.allreduce_max({extremes.data(), extremes.size()});
  }
  std::vector<AggregatedMetric> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    AggregatedMetric& m = out[i];
    m.name = names[i];
    m.sum = sums[i];
    m.max = extremes[i];
    m.min = -extremes[n + i];
    m.mean = m.sum / static_cast<double>(ranks);
    m.imbalance = m.mean == 0.0 ? 1.0 : m.max / m.mean;
  }
  return out;
}

}  // namespace

const AggregatedMetric* FleetMetrics::find(std::string_view name) const {
  for (const auto& m : counters) {
    if (m.name == name) {
      return &m;
    }
  }
  for (const auto& m : gauges) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

std::string FleetMetrics::table() const {
  AsciiTable tbl({"metric", "min", "mean", "max", "sum", "imbalance"});
  auto add = [&tbl](const AggregatedMetric& m) {
    tbl.add_row({m.name, fmt_g(m.min), fmt_g(m.mean), fmt_g(m.max),
                 fmt_g(m.sum), fmt_f(m.imbalance, 3)});
  };
  for (const auto& m : counters) {
    add(m);
  }
  for (const auto& m : gauges) {
    add(m);
  }
  std::ostringstream out;
  out << "cross-rank metrics (" << ranks << " ranks)\n" << tbl.str();
  if (!histograms.empty()) {
    AsciiTable htbl({"histogram", "count", "min", "p50", "p95", "p99", "max"});
    for (const auto& h : histograms) {
      htbl.add_row({h.name, fmt_count(h.count), fmt_g(h.min), fmt_g(h.p50),
                    fmt_g(h.p95), fmt_g(h.p99), fmt_g(h.max)});
    }
    out << htbl.str();
  }
  return out.str();
}

FleetMetrics aggregate(MetricsRegistry& local, dist::Communicator& comm) {
  // Everything below runs as auxiliary communication: no CommStats, no
  // "allreduce" spans, no latency-histogram feeds (the instruments being
  // aggregated must not observe the aggregation itself).
  dist::Communicator::AuxScope aux(comm);

  const std::vector<std::string> counter_names = local.counter_names();
  const std::vector<std::string> gauge_names = local.gauge_names();
  const std::vector<std::string> histogram_names = local.histogram_names();
  check_agreement(comm,
                  layout_hash(counter_names, gauge_names, histogram_names));

  FleetMetrics fleet;
  fleet.ranks = comm.size();

  // Counters and gauges: pack in sorted-name order (counter_names() et al.
  // iterate the registry map), reduce, unpack.  The order is a function of
  // the names only, so the reduction is deterministic for any pool width.
  std::vector<double> values(counter_names.size());
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    values[i] = static_cast<double>(local.counter(counter_names[i]).value());
  }
  fleet.counters = reduce_values(comm, counter_names, values, fleet.ranks);

  values.resize(gauge_names.size());
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    values[i] = local.gauge(gauge_names[i]).value();
  }
  fleet.gauges = reduce_values(comm, gauge_names, values, fleet.ranks);

  // Histograms: bin counts and totals merge exactly under sum (integer
  // counts are far below 2^53), maxima under max; quantiles are then
  // recomputed from the merged bins so they reflect the whole fleet rather
  // than any single rank.
  const std::size_t stride = Histogram::kNumBins + 2;  // bins, count, sum
  const std::size_t nh = histogram_names.size();
  std::vector<double> hbuf(nh * stride);
  // Extremes buffer: max in the first half, negated min in the second
  // (same max/-min trick as reduce_values; empty histograms contribute
  // -inf to the min half so they never win).
  std::vector<double> hext(2 * nh);
  for (std::size_t i = 0; i < nh; ++i) {
    const Histogram& h = local.histogram(histogram_names[i]);
    double* row = hbuf.data() + i * stride;
    for (int b = 0; b < Histogram::kNumBins; ++b) {
      row[b] = static_cast<double>(h.bin_count(b));
    }
    row[Histogram::kNumBins] = static_cast<double>(h.count());
    row[Histogram::kNumBins + 1] = h.sum();
    hext[i] = h.max();
    hext[nh + i] = h.count() > 0
                       ? -h.min()
                       : -std::numeric_limits<double>::infinity();
  }
  if (!hbuf.empty()) {
    comm.allreduce_sum({hbuf.data(), hbuf.size()});
    comm.allreduce_max({hext.data(), hext.size()});
  }
  fleet.histograms.resize(nh);
  for (std::size_t i = 0; i < nh; ++i) {
    AggregatedHistogram& h = fleet.histograms[i];
    const double* row = hbuf.data() + i * stride;
    h.name = histogram_names[i];
    h.count = static_cast<std::uint64_t>(row[Histogram::kNumBins]);
    h.sum = row[Histogram::kNumBins + 1];
    h.max = hext[i];
    h.min = h.count > 0 && std::isfinite(hext[nh + i]) ? -hext[nh + i] : 0.0;
    if (h.count > 0) {
      auto quantile = [&row, &h](double p) {
        const auto rank = static_cast<std::uint64_t>(
            std::ceil(p * static_cast<double>(h.count)));
        std::uint64_t seen = 0;
        for (int b = 0; b < Histogram::kNumBins; ++b) {
          seen += static_cast<std::uint64_t>(row[b]);
          if (seen >= rank) {
            return bin_upper_edge(b);
          }
        }
        return bin_upper_edge(Histogram::kNumBins - 1);
      };
      h.p50 = quantile(0.5);
      h.p95 = quantile(0.95);
      h.p99 = quantile(0.99);
    }
  }
  return fleet;
}

void publish(const FleetMetrics& fleet, MetricsRegistry& registry) {
  auto put = [&registry](const std::string& name, double v) {
    registry.gauge(name).set(v);
  };
  for (const auto& m : fleet.counters) {
    const std::string base = "agg." + m.name + ".";
    put(base + "min", m.min);
    put(base + "max", m.max);
    put(base + "sum", m.sum);
    put(base + "mean", m.mean);
    put(base + "imbalance", m.imbalance);
  }
  for (const auto& m : fleet.gauges) {
    const std::string base = "agg." + m.name + ".";
    put(base + "min", m.min);
    put(base + "max", m.max);
    put(base + "sum", m.sum);
    put(base + "mean", m.mean);
    put(base + "imbalance", m.imbalance);
  }
  for (const auto& h : fleet.histograms) {
    const std::string base = "agg." + h.name + ".";
    put(base + "count", static_cast<double>(h.count));
    put(base + "sum", h.sum);
    put(base + "min", h.min);
    put(base + "max", h.max);
    put(base + "p50", h.p50);
    put(base + "p95", h.p95);
    put(base + "p99", h.p99);
  }
}

void record_solve_metrics(MetricsRegistry& registry,
                          const std::vector<PhaseStat>& phases,
                          const dist::CommStats* comm_stats) {
  for (const auto& stat : phases) {
    const std::string base = "phase." + stat.name + ".";
    registry.counter(base + "count").add(stat.count);
    registry.gauge(base + "seconds").set(stat.seconds);
    registry.gauge(base + "words").set(stat.payload_words);
  }
  if (comm_stats != nullptr) {
    const dist::CommStats& s = *comm_stats;
    registry.counter("comm.allreduce_calls").add(s.allreduce_calls);
    registry.counter("comm.allreduce_max_calls").add(s.allreduce_max_calls);
    registry.counter("comm.allreduce_words").add(s.allreduce_words);
    registry.counter("comm.broadcast_calls").add(s.broadcast_calls);
    registry.counter("comm.broadcast_words").add(s.broadcast_words);
    registry.counter("comm.allgather_calls").add(s.allgather_calls);
    registry.counter("comm.allgather_words").add(s.allgather_words);
    registry.counter("comm.barrier_calls").add(s.barrier_calls);
    registry.counter("comm.retries").add(s.retries);
    registry.counter("comm.faults_injected").add(s.faults_injected);
    registry.gauge("comm.max_payload_words")
        .set(static_cast<double>(s.max_payload_words));
  }
}

}  // namespace rcf::obs
