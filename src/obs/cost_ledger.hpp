// Cost-model accounting: predicted vs measured solver costs.
//
// The paper validates its alpha-beta-gamma model (Eq. 7) by comparing the
// Table 1 closed forms against counted costs of actual runs.  CostLedger
// packages that comparison: each row pairs the predicted
// latency/bandwidth/flop triple of one solver configuration (from
// model::rcsfista_cost, or supplied directly) with the measured CostTracker
// counters of the run -- and, when a traced run's PhaseSummary is
// available, the measured wall seconds per phase.
//
// export_metrics() publishes the comparison into a MetricsRegistry as
// "model.*" gauges so predicted-vs-measured relative errors ride the
// normal metrics JSON (checked by the bench harness and rcf-report).
#pragma once

#include <string>
#include <vector>

#include "model/cost.hpp"
#include "model/formulas.hpp"
#include "model/machine.hpp"
#include "obs/trace.hpp"

namespace rcf::obs {

class MetricsRegistry;

/// One predicted-vs-measured comparison row.
struct CostLedgerRow {
  std::string label;  ///< dots replaced by '_' (metric-name safe)

  // Predicted (Table 1 closed form under the ledger's machine).
  double pred_latency_msgs = 0.0;
  double pred_bw_words = 0.0;
  double pred_flops = 0.0;
  double pred_rounds = 0.0;   ///< communication rounds, ceil(N/k)
  double pred_seconds = 0.0;  ///< Eq. 7 runtime of the predicted triple

  // Measured (CostTracker counters; wall seconds from the traced phases
  // when available, else the tracker's modeled seconds).
  double meas_latency_msgs = 0.0;
  double meas_bw_words = 0.0;
  double meas_flops = 0.0;
  double meas_rounds = 0.0;
  double meas_seconds = 0.0;
  bool meas_seconds_is_wall = false;

  // Communication-time validation: the alpha-beta part of Eq. 7
  // (alpha_eff * L + beta * W) next to the wall seconds actually spent in
  // the "allreduce" phase of a traced run -- or, for pipelined rows, the
  // "allreduce_wait" phase (the *exposed* communication; posting is free).
  // meas_comm_seconds stays 0 (and comm_err is not meaningful) when no
  // phase summary was supplied.
  double pred_comm_seconds = 0.0;
  double meas_comm_seconds = 0.0;
  bool meas_comm_is_wall = false;

  // Overlap credit (pipelined rows only).  pred_overlap is the modeled
  // fraction of each chunk reduction hidden behind compute
  // (model::pipelined_overlap_fraction); meas_overlap is the run's
  // overlapped_words / allreduce_words (CommStats).  pred_comm_seconds is
  // scaled by (1 - pred_overlap) on these rows, so comm_err compares the
  // predicted *exposed* comm time against the measured wait wall time.
  bool pipelined = false;
  double pred_overlap = 0.0;
  double meas_overlap = 0.0;

  // Relative errors |meas - pred| / max(|pred|, eps).
  double latency_err = 0.0;
  double bw_err = 0.0;
  double flops_err = 0.0;
  double comm_err = 0.0;     ///< comm seconds, only when meas_comm_is_wall
  double seconds_err = 0.0;  ///< total seconds, only when meas_seconds_is_wall
};

/// Overlap efficiency pair for a pipelined row (see CostLedgerRow).
struct OverlapCredit {
  double predicted = 0.0;  ///< model::pipelined_overlap_fraction, in [0, 1]
  double measured = 0.0;   ///< overlapped_words / allreduce_words, in [0, 1]
};

/// Accumulates predicted-vs-measured rows for one machine model.
class CostLedger {
 public:
  explicit CostLedger(model::MachineSpec spec) : spec_(std::move(spec)) {}

  /// Adds a row predicted from the RC-SFISTA closed form for `shape`
  /// (Table 1: L = (N/k) log2 P, W = N d^2 log2 P, F = N d^2 mbar f / P +
  /// S d^2; rounds = ceil(N/k)).  Pass `overlap` for a pipelined run: the
  /// row then credits the overlap in its predicted comm seconds and reads
  /// its measured rounds / comm wall from the allreduce_post /
  /// allreduce_wait phase pair.
  void add(const std::string& label, const model::AlgorithmShape& shape,
           const model::CostTracker& measured,
           const PhaseSummary* phases = nullptr,
           const OverlapCredit* overlap = nullptr);

  /// Adds a row with an explicit predicted triple (for baselines or
  /// per-iteration flop conventions that differ from the closed form).
  void add(const std::string& label, const model::CostTriple& predicted,
           double predicted_rounds, const model::CostTracker& measured,
           const PhaseSummary* phases = nullptr,
           const OverlapCredit* overlap = nullptr);

  [[nodiscard]] const std::vector<CostLedgerRow>& rows() const {
    return rows_;
  }
  [[nodiscard]] const model::MachineSpec& machine() const { return spec_; }

  /// Mean relative error across rows (0 when empty).
  [[nodiscard]] double mean_latency_err() const;
  [[nodiscard]] double mean_bw_err() const;
  [[nodiscard]] double mean_flops_err() const;
  /// Mean comm-/total-seconds model residual over the rows that carry wall
  /// measurements (0 when none do): how far the alpha-beta-gamma fit is
  /// from this machine, not just from the counted schedule.
  [[nodiscard]] double mean_comm_err() const;
  [[nodiscard]] double mean_seconds_err() const;

  /// Predicted-vs-measured table (one row per add()).
  [[nodiscard]] std::string table() const;

  /// Publishes gauges into `registry`:
  ///   model.latency_err / model.bw_err / model.flops_err  (means)
  ///   model.residual.{latency,bw,flops,comm,seconds}  (same means; the
  ///     comm/seconds residuals cover only wall-measured rows)
  ///   model.<label>.{latency,bw,flops,rounds,seconds,comm_seconds}.{pred,meas}
  ///   model.<label>.{latency_err,bw_err,flops_err,comm_err,seconds_err}
  ///   model.<label>.overlap.{pred,meas}  (pipelined rows only)
  void export_metrics(MetricsRegistry& registry) const;

 private:
  model::MachineSpec spec_;
  std::vector<CostLedgerRow> rows_;
};

}  // namespace rcf::obs
