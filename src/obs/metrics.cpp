#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/json.hpp"

namespace rcf::obs {

namespace {

/// Bin index for a non-negative value: 0 for [0,1), i for [2^(i-1), 2^i).
int bin_index(double value) {
  if (!(value >= 1.0)) {  // also catches NaN
    return 0;
  }
  const auto v = static_cast<std::uint64_t>(value);
  const int width = std::bit_width(v);  // v in [2^(width-1), 2^width)
  return width < Histogram::kNumBins ? width : Histogram::kNumBins - 1;
}

/// Upper edge of bin i (the reported percentile value).
double bin_upper_edge(int i) {
  return i == 0 ? 1.0 : std::ldexp(1.0, i);  // 2^i
}

void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double value) {
  if (std::isnan(value)) {
    return;
  }
  if (value < 0.0) {
    value = 0.0;
  }
  bins_[static_cast<std::size_t>(bin_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_max(max_, value);
  atomic_min(min_, value);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::bin_edge(int i) { return bin_upper_edge(i); }

double Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 1.0) {
    p = 1.0;
  }
  // Rank of the requested quantile, 1-based; cumulative scan over bins.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBins; ++i) {
    seen += bins_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen >= rank) {
      return bin_upper_edge(i);
    }
  }
  return bin_upper_edge(kNumBins - 1);
}

void Histogram::reset() {
  for (auto& bin : bins_) {
    bin.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    for (int b = 0; b < Histogram::kNumBins; ++b) {
      hs.bins[static_cast<std::size_t>(b)] = h->bin_count(b);
    }
    snap.histograms[name] = hs;
  }
  return snap;
}

namespace {

std::uint64_t clamped_delta(std::uint64_t cur, std::uint64_t prev) {
  return cur >= prev ? cur - prev : cur;
}

}  // namespace

MetricsSnapshot delta_snapshot(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev.counters.find(name);
    delta.counters[name] =
        it == prev.counters.end() ? value : clamped_delta(value, it->second);
  }
  delta.gauges = cur.gauges;
  for (const auto& [name, hs] : cur.histograms) {
    HistogramSnapshot d = hs;  // carries cur min/max/sum by default
    const auto it = prev.histograms.find(name);
    if (it != prev.histograms.end()) {
      d.count = clamped_delta(hs.count, it->second.count);
      d.sum = hs.sum >= it->second.sum ? hs.sum - it->second.sum : hs.sum;
      for (std::size_t b = 0; b < d.bins.size(); ++b) {
        d.bins[b] = clamped_delta(hs.bins[b], it->second.bins[b]);
      }
    }
    delta.histograms[name] = d;
  }
  return delta;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    names.push_back(name);
  }
  return names;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  // Sized for the histogram header: 7 numeric fields at up to ~24 chars
  // each plus the literal keys.
  char buf[320];
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << '"' << json_escape(name) << "\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(c->value()));
    out << buf;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << '"' << json_escape(name) << "\":";
    std::snprintf(buf, sizeof(buf), "%.17g", g->value());
    out << buf;
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << '"' << json_escape(name) << "\":";
    std::snprintf(
        buf, sizeof(buf),
        "{\"count\":%llu,\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g,"
        "\"p50\":%.17g,\"p95\":%.17g,\"p99\":%.17g,\"buckets\":[",
        static_cast<unsigned long long>(h->count()), h->sum(), h->min(),
        h->max(), h->percentile(0.5), h->percentile(0.95),
        h->percentile(0.99));
    out << buf;
    // Explicit [upper-edge, count] pairs for the non-empty bins, so
    // offline tools can re-merge distributions exactly (bin 0 covers
    // [0, 1); bin i covers [edge(i-1), edge(i))).
    bool first_bin = true;
    for (int b = 0; b < Histogram::kNumBins; ++b) {
      const std::uint64_t n = h->bin_count(b);
      if (n == 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "%s[%.17g,%llu]", first_bin ? "" : ",",
                    Histogram::bin_edge(b),
                    static_cast<unsigned long long>(n));
      out << buf;
      first_bin = false;
    }
    out << "]}";
    first = false;
  }
  out << "}}\n";
  return out.str();
}

bool MetricsRegistry::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

}  // namespace rcf::obs
