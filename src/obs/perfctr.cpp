#include "obs/perfctr.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace rcf::obs {

#if defined(__linux__) && defined(__NR_perf_event_open)

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // permission-friendly under perf_event_paranoid
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

}  // namespace

PerfCounters::PerfCounters() {
  perf_event_attr cycles =
      make_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fd_cycles_ = static_cast<int>(
      perf_event_open(&cycles, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1, 0));
  if (fd_cycles_ < 0) {
    error_ = std::string("perf_event_open(cycles): ") + std::strerror(errno);
    return;
  }
  perf_event_attr instr =
      make_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fd_instructions_ = static_cast<int>(
      perf_event_open(&instr, 0, -1, fd_cycles_, 0));
  // LLC misses commonly fail inside VMs; the group degrades to two
  // counters rather than losing cycles/instructions.
  perf_event_attr llc =
      make_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  fd_llc_ = static_cast<int>(perf_event_open(&llc, 0, -1, fd_cycles_, 0));
}

PerfCounters::~PerfCounters() {
  if (fd_llc_ >= 0) {
    close(fd_llc_);
  }
  if (fd_instructions_ >= 0) {
    close(fd_instructions_);
  }
  if (fd_cycles_ >= 0) {
    close(fd_cycles_);
  }
}

void PerfCounters::start() {
  if (!available()) {
    return;
  }
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounters::stop() {
  PerfSample sample;
  if (!available()) {
    return sample;
  }
  ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr]
  // in group-attach order (cycles, instructions?, llc?).
  std::uint64_t buf[3 + 3] = {};
  const ssize_t got = read(fd_cycles_, buf, sizeof(buf));
  if (got < static_cast<ssize_t>(4 * sizeof(std::uint64_t))) {
    error_ = "perf read: short group read";
    return sample;
  }
  const std::uint64_t nr = buf[0];
  sample.time_enabled_ns = buf[1];
  sample.time_running_ns = buf[2];
  std::size_t slot = 3;
  std::uint64_t have = 0;
  sample.cycles = buf[slot++];
  ++have;
  if (fd_instructions_ >= 0 && have < nr) {
    sample.instructions = buf[slot++];
    ++have;
  }
  if (fd_llc_ >= 0 && have < nr) {
    sample.llc_misses = buf[slot++];
    sample.llc_ok = true;
    ++have;
  }
  sample.valid = true;
  return sample;
}

bool PerfCounters::supported() {
  static const bool ok = [] {
    PerfCounters probe;
    return probe.available();
  }();
  return ok;
}

#else  // non-Linux / no syscall number: structured no-op build

PerfCounters::PerfCounters()
    : error_("perf_event_open unavailable on this platform") {}
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
PerfSample PerfCounters::stop() { return PerfSample{}; }
bool PerfCounters::supported() { return false; }

#endif

namespace {

std::atomic<int> g_perf_scopes_enabled{-1};  // -1 = consult RCF_PERFCTR

bool env_enabled() {
  const char* p = std::getenv("RCF_PERFCTR");
  return p != nullptr && *p != '\0' && std::string_view(p) != "0";
}

// One counter group per thread, opened on first enabled scope; leaked like
// the trace/metrics singletons so thread-exit ordering cannot bite.
PerfCounters& thread_counters() {
  thread_local PerfCounters* counters = new PerfCounters();
  return *counters;
}

thread_local int t_perf_depth = 0;

}  // namespace

void set_perf_scopes_enabled(bool enabled) {
  g_perf_scopes_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool perf_scopes_enabled() {
  int state = g_perf_scopes_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env_enabled() ? 1 : 0;
    g_perf_scopes_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

PerfScope::PerfScope(const char* label) {
  if (!perf_scopes_enabled()) {
    return;
  }
  if (t_perf_depth++ > 0) {
    return;  // inner scope: the group is already running for the outer one
  }
  PerfCounters& counters = thread_counters();
  if (!counters.available()) {
    // Structured no-op: record that sampling was requested but degraded,
    // once per label, so reports can distinguish "off" from "unavailable".
    label_ = nullptr;
    MetricsRegistry::global()
        .counter(std::string("perf.unavailable.") + label)
        .add(0);  // materialize the instrument without inflating it
    return;
  }
  label_ = label;
  counters.start();
}

PerfScope::~PerfScope() {
  if (!perf_scopes_enabled()) {
    return;
  }
  const int depth = --t_perf_depth;
  if (label_ == nullptr || depth > 0) {
    return;
  }
  const PerfSample sample = thread_counters().stop();
  if (!sample.valid) {
    return;
  }
  auto& registry = MetricsRegistry::global();
  const std::string base = std::string("perf.") + label_ + ".";
  registry.counter(base + "cycles").add(sample.cycles);
  registry.counter(base + "instructions").add(sample.instructions);
  registry.counter(base + "llc_misses").add(sample.llc_misses);
  registry.counter(base + "samples").add(1);
}

}  // namespace rcf::obs
