#include "obs/telemetry.hpp"

#include <bit>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"

namespace rcf::obs {

namespace detail {

std::atomic<std::uint32_t> g_obs_gate{0};

void set_gate_bit(std::uint32_t bit, bool on) {
  if (on) {
    g_obs_gate.fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_obs_gate.fetch_and(~bit, std::memory_order_relaxed);
  }
}

}  // namespace detail

const char* telemetry_kind_name(TelemetryKind kind) {
  switch (kind) {
    case TelemetryKind::kPhase:
      return "phase";
    case TelemetryKind::kSpan:
      return "span";
    case TelemetryKind::kCollectiveBegin:
      return "coll_begin";
    case TelemetryKind::kCollectiveEnd:
      return "coll_end";
    case TelemetryKind::kProgress:
      return "progress";
    case TelemetryKind::kRetry:
      return "retry";
    case TelemetryKind::kFault:
      return "fault";
  }
  return "unknown";
}

TelemetryRing::TelemetryRing(std::size_t capacity) {
  capacity = std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity);
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

std::size_t TelemetryRing::drain(std::vector<TelemetryEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  for (std::uint64_t i = head; i != tail; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i) & mask_]);
  }
  head_.store(tail, std::memory_order_release);
  return static_cast<std::size_t>(tail - head);
}

namespace {

/// Registry of every live per-thread ring.  Each producing thread holds one
/// shared_ptr (in its thread_local holder); the registry holds another.  A
/// use_count of 1 therefore means the thread exited: the sampler drains
/// such rings one last time, folds their drop counters into
/// `retired_drops`, and removes them.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TelemetryRing>> rings;
  std::uint64_t retired_drops = 0;
};

RingRegistry& ring_registry() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

struct LocalRingHolder {
  std::shared_ptr<TelemetryRing> ring;
};

TelemetryRing& local_ring() {
  thread_local LocalRingHolder holder = [] {
    LocalRingHolder h{std::make_shared<TelemetryRing>()};
    RingRegistry& registry = ring_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.rings.push_back(h.ring);
    return h;
  }();
  return *holder.ring;
}

}  // namespace

std::int64_t live_now_us() {
  // Process-stable epoch, independent of the (restartable) trace-session
  // epoch: ages computed from stream timestamps stay valid across
  // TraceSession::start() calls.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void telemetry_publish_slow(TelemetryKind kind, const char* label, double a,
                            double b, double c) {
  TelemetryEvent ev;
  ev.kind = kind;
  ev.rank = thread_rank();
  ev.t_us = live_now_us();
  ev.label = label;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  local_ring().try_push(ev);
}

std::size_t telemetry_drain(std::vector<TelemetryEvent>& out) {
  RingRegistry& registry = ring_registry();
  std::vector<std::shared_ptr<TelemetryRing>> rings;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    rings = registry.rings;
  }
  std::size_t drained = 0;
  for (const auto& ring : rings) {
    drained += ring->drain(out);
  }
  rings.clear();
  // Retire rings whose producing thread exited (registry holds the only
  // reference) and that have no events left -- a use_count of 1 means the
  // thread_local holder was destroyed, which happens-after its last push.
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    std::erase_if(registry.rings, [&](const auto& ring) {
      if (ring.use_count() == 1 && ring->size() == 0) {
        registry.retired_drops += ring->dropped();
        return true;
      }
      return false;
    });
  }
  return drained;
}

std::uint64_t telemetry_dropped() {
  RingRegistry& registry = ring_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::uint64_t total = registry.retired_drops;
  for (const auto& ring : registry.rings) {
    total += ring->dropped();
  }
  return total;
}

void telemetry_reset() {
  RingRegistry& registry = ring_registry();
  std::vector<TelemetryEvent> discard;
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.retired_drops = 0;
  std::erase_if(registry.rings,
                [](const auto& ring) { return ring.use_count() == 1; });
  for (const auto& ring : registry.rings) {
    discard.clear();
    ring->drain(discard);
  }
  // Drop counters of live rings cannot be zeroed without racing their
  // producers; the monitor records the start-of-session value instead.
}

}  // namespace rcf::obs
