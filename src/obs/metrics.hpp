// Metrics registry: named monotonic counters, gauges, and log-spaced
// latency histograms, exported as one JSON document.
//
// The registry subsumes the per-communicator CommStats counters (the comm
// backends publish their totals here when tracing is enabled; see
// dist::publish_comm_stats) and extends them with latency distributions
// the flat counters cannot express (allreduce/barrier-wait percentiles,
// for validating the alpha term of the cost model and exposing rank skew).
//
// Thread safety: counter/gauge updates and histogram observations are
// atomic; name lookup takes a registry mutex (cache the returned reference
// in hot paths).  Returned references stay valid for the process lifetime
// -- reset() zeroes values but never destroys instruments.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rcf::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bin histogram over non-negative values (microsecond latencies):
/// bin i counts observations in [2^(i-1), 2^i), bin 0 counts [0, 1).
/// Percentiles are reported as the upper edge of the bin containing the
/// requested rank, which makes them monotone in p by construction.
class Histogram {
 public:
  static constexpr int kNumBins = 64;

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  /// Smallest observed value; 0 when empty.
  [[nodiscard]] double min() const;
  /// Upper edge of the bin holding the p-quantile (p in [0, 1]); 0 when
  /// empty.
  [[nodiscard]] double percentile(double p) const;

  /// Observation count of bin `i` (0 <= i < kNumBins); used by the
  /// cross-rank aggregation to merge distributions exactly.
  [[nodiscard]] std::uint64_t bin_count(int i) const {
    return bins_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }

  /// Upper edge of bin `i`: 1 for bin 0 ([0, 1)), else 2^i.  Exported with
  /// the bucket counts so offline tools can re-aggregate exactly.
  [[nodiscard]] static double bin_edge(int i);

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumBins> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
  /// +inf sentinel when empty; min() maps that back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of one histogram (bucket layout identical to
/// Histogram: bin i counts [2^(i-1), 2^i), bin 0 counts [0, 1); the edges
/// are a static property, so they are stable across every snapshot).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, Histogram::kNumBins> bins{};
};

/// Point-in-time copy of a registry, for delta computation by the live
/// monitor.  Each instrument is read with one relaxed load per field, so a
/// snapshot taken under concurrent writers is per-field consistent:
/// counters and histogram bucket counts are monotone from one snapshot to
/// the next (writers only add), though count/sum/bins of one histogram may
/// mutually disagree by in-flight observations.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// cur - prev, elementwise.  If an instrument was reset() between the
/// snapshots (cur < prev) the delta is the current value -- everything
/// counted since the reset -- never an underflowed difference;
/// instruments that are new in `cur` contribute their full value.  Gauges carry the current
/// value (last-write-wins has no meaningful delta); histogram min/max are
/// the current values for the same reason.
[[nodiscard]] MetricsSnapshot delta_snapshot(const MetricsSnapshot& prev,
                                             const MetricsSnapshot& cur);

/// Name -> instrument map.  Instruments are created on first touch and
/// live for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of every instrument (see MetricsSnapshot).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Registered instrument names in sorted (map) order -- the fixed
  /// enumeration order the cross-rank aggregation packs buffers in.
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> gauge_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

  /// Zeroes every instrument (references handed out stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rcf::obs
