#include "obs/cost_ledger.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/table.hpp"
#include "obs/metrics.hpp"

namespace rcf::obs {

namespace {

double rel_err(double meas, double pred) {
  const double denom = std::max(std::abs(pred), 1e-300);
  return std::abs(meas - pred) / denom;
}

std::string sanitize_label(const std::string& label) {
  std::string out = label;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

double mean_of(const std::vector<CostLedgerRow>& rows,
               double CostLedgerRow::* field) {
  if (rows.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& row : rows) {
    total += row.*field;
  }
  return total / static_cast<double>(rows.size());
}

}  // namespace

void CostLedger::add(const std::string& label,
                     const model::AlgorithmShape& shape,
                     const model::CostTracker& measured,
                     const PhaseSummary* phases, const OverlapCredit* overlap) {
  const model::CostTriple predicted = model::rcsfista_cost(shape);
  const double rounds =
      shape.k > 0 ? std::ceil(shape.n_iters / shape.k) : shape.n_iters;
  add(label, predicted, rounds, measured, phases, overlap);
}

void CostLedger::add(const std::string& label,
                     const model::CostTriple& predicted,
                     double predicted_rounds,
                     const model::CostTracker& measured,
                     const PhaseSummary* phases, const OverlapCredit* overlap) {
  CostLedgerRow row;
  row.label = sanitize_label(label);
  row.pred_latency_msgs = predicted.latency_msgs;
  row.pred_bw_words = predicted.bandwidth_words;
  row.pred_flops = predicted.flops;
  row.pred_rounds = predicted_rounds;
  row.pred_seconds = model::runtime(predicted, spec_);
  // The alpha-beta slice of Eq. 7: what the machine model says the
  // communication alone should cost.  Compared against the wall seconds of
  // the "allreduce" phase when the run was traced.  A pipelined row keeps
  // only the *exposed* fraction: the overlap credit scales the prediction,
  // and the measurement comes from the allreduce_wait phase below.
  row.pred_comm_seconds = spec_.alpha_effective() * predicted.latency_msgs +
                          spec_.beta * predicted.bandwidth_words;
  if (overlap != nullptr) {
    row.pipelined = true;
    row.pred_overlap = std::clamp(overlap->predicted, 0.0, 1.0);
    row.meas_overlap = std::clamp(overlap->measured, 0.0, 1.0);
    row.pred_comm_seconds *= 1.0 - row.pred_overlap;
  }
  row.meas_latency_msgs = measured.messages();
  row.meas_bw_words = measured.words();
  row.meas_flops = measured.flops();
  if (phases != nullptr) {
    if (const PhaseStat* allreduce = find_phase(*phases, "allreduce")) {
      row.meas_rounds = static_cast<double>(allreduce->count);
      if (allreduce->seconds > 0.0) {
        row.meas_comm_seconds = allreduce->seconds;
        row.meas_comm_is_wall = true;
      }
    } else if (const PhaseStat* post =
                   find_phase(*phases, "allreduce_post")) {
      // Pipelined runs split the collective: posts carry the round count,
      // waits carry the exposed communication wall time.
      row.meas_rounds = static_cast<double>(post->count);
      if (const PhaseStat* wait = find_phase(*phases, "allreduce_wait")) {
        row.meas_comm_seconds = wait->seconds + post->seconds;
        row.meas_comm_is_wall = row.meas_comm_seconds > 0.0;
      }
    }
    double wall = 0.0;
    for (const auto& stat : *phases) {
      wall += stat.seconds;
    }
    if (wall > 0.0) {
      row.meas_seconds = wall;
      row.meas_seconds_is_wall = true;
    }
  }
  if (row.meas_rounds == 0.0) {
    // Untraced runs: back out rounds from the message count (each round
    // costs ceil(log2 P) messages in the paper's collective model).
    row.meas_rounds = row.pred_rounds > 0.0 && row.pred_latency_msgs > 0.0
                          ? row.meas_latency_msgs *
                                (row.pred_rounds / row.pred_latency_msgs)
                          : row.meas_latency_msgs;
  }
  if (!row.meas_seconds_is_wall) {
    row.meas_seconds = measured.seconds(spec_);
  }
  if (!row.meas_comm_is_wall) {
    // No wall measurement: report the modeled comm cost of the *measured*
    // schedule so the column is still populated, but leave comm_err at 0
    // (comparing the model to itself would fake a perfect fit).
    row.meas_comm_seconds = spec_.alpha_effective() * row.meas_latency_msgs +
                            spec_.beta * row.meas_bw_words;
  }
  row.latency_err = rel_err(row.meas_latency_msgs, row.pred_latency_msgs);
  row.bw_err = rel_err(row.meas_bw_words, row.pred_bw_words);
  row.flops_err = rel_err(row.meas_flops, row.pred_flops);
  if (row.meas_comm_is_wall) {
    row.comm_err = rel_err(row.meas_comm_seconds, row.pred_comm_seconds);
  }
  if (row.meas_seconds_is_wall) {
    row.seconds_err = rel_err(row.meas_seconds, row.pred_seconds);
  }
  rows_.push_back(std::move(row));
}

double CostLedger::mean_latency_err() const {
  return mean_of(rows_, &CostLedgerRow::latency_err);
}

double CostLedger::mean_bw_err() const {
  return mean_of(rows_, &CostLedgerRow::bw_err);
}

double CostLedger::mean_flops_err() const {
  return mean_of(rows_, &CostLedgerRow::flops_err);
}

double CostLedger::mean_comm_err() const {
  double total = 0.0;
  int n = 0;
  for (const auto& row : rows_) {
    if (row.meas_comm_is_wall) {
      total += row.comm_err;
      ++n;
    }
  }
  return n > 0 ? total / n : 0.0;
}

double CostLedger::mean_seconds_err() const {
  double total = 0.0;
  int n = 0;
  for (const auto& row : rows_) {
    if (row.meas_seconds_is_wall) {
      total += row.seconds_err;
      ++n;
    }
  }
  return n > 0 ? total / n : 0.0;
}

std::string CostLedger::table() const {
  AsciiTable tbl({"config", "rounds p/m", "L pred", "L meas", "L err",
                  "W pred", "W meas", "W err", "F pred", "F meas", "F err",
                  "ov p/m", "Tc pred(s)", "Tc meas(s)", "T pred(s)",
                  "T meas(s)"});
  for (const auto& r : rows_) {
    tbl.add_row({r.label,
                 fmt_g(r.pred_rounds, 3) + "/" + fmt_g(r.meas_rounds, 3),
                 fmt_g(r.pred_latency_msgs, 3), fmt_g(r.meas_latency_msgs, 3),
                 fmt_f(r.latency_err, 3), fmt_g(r.pred_bw_words, 3),
                 fmt_g(r.meas_bw_words, 3), fmt_f(r.bw_err, 3),
                 fmt_g(r.pred_flops, 3), fmt_g(r.meas_flops, 3),
                 fmt_f(r.flops_err, 3),
                 r.pipelined ? fmt_f(r.pred_overlap, 2) + "/" +
                                   fmt_f(r.meas_overlap, 2)
                             : std::string("-"),
                 fmt_e(r.pred_comm_seconds, 2),
                 fmt_e(r.meas_comm_seconds, 2) +
                     (r.meas_comm_is_wall ? "" : "*"),
                 fmt_e(r.pred_seconds, 2), fmt_e(r.meas_seconds, 2)});
  }
  std::ostringstream out;
  out << "cost model (" << spec_.name << "): predicted vs measured\n"
      << tbl.str()
      << "(Tc = alpha_eff*L + beta*W, scaled by 1 - overlap on pipelined "
         "rows; 'ov p/m' = predicted/measured overlap fraction; '*' marks "
         "modeled rather than wall-measured comm seconds)\n";
  return out.str();
}

void CostLedger::export_metrics(MetricsRegistry& registry) const {
  registry.gauge("model.latency_err").set(mean_latency_err());
  registry.gauge("model.bw_err").set(mean_bw_err());
  registry.gauge("model.flops_err").set(mean_flops_err());
  registry.gauge("model.residual.latency").set(mean_latency_err());
  registry.gauge("model.residual.bw").set(mean_bw_err());
  registry.gauge("model.residual.flops").set(mean_flops_err());
  registry.gauge("model.residual.comm").set(mean_comm_err());
  registry.gauge("model.residual.seconds").set(mean_seconds_err());
  for (const auto& r : rows_) {
    const std::string base = "model." + r.label + ".";
    registry.gauge(base + "latency.pred").set(r.pred_latency_msgs);
    registry.gauge(base + "latency.meas").set(r.meas_latency_msgs);
    registry.gauge(base + "bw.pred").set(r.pred_bw_words);
    registry.gauge(base + "bw.meas").set(r.meas_bw_words);
    registry.gauge(base + "flops.pred").set(r.pred_flops);
    registry.gauge(base + "flops.meas").set(r.meas_flops);
    registry.gauge(base + "rounds.pred").set(r.pred_rounds);
    registry.gauge(base + "rounds.meas").set(r.meas_rounds);
    registry.gauge(base + "seconds.pred").set(r.pred_seconds);
    registry.gauge(base + "seconds.meas").set(r.meas_seconds);
    registry.gauge(base + "comm_seconds.pred").set(r.pred_comm_seconds);
    registry.gauge(base + "comm_seconds.meas").set(r.meas_comm_seconds);
    registry.gauge(base + "latency_err").set(r.latency_err);
    registry.gauge(base + "bw_err").set(r.bw_err);
    registry.gauge(base + "flops_err").set(r.flops_err);
    registry.gauge(base + "comm_err").set(r.comm_err);
    registry.gauge(base + "seconds_err").set(r.seconds_err);
    if (r.pipelined) {
      registry.gauge(base + "overlap.pred").set(r.pred_overlap);
      registry.gauge(base + "overlap.meas").set(r.meas_overlap);
    }
  }
}

}  // namespace rcf::obs
