#include "obs/critpath.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"
#include "obs/timeline.hpp"

namespace rcf::obs {

CriticalPath critical_path(const Timeline& timeline, std::size_t top) {
  CriticalPath path;
  path.makespan_s = timeline.empty() ? 0.0 : timeline.makespan_s();
  if (timeline.empty()) {
    return path;
  }

  std::int64_t boundary_us = timeline.start_us();
  for (const CollectiveInstance& inst : timeline.collectives()) {
    CritSegment seg;
    seg.name = inst.name;
    seg.seq = inst.seq;
    seg.critical_rank = inst.straggler_rank;
    seg.words = inst.words;
    const std::int64_t arrival = inst.last_arrival_us;
    const std::int64_t end = inst.end_max_us();
    seg.compute_s =
        static_cast<double>(std::max<std::int64_t>(arrival - boundary_us, 0)) *
        1e-6;
    seg.collective_s =
        static_cast<double>(std::max<std::int64_t>(end - arrival, 0)) * 1e-6;
    seg.wait_imposed_s = static_cast<double>(inst.wait_imposed_us) * 1e-6;
    boundary_us = std::max(boundary_us, end);
    path.compute_s += seg.compute_s;
    path.comm_s += seg.collective_s;
    path.wait_s += seg.wait_imposed_s;
    path.segments.push_back(std::move(seg));
  }

  // Tail: compute after the last collective, attributed to the rank that
  // finishes last.
  if (timeline.end_us() > boundary_us) {
    CritSegment tail;
    tail.name = "(tail)";
    tail.compute_s =
        static_cast<double>(timeline.end_us() - boundary_us) * 1e-6;
    for (const RankTimes& rt : timeline.rank_times()) {
      if (tail.critical_rank < 0 ||
          rt.last_us > timeline.rank_times()[static_cast<std::size_t>(
                           timeline.rank_index(tail.critical_rank))]
                           .last_us) {
        tail.critical_rank = rt.rank;
      }
    }
    path.compute_s += tail.compute_s;
    path.segments.push_back(std::move(tail));
  }

  path.coverage = path.makespan_s > 0.0
                      ? (path.compute_s + path.comm_s) / path.makespan_s
                      : 0.0;

  // Straggler table: collectives ranked by how much idle they imposed.
  std::vector<const CollectiveInstance*> by_imposed;
  by_imposed.reserve(timeline.collectives().size());
  for (const CollectiveInstance& inst : timeline.collectives()) {
    if (inst.straggler_rank >= 0) {
      by_imposed.push_back(&inst);
    }
  }
  std::sort(by_imposed.begin(), by_imposed.end(),
            [](const CollectiveInstance* a, const CollectiveInstance* b) {
              return a->wait_imposed_us != b->wait_imposed_us
                         ? a->wait_imposed_us > b->wait_imposed_us
                         : a->seq < b->seq;
            });
  const std::size_t n = std::min(top, by_imposed.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CollectiveInstance& inst = *by_imposed[i];
    path.top_stragglers.push_back(StragglerRow{
        inst.name, inst.seq, inst.straggler_rank,
        static_cast<double>(inst.wait_imposed_us) * 1e-6,
        static_cast<double>(inst.wait_total_us) * 1e-6});
  }
  return path;
}

std::string critpath_table(const CriticalPath& path) {
  AsciiTable tbl({"seq", "collective", "crit rank", "compute (s)",
                  "collective (s)", "imposed wait (s)", "words"});
  for (const CritSegment& seg : path.segments) {
    tbl.add_row({seg.seq >= 0 ? std::to_string(seg.seq) : "-", seg.name,
                 seg.critical_rank >= 0 ? std::to_string(seg.critical_rank)
                                        : "-",
                 fmt_f(seg.compute_s, 6), fmt_f(seg.collective_s, 6),
                 fmt_f(seg.wait_imposed_s, 6), fmt_g(seg.words, 4)});
  }
  std::ostringstream out;
  out << "critical path (makespan " << fmt_f(path.makespan_s, 6)
      << " s; chain compute " << fmt_f(path.compute_s, 6) << " s + comm "
      << fmt_f(path.comm_s, 6) << " s, coverage "
      << fmt_f(100.0 * path.coverage, 1) << "%)\n"
      << tbl.str();
  return out.str();
}

std::string straggler_table(const CriticalPath& path) {
  AsciiTable tbl(
      {"seq", "collective", "straggler", "imposed (s)", "total wait (s)"});
  for (const StragglerRow& row : path.top_stragglers) {
    tbl.add_row({row.seq >= 0 ? std::to_string(row.seq) : "-", row.name,
                 std::to_string(row.rank), fmt_f(row.wait_imposed_s, 6),
                 fmt_f(row.wait_total_s, 6)});
  }
  std::ostringstream out;
  out << "top straggler collectives (idle imposed on other ranks "
      << fmt_f(path.wait_s, 6) << " s total)\n"
      << tbl.str();
  return out.str();
}

}  // namespace rcf::obs
