// Hardware performance counters via the raw perf_event_open(2) syscall:
// cycles, retired instructions, and LLC misses read as one counter group,
// for roofline rows (achieved FLOP/cycle, DRAM arithmetic intensity) on
// the kernel spans the solver is built from (gram.task, sparse.spmv,
// la.gemm; see bench_kernels --counters).
//
// Degradation contract: on kernels/containers where perf_event_open is
// unavailable (ENOSYS, EACCES under perf_event_paranoid, seccomp), the
// sampler constructs in a structured no-op state -- available() is false,
// error() names the reason, start()/stop() are cheap and return an invalid
// sample -- and never throws or crashes.  Non-Linux builds compile the
// same interface with the no-op behaviour.
//
// Overhead contract: a PerfScope with sampling disabled costs one bool
// test; opening the counter fds happens once per thread, not per scope.
#pragma once

#include <cstdint>
#include <string>

namespace rcf::obs {

class MetricsRegistry;

/// One delta read from the counter group.  `valid` is false when the
/// group could not be opened; individual counters that failed to open
/// (commonly LLC misses inside VMs) read as 0 with their *_ok flag false.
struct PerfSample {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  bool llc_ok = false;
  /// Multiplexing context from the kernel; running < enabled means the
  /// counts are scaled estimates.
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  [[nodiscard]] double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

/// A per-thread counter group (leader: cycles).  Not thread-safe; create
/// one per sampling thread.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when the group opened; error() explains a false.
  [[nodiscard]] bool available() const { return fd_cycles_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Zeroes and enables the group.  No-op when unavailable.
  void start();
  /// Disables the group and returns the accumulated deltas since start().
  /// Returns an invalid sample when unavailable.
  [[nodiscard]] PerfSample stop();

  /// One-time process probe: can a minimal counter be opened at all?
  [[nodiscard]] static bool supported();

 private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_llc_ = -1;
  std::string error_;
};

/// Process-wide switch for PerfScope (off by default; RCF_PERFCTR=1 in the
/// environment enables it at first use, bench_kernels --counters enables
/// it programmatically).
void set_perf_scopes_enabled(bool enabled);
[[nodiscard]] bool perf_scopes_enabled();

/// RAII sampler around a labelled region.  When enabled, accumulates
///   perf.<label>.cycles / .instructions / .llc_misses / .samples
/// counters into the global MetricsRegistry on destruction (adds, so
/// repeated scopes under one label sum).  Scopes nest by ignoring the
/// inner scope (the per-thread group is already running).  One bool test
/// when disabled.
class PerfScope {
 public:
  explicit PerfScope(const char* label);
  ~PerfScope();
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  const char* label_ = nullptr;  ///< null = inert
};

}  // namespace rcf::obs
