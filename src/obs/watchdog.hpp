// Solver health watchdog: turns the LiveMonitor's periodic health samples
// into structured alerts -- convergence stall, divergence / non-finite
// trend, straggler rank, retry storm, telemetry-ring overflow.
//
// The rules are deliberately stateful-but-pure: Watchdog::on_sample is a
// deterministic function of the sample sequence fed to it, with no clocks
// or I/O, so every rule is unit-testable from synthetic samples
// (tests/test_obs_live.cpp) and the same code drives both the online
// monitor and the offline end-of-solve scan (scan_convergence, which backs
// the SolveResult::alerts annotation).
//
// False-positive discipline (the acceptance bar is zero alerts on clean
// solves): a stall requires BOTH an objective plateau over a full window
// AND step norms that are not shrinking -- a converging solve plateaus
// only as its steps collapse, which the step-ratio test rejects.  Each
// episodic rule (stall, retry storm, straggler per rank, divergence,
// non-finite) alerts once per episode, re-arming only after recovery.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "obs/convergence.hpp"

namespace rcf::obs {

enum class AlertKind : std::uint8_t {
  kStall = 0,       ///< objective plateau while steps are not shrinking
  kNonFinite,       ///< non-finite iterate trend or objective divergence
  kStraggler,       ///< rank's progress epoch lags the fleet
  kRetryStorm,      ///< collective retries above threshold in one window
  kRingOverflow,    ///< telemetry events dropped (rings saturated)
};

[[nodiscard]] const char* alert_kind_name(AlertKind kind);

/// One structured health alert.
struct Alert {
  AlertKind kind = AlertKind::kStall;
  int rank = -1;                 ///< offending rank; -1 = whole run
  std::uint64_t iteration = 0;   ///< solver iteration when detected (0 = n/a)
  double value = 0.0;            ///< measured quantity that tripped the rule
  double threshold = 0.0;        ///< configured threshold it was tested against
  std::int64_t t_us = 0;         ///< live-epoch timestamp of the sample
  std::string detail;            ///< human-readable one-liner
};

/// One JSON object (no trailing newline) for the live stream / logs.
[[nodiscard]] std::string alert_json(const Alert& alert);

/// Thresholds; every field has an RCF_LIVE_* override (watchdog_config_
/// from_env).
struct WatchdogConfig {
  /// Stall: over a window of `stall_window` consecutive finite-objective
  /// records, relative improvement below `stall_rel_improvement` while the
  /// trailing-quarter mean step norm is above `stall_step_floor` AND at
  /// least `stall_step_ratio` times the leading-quarter mean (steps not
  /// shrinking).
  int stall_window = 40;                    // RCF_LIVE_STALL_WINDOW
  double stall_rel_improvement = 1e-9;      // RCF_LIVE_STALL_REL
  double stall_step_floor = 1e-12;
  double stall_step_ratio = 0.5;
  /// Divergence: finite objective exceeding `divergence_factor` times the
  /// best objective seen.
  double divergence_factor = 1e4;           // RCF_LIVE_DIVERGENCE_FACTOR
  /// Straggler: rank whose progress epoch lags the fleet maximum by at
  /// least `straggler_epochs` while idle for `straggler_grace_us`.
  std::uint64_t straggler_epochs = 8;       // RCF_LIVE_STRAGGLER_EPOCHS
  std::int64_t straggler_grace_us = 200000; // RCF_LIVE_STRAGGLER_GRACE_MS
  /// Retry storm: at least this many collective retries within one sample
  /// window.
  std::uint64_t retry_storm = 8;            // RCF_LIVE_RETRY_STORM
};

/// Reads the RCF_LIVE_* overrides on top of the defaults.
[[nodiscard]] WatchdogConfig watchdog_config_from_env();

/// Progress state of one rank at sample time.
struct RankHealth {
  int rank = 0;
  std::uint64_t epoch = 0;      ///< latest solver iteration published
  std::int64_t idle_us = 0;     ///< time since the rank's last progress event
};

/// One periodic health sample, assembled by the LiveMonitor from drained
/// telemetry (or synthesized by tests).
struct HealthSample {
  std::int64_t t_us = 0;
  std::vector<RankHealth> ranks;
  /// Convergence records newly observed since the previous sample.
  std::vector<ConvergenceRecord> conv;
  std::uint64_t retries_total = 0;   ///< cumulative collective retries
  std::uint64_t faults_total = 0;    ///< cumulative injected faults
  std::uint64_t drops_total = 0;     ///< cumulative telemetry-ring drops
};

/// Stateful alert evaluator; feed samples in order.
class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config = {});

  /// Evaluates every rule against the next sample; returns the alerts that
  /// fired (deduplicated per episode).
  std::vector<Alert> on_sample(const HealthSample& sample);

  [[nodiscard]] const WatchdogConfig& config() const { return config_; }

 private:
  void check_convergence(const HealthSample& sample,
                         std::vector<Alert>& alerts);

  WatchdogConfig config_;
  std::deque<ConvergenceRecord> window_;  ///< finite-objective records
  double best_objective_ = std::numeric_limits<double>::infinity();
  std::uint64_t last_iteration_ = 0;
  std::uint64_t drops_seen_ = 0;
  std::uint64_t retries_seen_ = 0;
  bool have_retry_base_ = false;
  bool retry_episode_ = false;
  bool stall_episode_ = false;
  bool seen_finite_step_ = false;
  bool nonfinite_seen_ = false;
  bool divergence_seen_ = false;
  std::set<int> stragglers_;
};

/// Offline scan of a finished solve's convergence ring: runs the stall /
/// divergence / non-finite rules over the full series (rank / timing rules
/// need live samples and are skipped).  Used for the SolveResult::alerts
/// annotation and the golden-fixture zero-false-positive tests.
[[nodiscard]] std::vector<Alert> scan_convergence(
    const std::vector<ConvergenceRecord>& records,
    const WatchdogConfig& config = {});

}  // namespace rcf::obs
