#include "obs/watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/json.hpp"

namespace rcf::obs {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* p = std::getenv(name);
  if (p == nullptr || *p == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  return end == p ? fallback : static_cast<std::uint64_t>(v);
}

double env_double(const char* name, double fallback) {
  const char* p = std::getenv(name);
  if (p == nullptr || *p == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  return end == p ? fallback : v;
}

/// Mean step norm over records [begin, end).
double mean_step(const std::deque<ConvergenceRecord>& window,
                 std::size_t begin, std::size_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = begin; i < end && i < window.size(); ++i) {
    if (std::isfinite(window[i].step)) {
      sum += window[i].step;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

const char* alert_kind_name(AlertKind kind) {
  switch (kind) {
    case AlertKind::kStall:
      return "stall";
    case AlertKind::kNonFinite:
      return "non_finite";
    case AlertKind::kStraggler:
      return "straggler";
    case AlertKind::kRetryStorm:
      return "retry_storm";
    case AlertKind::kRingOverflow:
      return "ring_overflow";
  }
  return "unknown";
}

std::string alert_json(const Alert& alert) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"alert\",\"kind\":\"%s\",\"rank\":%d,"
                "\"iteration\":%llu,\"value\":%.17g,\"threshold\":%.17g,"
                "\"t_us\":%lld,\"detail\":\"",
                alert_kind_name(alert.kind), alert.rank,
                static_cast<unsigned long long>(alert.iteration), alert.value,
                alert.threshold, static_cast<long long>(alert.t_us));
  std::string out = buf;
  json_escape_to(alert.detail, out);
  out += "\"}";
  return out;
}

WatchdogConfig watchdog_config_from_env() {
  WatchdogConfig config;
  config.stall_window = static_cast<int>(
      env_u64("RCF_LIVE_STALL_WINDOW",
              static_cast<std::uint64_t>(config.stall_window)));
  config.stall_rel_improvement =
      env_double("RCF_LIVE_STALL_REL", config.stall_rel_improvement);
  config.divergence_factor =
      env_double("RCF_LIVE_DIVERGENCE_FACTOR", config.divergence_factor);
  config.straggler_epochs =
      env_u64("RCF_LIVE_STRAGGLER_EPOCHS", config.straggler_epochs);
  config.straggler_grace_us =
      static_cast<std::int64_t>(
          env_u64("RCF_LIVE_STRAGGLER_GRACE_MS",
                  static_cast<std::uint64_t>(config.straggler_grace_us /
                                             1000))) *
      1000;
  config.retry_storm = env_u64("RCF_LIVE_RETRY_STORM", config.retry_storm);
  return config;
}

Watchdog::Watchdog(WatchdogConfig config) : config_(config) {
  if (config_.stall_window < 4) {
    config_.stall_window = 4;
  }
}

void Watchdog::check_convergence(const HealthSample& sample,
                                 std::vector<Alert>& alerts) {
  for (const ConvergenceRecord& rec : sample.conv) {
    if (rec.iteration + 1 < last_iteration_) {
      // Iteration counter jumped backwards: a new solve started under the
      // same monitor (bench loops re-run the solver in one process).  The
      // previous run's best objective and stall window would turn the
      // restart into a false plateau / divergence -- start the run-scoped
      // state fresh.  (+1 tolerates same-iteration re-publication.)
      window_.clear();
      best_objective_ = std::numeric_limits<double>::infinity();
      stall_episode_ = false;
      divergence_seen_ = false;
      nonfinite_seen_ = false;
      seen_finite_step_ = false;
      last_iteration_ = 0;
    }
    if (rec.iteration > last_iteration_) {
      last_iteration_ = rec.iteration;
    }
    // Non-finite trend.  NaN fields mean "not tracked" per the
    // ConvergenceRecord contract, so Inf always counts, while a NaN step
    // counts only after the same series produced finite steps (a tracked
    // step collapsing to NaN means the iterate itself went NaN).
    if (std::isfinite(rec.step)) {
      seen_finite_step_ = true;
    }
    const bool nonfinite =
        std::isinf(rec.objective) || std::isinf(rec.step) ||
        (std::isnan(rec.step) && seen_finite_step_) ||
        std::isinf(rec.grad_norm);
    if (nonfinite && !nonfinite_seen_) {
      nonfinite_seen_ = true;
      Alert alert;
      alert.kind = AlertKind::kNonFinite;
      alert.iteration = rec.iteration;
      alert.value = std::isinf(rec.objective) ? rec.objective : rec.step;
      alert.t_us = sample.t_us;
      alert.detail = "non-finite iterate trend at iteration " +
                     std::to_string(rec.iteration);
      alerts.push_back(alert);
    }
    if (!std::isfinite(rec.objective)) {
      continue;  // objective not evaluated (NaN) or already reported (Inf)
    }
    // Divergence: finite objective exploding relative to the best seen.
    if (rec.objective < best_objective_) {
      best_objective_ = rec.objective;
    }
    const double divergence_bar =
        config_.divergence_factor * std::max(best_objective_, 1e-12);
    if (!divergence_seen_ && std::isfinite(best_objective_) &&
        rec.objective > divergence_bar) {
      divergence_seen_ = true;
      Alert alert;
      alert.kind = AlertKind::kNonFinite;
      alert.iteration = rec.iteration;
      alert.value = rec.objective;
      alert.threshold = divergence_bar;
      alert.t_us = sample.t_us;
      alert.detail = "objective divergence: " +
                     std::to_string(rec.objective) + " vs best " +
                     std::to_string(best_objective_);
      alerts.push_back(alert);
    }
    // Stall window: bounded deque of finite-objective records.
    window_.push_back(rec);
    while (window_.size() > static_cast<std::size_t>(config_.stall_window)) {
      window_.pop_front();
    }
  }

  if (window_.size() == static_cast<std::size_t>(config_.stall_window)) {
    const double f0 = window_.front().objective;
    const double f1 = window_.back().objective;
    const double rel_improve =
        (f0 - f1) / std::max(std::abs(f0), 1e-300);
    const std::size_t quarter =
        std::max<std::size_t>(1, window_.size() / 4);
    const double step_head = mean_step(window_, 0, quarter);
    const double step_tail =
        mean_step(window_, window_.size() - quarter, window_.size());
    const bool plateau = rel_improve < config_.stall_rel_improvement;
    const bool steps_alive = step_tail > config_.stall_step_floor &&
                             step_tail >= config_.stall_step_ratio * step_head;
    if (plateau && steps_alive) {
      if (!stall_episode_) {
        stall_episode_ = true;
        Alert alert;
        alert.kind = AlertKind::kStall;
        alert.iteration = window_.back().iteration;
        alert.value = rel_improve;
        alert.threshold = config_.stall_rel_improvement;
        alert.t_us = sample.t_us;
        alert.detail =
            "objective plateau over " + std::to_string(config_.stall_window) +
            " iterations with non-shrinking steps (step ~" +
            std::to_string(step_tail) + ")";
        alerts.push_back(alert);
      }
    } else if (!plateau) {
      stall_episode_ = false;  // real progress resumed; re-arm
    }
  }
}

std::vector<Alert> Watchdog::on_sample(const HealthSample& sample) {
  std::vector<Alert> alerts;

  // Ring overflow: any new drops since the last sample.
  if (sample.drops_total > drops_seen_) {
    Alert alert;
    alert.kind = AlertKind::kRingOverflow;
    alert.value = static_cast<double>(sample.drops_total - drops_seen_);
    alert.t_us = sample.t_us;
    alert.detail = "telemetry ring overflow: " +
                   std::to_string(sample.drops_total - drops_seen_) +
                   " events dropped (total " +
                   std::to_string(sample.drops_total) + ")";
    alerts.push_back(alert);
    drops_seen_ = sample.drops_total;
  }

  // Retry storm: per-window retry delta above threshold (the first sample
  // only establishes the baseline).
  if (have_retry_base_) {
    const std::uint64_t delta = sample.retries_total - retries_seen_;
    if (delta >= config_.retry_storm) {
      if (!retry_episode_) {
        retry_episode_ = true;
        Alert alert;
        alert.kind = AlertKind::kRetryStorm;
        alert.value = static_cast<double>(delta);
        alert.threshold = static_cast<double>(config_.retry_storm);
        alert.t_us = sample.t_us;
        alert.detail = std::to_string(delta) +
                       " collective retries in one sample window";
        alerts.push_back(alert);
      }
    } else {
      retry_episode_ = false;
    }
  }
  retries_seen_ = sample.retries_total;
  have_retry_base_ = true;

  // Straggler: rank lagging the fleet maximum epoch while idle.
  if (sample.ranks.size() >= 2) {
    std::uint64_t max_epoch = 0;
    for (const RankHealth& r : sample.ranks) {
      max_epoch = std::max(max_epoch, r.epoch);
    }
    std::set<int> still_lagging;
    for (const RankHealth& r : sample.ranks) {
      const bool lagging = r.epoch + config_.straggler_epochs <= max_epoch &&
                           r.idle_us >= config_.straggler_grace_us;
      if (!lagging) {
        continue;
      }
      still_lagging.insert(r.rank);
      if (stragglers_.count(r.rank) == 0) {
        Alert alert;
        alert.kind = AlertKind::kStraggler;
        alert.rank = r.rank;
        alert.iteration = r.epoch;
        alert.value = static_cast<double>(max_epoch - r.epoch);
        alert.threshold = static_cast<double>(config_.straggler_epochs);
        alert.t_us = sample.t_us;
        alert.detail = "rank " + std::to_string(r.rank) + " at epoch " +
                       std::to_string(r.epoch) + " lags fleet max " +
                       std::to_string(max_epoch) + " (idle " +
                       std::to_string(r.idle_us / 1000) + " ms)";
        alerts.push_back(alert);
      }
    }
    stragglers_ = std::move(still_lagging);
  }

  check_convergence(sample, alerts);
  return alerts;
}

std::vector<Alert> scan_convergence(
    const std::vector<ConvergenceRecord>& records,
    const WatchdogConfig& config) {
  Watchdog watchdog(config);
  HealthSample sample;
  sample.conv = records;
  return watchdog.on_sample(sample);
}

}  // namespace rcf::obs
