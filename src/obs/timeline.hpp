// Cross-rank timeline: merges the per-rank span streams a traced solve
// produces (live TraceSession snapshots or trace files re-loaded by
// rcf-report) into one aligned view.
//
// Alignment key: the per-rank engine-space collective sequence number the
// comm backends stamp on every non-aux collective span (TraceEvent::seq;
// the same per-endpoint counting scheme check::SequenceTracker fingerprints
// collectives with, so a trace that passes the contract checker is aligned
// by construction).  Spans without a sequence number (older traces,
// modeled single-rank spans) fall back to per-rank arrival order over the
// collective-category spans, which the SPMD schedule makes equivalent.
//
// The merge produces:
//  * a per-rank compute / communication / wait / aux decomposition (wait
//    spans nest inside their collective span, so "comm" here is the
//    data-movement remainder after the nested waits are subtracted), and
//  * one CollectiveInstance per aligned collective with per-rank arrival
//    times and straggler attribution (the rank that arrived last and made
//    every other rank wait).
//
// Everything here is plain data + O(n log n) sorting -- no solver types --
// so tools/rcf-report can link it without pulling in the engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcf::obs {

struct TraceEvent;

/// One span in merge-ready form (string-named so offline loaders can feed
/// spans parsed from trace files).
struct TimelineSpan {
  std::string name;
  int rank = 0;
  std::int64_t seq = -1;      ///< collective sequence number; -1 = none
  std::int64_t start_us = 0;  ///< microseconds since (per-process) epoch
  std::int64_t dur_us = 0;
  double words = 0.0;

  [[nodiscard]] std::int64_t end_us() const { return start_us + dur_us; }
};

/// How a span contributes to the per-rank decomposition.
enum class SpanCategory {
  kCompute,  ///< anything not recognized below
  kComm,     ///< allreduce / broadcast / allgather (data movement)
  kWait,     ///< allreduce_wait / reduce_wait / barrier_wait (pure idling)
  kAux,      ///< aux_collective / aux_wait (aggregation overhead)
};
[[nodiscard]] SpanCategory classify_span(const std::string& name);

/// True for the collective spans the merge aligns across ranks (the kComm
/// spans plus barrier_wait, which is a top-level collective of its own).
[[nodiscard]] bool is_aligned_collective(const std::string& name);

/// Per-rank time decomposition.  Wait spans nest inside collective spans,
/// so comm_s already has wait_s subtracted (clamped at zero); barrier_wait
/// is all wait.  busy_s() + idle wait = span-covered time.
struct RankTimes {
  int rank = 0;
  double compute_s = 0.0;
  double comm_s = 0.0;  ///< collective time net of nested waits
  double wait_s = 0.0;  ///< rendezvous idling (publish + reduce + barrier)
  double aux_s = 0.0;
  std::uint64_t spans = 0;
  std::int64_t first_us = 0;  ///< earliest span start on this rank
  std::int64_t last_us = 0;   ///< latest span end on this rank

  [[nodiscard]] double total_s() const {
    return compute_s + comm_s + wait_s + aux_s;
  }
};

/// One collective aligned across ranks.
struct CollectiveInstance {
  std::string name;
  std::int64_t seq = -1;  ///< alignment key (ordinal when unstamped)

  struct RankEntry {
    int rank = 0;
    bool present = false;
    std::int64_t start_us = 0;    ///< collective span start
    std::int64_t end_us = 0;      ///< collective span end
    std::int64_t arrival_us = 0;  ///< when this rank reached the rendezvous
    std::int64_t wait_us = 0;     ///< nested publish-wait duration
  };
  std::vector<RankEntry> ranks;  ///< index = position in Timeline::ranks()

  double words = 0.0;          ///< per-rank payload (max across ranks)
  int straggler_rank = -1;     ///< rank that arrived last (-1 = no skew info)
  std::int64_t last_arrival_us = 0;
  std::int64_t wait_imposed_us = 0;  ///< max - min wait: skew-attributable idling
  std::int64_t wait_total_us = 0;    ///< summed wait across ranks

  [[nodiscard]] std::int64_t end_max_us() const;
};

/// The merged view.  Build once from spans; all accessors are O(1).
class Timeline {
 public:
  /// Merges `spans` (any order).  Spans from different ranks must share a
  /// time epoch -- true for live snapshots and for per-rank files written
  /// by one traced process (the %r splitting writes one epoch).
  [[nodiscard]] static Timeline build(std::vector<TimelineSpan> spans);

  [[nodiscard]] const std::vector<int>& ranks() const { return ranks_; }
  [[nodiscard]] const std::vector<RankTimes>& rank_times() const {
    return rank_times_;
  }
  /// Aligned collectives in schedule order.
  [[nodiscard]] const std::vector<CollectiveInstance>& collectives() const {
    return collectives_;
  }
  [[nodiscard]] std::int64_t start_us() const { return start_us_; }
  [[nodiscard]] std::int64_t end_us() const { return end_us_; }
  [[nodiscard]] double makespan_s() const {
    return static_cast<double>(end_us_ - start_us_) * 1e-6;
  }
  [[nodiscard]] bool empty() const { return rank_times_.empty(); }

  /// Index into ranks()/rank_times() for a rank id; -1 if absent.
  [[nodiscard]] int rank_index(int rank) const;

 private:
  std::vector<int> ranks_;
  std::vector<RankTimes> rank_times_;
  std::vector<CollectiveInstance> collectives_;
  std::int64_t start_us_ = 0;
  std::int64_t end_us_ = 0;
};

/// Converts a live TraceSession snapshot (sans nothing: every span kept).
[[nodiscard]] std::vector<TimelineSpan> to_timeline_spans(
    const std::vector<TraceEvent>& events);

}  // namespace rcf::obs
