// Critical-path extraction over a merged Timeline.
//
// Every collective in the thread backend is a full rendezvous, so the
// dependency chain of a solve alternates strictly between (a) the slowest
// rank's compute leading into each collective and (b) the collective's own
// post-arrival data movement.  The path is therefore segment-wise: for
// collective i, the chain runs through the rank that arrived last (the
// straggler), charging
//
//   compute_s    = straggler arrival - previous collective's global end,
//   collective_s = global end of i   - straggler arrival,
//
// and the idle time the straggler imposed on everyone else
// (wait_imposed_s = max - min nested wait) is reported alongside, since it
// is exactly the time an overlap-capable backend could reclaim (the
// ROADMAP's async-collectives arc).  A final "(tail)" segment covers the
// compute after the last collective.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcf::obs {

class Timeline;

/// One segment of the longest dependency chain: the compute run-up on the
/// critical rank, then the collective that closes the segment.
struct CritSegment {
  std::string name;            ///< collective name; "(tail)" for the last leg
  std::int64_t seq = -1;       ///< alignment key of the closing collective
  int critical_rank = -1;      ///< rank the chain runs through (straggler)
  double compute_s = 0.0;      ///< critical rank's compute into the collective
  double collective_s = 0.0;   ///< post-arrival collective time
  double wait_imposed_s = 0.0; ///< idle the straggler caused on other ranks
  double words = 0.0;          ///< collective payload (0 for "(tail)")
};

/// One straggler attribution row: which rank made everyone wait, by how
/// much, at which collective.
struct StragglerRow {
  std::string name;
  std::int64_t seq = -1;
  int rank = -1;
  double wait_imposed_s = 0.0;  ///< max - min wait at this collective
  double wait_total_s = 0.0;    ///< summed wait across ranks
};

struct CriticalPath {
  std::vector<CritSegment> segments;       ///< schedule order
  std::vector<StragglerRow> top_stragglers;  ///< by wait_imposed_s, desc
  double compute_s = 0.0;  ///< sum of segment compute along the path
  double comm_s = 0.0;     ///< sum of post-arrival collective time
  double wait_s = 0.0;     ///< sum of imposed idle (off-path, reclaimable)
  double makespan_s = 0.0;
  /// (compute_s + comm_s) / makespan_s: how much of the wall clock the
  /// extracted chain explains (1.0 when span coverage is complete).
  double coverage = 0.0;
};

/// Extracts the critical path; `top` bounds the straggler table.
[[nodiscard]] CriticalPath critical_path(const Timeline& timeline,
                                         std::size_t top = 8);

/// Aligned text tables (for example/bench output; rcf-report renders its
/// own sections from the struct).
[[nodiscard]] std::string critpath_table(const CriticalPath& path);
[[nodiscard]] std::string straggler_table(const CriticalPath& path);

}  // namespace rcf::obs
