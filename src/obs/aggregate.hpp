// Cross-rank metric aggregation.
//
// At the end of a distributed solve every rank holds a local
// MetricsRegistry (per-phase counters/gauges recorded from its own
// schedule plus its communicator endpoint's CommStats).  aggregate()
// combines those registries across ranks with a fixed, rank-independent
// reduction order so the result is deterministic:
//
//  * Counters and gauges are reduced into {min, max, sum, mean} views
//    plus a derived imbalance factor max/mean (the paper's per-phase
//    load-balance signal; 1.0 means perfectly balanced).
//  * Histograms are merged bin-by-bin (exact: bin counts are integers
//    well below 2^53, so sum-allreduce over doubles is lossless) and the
//    merged distribution's p50/p95/p99 are recomputed from the combined
//    bins.
//
// Determinism contract (see DESIGN.md): instruments are enumerated in
// sorted-name order and packed into flat buffers, so the reduction order
// is a function of the metric names only -- never of rank arrival order
// or pool width.  Schedule-shape metrics (counts, payload words) are
// bit-identical across runs and pool widths; time-valued metrics get the
// same fixed reduction order but of course carry run-to-run jitter.
//
// The collectives issued here run under Communicator::AuxScope, so
// aggregation does not perturb the CommStats counters, "allreduce" span
// counts, or latency histograms it is reporting on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rcf::dist {
class Communicator;
struct CommStats;
}  // namespace rcf::dist

namespace rcf::obs {

struct PhaseStat;

/// Cross-rank view of one counter or gauge.
struct AggregatedMetric {
  std::string name;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  /// max/mean (1.0 when mean == 0): >1 means some rank carries more of
  /// this metric than the average -- the per-phase load-imbalance factor.
  double imbalance = 1.0;
};

/// Cross-rank merge of one latency histogram.
struct AggregatedHistogram {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< smallest observation across ranks (0 when empty)
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Result of aggregate(): every instrument of the per-rank registries,
/// reduced across the communicator's world.
struct FleetMetrics {
  int ranks = 0;
  std::vector<AggregatedMetric> counters;   ///< sorted by name
  std::vector<AggregatedMetric> gauges;     ///< sorted by name
  std::vector<AggregatedHistogram> histograms;  ///< sorted by name

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Looks up a counter or gauge by name (counters first); nullptr if
  /// absent.
  [[nodiscard]] const AggregatedMetric* find(std::string_view name) const;

  /// Human-readable min/mean/max/imbalance table.
  [[nodiscard]] std::string table() const;
};

/// Reduces `local` across all ranks of `comm` (collective: every rank of
/// the communicator must call it with registries holding the *same*
/// instrument names -- checked, RCF_CHECK fires on divergence).  Every
/// rank receives the same FleetMetrics.  Runs under AuxScope; see header
/// comment for the determinism contract.
FleetMetrics aggregate(MetricsRegistry& local, dist::Communicator& comm);

/// Publishes a fleet view into `registry` as gauges named
/// "agg.<metric>.{min,max,sum,mean,imbalance}" (histograms as
/// "agg.<name>.{count,sum,min,max,p50,p95,p99}"), so aggregated results
/// ride the normal metrics JSON export.
void publish(const FleetMetrics& fleet, MetricsRegistry& registry);

/// Records one rank's solve-local observations into `registry`:
/// per-phase "phase.<name>.count" counters and "phase.<name>.seconds" /
/// "phase.<name>.words" gauges from `phases`, plus (when non-null) the
/// communicator endpoint's CommStats as "comm.*" counters.  This is the
/// canonical per-rank registry layout aggregate() consumes.
void record_solve_metrics(MetricsRegistry& registry,
                          const std::vector<PhaseStat>& phases,
                          const dist::CommStats* comm_stats);

}  // namespace rcf::obs
