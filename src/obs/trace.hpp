// Per-rank tracing: RAII spans recorded into per-thread buffers and
// exported as Chrome trace-event JSON (chrome://tracing / Perfetto) or a
// flat JSONL stream.
//
// Design constraints (see DESIGN.md "Observability"):
//
//  * A disabled span costs a single relaxed atomic load + branch, so the
//    hot paths (engine inner loop, ThreadComm collectives) can stay
//    instrumented unconditionally (verified by BM_TraceScopeDisabled in
//    bench_kernels).
//  * Recording is lock-free on the recording thread: events append to a
//    thread_local buffer that is flushed into the session's central store
//    under a mutex only when the buffer fills, the thread exits, or the
//    session is stopped.  snapshot() therefore sees every event from
//    threads that have exited (ThreadGroup joins its ranks before control
//    returns) plus the calling thread's events.
//  * Span attribution: rank comes from the thread-local set by
//    set_thread_rank (ThreadGroup::run sets it per rank; 0 otherwise), and
//    tid is a small per-thread serial.
//
// The session is configured programmatically (start/stop), from CLI flags
// (--trace-out / --trace-jsonl / --metrics-out; see bench_util and the
// examples), or from the environment: RCF_TRACE=<path> (Chrome JSON),
// RCF_TRACE_JSONL=<path>, RCF_METRICS=<path>.  Env-configured sessions
// write their outputs at process exit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.hpp"

namespace rcf::obs {

class Histogram;

/// One completed span ("X" duration event in the Chrome trace format).
struct TraceEvent {
  const char* name = "";    ///< static-storage span label ("allreduce", ...)
  int rank = 0;             ///< SPMD rank (pid in the Chrome trace)
  std::uint32_t tid = 0;    ///< per-thread serial (tid in the Chrome trace)
  std::int64_t start_us = 0;  ///< microseconds since session epoch
  std::int64_t dur_us = 0;    ///< span duration in microseconds
  double words = 0.0;       ///< payload counter (0 = omitted from args)
  /// Engine-space collective sequence number stamped by the comm backends
  /// (the contract checker's per-endpoint counting scheme); -1 for
  /// non-collective spans.  The cross-rank timeline merge aligns on it.
  std::int64_t seq = -1;
};

/// Per-phase aggregate attached to SolveResult: how many spans of each
/// phase a solve executed, and (when tracing was enabled) the wall time
/// and payload they accumulated.  Counts are maintained even when tracing
/// is off, so tests can assert on schedule shape without a live session.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0.0;  ///< measured wall time; 0 unless tracing/live is on
  double payload_words = 0.0;  ///< accumulated payload counters
};
using PhaseSummary = std::vector<PhaseStat>;

/// Lookup by phase name; nullptr if absent.
[[nodiscard]] const PhaseStat* find_phase(const PhaseSummary& summary,
                                          std::string_view name);

/// Renders the summary as an aligned text table (for example/bench output).
[[nodiscard]] std::string phase_table(const PhaseSummary& summary);

/// Output targets of a trace session; empty path = that output disabled.
/// Trace paths may contain a `%r` rank placeholder: write_outputs() then
/// splits the events by rank and writes one file per rank, so multi-rank
/// runs never interleave or clobber a shared file.  Without the
/// placeholder a multi-rank session still writes one merged file (all
/// ranks share the session epoch) but warns once.
struct TraceConfig {
  std::string trace_out;    ///< Chrome trace-event JSON
  std::string jsonl_out;    ///< flat JSONL stream (one event per line)
  std::string metrics_out;  ///< metrics registry JSON dump
};

/// Replaces every `%r` in `path` with the decimal rank.
[[nodiscard]] std::string expand_rank_path(const std::string& path, int rank);

/// SPMD rank used to attribute spans recorded by the calling thread.
void set_thread_rank(int rank);
[[nodiscard]] int thread_rank();

/// The process-wide trace session.  All recording goes through global().
class TraceSession {
 public:
  /// The singleton (never destroyed, so thread-exit flushes are always
  /// safe).  Auto-starts from RCF_TRACE / RCF_TRACE_JSONL / RCF_METRICS on
  /// first touch.
  static TraceSession& global();

  /// Enables recording (clears previously collected events) and stores the
  /// output configuration for write_outputs().
  void start(TraceConfig config = {});

  /// Disables recording and flushes the calling thread's buffer.
  void stop();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the session epoch (start() resets the epoch).
  [[nodiscard]] std::int64_t now_us() const;

  /// Records one completed span for the calling thread; rank/tid are
  /// filled in from the thread-local state.  No-op when disabled.
  /// `seq` is the collective sequence number (-1 = not a collective).
  void record(const char* name, std::int64_t start_us, std::int64_t dur_us,
              double words = 0.0, std::int64_t seq = -1);

  /// Flushes the calling thread's buffer and returns a copy of every event
  /// collected so far (events of still-running other threads may be
  /// missing; ThreadGroup joins its ranks, so solver runs are complete).
  [[nodiscard]] std::vector<TraceEvent> snapshot();

  /// Drops all collected events (does not change enabled state or config).
  void clear();

  /// Events collected so far whose name matches (flushes like snapshot()).
  [[nodiscard]] std::uint64_t count_spans(std::string_view name);

  /// Writes the configured outputs (Chrome JSON / JSONL / metrics).
  /// Returns false if any configured file could not be written.
  bool write_outputs();

  /// Serializers (also used by write_outputs).
  void write_chrome_trace(std::ostream& out);
  void write_jsonl(std::ostream& out);

 private:
  TraceSession();
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();
  void flush_buffer(ThreadBuffer& buffer);
  /// Writes one trace output, expanding `%r` into per-rank files.
  bool write_trace_file(const std::string& path,
                        const std::vector<TraceEvent>& events, bool chrome);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_tid_{1};
  std::atomic<bool> warned_shared_path_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;  // guards store_ and config_
  std::vector<TraceEvent> store_;
  TraceConfig config_;
};

/// RAII wrapper for CLI-configured observability: starts the global trace
/// session when at least one trace path is non-empty, starts the live
/// monitor (obs::LiveMonitor) when `live_out` is non-empty, and stops /
/// flushes both on destruction.  Inert (active() == false) when every path
/// is empty, so callers can construct it unconditionally from flag values.
class ScopedSession {
 public:
  ScopedSession(std::string trace_out, std::string jsonl_out,
                std::string metrics_out, std::string live_out = {});
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;
  ~ScopedSession();

  /// True when the trace session or the live monitor was started.
  [[nodiscard]] bool active() const { return active_ || live_active_; }
  [[nodiscard]] bool live_active() const { return live_active_; }

 private:
  bool active_ = false;
  bool live_active_ = false;
};

/// RAII span: records [construction, destruction) into the global session.
/// When `latency` is non-null the span duration (microseconds) is also
/// observed into that histogram (used for collective-latency percentiles).
/// `seq` stamps the span with a collective sequence number for the
/// cross-rank timeline merge (-1 = not a collective).
class TraceScope {
 public:
  explicit TraceScope(const char* name, double words = 0.0,
                      Histogram* latency = nullptr, std::int64_t seq = -1) {
    // One relaxed load tests the trace AND live gates (the packed word in
    // telemetry.hpp), keeping the disabled fast path at a single load +
    // branch even with live telemetry compiled in.
    const std::uint32_t gate = obs_gate();
    if (gate == 0) {
      return;
    }
    name_ = name;
    words_ = words;
    latency_ = latency;
    seq_ = seq;
    active_ = (gate & detail::kGateTrace) != 0;
    live_ = (gate & detail::kGateLive) != 0;
    if (active_) {
      start_us_ = TraceSession::global().now_us();
    } else {
      live_start_us_ = live_now_us();
    }
    if (live_ && seq_ >= 0) {
      // Collectives announce themselves on entry so the monitor can age
      // in-flight operations (a hung allreduce is visible while stuck).
      telemetry_publish_slow(TelemetryKind::kCollectiveBegin, name_,
                             static_cast<double>(seq_), words_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  bool active_ = false;
  bool live_ = false;
  const char* name_ = "";
  double words_ = 0.0;
  Histogram* latency_ = nullptr;
  std::int64_t seq_ = -1;
  std::int64_t start_us_ = 0;       ///< session epoch (tracing)
  std::int64_t live_start_us_ = 0;  ///< live epoch (live without tracing)
};

/// Accumulator for one phase of a solver loop (see PhaseStat).
struct PhaseAgg {
  std::uint64_t count = 0;
  std::int64_t us = 0;
  double words = 0.0;

  PhaseAgg& operator+=(const PhaseAgg& o) {
    count += o.count;
    us += o.us;
    words += o.words;
    return *this;
  }
};

/// Runs `fn()` as one span of phase `name`: the count and payload always
/// accumulate into `agg` (so schedule-shape assertions work untraced), but
/// the wall time is measured -- and a span emitted to the global session
/// and/or the live telemetry bus -- only when `tracing` is true or the
/// live monitor is running.  Sample enabled() once per solve and pass it
/// here so the fully-disabled per-iteration cost is a bool test plus one
/// relaxed load.
template <typename Fn>
inline void timed_phase(bool tracing, PhaseAgg& agg, const char* name,
                        double words, Fn&& fn) {
  ++agg.count;
  agg.words += words;
  const bool live = live_enabled();
  if (!tracing && !live) {
    fn();
    return;
  }
  std::int64_t dur = 0;
  if (tracing) {
    auto& session = TraceSession::global();
    const std::int64_t t0 = session.now_us();
    fn();
    const std::int64_t t1 = session.now_us();
    dur = t1 - t0;
    session.record(name, t0, dur, words);
  } else {
    const std::int64_t t0 = live_now_us();
    fn();
    dur = live_now_us() - t0;
  }
  agg.us += dur;
  if (live) {
    telemetry_publish_slow(TelemetryKind::kPhase, name,
                           static_cast<double>(dur), words);
  }
}

/// Appends one PhaseStat built from `agg` (skips never-hit phases).
void append_phase(PhaseSummary& summary, const char* name,
                  const PhaseAgg& agg);

}  // namespace rcf::obs

#define RCF_TRACE_CONCAT_INNER(a, b) a##b
#define RCF_TRACE_CONCAT(a, b) RCF_TRACE_CONCAT_INNER(a, b)

/// Traces the enclosing scope under `name` (a string literal or other
/// static-storage string).  One branch when tracing is disabled.
#define RCF_TRACE_SCOPE(name) \
  ::rcf::obs::TraceScope RCF_TRACE_CONCAT(rcf_trace_scope_, __LINE__)(name)

/// Same, with a payload-words counter attached to the span.
#define RCF_TRACE_SCOPE_W(name, words)                                  \
  ::rcf::obs::TraceScope RCF_TRACE_CONCAT(rcf_trace_scope_, __LINE__)(  \
      name, static_cast<double>(words))
